//! Criterion bench for design-choice ablations: resampling schemes and
//! the cost of the exact translator-error computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use incremental::translator_error;
use incremental::{resample, Correspondence, ParticleCollection, ResampleScheme};
use ppl::dist::Dist;
use ppl::{addr, Handler, LogWeight, PplError, Trace, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn weighted_collection(m: usize, seed: u64) -> ParticleCollection {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = ParticleCollection::new();
    for i in 0..m {
        let mut t = Trace::new();
        let d = Dist::uniform_int(0, m as i64);
        let lp = d.log_prob(&Value::Int(i as i64));
        t.record_choice(addr!["id"], Value::Int(i as i64), d, lp)
            .expect("fresh");
        let w = ppl::dist::util::uniform_unit(&mut rng);
        c.push(t, LogWeight::from_prob(w));
    }
    c
}

fn bench_resampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("resampling_schemes");
    let collection = weighted_collection(1_000, 9);
    for scheme in [
        ResampleScheme::Multinomial,
        ResampleScheme::Systematic,
        ResampleScheme::Stratified,
        ResampleScheme::Residual,
    ] {
        group.bench_with_input(
            BenchmarkId::new("scheme", format!("{scheme:?}")),
            &scheme,
            |b, &scheme| {
                let mut rng = StdRng::seed_from_u64(10);
                b.iter(|| resample(&collection, scheme, &mut rng).expect("resamples"));
            },
        );
    }
    group.finish();
}

fn bench_translator_error(c: &mut Criterion) {
    let p = |h: &mut dyn Handler| -> Result<Value, PplError> {
        let x = h.sample(addr!["x"], Dist::flip(0.5))?;
        let po = if x.truthy()? { 0.6 } else { 0.4 };
        h.observe(addr!["o"], Dist::flip(po), Value::Bool(true))?;
        Ok(x)
    };
    let q = |h: &mut dyn Handler| -> Result<Value, PplError> {
        let x = h.sample(addr!["x"], Dist::flip(0.5))?;
        let y = h.sample(addr!["y"], Dist::flip(0.3))?;
        let po = if x.truthy()? || y.truthy()? { 0.8 } else { 0.2 };
        h.observe(addr!["o"], Dist::flip(po), Value::Bool(true))?;
        Ok(x)
    };
    c.bench_function("exact_translator_error_small_model", |b| {
        let corr = Correspondence::identity_on(["x"]);
        b.iter(|| translator_error(&p, &q, &corr).expect("finite"));
    });
}

criterion_group!(benches, bench_resampling, bench_translator_error);
criterion_main!(benches);
