//! Criterion microbench for the compiled evaluator: register-lowered
//! execution against pooled frames vs the tree-walk reference, on a
//! deterministic arithmetic/control-flow kernel and on a sampling
//! program driven by a prior handler.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ppl::compile::{compiled_for, run_compiled, EvalFrame};
use ppl::handlers::PriorSampler;
use ppl::interp::DEFAULT_FUEL;
use ppl::{parse, Interp};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic kernel: slots, loops, builtins, branches — no handler
/// traffic, so the numbers isolate pure evaluation cost.
const KERNEL: &str = "x = 3; acc = 0;\n\
     for i in [0..32) {\n\
       acc = acc + i * x;\n\
       if acc > 100 { acc = acc - 7; } else { acc = acc + 2; }\n\
     }\n\
     k = 0;\n\
     while k < 16 { k = k + 1; acc = acc + k; }\n\
     z = sqrt(abs(acc) + 1.0) + max(1.5, 0.25);\n\
     return acc + floor(z);";

/// Sampling program: random choices and an observation, so the bench
/// includes address construction and trace recording.
const SAMPLER: &str = "prev = 1;\n\
     for i in [0..8) {\n\
       x = flip(prev ? 0.7 : 0.3) @ x;\n\
       observe(flip(x ? 0.9 : 0.1) @ o == 1);\n\
       prev = x;\n\
     }\n\
     return prev;";

fn bench_eval(c: &mut Criterion) {
    let kernel = parse(KERNEL).expect("kernel parses");
    let sampler = parse(SAMPLER).expect("sampler parses");

    // Precompiled + warm frame: the steady-state inner-loop shape used
    // by the particle executors.
    let compiled = compiled_for(&kernel);
    let mut frame = EvalFrame::new();
    c.bench_function("eval_kernel_compiled_warm", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let mut handler = PriorSampler::new(&mut rng);
            black_box(
                run_compiled(&compiled, &mut frame, DEFAULT_FUEL, &mut handler)
                    .expect("kernel runs"),
            )
        });
    });

    c.bench_function("eval_kernel_tree_walk", |b| {
        let interp = Interp::new();
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let mut handler = PriorSampler::new(&mut rng);
            black_box(
                interp
                    .run_tree_walk(&kernel, &mut handler)
                    .expect("kernel runs"),
            )
        });
    });

    c.bench_function("eval_sampler_compiled", |b| {
        let interp = Interp::new();
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            let mut handler = PriorSampler::new(&mut rng);
            black_box(interp.run(&sampler, &mut handler).expect("sampler runs"))
        });
    });

    c.bench_function("eval_sampler_tree_walk", |b| {
        let interp = Interp::new();
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            let mut handler = PriorSampler::new(&mut rng);
            black_box(
                interp
                    .run_tree_walk(&sampler, &mut handler)
                    .expect("sampler runs"),
            )
        });
    });
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
