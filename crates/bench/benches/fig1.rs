//! Criterion bench for the Figure 1 example: one burglary trace
//! translation vs sampling the refined model from scratch by rejection.

use criterion::{criterion_group, criterion_main, Criterion};
use incremental::{CorrespondenceTranslator, TraceTranslator};
use inference::{rejection_sample, ExactPosterior};
use models::burglary;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fig1(c: &mut Criterion) {
    let translator = CorrespondenceTranslator::new(
        burglary::original,
        burglary::refined,
        burglary::correspondence(),
    );
    let mut rng = StdRng::seed_from_u64(3);
    let sampler = ExactPosterior::new(&burglary::original).expect("finite");
    let t = sampler.sample(&mut rng);

    c.bench_function("fig1_translate_one_trace", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| translator.translate(&t, &mut rng).expect("translates"));
    });
    c.bench_function("fig1_rejection_sample_refined", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| rejection_sample(&burglary::refined, &mut rng, 1_000_000).expect("accepts"));
    });
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
