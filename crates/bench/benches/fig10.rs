//! Criterion bench for Figure 10: baseline vs optimized trace
//! translation on the GMM hyperparameter edit, swept over N.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use depgraph::{ExecGraph, IncrementalTranslator};
use incremental::{CorrespondenceTranslator, TraceTranslator};
use models::gmm::{gmm_correspondence, gmm_program};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_translation_time");
    for &n in &[10usize, 100, 1000] {
        let k = 10;
        let p = gmm_program(10.0, n, k);
        let q = gmm_program(20.0, n, k);
        let baseline = CorrespondenceTranslator::new(p.clone(), q.clone(), gmm_correspondence());
        let optimized = IncrementalTranslator::from_edit(p.clone(), q);
        let mut rng = StdRng::seed_from_u64(7 + n as u64);
        let graph = ExecGraph::simulate(&p, &mut rng).expect("gmm simulates");
        graph.warm_index();
        let trace = graph.to_trace().expect("flattens");

        group.bench_with_input(BenchmarkId::new("baseline_sec5", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| baseline.translate(&trace, &mut rng).expect("translates"));
        });
        group.bench_with_input(BenchmarkId::new("optimized_sec6", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| {
                optimized
                    .translate_graph(&graph, &mut rng)
                    .expect("translates")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
