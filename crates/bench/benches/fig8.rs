//! Criterion bench for Figure 8: one incremental estimate (translate 30
//! exact conjugate samples into the robust model) vs one MCMC sweep of
//! the from-scratch baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use incremental::CorrespondenceTranslator;
use incremental::{McmcKernel, SmcConfig};
use inference::IndependentMetropolisCycle;
use models::data::hospital::HospitalData;
use models::regression::{
    exact_posterior_traces, regression_correspondence, LinRegModel, NoOutlierParams, OutlierParams,
    RobustRegModel,
};
use ppl::handlers::simulate;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fig8(_c: &mut Criterion) {
    // Iterations are tens of milliseconds; bound the sampling effort so
    // `cargo bench --workspace` stays snappy.
    let mut c = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(8))
        .configure_from_args();
    let c = &mut c;
    let data = HospitalData::paper_scale();
    let p_model = LinRegModel {
        params: NoOutlierParams::default(),
        xs: data.xs.clone(),
        ys: data.ys.clone(),
    };
    let q_model = RobustRegModel {
        params: OutlierParams::default(),
        xs: data.xs.clone(),
        ys: data.ys.clone(),
    };
    let translator = CorrespondenceTranslator::new(
        p_model.clone(),
        q_model.clone(),
        regression_correspondence(),
    );
    let kernel = IndependentMetropolisCycle::new(q_model.clone());

    c.bench_function("fig8_incremental_estimate_30_traces", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let particles = exact_posterior_traces(&p_model, 30, &mut rng).expect("conjugate");
            incremental::infer(
                &translator,
                None,
                &particles,
                &SmcConfig::translate_only(),
                &mut rng,
            )
            .expect("translates")
        });
    });
    c.bench_function("fig8_mcmc_one_sweep", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let chain = simulate(&q_model, &mut rng).expect("simulates");
        b.iter(|| kernel.step(&chain, &mut rng).expect("steps"));
    });
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
