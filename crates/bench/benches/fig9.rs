//! Criterion bench for Figure 9: incremental translation of 30 FFBS
//! traces into the second-order HMM vs one back-and-forth Gibbs sweep.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use incremental::CorrespondenceTranslator;
use incremental::{McmcKernel, SmcConfig};
use inference::{GibbsKernel, SweepOrder};
use models::data::typo::{train_models, TypoCorpus};
use models::hmm_model::{
    exact_first_order_traces, hmm_correspondence, FirstOrderHmmModel, SecondOrderHmmModel,
};
use ppl::handlers::simulate;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fig9(_c: &mut Criterion) {
    // Iterations are tens of milliseconds; bound the sampling effort so
    // `cargo bench --workspace` stays snappy.
    let mut c = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(8))
        .configure_from_args();
    let c = &mut c;
    let corpus = TypoCorpus::generate(8_000, 0.15, 42);
    let (first, second) = train_models(&corpus);
    let test = TypoCorpus::generate(1, 0.15, 43);
    let word = test.pairs[0].typed.clone();
    let p_model = FirstOrderHmmModel {
        params: Arc::new(first),
        observations: word.clone(),
    };
    let q_model = SecondOrderHmmModel {
        params: Arc::new(second),
        observations: word,
    };
    let translator =
        CorrespondenceTranslator::new(p_model.clone(), q_model.clone(), hmm_correspondence());
    let kernel = GibbsKernel::with_order(q_model.clone(), SweepOrder::BackAndForth);

    c.bench_function("fig9_incremental_30_traces", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let input = exact_first_order_traces(&p_model, 30, &mut rng).expect("FFBS");
            incremental::infer(
                &translator,
                None,
                &input,
                &SmcConfig::translate_only(),
                &mut rng,
            )
            .expect("translates")
        });
    });
    c.bench_function("fig9_gibbs_one_back_and_forth_sweep", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let chain = simulate(&q_model, &mut rng).expect("simulates");
        b.iter(|| kernel.step(&chain, &mut rng).expect("sweeps"));
    });
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
