//! Ablation studies beyond the paper's headline figures:
//!
//! 1. **Error vs sample size** (Appendix B): the number of translated
//!    traces needed for a target accuracy grows approximately
//!    exponentially in the translator error ε(R). We compute ε(R) exactly
//!    for a family of increasingly divergent targets and measure the
//!    empirical trace count needed.
//! 2. **Resampling schemes** (Section 4.2 footnote): estimator spread of
//!    multinomial vs systematic vs stratified vs residual resampling over
//!    a program sequence.

use incremental::{
    infer, resample, translator_error, Correspondence, CorrespondenceTranslator,
    ParticleCollection, ResampleScheme, SmcConfig,
};
use inference::stats::{mean, std_dev};
use inference::ExactPosterior;
use ppl::dist::Dist;
use ppl::{addr, Enumeration, Handler, PplError, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::Table;

fn obs_model(q: f64) -> impl Fn(&mut dyn Handler) -> Result<Value, PplError> + Clone {
    move |h: &mut dyn Handler| {
        let x = h.sample(addr!["x"], Dist::flip(0.5))?;
        let po = if x.truthy()? { q } else { 1.0 - q };
        h.observe(addr!["o"], Dist::flip(po), Value::Bool(true))?;
        Ok(x)
    }
}

/// One row of the ε-vs-sample-efficiency ablation.
#[derive(Debug, Clone)]
pub struct EpsilonRow {
    /// Target observation strength.
    pub q: f64,
    /// Exact translator error ε(R).
    pub epsilon: f64,
    /// Average `ESS / M` of the translated weights: the fraction of
    /// traces that remain effective. Appendix B says the necessary sample
    /// size grows approximately exponentially in ε(R), i.e. this fraction
    /// decays with ε.
    pub ess_fraction: f64,
    /// `M / ESS`: the sample-size inflation factor relative to a perfect
    /// translator.
    pub inflation: f64,
}

/// Runs the ε(R)-vs-sample-efficiency ablation: `P` fixes `q = 0.6`;
/// targets sweep `q` upward, increasing the divergence; for each target
/// the exact ε(R) is computed and the ESS of `m` translated traces is
/// measured.
///
/// # Panics
///
/// Panics on internal errors only.
pub fn epsilon_vs_samples(seed: u64, m: usize, replications: usize) -> Vec<EpsilonRow> {
    let p_model = obs_model(0.6);
    let mut rows = Vec::new();
    for q in [0.6, 0.7, 0.8, 0.9, 0.97] {
        let q_model = obs_model(q);
        let corr = Correspondence::identity_on(["x"]);
        let report = translator_error(&p_model, &q_model, &corr).expect("finite models");
        let translator = CorrespondenceTranslator::new(p_model.clone(), q_model.clone(), corr);
        let sampler = ExactPosterior::new(&p_model).expect("finite");
        let mut fractions = Vec::new();
        for rep in 0..replications {
            let mut rng = StdRng::seed_from_u64(seed + rep as u64 * 7919);
            let particles = ParticleCollection::from_traces(sampler.samples(m, &mut rng));
            let adapted = infer(
                &translator,
                None,
                &particles,
                &SmcConfig::translate_only(),
                &mut rng,
            )
            .expect("translates");
            fractions.push(adapted.ess() / m as f64);
        }
        let ess_fraction = mean(&fractions);
        rows.push(EpsilonRow {
            q,
            epsilon: report.epsilon,
            ess_fraction,
            inflation: 1.0 / ess_fraction.max(1e-12),
        });
    }
    rows
}

/// Renders the ε ablation.
pub fn render_epsilon(rows: &[EpsilonRow]) -> String {
    let mut table = Table::new(
        "Ablation: translator error eps(R) vs effective-sample-size fraction",
        &["target q", "eps(R)", "ESS / M", "inflation M/ESS"],
    );
    for r in rows {
        table.row(&[
            format!("{:.2}", r.q),
            format!("{:.4}", r.epsilon),
            format!("{:.3}", r.ess_fraction),
            format!("{:.2}x", r.inflation),
        ]);
    }
    table.render()
}

/// One row of the fresh-proposal ablation.
#[derive(Debug, Clone)]
pub struct ProposalRow {
    /// Whether the smart proposal was used.
    pub smart: bool,
    /// Average ESS fraction across replications.
    pub ess_fraction: f64,
    /// Average absolute error of `E[y | data]`.
    pub avg_error: f64,
}

/// Ablation of the `FreshProposal` hook (the paper's future-work item):
/// `Q` adds a tightly observed continuous latent; sampling it from the
/// prior collapses the ESS, while the conjugate conditional keeps the
/// collection fully effective. Returns `(exact posterior mean, rows)`.
///
/// # Panics
///
/// Panics on internal errors only.
pub fn fresh_proposal_ablation(
    seed: u64,
    m: usize,
    replications: usize,
) -> (f64, Vec<ProposalRow>) {
    use incremental::TraceTranslator;
    let p = obs_model(0.6);
    let q = |h: &mut dyn Handler| -> Result<Value, PplError> {
        let x = h.sample(addr!["x"], Dist::flip(0.5))?;
        let po = if x.truthy()? { 0.6 } else { 0.4 };
        h.observe(addr!["o"], Dist::flip(po), Value::Bool(true))?;
        let y = h.sample(addr!["y"], Dist::normal(0.0, 5.0))?;
        h.observe(
            addr!["oy"],
            Dist::normal(y.as_real()?, 0.2),
            Value::Real(3.0),
        )?;
        Ok(x)
    };
    // Conjugate posterior of y.
    let post_var = 1.0 / (1.0 / 25.0 + 1.0 / 0.04);
    let post_mean = 3.0 * post_var / 0.04;
    let corr = || Correspondence::identity_on(["x"]);
    let sampler = ExactPosterior::new(&p).expect("finite");
    let mut rows = Vec::new();
    for smart in [false, true] {
        let base = CorrespondenceTranslator::new(p.clone(), q, corr());
        let translator = if smart {
            base.with_fresh_proposal(move |a: &ppl::Address, _prior: &Dist, _old: &ppl::Trace| {
                if *a == addr!["y"] {
                    Some(Dist::normal(post_mean, post_var.sqrt()))
                } else {
                    None
                }
            })
        } else {
            base
        };
        let mut fractions = Vec::new();
        let mut errors = Vec::new();
        for rep in 0..replications {
            let mut rng = StdRng::seed_from_u64(seed + 31 * rep as u64 + smart as u64);
            let particles = ParticleCollection::from_traces(sampler.samples(m, &mut rng));
            let mut adapted = ParticleCollection::new();
            for particle in particles.iter() {
                let out = translator
                    .translate(&particle.trace, &mut rng)
                    .expect("translates");
                adapted.push(out.trace, out.log_weight);
            }
            fractions.push(adapted.ess() / m as f64);
            let ey = adapted
                .estimate(|t| t.value(&addr!["y"]).unwrap().as_real().unwrap())
                .unwrap_or(f64::NAN);
            errors.push((ey - post_mean).abs());
        }
        rows.push(ProposalRow {
            smart,
            ess_fraction: mean(&fractions),
            avg_error: mean(&errors),
        });
    }
    (post_mean, rows)
}

/// Renders the proposal ablation.
pub fn render_proposals(exact_mean: f64, rows: &[ProposalRow]) -> String {
    let mut table = Table::new(
        "Ablation: fresh-choice proposals (paper future work) — ESS and accuracy",
        &["proposal", "ESS / M", "avg |E[y] error|", "exact E[y]"],
    );
    for r in rows {
        table.row(&[
            if r.smart {
                "conjugate conditional"
            } else {
                "prior (paper default)"
            }
            .into(),
            format!("{:.3}", r.ess_fraction),
            format!("{:.4}", r.avg_error),
            format!("{exact_mean:.4}"),
        ]);
    }
    table.render()
}

/// One row of the resampling-scheme ablation.
#[derive(Debug, Clone)]
pub struct SchemeRow {
    /// The scheme.
    pub scheme: ResampleScheme,
    /// Mean final estimate across replications.
    pub mean_estimate: f64,
    /// Standard deviation of the final estimate across replications.
    pub spread: f64,
}

/// Compares resampling schemes on a two-step program sequence.
///
/// # Panics
///
/// Panics on internal errors only.
pub fn resampling_schemes(seed: u64, m: usize, replications: usize) -> (f64, Vec<SchemeRow>) {
    let p = obs_model(0.6);
    let mid = obs_model(0.8);
    let q = obs_model(0.95);
    let exact = Enumeration::run(&q)
        .unwrap()
        .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap());
    let corr = || Correspondence::identity_on(["x"]);
    let t1 = CorrespondenceTranslator::new(p.clone(), mid.clone(), corr());
    let t2 = CorrespondenceTranslator::new(mid.clone(), q.clone(), corr());
    let sampler = ExactPosterior::new(&p).expect("finite");
    let mut rows = Vec::new();
    for scheme in [
        ResampleScheme::Multinomial,
        ResampleScheme::Systematic,
        ResampleScheme::Stratified,
        ResampleScheme::Residual,
    ] {
        let mut estimates = Vec::new();
        for rep in 0..replications {
            let mut rng = StdRng::seed_from_u64(seed + rep as u64);
            let particles = ParticleCollection::from_traces(sampler.samples(m, &mut rng));
            let step1 = infer(
                &t1,
                None,
                &particles,
                &SmcConfig::translate_only(),
                &mut rng,
            )
            .expect("translates");
            let resampled = resample(&step1, scheme, &mut rng).expect("resamples");
            let step2 = infer(
                &t2,
                None,
                &resampled,
                &SmcConfig::translate_only(),
                &mut rng,
            )
            .expect("translates");
            estimates.push(
                step2
                    .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap())
                    .unwrap_or(f64::NAN),
            );
        }
        rows.push(SchemeRow {
            scheme,
            mean_estimate: mean(&estimates),
            spread: std_dev(&estimates),
        });
    }
    (exact, rows)
}

/// Renders the resampling ablation.
pub fn render_schemes(exact: f64, rows: &[SchemeRow]) -> String {
    let mut table = Table::new(
        "Ablation: resampling schemes over a 2-step program sequence",
        &["scheme", "mean estimate", "spread (std)", "exact"],
    );
    for r in rows {
        table.row(&[
            format!("{:?}", r.scheme),
            format!("{:.4}", r.mean_estimate),
            format!("{:.4}", r.spread),
            format!("{exact:.4}"),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_grows_with_divergence_and_costs_samples() {
        let rows = epsilon_vs_samples(11, 2000, 6);
        // ε increases along the q sweep.
        for w in rows.windows(2) {
            assert!(
                w[1].epsilon >= w[0].epsilon - 1e-12,
                "eps not monotone: {:?}",
                rows
            );
        }
        // The identity translator keeps all traces effective; divergent
        // targets lose effective sample size monotonically (within noise).
        assert!(
            (rows[0].ess_fraction - 1.0).abs() < 1e-9,
            "identity ESS fraction {}",
            rows[0].ess_fraction
        );
        for w in rows.windows(2) {
            assert!(
                w[1].ess_fraction <= w[0].ess_fraction + 0.02,
                "ESS fraction not decaying: {rows:?}"
            );
        }
        assert!(
            rows.last().unwrap().inflation > 1.2,
            "most divergent target should inflate the needed sample size: {rows:?}"
        );
        assert!(render_epsilon(&rows).contains("eps(R)"));
    }

    #[test]
    fn smart_proposal_dominates_prior_proposal() {
        let (_, rows) = fresh_proposal_ablation(19, 600, 4);
        let prior = rows.iter().find(|r| !r.smart).unwrap();
        let smart = rows.iter().find(|r| r.smart).unwrap();
        assert!(smart.ess_fraction > 0.9, "{rows:?}");
        assert!(prior.ess_fraction < 0.3, "{rows:?}");
        assert!(smart.avg_error < prior.avg_error, "{rows:?}");
        assert!(render_proposals(3.0, &rows).contains("conjugate"));
    }

    #[test]
    fn all_schemes_are_unbiased_and_low_variance_beats_multinomial() {
        let (exact, rows) = resampling_schemes(13, 400, 40);
        for r in &rows {
            assert!(
                (r.mean_estimate - exact).abs() < 0.05,
                "{:?} biased: {} vs {exact}",
                r.scheme,
                r.mean_estimate
            );
        }
        assert!(render_schemes(exact, &rows).contains("Multinomial"));
    }
}
