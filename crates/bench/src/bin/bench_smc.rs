//! `bench_smc` — runs the BENCH_smc edit-sequence benchmark and writes
//! `BENCH_smc.json`.
//!
//! Usage:
//!
//! ```text
//! bench_smc [--quick] [--label NAME] [--out PATH] [--threads N]
//!           [--particles N] [--chain-len N] [--steps N] [--repeats N]
//!           [--scaling-sizes N,N,...]
//! ```
//!
//! `--quick` selects the tiny CI smoke configuration. The output document
//! follows the `bench-smc/v1` schema; committed baselines merge one entry
//! per measured build.

use benches::smc_bench::{run, SmcBenchConfig};

fn parse_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut config = if quick {
        SmcBenchConfig::quick()
    } else {
        SmcBenchConfig::default()
    };
    let label = parse_flag(&args, "--label").unwrap_or_else(|| {
        if quick {
            "quick".to_string()
        } else {
            "full".to_string()
        }
    });
    let out_path = parse_flag(&args, "--out").unwrap_or_else(|| "BENCH_smc.json".to_string());
    if let Some(v) = parse_flag(&args, "--threads") {
        config.threads = v.parse().expect("--threads takes a number");
    }
    if let Some(v) = parse_flag(&args, "--particles") {
        config.particles = v.parse().expect("--particles takes a number");
    }
    if let Some(v) = parse_flag(&args, "--chain-len") {
        config.chain_len = v.parse().expect("--chain-len takes a number");
    }
    if let Some(v) = parse_flag(&args, "--steps") {
        config.steps = v.parse().expect("--steps takes a number");
    }
    if let Some(v) = parse_flag(&args, "--repeats") {
        config.repeats = v.parse().expect("--repeats takes a number");
    }
    if let Some(v) = parse_flag(&args, "--scaling-sizes") {
        config.scaling_sizes = v
            .split(',')
            .map(|s| s.trim().parse().expect("--scaling-sizes takes N,N,..."))
            .collect();
    }

    let report = run(&config, &label);
    print!("{}", report.render());
    std::fs::write(&out_path, report.to_json()).expect("write benchmark output");
    println!("wrote {out_path}");
}
