//! Runs the ablation studies: translator error ε(R) vs effective sample
//! size (Appendix B), and resampling-scheme comparison (Section 4.2).
//!
//! Usage: `cargo run --release -p benches --bin exp_ablation [--quick]`

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (m, reps) = if quick { (1_000, 5) } else { (10_000, 20) };
    let rows = benches::ablation::epsilon_vs_samples(11, m, reps);
    println!("{}", benches::ablation::render_epsilon(&rows));
    let (exact, schemes) = benches::ablation::resampling_schemes(13, m.min(2_000), reps * 4);
    println!("{}", benches::ablation::render_schemes(exact, &schemes));
    let (exact_mean, proposals) =
        benches::ablation::fresh_proposal_ablation(17, m.min(2_000), reps);
    println!(
        "{}",
        benches::ablation::render_proposals(exact_mean, &proposals)
    );
}
