//! Regenerates the Figure 1 numbers: prior/posterior bars, the worked
//! translation weight ≈ 1.19, an end-to-end incremental estimate, and the
//! exact translator error of the refinement edit.
//!
//! Usage: `cargo run --release -p benches --bin exp_fig1 [--quick]`

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let traces = if quick { 2_000 } else { 20_000 };
    let results = benches::fig1::run(traces, 7);
    println!("{}", benches::fig1::render(&results));
}
