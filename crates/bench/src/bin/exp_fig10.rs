//! Regenerates Figure 10: trace translation time vs number of data
//! points, baseline (Section 5) vs the dependency-tracking optimized
//! algorithm (Section 6), on the Gaussian-mixture hyperparameter edit.
//!
//! Usage: `cargo run --release -p benches --bin exp_fig10 [--quick] [--csv]`

use benches::fig10::{render, run, Fig10Config};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        Fig10Config::quick()
    } else {
        Fig10Config::default()
    };
    let points = run(&config);
    if std::env::args().any(|a| a == "--csv") {
        println!("n,baseline_s,optimized_s,visited,skipped");
        for p in &points {
            println!(
                "{},{},{},{},{}",
                p.n,
                p.baseline.as_secs_f64(),
                p.optimized.as_secs_f64(),
                p.visited,
                p.skipped
            );
        }
    } else {
        println!("{}", render(&points));
    }
}
