//! Regenerates Figure 8: robust-regression estimation error vs median
//! runtime per estimate, for incremental inference, incremental without
//! weights, and from-scratch MCMC.
//!
//! Usage: `cargo run --release -p benches --bin exp_fig8 [--quick] [--csv]`

use benches::fig8::{render, run, Fig8Config};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        Fig8Config::quick()
    } else {
        Fig8Config::default()
    };
    let results = run(&config);
    if std::env::args().any(|a| a == "--csv") {
        println!("method,work,median_runtime_s,avg_error");
        for p in &results.points {
            println!(
                "{},{},{},{}",
                p.method,
                p.work,
                p.median_runtime.as_secs_f64(),
                p.avg_error
            );
        }
    } else {
        println!("{}", render(&results));
    }
}
