//! Regenerates Figure 9: typo-correction ground-truth log probability vs
//! runtime per word, for incremental inference, incremental without
//! weights, and back-and-forth Gibbs.
//!
//! Usage: `cargo run --release -p benches --bin exp_fig9 [--quick] [--csv]`

use benches::fig9::{render, run, Fig9Config};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        Fig9Config::quick()
    } else {
        Fig9Config::default()
    };
    let results = run(&config);
    if std::env::args().any(|a| a == "--csv") {
        println!("method,work,median_runtime_s,avg_log_prob,avg_per_char_prob");
        for p in &results.points {
            println!(
                "{},{},{},{},{}",
                p.method,
                p.work,
                p.median_runtime.as_secs_f64(),
                p.avg_log_prob,
                p.avg_per_char_prob
            );
        }
    } else {
        println!("{}", render(&results));
    }
}
