//! Experiment FIG1: the Figure 1 burglary example — prior/posterior bar
//! values, the worked translation weight ≈ 1.19, end-to-end incremental
//! inference, and the exact translator error of the refinement.

use incremental::{
    infer, translator_error, Correspondence, CorrespondenceTranslator, ParticleCollection,
    SmcConfig, TraceTranslator,
};
use inference::ExactPosterior;
use models::burglary;
use ppl::dist::Dist;
use ppl::{addr, Enumeration, Trace, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::Table;

/// All numbers reported by the FIG1 experiment.
#[derive(Debug, Clone)]
pub struct Fig1Results {
    /// Prior P(burglary=1) in the original model (paper: 2%).
    pub original_prior: f64,
    /// Posterior P(burglary=1) in the original model (paper: 20.5%).
    pub original_posterior: f64,
    /// Prior P(burglary=1) in the refined model (paper: 2%).
    pub refined_prior: f64,
    /// Posterior P(burglary=1) in the refined model (paper: 19.4%).
    pub refined_posterior: f64,
    /// The worked weight for t = [α↦1, β↦1] with γ'↦1 (paper: ≈1.19).
    pub showcased_weight: f64,
    /// Incremental estimate of the refined posterior from translated
    /// traces.
    pub incremental_estimate: f64,
    /// Number of traces used for the incremental estimate.
    pub num_traces: usize,
    /// Exact translator error ε(R) of the refinement edit.
    pub translator_epsilon: f64,
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics only on internal errors (the models are fixed and valid).
pub fn run(num_traces: usize, seed: u64) -> Fig1Results {
    let e_p = Enumeration::run(&burglary::original).expect("finite model");
    let e_q = Enumeration::run(&burglary::refined).expect("finite model");
    let burgled = |t: &Trace| t.return_value().unwrap().truthy().unwrap();

    // The worked example: force the paper's showcased input trace and an
    // earthquake outcome.
    let showcased_weight = showcased_translation_weight(seed);

    // End-to-end: exact posterior samples of P, translated to Q.
    let mut rng = StdRng::seed_from_u64(seed);
    let sampler = ExactPosterior::new(&burglary::original).expect("finite model");
    let particles = ParticleCollection::from_traces(sampler.samples(num_traces, &mut rng));
    let translator = CorrespondenceTranslator::new(
        burglary::original,
        burglary::refined,
        burglary::correspondence(),
    );
    let adapted = infer(
        &translator,
        None,
        &particles,
        &SmcConfig::translate_only(),
        &mut rng,
    )
    .expect("translation succeeds");
    let incremental_estimate = adapted.probability(burgled).expect("non-degenerate");

    let report = translator_error(
        &burglary::original,
        &burglary::refined,
        &burglary::correspondence(),
    )
    .expect("finite models");

    Fig1Results {
        original_prior: e_p.prior_probability(burgled),
        original_posterior: e_p.probability(burgled),
        refined_prior: e_q.prior_probability(burgled),
        refined_posterior: e_q.probability(burgled),
        showcased_weight,
        incremental_estimate,
        num_traces,
        translator_epsilon: report.epsilon,
    }
}

/// Translates the paper's showcased trace `t = [α ↦ 1, β ↦ 1]` until the
/// sampled earthquake variable comes up 1 and returns that weight.
fn showcased_translation_weight(seed: u64) -> f64 {
    let mut t = Trace::new();
    for (name, p) in [("alpha", 0.02), ("beta", 0.9)] {
        let d = Dist::flip(p);
        let lp = d.log_prob(&Value::Bool(true));
        t.record_choice(addr![name], Value::Bool(true), d, lp)
            .expect("fresh addresses");
    }
    let d = Dist::flip(0.8);
    let lp = d.log_prob(&Value::Bool(true));
    t.record_observation(addr!["o"], Value::Bool(true), d, lp)
        .expect("fresh address");
    let translator = CorrespondenceTranslator::new(
        burglary::original,
        burglary::refined,
        burglary::correspondence(),
    );
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..100_000 {
        let out = translator.translate(&t, &mut rng).expect("translates");
        if out
            .trace
            .value(&addr!["gamma_"])
            .expect("earthquake choice exists")
            .truthy()
            .unwrap()
        {
            return out.log_weight.prob();
        }
    }
    unreachable!("flip(0.005) surely fires within 100k attempts")
}

/// Renders the results as tables.
pub fn render(r: &Fig1Results) -> String {
    let mut bars = Table::new(
        "Figure 1: prior/posterior of burglary (paper: 2%/20.5% and 2%/19.4%)",
        &["model", "prior P(b=1)", "posterior P(b=1)"],
    );
    bars.row(&[
        "original".into(),
        format!("{:.4}", r.original_prior),
        format!("{:.4}", r.original_posterior),
    ]);
    bars.row(&[
        "refined".into(),
        format!("{:.4}", r.refined_prior),
        format!("{:.4}", r.refined_posterior),
    ]);
    let mut xlate = Table::new(
        "Figure 1: trace translation",
        &["quantity", "value", "paper"],
    );
    xlate.row(&[
        "weight of showcased trace".into(),
        format!("{:.4}", r.showcased_weight),
        "~1.19".into(),
    ]);
    xlate.row(&[
        format!("incremental estimate ({} traces)", r.num_traces),
        format!("{:.4}", r.incremental_estimate),
        format!("{:.4} (exact)", r.refined_posterior),
    ]);
    xlate.row(&[
        "translator error eps(R)".into(),
        format!("{:.6}", r.translator_epsilon),
        "-".into(),
    ]);
    format!("{}\n{}", bars.render(), xlate.render())
}

/// An `unused` helper so the correspondence type appears in the public
/// API surface of this module for documentation purposes.
pub fn correspondence() -> Correspondence {
    burglary::correspondence()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_paper_numbers() {
        let r = run(4000, 7);
        assert!((r.original_prior - 0.02).abs() < 1e-9);
        assert!((r.refined_prior - 0.02).abs() < 1e-9);
        assert!((r.original_posterior - 0.205).abs() < 5e-4);
        assert!((r.refined_posterior - 0.194).abs() < 5e-4);
        assert!((r.showcased_weight - 1.1875).abs() < 1e-6);
        assert!(
            (r.incremental_estimate - r.refined_posterior).abs() < 0.03,
            "estimate {} vs exact {}",
            r.incremental_estimate,
            r.refined_posterior
        );
        // ε(R) ≈ 0.207 for the earthquake refinement: mostly the
        // forward-sampling term (the fresh earthquake variable influences
        // the observation), plus a small semantic term.
        assert!((r.translator_epsilon - 0.2074).abs() < 1e-3);
        let rendered = render(&r);
        assert!(rendered.contains("Figure 1"));
    }
}
