//! Experiment FIG10: baseline vs optimized trace translation on the
//! Gaussian mixture model (Section 7.4).
//!
//! The edit changes the prior variance of the cluster centers. The
//! Section 5 baseline translator visits every trace element — `O(N + K)`
//! — while the Section 6 dependency-tracking translator only visits the
//! `K` cluster centers, so its translation time is flat in `N`.

use std::time::Duration;

use depgraph::{ExecGraph, IncrementalTranslator};
use incremental::{CorrespondenceTranslator, TraceTranslator};
use models::gmm::{gmm_correspondence, gmm_program};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::{fmt_duration, median_duration, timed, Table};

/// Configuration of the FIG10 experiment.
#[derive(Debug, Clone)]
pub struct Fig10Config {
    /// Data-point counts to sweep (the paper sweeps 1..1000 on a log
    /// axis).
    pub ns: Vec<usize>,
    /// Number of clusters (paper: 10).
    pub k: usize,
    /// Prior std before the edit.
    pub sigma_before: f64,
    /// Prior std after the edit.
    pub sigma_after: f64,
    /// Timing repetitions per point.
    pub reps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig10Config {
    fn default() -> Self {
        Fig10Config {
            ns: vec![1, 3, 10, 32, 100, 316, 1000],
            k: 10,
            sigma_before: 10.0,
            sigma_after: 20.0,
            reps: 20,
            seed: 7,
        }
    }
}

impl Fig10Config {
    /// Smaller configuration for tests.
    pub fn quick() -> Fig10Config {
        Fig10Config {
            ns: vec![10, 100, 400],
            reps: 5,
            ..Fig10Config::default()
        }
    }
}

/// One point on the Figure 10 plot.
#[derive(Debug, Clone)]
pub struct Fig10Point {
    /// Number of data points.
    pub n: usize,
    /// Median translation time of the Section 5 baseline.
    pub baseline: Duration,
    /// Median translation time of the Section 6 optimized translator.
    pub optimized: Duration,
    /// Statement instances the optimized translator re-executed.
    pub visited: usize,
    /// Statement instances (or loop regions) it skipped.
    pub skipped: usize,
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics on internal errors only.
pub fn run(config: &Fig10Config) -> Vec<Fig10Point> {
    let mut points = Vec::new();
    for &n in &config.ns {
        let p = gmm_program(config.sigma_before, n, config.k);
        let q = gmm_program(config.sigma_after, n, config.k);
        let baseline = CorrespondenceTranslator::new(p.clone(), q.clone(), gmm_correspondence());
        let optimized = IncrementalTranslator::from_edit(p.clone(), q.clone());
        let mut rng = StdRng::seed_from_u64(config.seed + n as u64);
        let graph = ExecGraph::simulate(&p, &mut rng).expect("gmm simulates");
        graph.warm_index();
        let trace = graph.to_trace().expect("graph flattens");

        let mut base_times = Vec::with_capacity(config.reps);
        let mut opt_times = Vec::with_capacity(config.reps);
        let mut visited = 0;
        let mut skipped = 0;
        for _ in 0..config.reps {
            let (_, d) = timed(|| baseline.translate(&trace, &mut rng).expect("translates"));
            base_times.push(d);
            let (result, d) = timed(|| {
                optimized
                    .translate_graph(&graph, &mut rng)
                    .expect("translates")
            });
            opt_times.push(d);
            visited = result.stats.visited;
            skipped = result.stats.skipped;
        }
        points.push(Fig10Point {
            n,
            baseline: median_duration(&base_times),
            optimized: median_duration(&opt_times),
            visited,
            skipped,
        });
    }
    points
}

/// Renders the results.
pub fn render(points: &[Fig10Point]) -> String {
    let mut table = Table::new(
        "Figure 10: translation time vs number of data points (K = 10)",
        &[
            "N",
            "baseline (Sec. 5)",
            "optimized (Sec. 6)",
            "speedup",
            "visited",
            "skipped",
        ],
    );
    for p in points {
        let speedup = p.baseline.as_secs_f64() / p.optimized.as_secs_f64().max(1e-12);
        table.row(&[
            p.n.to_string(),
            fmt_duration(p.baseline),
            fmt_duration(p.optimized),
            format!("{speedup:.1}x"),
            p.visited.to_string(),
            p.skipped.to_string(),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimized_translation_is_flat_in_n() {
        let r = run(&Fig10Config::quick());
        assert_eq!(r.len(), 3);
        // Visited counts are exactly N-independent.
        assert!(r.windows(2).all(|w| w[0].visited == w[1].visited));
        // Baseline time grows with N (N=400 vs N=10 should differ by a
        // lot more than the optimized times do).
        let base_growth =
            r.last().unwrap().baseline.as_secs_f64() / r[0].baseline.as_secs_f64().max(1e-12);
        let opt_growth =
            r.last().unwrap().optimized.as_secs_f64() / r[0].optimized.as_secs_f64().max(1e-12);
        assert!(
            base_growth > 3.0 * opt_growth,
            "baseline growth {base_growth} vs optimized growth {opt_growth}"
        );
        // At the largest N, the optimized translator wins clearly.
        let last = r.last().unwrap();
        assert!(
            last.optimized < last.baseline,
            "optimized {:?} vs baseline {:?} at N = {}",
            last.optimized,
            last.baseline,
            last.n
        );
        assert!(render(&r).contains("Figure 10"));
    }
}
