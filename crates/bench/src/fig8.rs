//! Experiment FIG8: robust Bayesian linear regression (Section 7.2).
//!
//! Task: estimate the posterior mean of the slope in the robust model
//! `Q`, given exact conjugate posterior samples of the plain model `P`.
//! Methods: incremental inference (translate + weights), incremental
//! without weights, and from-scratch MCMC (a cycle of independent
//! Metropolis updates, the paper's baseline). The paper reports that
//! incremental inference gave 0.031 error at 0.043 s/estimate vs MCMC's
//! 0.19 error at 0.53 s/estimate — an order-of-magnitude runtime
//! advantage at better accuracy, with the no-weights variant converging
//! to the wrong value.

use std::time::Duration;

use incremental::CorrespondenceTranslator;
use incremental::{McmcKernel, ParticleCollection, TraceTranslator};
use inference::stats::mean;
use inference::{GaussianDriftKernel, IndependentMetropolisCycle};
use models::data::hospital::HospitalData;
use models::regression::{
    addr_slope, exact_posterior_traces, regression_correspondence, LinRegModel, NoOutlierParams,
    OutlierParams, RobustRegModel,
};
use ppl::handlers::simulate;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::{fmt_duration, median_duration, timed, Table};

/// Configuration of the FIG8 experiment.
#[derive(Debug, Clone)]
pub struct Fig8Config {
    /// Number of data points (paper: 305).
    pub data_points: usize,
    /// Outlier contamination fraction.
    pub outlier_fraction: f64,
    /// RNG seed.
    pub seed: u64,
    /// Replications per point (for error averaging and runtime medians).
    pub replications: usize,
    /// Trace counts for the incremental methods.
    pub incremental_m: Vec<usize>,
    /// Sweep counts for the MCMC baseline.
    pub mcmc_sweeps: Vec<usize>,
    /// Sweeps used for the gold-standard estimate.
    pub gold_sweeps: usize,
}

impl Default for Fig8Config {
    fn default() -> Self {
        Fig8Config {
            data_points: 305,
            outlier_fraction: 0.08,
            seed: 2018,
            replications: 20,
            incremental_m: vec![5, 15, 50, 150],
            mcmc_sweeps: vec![1, 3, 10, 30, 100],
            gold_sweeps: 2000,
        }
    }
}

impl Fig8Config {
    /// A smaller configuration for tests and smoke runs.
    pub fn quick() -> Fig8Config {
        Fig8Config {
            data_points: 60,
            replications: 5,
            incremental_m: vec![10, 40],
            mcmc_sweeps: vec![2, 10],
            gold_sweeps: 400,
            ..Fig8Config::default()
        }
    }
}

/// One point on the Figure 8 error-vs-runtime plot.
#[derive(Debug, Clone)]
pub struct Fig8Point {
    /// Method name.
    pub method: &'static str,
    /// Work parameter (traces for incremental, sweeps for MCMC).
    pub work: usize,
    /// Median runtime per estimate.
    pub median_runtime: Duration,
    /// Average absolute error of the posterior-mean-slope estimate.
    pub avg_error: f64,
}

/// The full experiment output.
#[derive(Debug, Clone)]
pub struct Fig8Results {
    /// Gold-standard posterior mean slope (long MCMC run).
    pub gold_slope: f64,
    /// Ground-truth generating slope of the synthetic data.
    pub true_slope: f64,
    /// All method points.
    pub points: Vec<Fig8Point>,
}

fn slope_of(trace: &ppl::Trace) -> f64 {
    trace
        .value(&addr_slope())
        .expect("slope choice exists")
        .as_real()
        .expect("slope is real")
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics on internal errors only (fixed valid models).
pub fn run(config: &Fig8Config) -> Fig8Results {
    let data = HospitalData::generate(config.data_points, config.outlier_fraction, config.seed);
    let p_model = LinRegModel {
        params: NoOutlierParams::default(),
        xs: data.xs.clone(),
        ys: data.ys.clone(),
    };
    let q_model = RobustRegModel {
        params: OutlierParams::default(),
        xs: data.xs.clone(),
        ys: data.ys.clone(),
    };
    let translator = CorrespondenceTranslator::new(
        p_model.clone(),
        q_model.clone(),
        regression_correspondence(),
    );
    let kernel = IndependentMetropolisCycle::new(q_model.clone());

    // Gold standard: a long run of hand-tuned random-walk MH (the paper
    // uses "a hand-optimized MCMC algorithm as the gold-standard"),
    // initialized at the conjugate fit so burn-in is short.
    let gold_kernel = GaussianDriftKernel::new(q_model.clone(), 0.05);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xD1CE);
    let mut chain = {
        let init = exact_posterior_traces(&p_model, 1, &mut rng).expect("conjugate");
        let mut constraints = init.particles()[0].trace.to_choice_map();
        constraints.remove(&models::regression::addr_y(0)); // keep only latents
        let mut map = ppl::ChoiceMap::new();
        for addr in [addr_slope(), models::regression::addr_intercept()] {
            if let Some(v) = constraints.get(&addr) {
                map.insert(addr.clone(), v.clone());
            }
        }
        ppl::handlers::generate(&q_model, &map, &mut rng)
            .expect("q generates")
            .0
    };
    let mut gold_samples = Vec::new();
    for i in 0..config.gold_sweeps {
        chain = gold_kernel.step(&chain, &mut rng).expect("kernel steps");
        if i >= config.gold_sweeps / 2 {
            gold_samples.push(slope_of(&chain));
        }
    }
    let gold_slope = mean(&gold_samples);

    let mut points = Vec::new();

    for &m in &config.incremental_m {
        for weights in [true, false] {
            let mut errors = Vec::new();
            let mut runtimes = Vec::new();
            for rep in 0..config.replications {
                let mut rng = StdRng::seed_from_u64(config.seed + 31 * rep as u64 + m as u64);
                let (estimate, elapsed) = timed(|| {
                    let particles =
                        exact_posterior_traces(&p_model, m, &mut rng).expect("conjugate");
                    estimate_slope(&translator, &particles, weights, &mut rng)
                });
                errors.push((estimate - gold_slope).abs());
                runtimes.push(elapsed);
            }
            points.push(Fig8Point {
                method: if weights {
                    "incremental"
                } else {
                    "incremental-no-weights"
                },
                work: m,
                median_runtime: median_duration(&runtimes),
                avg_error: mean(&errors),
            });
        }
    }

    for &sweeps in &config.mcmc_sweeps {
        let mut errors = Vec::new();
        let mut runtimes = Vec::new();
        for rep in 0..config.replications {
            let mut rng = StdRng::seed_from_u64(config.seed + 77 * rep as u64 + sweeps as u64);
            let (estimate, elapsed) = timed(|| {
                let mut chain = simulate(&q_model, &mut rng).expect("q simulates");
                let mut samples = Vec::new();
                for i in 0..sweeps {
                    chain = kernel.step(&chain, &mut rng).expect("kernel steps");
                    if i >= sweeps / 2 {
                        samples.push(slope_of(&chain));
                    }
                }
                mean(&samples)
            });
            errors.push((estimate - gold_slope).abs());
            runtimes.push(elapsed);
        }
        points.push(Fig8Point {
            method: "mcmc",
            work: sweeps,
            median_runtime: median_duration(&runtimes),
            avg_error: mean(&errors),
        });
    }

    Fig8Results {
        gold_slope,
        true_slope: data.true_slope,
        points,
    }
}

fn estimate_slope(
    translator: &dyn TraceTranslator,
    particles: &ParticleCollection,
    use_weights: bool,
    rng: &mut StdRng,
) -> f64 {
    if use_weights {
        let adapted = incremental::infer(
            translator,
            None,
            particles,
            &incremental::SmcConfig::translate_only(),
            rng,
        )
        .expect("translation succeeds");
        adapted.estimate(slope_of).unwrap_or(f64::NAN)
    } else {
        let adapted = incremental::infer_without_weights(translator, particles, rng)
            .expect("translation succeeds");
        adapted.estimate(slope_of).unwrap_or(f64::NAN)
    }
}

/// Renders the results.
pub fn render(r: &Fig8Results) -> String {
    let mut table = Table::new(
        "Figure 8: robust regression — average error vs median runtime per estimate",
        &["method", "work", "median runtime", "avg |error|"],
    );
    for p in &r.points {
        table.row(&[
            p.method.into(),
            p.work.to_string(),
            fmt_duration(p.median_runtime),
            format!("{:.4}", p.avg_error),
        ]);
    }
    format!(
        "gold-standard slope (long MCMC): {:.4}   data-generating slope: {:.4}\n\n{}",
        r.gold_slope,
        r.true_slope,
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_has_the_paper_shape() {
        let r = run(&Fig8Config::quick());
        // The gold standard should land near the generating slope — the
        // robust model is designed to ignore the outliers.
        assert!(
            (r.gold_slope - r.true_slope).abs() < 0.25,
            "gold {} vs truth {}",
            r.gold_slope,
            r.true_slope
        );
        let best_incr = r
            .points
            .iter()
            .filter(|p| p.method == "incremental")
            .map(|p| p.avg_error)
            .fold(f64::INFINITY, f64::min);
        let worst_mcmc_fast = r
            .points
            .iter()
            .filter(|p| p.method == "mcmc" && p.work <= 2)
            .map(|p| p.avg_error)
            .fold(0.0, f64::max);
        // Incremental with enough traces beats the short-MCMC estimates.
        assert!(
            best_incr < worst_mcmc_fast + 1e-9,
            "incremental {best_incr} vs fast mcmc {worst_mcmc_fast}"
        );
        let rendered = render(&r);
        assert!(rendered.contains("Figure 8"));
    }
}
