//! Experiment FIG9: higher-order HMM typo correction (Section 7.3).
//!
//! `P` is a first-order HMM over intended letters (exact posterior
//! samples by FFBS); `Q` is a second-order HMM that fits English trigram
//! structure better but "impedes exact inference". Incremental inference
//! translates the FFBS samples to `Q`; the baseline is a from-scratch
//! Gibbs sampler with back-and-forth sweeps. Accuracy is "the estimated
//! log probability of the ground truth hidden sequence under the
//! approximate posterior" on held-out words.

use std::sync::Arc;
use std::time::Duration;

use incremental::CorrespondenceTranslator;
use incremental::{McmcKernel, ParticleCollection};
use inference::stats::mean;
use inference::{GibbsKernel, SweepOrder};
use models::data::typo::{train_models, TypoCorpus};
use models::hmm_model::{
    exact_first_order_traces, ground_truth_log_prob, hmm_correspondence, per_char_posterior_prob,
    FirstOrderHmmModel, SecondOrderHmmModel,
};
use ppl::handlers::simulate;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::{fmt_duration, median_duration, timed, Table};

/// Floor applied to per-position marginals inside the log metric.
const MARGINAL_FLOOR: f64 = 1e-3;

/// Configuration of the FIG9 experiment.
#[derive(Debug, Clone)]
pub struct Fig9Config {
    /// Training corpus size (paper: 29,056 words).
    pub train_words: usize,
    /// Held-out test words.
    pub test_words: usize,
    /// Per-letter typo rate of the noise channel.
    pub typo_rate: f64,
    /// RNG seed.
    pub seed: u64,
    /// Trace counts for the incremental methods (paper highlights 30).
    pub incremental_m: Vec<usize>,
    /// Back-and-forth sweep counts for the Gibbs baseline (paper: 10).
    pub gibbs_sweeps: Vec<usize>,
    /// Number of parallel Gibbs chains (matches the trace count).
    pub gibbs_chains: usize,
}

impl Default for Fig9Config {
    fn default() -> Self {
        Fig9Config {
            train_words: 29_056,
            test_words: 40,
            typo_rate: 0.15,
            seed: 1729,
            incremental_m: vec![3, 10, 30, 100],
            gibbs_sweeps: vec![1, 3, 10],
            gibbs_chains: 30,
        }
    }
}

impl Fig9Config {
    /// Smaller configuration for tests.
    pub fn quick() -> Fig9Config {
        Fig9Config {
            train_words: 4000,
            test_words: 8,
            incremental_m: vec![30],
            gibbs_sweeps: vec![2],
            gibbs_chains: 15,
            ..Fig9Config::default()
        }
    }
}

/// One point on the Figure 9 plot.
#[derive(Debug, Clone)]
pub struct Fig9Point {
    /// Method name.
    pub method: &'static str,
    /// Work parameter (traces or sweeps).
    pub work: usize,
    /// Median runtime per word.
    pub median_runtime: Duration,
    /// Mean (over test words) estimated log probability of the ground
    /// truth hidden sequence.
    pub avg_log_prob: f64,
    /// Mean per-character ground-truth posterior probability (the
    /// Section 7.3 summary statistic).
    pub avg_per_char_prob: f64,
}

/// The full experiment output.
#[derive(Debug, Clone)]
pub struct Fig9Results {
    /// All method points.
    pub points: Vec<Fig9Point>,
}

/// Runs the experiment.
///
/// # Panics
///
/// Panics on internal errors only.
pub fn run(config: &Fig9Config) -> Fig9Results {
    let train = TypoCorpus::generate(config.train_words, config.typo_rate, config.seed);
    let test = TypoCorpus::generate(config.test_words, config.typo_rate, config.seed + 1);
    let (first, second) = train_models(&train);
    let first = Arc::new(first);
    let second = Arc::new(second);

    let mut points = Vec::new();

    for &m in &config.incremental_m {
        for weights in [true, false] {
            let mut log_probs = Vec::new();
            let mut per_char = Vec::new();
            let mut runtimes = Vec::new();
            for (w, pair) in test.pairs.iter().enumerate() {
                let p_model = FirstOrderHmmModel {
                    params: Arc::clone(&first),
                    observations: pair.typed.clone(),
                };
                let q_model = SecondOrderHmmModel {
                    params: Arc::clone(&second),
                    observations: pair.typed.clone(),
                };
                let translator =
                    CorrespondenceTranslator::new(p_model.clone(), q_model, hmm_correspondence());
                let mut rng = StdRng::seed_from_u64(config.seed + 1000 + w as u64);
                let (particles, elapsed) = timed(|| {
                    let input = exact_first_order_traces(&p_model, m, &mut rng).expect("FFBS");
                    if weights {
                        incremental::infer(
                            &translator,
                            None,
                            &input,
                            &incremental::SmcConfig::translate_only(),
                            &mut rng,
                        )
                        .expect("translation succeeds")
                    } else {
                        incremental::infer_without_weights(&translator, &input, &mut rng)
                            .expect("translation succeeds")
                    }
                });
                runtimes.push(elapsed);
                log_probs.push(
                    ground_truth_log_prob(&particles, &pair.intended, MARGINAL_FLOOR)
                        .expect("non-degenerate"),
                );
                per_char.push(
                    per_char_posterior_prob(&particles, &pair.intended).expect("non-degenerate"),
                );
            }
            points.push(Fig9Point {
                method: if weights {
                    "incremental"
                } else {
                    "incremental-no-weights"
                },
                work: m,
                median_runtime: median_duration(&runtimes),
                avg_log_prob: mean(&log_probs),
                avg_per_char_prob: mean(&per_char),
            });
        }
    }

    for &sweeps in &config.gibbs_sweeps {
        let mut log_probs = Vec::new();
        let mut per_char = Vec::new();
        let mut runtimes = Vec::new();
        for (w, pair) in test.pairs.iter().enumerate() {
            let q_model = SecondOrderHmmModel {
                params: Arc::clone(&second),
                observations: pair.typed.clone(),
            };
            let kernel = GibbsKernel::with_order(q_model.clone(), SweepOrder::BackAndForth);
            let mut rng = StdRng::seed_from_u64(config.seed + 5000 + w as u64);
            let (particles, elapsed) = timed(|| {
                let mut collection = ParticleCollection::new();
                for _ in 0..config.gibbs_chains {
                    let mut chain = simulate(&q_model, &mut rng).expect("q simulates");
                    chain = kernel.steps(&chain, sweeps, &mut rng).expect("gibbs");
                    collection.push(chain, ppl::LogWeight::ONE);
                }
                collection
            });
            runtimes.push(elapsed);
            log_probs.push(
                ground_truth_log_prob(&particles, &pair.intended, MARGINAL_FLOOR)
                    .expect("non-degenerate"),
            );
            per_char
                .push(per_char_posterior_prob(&particles, &pair.intended).expect("non-degenerate"));
        }
        points.push(Fig9Point {
            method: "gibbs",
            work: sweeps,
            median_runtime: median_duration(&runtimes),
            avg_log_prob: mean(&log_probs),
            avg_per_char_prob: mean(&per_char),
        });
    }

    Fig9Results { points }
}

/// Quality check on the translated posterior for a single word — used by
/// the test suite and the example binary.
pub fn single_word_demo(seed: u64) -> (String, String, f64) {
    let train = TypoCorpus::generate(8000, 0.15, seed);
    let (first, second) = train_models(&train);
    let test = TypoCorpus::generate(1, 0.15, seed + 99);
    let pair = &test.pairs[0];
    let p_model = FirstOrderHmmModel {
        params: Arc::new(first),
        observations: pair.typed.clone(),
    };
    let q_model = SecondOrderHmmModel {
        params: Arc::new(second),
        observations: pair.typed.clone(),
    };
    let translator = CorrespondenceTranslator::new(p_model.clone(), q_model, hmm_correspondence());
    let mut rng = StdRng::seed_from_u64(seed);
    let input = exact_first_order_traces(&p_model, 30, &mut rng).expect("FFBS");
    let particles = incremental::infer(
        &translator,
        None,
        &input,
        &incremental::SmcConfig::translate_only(),
        &mut rng,
    )
    .expect("translation succeeds");
    let pc = per_char_posterior_prob(&particles, &pair.intended).expect("non-degenerate");
    (
        models::data::typo::indices_to_word(&pair.intended),
        models::data::typo::indices_to_word(&pair.typed),
        pc,
    )
}

/// Renders the results.
pub fn render(r: &Fig9Results) -> String {
    let mut table = Table::new(
        "Figure 9: typo correction — ground-truth log probability vs runtime per word",
        &[
            "method",
            "work",
            "median runtime",
            "avg log P(truth)",
            "avg per-char P(truth)",
        ],
    );
    for p in &r.points {
        table.row(&[
            p.method.into(),
            p.work.to_string(),
            fmt_duration(p.median_runtime),
            format!("{:.3}", p.avg_log_prob),
            format!("{:.3}", p.avg_per_char_prob),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_has_the_paper_shape() {
        let r = run(&Fig9Config::quick());
        let incr = r.points.iter().find(|p| p.method == "incremental").unwrap();
        let gibbs = r.points.iter().find(|p| p.method == "gibbs").unwrap();
        // Incremental is better than a couple of Gibbs sweeps, and much
        // faster.
        assert!(
            incr.avg_log_prob > gibbs.avg_log_prob,
            "incremental {} vs gibbs {}",
            incr.avg_log_prob,
            gibbs.avg_log_prob
        );
        assert!(
            incr.median_runtime < gibbs.median_runtime,
            "incremental {:?} vs gibbs {:?}",
            incr.median_runtime,
            gibbs.median_runtime
        );
        // Per-character accuracy is meaningfully high (typos are rare).
        assert!(incr.avg_per_char_prob > 0.3, "{}", incr.avg_per_char_prob);
        assert!(render(&r).contains("Figure 9"));
    }

    #[test]
    fn single_word_demo_decodes() {
        let (truth, typed, pc) = single_word_demo(3);
        assert_eq!(truth.len(), typed.len());
        assert!(pc > 0.2, "per-char prob {pc} for {typed} -> {truth}");
    }
}
