//! # benches — the experiment harness
//!
//! One module per paper artifact, each with a `run` function producing
//! structured results and a `render` function printing the table the
//! paper's figure plots:
//!
//! - [`fig1`] — the Figure 1 burglary example (bars, worked weight,
//!   end-to-end translation, exact translator error).
//! - [`fig8`] — robust regression: error vs runtime for incremental /
//!   no-weights / MCMC.
//! - [`fig9`] — HMM typo correction: ground-truth log probability vs
//!   runtime for incremental / no-weights / Gibbs.
//! - [`fig10`] — GMM hyperparameter edit: baseline vs optimized
//!   translation time as N grows.
//! - [`ablation`] — ε(R) vs sample size (Appendix B) and resampling
//!   schemes.
//!
//! Binaries `exp_fig1` … `exp_ablation` print the tables; Criterion
//! benches of the same workloads live under `benches/`.

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

pub mod ablation;
pub mod fig1;
pub mod fig10;
pub mod fig8;
pub mod fig9;
pub mod report;
pub mod smc_bench;
