//! Plain-text experiment reporting: aligned tables and CSV output.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// A rectangular results table with a title and column headers.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut line = String::new();
        for (w, h) in widths.iter().zip(&self.headers) {
            let _ = write!(line, "{h:>w$}  ");
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (w, cell) in widths.iter().zip(row) {
                let _ = write!(line, "{cell:>w$}  ");
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Renders CSV (header row first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// Formats a duration in engineering units.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.3}us", s * 1e6)
    }
}

/// Times `f`, returning its result and the elapsed wall time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Median of a sample of durations (empty → zero).
pub fn median_duration(samples: &[Duration]) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    sorted[sorted.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "value"]);
        t.row(&["x".into(), "1.5".into()]);
        t.row(&["longer".into(), "2".into()]);
        let rendered = t.render();
        assert!(rendered.contains("== demo =="));
        assert!(rendered.contains("longer"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let csv = t.to_csv();
        assert!(csv.starts_with("a,value\n"));
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn durations_format() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.000ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7.000us");
    }

    #[test]
    fn median_of_durations() {
        let ds = [
            Duration::from_millis(3),
            Duration::from_millis(1),
            Duration::from_millis(2),
        ];
        assert_eq!(median_duration(&ds), Duration::from_millis(2));
        assert_eq!(median_duration(&[]), Duration::ZERO);
    }
}
