//! BENCH_smc: the edit-sequence benchmark gate.
//!
//! A fig9-style workload — a chain model with indexed addresses
//! (`state/i`, `obs/i`), translated across a sequence of observation-model
//! edits by site-rule correspondences — timed end to end, so the
//! translate/replay hot path (trace recording, address hashing,
//! correspondence lookup, backward replay) has a committed baseline and a
//! regression gate. Results are written to `BENCH_smc.json`; the CI quick
//! mode re-runs a tiny configuration and validates the file shape so the
//! harness cannot rot.
//!
//! Workloads:
//!
//! - `serial_edit_sequence` — [`incremental::run_sequence`] over the whole
//!   edit chain (the Section 4.2 "Multiple Steps" regime), single
//!   threaded: a pure measurement of the translate/replay hot path.
//! - `parallel_edit_sequence` — the same chain stepped with
//!   [`incremental::translate_parallel`], measuring the parallel
//!   translation path (thread startup or worker-pool dispatch plus the
//!   same per-particle hot path).
//! - `incremental_flat_edit_sequence` — the same edit history as a
//!   *parsed* chain program driven through the depgraph runtime's
//!   flat-trace interop ([`depgraph::run_edit_sequence`]): every stage
//!   rebuilds each particle's execution graph from its trace and
//!   flattens it back, O(M·|t|) per stage.
//! - `incremental_graph_edit_sequence` — the graph-native runner
//!   ([`depgraph::run_edit_sequence_graph`]): particles *are* execution
//!   graphs, carried across all stages; each stage propagates the edit
//!   directly, O(M·K) for an edit touching K records.
//! - `incremental_graph_pooled_edit_sequence` — the graph-native runner
//!   on the persistent worker pool
//!   ([`depgraph::run_edit_sequence_parallel_with_policy`]).
//!
//! All three `incremental_*` workloads must produce bit-identical
//! checksums (the edits reuse every random choice, so no fresh
//! randomness is drawn and representation/threading cannot change the
//! weights) — the tests and the CI smoke validation pin this down.
//!
//! The harness also runs a *scaling sweep* ([`run_scaling`]): per-step
//! translation cost as a function of chain length for a **fixed-size
//! edit** (one trailing observation edited, the latent chain untouched).
//! Flat-trace interop grows linearly in the chain length; the
//! graph-native path should stay near-constant — the Figure 9/10
//! asymptotic claim, committed as numbers.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use depgraph::{
    edit_chain_shared, lift_collection, run_edit_sequence, run_edit_sequence_graph,
    run_edit_sequence_parallel_with_policy, ExecGraph,
};
use incremental::{
    run_sequence, run_state_sequence_with_policy, translate_parallel, Correspondence,
    CorrespondenceTranslator, FailurePolicy, MetricsRecorder, ParticleCollection, SmcConfig, Stage,
    StateTranslator,
};
use ppl::ast::Program;
use ppl::dist::Dist;
use ppl::handlers::simulate;
use ppl::{addr, parse, Handler, PplError, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the BENCH_smc workload.
#[derive(Debug, Clone)]
pub struct SmcBenchConfig {
    /// Number of chained latent sites (`state/0 … state/N-1`).
    pub chain_len: usize,
    /// Particles in the collection threaded through the sequence.
    pub particles: usize,
    /// Number of edit steps (stages) in the program sequence.
    pub steps: usize,
    /// Worker threads for the parallel workload.
    pub threads: usize,
    /// Timed repetitions per workload (median reported).
    pub repeats: usize,
    /// RNG seed.
    pub seed: u64,
    /// Chain lengths measured by the fixed-size-edit scaling sweep.
    pub scaling_sizes: Vec<usize>,
}

impl Default for SmcBenchConfig {
    fn default() -> Self {
        SmcBenchConfig {
            chain_len: 48,
            particles: 1200,
            steps: 8,
            threads: 4,
            repeats: 5,
            seed: 1729,
            scaling_sizes: vec![16, 64, 256, 1024],
        }
    }
}

impl SmcBenchConfig {
    /// Tiny configuration for CI smoke runs and tests.
    pub fn quick() -> SmcBenchConfig {
        SmcBenchConfig {
            chain_len: 6,
            particles: 40,
            steps: 3,
            threads: 2,
            repeats: 2,
            seed: 1729,
            scaling_sizes: vec![4, 8],
        }
    }
}

/// Timings of one workload.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Workload name.
    pub name: String,
    /// Wall time of the untimed warm-up iteration run before the
    /// repetitions. The warm-up populates process-wide caches (address
    /// interner, arena capacity pools, worker-pool threads), so the timed
    /// repetitions measure steady state rather than cold start.
    pub warmup_ms: f64,
    /// Per-repetition wall times in milliseconds (excludes the warm-up).
    pub runs_ms: Vec<f64>,
    /// A checksum of the final collection (total log weight sum), so two
    /// runs of the same binary can be checked for identical output.
    pub checksum: f64,
}

impl WorkloadResult {
    /// Median of the repetition times.
    pub fn median_ms(&self) -> f64 {
        let mut sorted = self.runs_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        if sorted.is_empty() {
            return 0.0;
        }
        sorted[sorted.len() / 2]
    }

    /// Minimum repetition time (least-noise estimate).
    pub fn min_ms(&self) -> f64 {
        self.runs_ms.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// A full harness run: configuration plus one result per workload.
#[derive(Debug, Clone)]
pub struct SmcBenchReport {
    /// Label identifying the build being measured (e.g. `seed-baseline`).
    pub label: String,
    /// The configuration measured.
    pub config: SmcBenchConfig,
    /// Per-workload results.
    pub results: Vec<WorkloadResult>,
    /// The fixed-size-edit scaling sweep ([`run_scaling`]).
    pub scaling: Vec<ScalingPoint>,
}

/// The chain model family: `state/i ~ flip(p(state/i-1))` with one
/// observation per site whose strength is the edit knob. Editing
/// `obs_strength` changes every observation's density but no structure,
/// so the whole latent chain is reused through the site-rule
/// correspondence — the translate/replay hot path does all the work.
fn chain_model(
    n: usize,
    obs_strength: f64,
) -> impl Fn(&mut dyn Handler) -> Result<Value, PplError> + Clone + Send + Sync {
    move |h: &mut dyn Handler| {
        let mut prev = true;
        for i in 0..n {
            let p = if prev { 0.7 } else { 0.3 };
            let x = h.sample(addr!["state", i], Dist::flip(p))?.truthy()?;
            let po = if x { obs_strength } else { 1.0 - obs_strength };
            h.observe(addr!["obs", i], Dist::flip(po), Value::Bool(true))?;
            prev = x;
        }
        Ok(Value::Bool(prev))
    }
}

type ChainModel = Box<dyn Fn(&mut dyn Handler) -> Result<Value, PplError> + Send + Sync>;

/// Observation strength of stage `s` (stage 0 is the uninformative
/// starting program, so prior simulations are posterior samples of it).
fn stage_strength(step: usize) -> f64 {
    0.5 + 0.03 * step as f64
}

fn build_translators(
    config: &SmcBenchConfig,
) -> Vec<CorrespondenceTranslator<ChainModel, ChainModel>> {
    (0..config.steps)
        .map(|s| {
            let p: ChainModel = Box::new(chain_model(config.chain_len, stage_strength(s)));
            let q: ChainModel = Box::new(chain_model(config.chain_len, stage_strength(s + 1)));
            CorrespondenceTranslator::new(p, q, Correspondence::identity_on(["state"]))
        })
        .collect()
}

fn initial_particles(config: &SmcBenchConfig) -> ParticleCollection {
    let model = chain_model(config.chain_len, stage_strength(0));
    let mut rng = StdRng::seed_from_u64(config.seed);
    let traces: Vec<_> = (0..config.particles)
        .map(|_| simulate(&model, &mut rng).expect("chain model simulates"))
        .collect();
    ParticleCollection::from_traces(traces)
}

/// The same chain family as [`chain_model`], but as *surface syntax*, so
/// it can drive the depgraph runtime. Editing `strength` rewrites every
/// observation — the fig9-style whole-chain edit.
fn chain_source(n: usize, strength: f64) -> String {
    let lo = 1.0 - strength;
    format!(
        "n = {n}; prev = 1;\n\
         for i in [0..n) {{\n\
           x = flip(prev ? 0.7 : 0.3) @ x;\n\
           observe(flip(x ? {strength} : {lo}) @ o == 1);\n\
           prev = x;\n\
         }}\n\
         return prev;"
    )
}

/// Chain family for the scaling sweep: the latent chain is identical
/// across stages and only the strength of the single trailing
/// observation is edited, so an incremental stage revisits O(1)
/// statements regardless of `n` while flat-trace interop still pays
/// O(n) per particle.
fn chain_source_fixed_edit(n: usize, strength: f64) -> String {
    let lo = 1.0 - strength;
    format!(
        "n = {n}; prev = 1;\n\
         for i in [0..n) {{ x = flip(prev ? 0.7 : 0.3) @ x; prev = x; }}\n\
         observe(flip(prev ? {strength} : {lo}) @ o == 1);\n\
         return prev;"
    )
}

/// Parses the edit history `source(len, strength(0)) → ... →
/// source(len, strength(steps))`.
fn parsed_chain(source: impl Fn(usize, f64) -> String, len: usize, steps: usize) -> Vec<Program> {
    (0..=steps)
        .map(|s| parse(&source(len, stage_strength(s))).expect("chain source parses"))
        .collect()
}

/// Prior simulations of `programs[0]` (whose observations are
/// uninformative at `stage_strength(0)`, so they are posterior samples).
fn parsed_initial(programs: &[Program], particles: usize, seed: u64) -> ParticleCollection {
    let mut rng = StdRng::seed_from_u64(seed);
    let traces: Vec<_> = (0..particles)
        .map(|_| simulate(&programs[0], &mut rng).expect("chain program simulates"))
        .collect();
    ParticleCollection::from_traces(traces)
}

fn collection_checksum<S>(collection: &ParticleCollection<S>) -> f64 {
    collection
        .iter()
        .map(|p| p.log_weight.log())
        .filter(|w| w.is_finite())
        .sum()
}

/// Runs `body` once as a warm-up (timed separately, not counted as a
/// repetition), then `repeats` timed repetitions. `body(rep)` returns the
/// final-collection checksum; the last repetition's checksum is reported.
fn measure(repeats: usize, mut body: impl FnMut(usize) -> f64) -> (f64, Vec<f64>, f64) {
    let start = Instant::now();
    let mut checksum = body(0);
    let warmup_ms = start.elapsed().as_secs_f64() * 1e3;
    let mut runs_ms = Vec::with_capacity(repeats);
    for rep in 0..repeats {
        let start = Instant::now();
        checksum = body(rep);
        runs_ms.push(start.elapsed().as_secs_f64() * 1e3);
    }
    (warmup_ms, runs_ms, checksum)
}

/// Runs the full harness: every workload, `repeats` times each.
pub fn run(config: &SmcBenchConfig, label: &str) -> SmcBenchReport {
    let translators = build_translators(config);
    let initial = initial_particles(config);

    let mut results = Vec::new();

    // Workload 1: serial edit sequence (the translate/replay hot path).
    {
        let stages: Vec<Stage<'_>> = translators
            .iter()
            .map(|t| Stage {
                translator: t,
                mcmc: None,
            })
            .collect();
        let (warmup_ms, runs_ms, checksum) = measure(config.repeats, |rep| {
            let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5e17 ^ rep as u64);
            let run = run_sequence(&stages, &initial, &SmcConfig::translate_only(), &mut rng)
                .expect("serial sequence runs");
            collection_checksum(run.last())
        });
        results.push(WorkloadResult {
            name: "serial_edit_sequence".to_string(),
            warmup_ms,
            runs_ms,
            checksum,
        });
    }

    // Workload 2: the same sequence stepped through parallel translation.
    {
        let (warmup_ms, runs_ms, checksum) = measure(config.repeats, |_rep| {
            let mut current = initial.clone();
            for (step, translator) in translators.iter().enumerate() {
                current = translate_parallel(
                    translator,
                    &current,
                    config.seed.wrapping_add(step as u64),
                    config.threads,
                )
                .expect("parallel translation runs");
            }
            collection_checksum(&current)
        });
        results.push(WorkloadResult {
            name: "parallel_edit_sequence".to_string(),
            warmup_ms,
            runs_ms,
            checksum,
        });
    }

    // Workloads 3–5: the same edit history as a parsed program, driven
    // through the depgraph runtime — flat-trace interop vs. graph-native
    // particles (serial and pooled). The edits reuse every random
    // choice, so all three must produce bit-identical checksums.
    let programs = parsed_chain(chain_source, config.chain_len, config.steps);
    let parsed = parsed_initial(&programs, config.particles, config.seed);
    let smc = SmcConfig::translate_only();

    {
        let (warmup_ms, runs_ms, checksum) = measure(config.repeats, |rep| {
            let mut rng = StdRng::seed_from_u64(config.seed ^ 0x11a7 ^ rep as u64);
            let run =
                run_edit_sequence(&programs, &parsed, &smc, &FailurePolicy::FailFast, &mut rng)
                    .expect("flat incremental sequence runs");
            collection_checksum(run.last())
        });
        results.push(WorkloadResult {
            name: "incremental_flat_edit_sequence".to_string(),
            warmup_ms,
            runs_ms,
            checksum,
        });
    }

    {
        let (warmup_ms, runs_ms, checksum) = measure(config.repeats, |rep| {
            let mut rng = StdRng::seed_from_u64(config.seed ^ 0x11a7 ^ rep as u64);
            let run = run_edit_sequence_graph(
                &programs,
                &parsed,
                &smc,
                &FailurePolicy::FailFast,
                &mut rng,
            )
            .expect("graph-native sequence runs");
            collection_checksum(run.last())
        });
        results.push(WorkloadResult {
            name: "incremental_graph_edit_sequence".to_string(),
            warmup_ms,
            runs_ms,
            checksum,
        });
    }

    {
        let (warmup_ms, runs_ms, checksum) = measure(config.repeats, |rep| {
            let mut rng = StdRng::seed_from_u64(config.seed ^ 0x11a7 ^ rep as u64);
            let run = run_edit_sequence_parallel_with_policy(
                &programs,
                &parsed,
                &smc,
                &FailurePolicy::FailFast,
                config.seed,
                config.threads,
                &mut rng,
            )
            .expect("pooled graph-native sequence runs");
            collection_checksum(run.last())
        });
        results.push(WorkloadResult {
            name: "incremental_graph_pooled_edit_sequence".to_string(),
            warmup_ms,
            runs_ms,
            checksum,
        });
    }

    SmcBenchReport {
        label: label.to_string(),
        config: config.clone(),
        results,
        scaling: run_scaling(config),
    }
}

/// One point of the fixed-size-edit scaling sweep: per-step translation
/// cost at chain length [`chain_len`](ScalingPoint::chain_len), for the
/// flat-trace interop path and the graph-native path (minimum over
/// `repeats`, graph lift excluded from the timer — it is paid once at
/// the entry boundary, not per stage).
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Number of latent sites in the chain.
    pub chain_len: usize,
    /// Per-step cost of [`depgraph::run_edit_sequence`] (flat interop).
    pub flat_ms_per_step: f64,
    /// Per-step cost of the graph-native stage loop.
    pub graph_ms_per_step: f64,
    /// Final-collection checksum of the flat run.
    pub checksum_flat: f64,
    /// Final-collection checksum of the graph run (must equal the flat
    /// one bit-for-bit).
    pub checksum_graph: f64,
    /// Statement records visited per stage by the graph-native run
    /// (propagation counters from an untimed metrics-enabled run).
    /// Constant across chain lengths for a fixed-size edit — the
    /// Figure 9/10 claim as an integer, not a wall time.
    pub nodes_visited_per_step: u64,
    /// Statement records skipped per stage by the graph-native run.
    /// Grows with the chain: skipping is how the run stays O(K).
    pub nodes_skipped_per_step: u64,
    /// Whole `for`/`while` records skipped per stage without entering
    /// the body (subset of the skips).
    pub loop_skips_per_step: u64,
}

/// Runs the fixed-size-edit scaling sweep over
/// [`SmcBenchConfig::scaling_sizes`]: each stage edits only the single
/// trailing observation, so graph-native per-step cost should stay
/// near-constant as the chain grows while flat interop grows linearly.
/// Uses at most 64 particles — the sweep measures per-particle per-step
/// asymptotics, not throughput.
pub fn run_scaling(config: &SmcBenchConfig) -> Vec<ScalingPoint> {
    let particles = config.particles.min(64);
    let smc = SmcConfig::translate_only();
    config
        .scaling_sizes
        .iter()
        .map(|&n| {
            let programs = parsed_chain(chain_source_fixed_edit, n, config.steps);
            let initial = parsed_initial(&programs, particles, config.seed);

            let mut flat_ms = f64::INFINITY;
            let mut checksum_flat = 0.0;
            for rep in 0..config.repeats {
                let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5ca1 ^ rep as u64);
                let start = Instant::now();
                let run = run_edit_sequence(
                    &programs,
                    &initial,
                    &smc,
                    &FailurePolicy::FailFast,
                    &mut rng,
                )
                .expect("flat scaling run");
                flat_ms = flat_ms.min(start.elapsed().as_secs_f64() * 1e3);
                checksum_flat = collection_checksum(run.last());
            }

            // Graph-native: lift once outside the timer, then time only
            // the stage loop.
            let shared: Vec<Arc<Program>> = programs.iter().cloned().map(Arc::new).collect();
            let chain = edit_chain_shared(&shared);
            let lifted = lift_collection(&shared[0], &initial).expect("lift scaling particles");
            let stages: Vec<&dyn StateTranslator<Arc<ExecGraph>>> = chain
                .iter()
                .map(|t| t as &dyn StateTranslator<Arc<ExecGraph>>)
                .collect();
            let mut graph_ms = f64::INFINITY;
            let mut checksum_graph = 0.0;
            for rep in 0..config.repeats {
                let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5ca1 ^ rep as u64);
                let start = Instant::now();
                let run = run_state_sequence_with_policy(
                    &stages,
                    &lifted,
                    &smc,
                    &FailurePolicy::FailFast,
                    &mut rng,
                )
                .expect("graph scaling run");
                graph_ms = graph_ms.min(start.elapsed().as_secs_f64() * 1e3);
                checksum_graph = collection_checksum(run.last());
            }

            // One extra untimed graph-native run with metrics enabled:
            // the propagation counters land in the committed report, so
            // the O(1) fixed-size-edit claim is checkable as exact
            // integers, not just as noisy wall times.
            let recorder = Arc::new(MetricsRecorder::new());
            let counters = {
                let _guard = incremental::metrics::install(Arc::clone(&recorder) as _);
                let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5ca1);
                run_state_sequence_with_policy(
                    &stages,
                    &lifted,
                    &smc,
                    &FailurePolicy::FailFast,
                    &mut rng,
                )
                .expect("metrics scaling run");
                recorder.report("scaling").total_propagation()
            };

            let steps = config.steps.max(1) as f64;
            let steps_u = config.steps.max(1) as u64;
            ScalingPoint {
                chain_len: n,
                flat_ms_per_step: flat_ms / steps,
                graph_ms_per_step: graph_ms / steps,
                checksum_flat,
                checksum_graph,
                nodes_visited_per_step: counters.nodes_visited / steps_u,
                nodes_skipped_per_step: counters.nodes_skipped / steps_u,
                loop_skips_per_step: counters.loop_skips / steps_u,
            }
        })
        .collect()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl SmcBenchReport {
    /// Renders the report as a `BENCH_smc.json` document (schema
    /// `bench-smc/v1`): one entry per measured build, so baseline and
    /// post-change runs can live side by side in the committed file.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"bench-smc/v1\",\n");
        out.push_str(
            "  \"workload\": \"fig9-style edit-sequence (chain model, site-rule correspondence)\",\n",
        );
        out.push_str("  \"entries\": [\n");
        out.push_str(&self.entry_json("    "));
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Renders just this run's entry object (used when merging several
    /// runs into one committed file).
    pub fn entry_json(&self, indent: &str) -> String {
        let c = &self.config;
        let mut out = String::new();
        let _ = write!(
            out,
            "{indent}{{\n{indent}  \"label\": \"{}\",\n",
            json_escape(&self.label)
        );
        let sizes: Vec<String> = c.scaling_sizes.iter().map(|n| n.to_string()).collect();
        let _ = writeln!(
            out,
            "{indent}  \"config\": {{\"chain_len\": {}, \"particles\": {}, \"steps\": {}, \"threads\": {}, \"repeats\": {}, \"seed\": {}, \"scaling_sizes\": [{}]}},",
            c.chain_len, c.particles, c.steps, c.threads, c.repeats, c.seed, sizes.join(", ")
        );
        let _ = writeln!(out, "{indent}  \"results\": [");
        for (i, r) in self.results.iter().enumerate() {
            let runs: Vec<String> = r.runs_ms.iter().map(|t| format!("{t:.3}")).collect();
            let _ = writeln!(
                out,
                "{indent}    {{\"name\": \"{}\", \"median_ms\": {:.3}, \"min_ms\": {:.3}, \"warmup_ms\": {:.3}, \"runs_ms\": [{}], \"checksum\": {:.6}}}{}",
                json_escape(&r.name),
                r.median_ms(),
                r.min_ms(),
                r.warmup_ms,
                runs.join(", "),
                r.checksum,
                if i + 1 < self.results.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "{indent}  ],");
        let _ = writeln!(out, "{indent}  \"scaling\": [");
        for (i, s) in self.scaling.iter().enumerate() {
            let _ = writeln!(
                out,
                "{indent}    {{\"chain_len\": {}, \"flat_ms_per_step\": {:.3}, \"graph_ms_per_step\": {:.3}, \"checksum_flat\": {:.6}, \"checksum_graph\": {:.6}, \"nodes_visited_per_step\": {}, \"nodes_skipped_per_step\": {}, \"loop_skips_per_step\": {}}}{}",
                s.chain_len,
                s.flat_ms_per_step,
                s.graph_ms_per_step,
                s.checksum_flat,
                s.checksum_graph,
                s.nodes_visited_per_step,
                s.nodes_skipped_per_step,
                s.loop_skips_per_step,
                if i + 1 < self.scaling.len() { "," } else { "" }
            );
        }
        let _ = write!(out, "{indent}  ]\n{indent}}}");
        out
    }

    /// Renders a human-readable summary table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== BENCH_smc [{}] chain_len={} particles={} steps={} threads={} ==",
            self.label,
            self.config.chain_len,
            self.config.particles,
            self.config.steps,
            self.config.threads
        );
        for r in &self.results {
            let _ = writeln!(
                out,
                "  {:>38}  median {:>9.3} ms  min {:>9.3} ms  warmup {:>9.3} ms",
                r.name,
                r.median_ms(),
                r.min_ms(),
                r.warmup_ms
            );
        }
        if !self.scaling.is_empty() {
            let _ = writeln!(out, "  fixed-size-edit scaling (per-step cost):");
            for s in &self.scaling {
                let _ = writeln!(
                    out,
                    "    chain_len {:>5}  flat {:>9.3} ms/step  graph {:>9.3} ms/step  visited {:>6}/step  skipped {:>8}/step",
                    s.chain_len,
                    s.flat_ms_per_step,
                    s.graph_ms_per_step,
                    s.nodes_visited_per_step,
                    s.nodes_skipped_per_step
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_all_workloads_and_valid_json() {
        let report = run(&SmcBenchConfig::quick(), "test");
        assert_eq!(report.results.len(), 5);
        for r in &report.results {
            assert_eq!(r.runs_ms.len(), 2);
            assert!(r.runs_ms.iter().all(|t| *t >= 0.0));
            assert!(r.warmup_ms >= 0.0);
            assert!(r.checksum.is_finite());
        }
        assert!(report.to_json().contains("\"warmup_ms\""));
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"bench-smc/v1\""));
        assert!(json.contains("serial_edit_sequence"));
        assert!(json.contains("parallel_edit_sequence"));
        assert!(json.contains("incremental_flat_edit_sequence"));
        assert!(json.contains("incremental_graph_edit_sequence"));
        assert!(json.contains("incremental_graph_pooled_edit_sequence"));
        assert!(json.contains("\"scaling\""));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn incremental_workloads_agree_bitwise() {
        // Flat interop, graph-native, and pooled graph-native are three
        // routes through the same translation — representation and
        // threading must not change the weights.
        let report = run(&SmcBenchConfig::quick(), "test");
        let checksum = |name: &str| {
            report
                .results
                .iter()
                .find(|r| r.name == name)
                .unwrap_or_else(|| panic!("missing workload {name}"))
                .checksum
        };
        let flat = checksum("incremental_flat_edit_sequence");
        assert_eq!(
            flat.to_bits(),
            checksum("incremental_graph_edit_sequence").to_bits()
        );
        assert_eq!(
            flat.to_bits(),
            checksum("incremental_graph_pooled_edit_sequence").to_bits()
        );
    }

    #[test]
    fn scaling_sweep_covers_configured_sizes_with_identical_checksums() {
        let config = SmcBenchConfig::quick();
        let points = run_scaling(&config);
        assert_eq!(points.len(), config.scaling_sizes.len());
        for (point, &n) in points.iter().zip(&config.scaling_sizes) {
            assert_eq!(point.chain_len, n);
            assert!(point.flat_ms_per_step > 0.0);
            assert!(point.graph_ms_per_step > 0.0);
            assert_eq!(
                point.checksum_flat.to_bits(),
                point.checksum_graph.to_bits()
            );
        }
        // The O(1) fixed-size-edit claim as integers: the latent chain is
        // skipped as one whole-loop record, so the visit count is the
        // same at every chain length.
        assert!(points.iter().all(|p| p.nodes_visited_per_step > 0));
        assert!(points.iter().all(|p| p.loop_skips_per_step > 0));
        assert!(
            points
                .windows(2)
                .all(|w| w[0].nodes_visited_per_step == w[1].nodes_visited_per_step),
            "nodes_visited_per_step should not depend on chain_len: {points:?}"
        );
    }

    #[test]
    fn workloads_are_deterministic_per_build() {
        let a = run(&SmcBenchConfig::quick(), "a");
        let b = run(&SmcBenchConfig::quick(), "b");
        for (x, y) in a.results.iter().zip(b.results.iter()) {
            assert_eq!(x.checksum.to_bits(), y.checksum.to_bits(), "{}", x.name);
        }
    }
}
