//! BENCH_smc: the edit-sequence benchmark gate.
//!
//! A fig9-style workload — a chain model with indexed addresses
//! (`state/i`, `obs/i`), translated across a sequence of observation-model
//! edits by site-rule correspondences — timed end to end, so the
//! translate/replay hot path (trace recording, address hashing,
//! correspondence lookup, backward replay) has a committed baseline and a
//! regression gate. Results are written to `BENCH_smc.json`; the CI quick
//! mode re-runs a tiny configuration and validates the file shape so the
//! harness cannot rot.
//!
//! Workloads:
//!
//! - `serial_edit_sequence` — [`incremental::run_sequence`] over the whole
//!   edit chain (the Section 4.2 "Multiple Steps" regime), single
//!   threaded: a pure measurement of the translate/replay hot path.
//! - `parallel_edit_sequence` — the same chain stepped with
//!   [`incremental::translate_parallel`], measuring the parallel
//!   translation path (thread startup or worker-pool dispatch plus the
//!   same per-particle hot path).

use std::fmt::Write as _;
use std::time::Instant;

use incremental::{
    run_sequence, translate_parallel, Correspondence, CorrespondenceTranslator, ParticleCollection,
    SmcConfig, Stage,
};
use ppl::dist::Dist;
use ppl::handlers::simulate;
use ppl::{addr, Handler, PplError, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the BENCH_smc workload.
#[derive(Debug, Clone)]
pub struct SmcBenchConfig {
    /// Number of chained latent sites (`state/0 … state/N-1`).
    pub chain_len: usize,
    /// Particles in the collection threaded through the sequence.
    pub particles: usize,
    /// Number of edit steps (stages) in the program sequence.
    pub steps: usize,
    /// Worker threads for the parallel workload.
    pub threads: usize,
    /// Timed repetitions per workload (median reported).
    pub repeats: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SmcBenchConfig {
    fn default() -> Self {
        SmcBenchConfig {
            chain_len: 48,
            particles: 1200,
            steps: 8,
            threads: 4,
            repeats: 5,
            seed: 1729,
        }
    }
}

impl SmcBenchConfig {
    /// Tiny configuration for CI smoke runs and tests.
    pub fn quick() -> SmcBenchConfig {
        SmcBenchConfig {
            chain_len: 6,
            particles: 40,
            steps: 3,
            threads: 2,
            repeats: 2,
            seed: 1729,
        }
    }
}

/// Timings of one workload.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Workload name.
    pub name: String,
    /// Per-repetition wall times in milliseconds.
    pub runs_ms: Vec<f64>,
    /// A checksum of the final collection (total log weight sum), so two
    /// runs of the same binary can be checked for identical output.
    pub checksum: f64,
}

impl WorkloadResult {
    /// Median of the repetition times.
    pub fn median_ms(&self) -> f64 {
        let mut sorted = self.runs_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        if sorted.is_empty() {
            return 0.0;
        }
        sorted[sorted.len() / 2]
    }

    /// Minimum repetition time (least-noise estimate).
    pub fn min_ms(&self) -> f64 {
        self.runs_ms.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// A full harness run: configuration plus one result per workload.
#[derive(Debug, Clone)]
pub struct SmcBenchReport {
    /// Label identifying the build being measured (e.g. `seed-baseline`).
    pub label: String,
    /// The configuration measured.
    pub config: SmcBenchConfig,
    /// Per-workload results.
    pub results: Vec<WorkloadResult>,
}

/// The chain model family: `state/i ~ flip(p(state/i-1))` with one
/// observation per site whose strength is the edit knob. Editing
/// `obs_strength` changes every observation's density but no structure,
/// so the whole latent chain is reused through the site-rule
/// correspondence — the translate/replay hot path does all the work.
fn chain_model(
    n: usize,
    obs_strength: f64,
) -> impl Fn(&mut dyn Handler) -> Result<Value, PplError> + Clone + Send + Sync {
    move |h: &mut dyn Handler| {
        let mut prev = true;
        for i in 0..n {
            let p = if prev { 0.7 } else { 0.3 };
            let x = h.sample(addr!["state", i], Dist::flip(p))?.truthy()?;
            let po = if x { obs_strength } else { 1.0 - obs_strength };
            h.observe(addr!["obs", i], Dist::flip(po), Value::Bool(true))?;
            prev = x;
        }
        Ok(Value::Bool(prev))
    }
}

type ChainModel = Box<dyn Fn(&mut dyn Handler) -> Result<Value, PplError> + Send + Sync>;

/// Observation strength of stage `s` (stage 0 is the uninformative
/// starting program, so prior simulations are posterior samples of it).
fn stage_strength(step: usize) -> f64 {
    0.5 + 0.03 * step as f64
}

fn build_translators(
    config: &SmcBenchConfig,
) -> Vec<CorrespondenceTranslator<ChainModel, ChainModel>> {
    (0..config.steps)
        .map(|s| {
            let p: ChainModel = Box::new(chain_model(config.chain_len, stage_strength(s)));
            let q: ChainModel = Box::new(chain_model(config.chain_len, stage_strength(s + 1)));
            CorrespondenceTranslator::new(p, q, Correspondence::identity_on(["state"]))
        })
        .collect()
}

fn initial_particles(config: &SmcBenchConfig) -> ParticleCollection {
    let model = chain_model(config.chain_len, stage_strength(0));
    let mut rng = StdRng::seed_from_u64(config.seed);
    let traces: Vec<_> = (0..config.particles)
        .map(|_| simulate(&model, &mut rng).expect("chain model simulates"))
        .collect();
    ParticleCollection::from_traces(traces)
}

fn collection_checksum(collection: &ParticleCollection) -> f64 {
    collection
        .iter()
        .map(|p| p.log_weight.log())
        .filter(|w| w.is_finite())
        .sum()
}

/// Runs the full harness: every workload, `repeats` times each.
pub fn run(config: &SmcBenchConfig, label: &str) -> SmcBenchReport {
    let translators = build_translators(config);
    let initial = initial_particles(config);

    let mut results = Vec::new();

    // Workload 1: serial edit sequence (the translate/replay hot path).
    {
        let stages: Vec<Stage<'_>> = translators
            .iter()
            .map(|t| Stage {
                translator: t,
                mcmc: None,
            })
            .collect();
        let mut runs_ms = Vec::with_capacity(config.repeats);
        let mut checksum = 0.0;
        for rep in 0..config.repeats {
            let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5e17 ^ rep as u64);
            let start = Instant::now();
            let run = run_sequence(&stages, &initial, &SmcConfig::translate_only(), &mut rng)
                .expect("serial sequence runs");
            runs_ms.push(start.elapsed().as_secs_f64() * 1e3);
            checksum = collection_checksum(run.last());
        }
        results.push(WorkloadResult {
            name: "serial_edit_sequence".to_string(),
            runs_ms,
            checksum,
        });
    }

    // Workload 2: the same sequence stepped through parallel translation.
    {
        let mut runs_ms = Vec::with_capacity(config.repeats);
        let mut checksum = 0.0;
        for _ in 0..config.repeats {
            let start = Instant::now();
            let mut current = initial.clone();
            for (step, translator) in translators.iter().enumerate() {
                current = translate_parallel(
                    translator,
                    &current,
                    config.seed.wrapping_add(step as u64),
                    config.threads,
                )
                .expect("parallel translation runs");
            }
            runs_ms.push(start.elapsed().as_secs_f64() * 1e3);
            checksum = collection_checksum(&current);
        }
        results.push(WorkloadResult {
            name: "parallel_edit_sequence".to_string(),
            runs_ms,
            checksum,
        });
    }

    SmcBenchReport {
        label: label.to_string(),
        config: config.clone(),
        results,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl SmcBenchReport {
    /// Renders the report as a `BENCH_smc.json` document (schema
    /// `bench-smc/v1`): one entry per measured build, so baseline and
    /// post-change runs can live side by side in the committed file.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"bench-smc/v1\",\n");
        out.push_str(
            "  \"workload\": \"fig9-style edit-sequence (chain model, site-rule correspondence)\",\n",
        );
        out.push_str("  \"entries\": [\n");
        out.push_str(&self.entry_json("    "));
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Renders just this run's entry object (used when merging several
    /// runs into one committed file).
    pub fn entry_json(&self, indent: &str) -> String {
        let c = &self.config;
        let mut out = String::new();
        let _ = write!(
            out,
            "{indent}{{\n{indent}  \"label\": \"{}\",\n",
            json_escape(&self.label)
        );
        let _ = writeln!(
            out,
            "{indent}  \"config\": {{\"chain_len\": {}, \"particles\": {}, \"steps\": {}, \"threads\": {}, \"repeats\": {}, \"seed\": {}}},",
            c.chain_len, c.particles, c.steps, c.threads, c.repeats, c.seed
        );
        let _ = writeln!(out, "{indent}  \"results\": [");
        for (i, r) in self.results.iter().enumerate() {
            let runs: Vec<String> = r.runs_ms.iter().map(|t| format!("{t:.3}")).collect();
            let _ = writeln!(
                out,
                "{indent}    {{\"name\": \"{}\", \"median_ms\": {:.3}, \"min_ms\": {:.3}, \"runs_ms\": [{}], \"checksum\": {:.6}}}{}",
                json_escape(&r.name),
                r.median_ms(),
                r.min_ms(),
                runs.join(", "),
                r.checksum,
                if i + 1 < self.results.len() { "," } else { "" }
            );
        }
        let _ = write!(out, "{indent}  ]\n{indent}}}");
        out
    }

    /// Renders a human-readable summary table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== BENCH_smc [{}] chain_len={} particles={} steps={} threads={} ==",
            self.label,
            self.config.chain_len,
            self.config.particles,
            self.config.steps,
            self.config.threads
        );
        for r in &self.results {
            let _ = writeln!(
                out,
                "  {:>26}  median {:>9.3} ms  min {:>9.3} ms",
                r.name,
                r.median_ms(),
                r.min_ms()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_all_workloads_and_valid_json() {
        let report = run(&SmcBenchConfig::quick(), "test");
        assert_eq!(report.results.len(), 2);
        for r in &report.results {
            assert_eq!(r.runs_ms.len(), 2);
            assert!(r.runs_ms.iter().all(|t| *t >= 0.0));
            assert!(r.checksum.is_finite());
        }
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"bench-smc/v1\""));
        assert!(json.contains("serial_edit_sequence"));
        assert!(json.contains("parallel_edit_sequence"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn workloads_are_deterministic_per_build() {
        let a = run(&SmcBenchConfig::quick(), "a");
        let b = run(&SmcBenchConfig::quick(), "b");
        for (x, y) in a.results.iter().zip(b.results.iter()) {
            assert_eq!(x.checksum.to_bits(), y.checksum.to_bits(), "{}", x.name);
        }
    }
}
