//! # ppl-cli — command-line front end
//!
//! Drives the workspace from program *source text*:
//!
//! ```text
//! ppl check <file> [--deny-warnings]    # parse + static diagnostics
//! ppl analyze <old> <new> [--json]      # static diff-impact slice of an edit
//! ppl fmt <file>                        # canonical pretty-printed form
//! ppl run <file> [--seed N]             # simulate one trace
//! ppl enumerate <file> [--limit N]      # exact posterior (finite discrete)
//! ppl sample <file> --steps N [--seed]  # single-site MH over the posterior
//! ppl translate <p> <q> [--traces M]    # incremental inference across an edit
//! ppl sequence <p0> <p1> [<p2> ...]     # graph-native SMC across an edit history
//! ```
//!
//! All command logic lives here as functions from source text to rendered
//! output, so it is directly unit-testable; `main.rs` only handles files
//! and argument plumbing.

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use depgraph::{
    diff_programs, impact_of_edit, program_fingerprint, resume_collection,
    run_edit_sequence_parallel_with_policy, run_edit_sequence_supervised, ExecGraph,
    IncrementalTranslator,
};
use incremental::{
    collection_checksum, Checkpoint, CheckpointError, FailurePolicy, McmcKernel, MetricsRecorder,
    ParticleCollection, SmcConfig, SmcError, StageObserver, StagePolicy, StageSnapshot,
};
use inference::{ExactPosterior, SingleSiteMh};
use ppl::ast::Program;
use ppl::check::{check_with_spans, Severity};
use ppl::handlers::simulate;
use ppl::{parse, parse_with_spans, Enumeration, PplError, Trace, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parses and statically checks a program; renders the diagnostics with
/// source spans and stable codes (`PPL001`, …).
///
/// Exits non-zero when the program has findings: any `error`-severity
/// diagnostic fails the check, and with `deny_warnings` so does any
/// warning (for CI lint gates).
///
/// # Errors
///
/// Returns parse errors and failed checks, both with exit code 1; the
/// rendered diagnostics ride in the error message.
pub fn cmd_check(source: &str, deny_warnings: bool) -> Result<String, CliError> {
    let (program, spans) = parse_with_spans(source).map_err(CliError::from)?;
    let diagnostics = check_with_spans(&program, Some(&spans));
    if diagnostics.is_empty() {
        return Ok("no issues found\n".to_string());
    }
    let mut out = String::new();
    for d in &diagnostics {
        let _ = writeln!(out, "{d}");
    }
    let errors = diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diagnostics.len() - errors;
    let _ = writeln!(out, "{errors} error(s), {warnings} warning(s)");
    if errors > 0 || (deny_warnings && warnings > 0) {
        if errors == 0 {
            let _ = writeln!(out, "check failed: warnings denied (--deny-warnings)");
        }
        return Err(CliError::usage(out.trim_end().to_string()));
    }
    Ok(out)
}

/// Renders a JSON string literal (escaping quotes, backslashes, and
/// control characters).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a JSON array of strings from any string iterator.
fn json_string_array<'a>(items: impl Iterator<Item = &'a str>) -> String {
    let rendered: Vec<String> = items.map(json_string).collect();
    format!("[{}]", rendered.join(", "))
}

/// Static diff-impact analysis across a program edit: diffs the two
/// programs, infers per-statement effects of the new program, and
/// computes the over-approximate impact slice — which statements any
/// execution could revisit under the edit and which variables may go
/// dirty. Statements outside the slice are proven skippable, so this
/// predicts (without running anything) how much work the incremental
/// runtime can statically pre-prune.
///
/// With `json`, emits a versioned machine-readable report
/// (`ppl-analyze/v1`) instead of the human table.
///
/// # Errors
///
/// Returns parse errors.
pub fn cmd_analyze(old_source: &str, new_source: &str, json: bool) -> Result<String, PplError> {
    let p = parse(old_source)?;
    let q = parse(new_source)?;
    let edit = diff_programs(&p, &q);
    let (effects, impact) = impact_of_edit(&q, &p, &edit);
    let mut out = String::new();
    if json {
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": \"ppl-analyze/v1\",");
        let _ = writeln!(out, "  \"statements\": {},", impact.total);
        let _ = writeln!(out, "  \"impacted\": {},", impact.impacted.len());
        let _ = writeln!(out, "  \"skippable\": {},", impact.skippable_count());
        let _ = writeln!(
            out,
            "  \"may_dirty\": {},",
            json_string_array(impact.may_dirty.iter().map(String::as_str))
        );
        let _ = writeln!(
            out,
            "  \"sites\": {},",
            json_string_array(impact.sites.iter().map(String::as_str))
        );
        let _ = writeln!(out, "  \"stmts\": [");
        for (i, facts) in effects.stmts.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"index\": {}, \"depth\": {}, \"label\": {}, \
                 \"impacted\": {}, \"reads\": {}, \"writes\": {}, \"samples\": {}}}{}",
                facts.index,
                facts.depth,
                json_string(&facts.label),
                impact.contains(facts.index),
                json_string_array(facts.subtree.reads.iter().map(String::as_str)),
                json_string_array(facts.subtree.writes.iter().map(String::as_str)),
                json_string_array(facts.subtree.samples.iter().map(String::as_str)),
                if i + 1 < effects.stmts.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        return Ok(out);
    }
    let _ = writeln!(
        out,
        "impact slice: {} of {} statement(s) impacted, {} proven skippable",
        impact.impacted.len(),
        impact.total,
        impact.skippable_count()
    );
    for facts in &effects.stmts {
        let verdict = if impact.contains(facts.index) {
            "impacted "
        } else {
            "skippable"
        };
        let _ = writeln!(
            out,
            "  #{:<3} {}{:<24} {}  reads={{{}}} writes={{{}}}",
            facts.index,
            "  ".repeat(facts.depth),
            facts.label,
            verdict,
            facts
                .subtree
                .reads
                .iter()
                .cloned()
                .collect::<Vec<_>>()
                .join(", "),
            facts
                .subtree
                .writes
                .iter()
                .cloned()
                .collect::<Vec<_>>()
                .join(", "),
        );
    }
    let dirty: Vec<&str> = impact.may_dirty.iter().map(String::as_str).collect();
    let sites: Vec<&str> = impact.sites.iter().map(String::as_str).collect();
    let _ = writeln!(out, "may-dirty variables: {{{}}}", dirty.join(", "));
    let _ = writeln!(out, "revisited sites: {{{}}}", sites.join(", "));
    Ok(out)
}

/// Pretty-prints a program in canonical form (explicit site labels).
///
/// # Errors
///
/// Returns parse errors.
pub fn cmd_fmt(source: &str) -> Result<String, PplError> {
    Ok(parse(source)?.to_string())
}

/// Simulates one trace and renders it.
///
/// # Errors
///
/// Returns parse and evaluation errors.
pub fn cmd_run(source: &str, seed: u64) -> Result<String, PplError> {
    let program = parse(source)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let trace = simulate(&program, &mut rng)?;
    Ok(trace.to_string())
}

/// Simulates one trace and serializes its choices in the
/// [`ppl::trace_io`] format (for `ppl run --save`).
///
/// # Errors
///
/// Returns parse and evaluation errors.
pub fn cmd_run_save(source: &str, seed: u64) -> Result<String, PplError> {
    let program = parse(source)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let trace = simulate(&program, &mut rng)?;
    Ok(ppl::trace_io::write_choice_map(&trace.to_choice_map()))
}

/// Runs single-site MH and serializes thinned chain states as a weighted
/// collection (for `ppl sample --save`; unit weights).
///
/// # Errors
///
/// Returns parse and evaluation errors.
pub fn cmd_sample_save(
    source: &str,
    steps: usize,
    keep: usize,
    seed: u64,
) -> Result<String, PplError> {
    let program = parse(source)?;
    let kernel = SingleSiteMh::new(program.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = simulate(&program, &mut rng)?;
    let thin = (steps / keep.max(1)).max(1);
    let mut entries = Vec::with_capacity(keep);
    for i in 0..steps {
        trace = kernel.step(&trace, &mut rng)?;
        if (i + 1) % thin == 0 && entries.len() < keep {
            entries.push((trace.to_choice_map(), 0.0));
        }
    }
    Ok(ppl::trace_io::write_weighted_collection(&entries))
}

/// Translates *saved* traces (the `trace_io` collection format) of `P`
/// into weighted traces of `Q`, rendering estimates (for
/// `ppl translate --load`).
///
/// # Errors
///
/// Returns parse, deserialization, replay, and translation errors.
pub fn cmd_translate_saved(
    p_source: &str,
    q_source: &str,
    saved: &str,
    seed: u64,
) -> Result<String, PplError> {
    let p = parse(p_source)?;
    let q = parse(q_source)?;
    let translator = IncrementalTranslator::from_edit(p.clone(), q);
    let mut rng = StdRng::seed_from_u64(seed);
    let entries = ppl::trace_io::parse_weighted_collection(saved)?;
    let mut particles = ParticleCollection::new();
    for (map, log_weight) in &entries {
        // Replay against P to rebuild full traces (re-validating them).
        let trace = ppl::handlers::score(&p, map)?;
        particles.push(trace, ppl::LogWeight::from_log(*log_weight));
    }
    let adapted = incremental::infer(
        &translator,
        None,
        &particles,
        &SmcConfig::translate_only(),
        &mut rng,
    )?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "loaded {} traces; translated; ESS = {:.1}",
        entries.len(),
        adapted.ess()
    );
    let mut rows: Vec<(Value, f64)> = Vec::new();
    let weights = adapted.normalized_weights()?;
    for (particle, w) in adapted.iter().zip(weights) {
        if let Some(v) = particle.trace.return_value() {
            match rows.iter_mut().find(|(u, _)| u.num_eq(v)) {
                Some(slot) => slot.1 += w,
                None => rows.push((v.clone(), w)),
            }
        }
    }
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let _ = writeln!(out, "weighted posterior over Q's return values:");
    for (value, prob) in rows.into_iter().take(20) {
        let _ = writeln!(out, "  {value} : {prob:.4}");
    }
    Ok(out)
}

/// Exactly enumerates a finite discrete program: normalizing constant and
/// the posterior over return values.
///
/// # Errors
///
/// Returns parse/enumeration errors (e.g. continuous choices).
pub fn cmd_enumerate(source: &str, limit: usize) -> Result<String, PplError> {
    let program = parse(source)?;
    let enumeration = Enumeration::run_with_limit(&program, limit)?;
    let mut out = String::new();
    let _ = writeln!(out, "traces: {}", enumeration.traces().len());
    let _ = writeln!(out, "Z = {:.6}", enumeration.z());
    let _ = writeln!(out, "posterior over return values:");
    let mut rows = enumeration.return_distribution();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    for (value, prob) in rows {
        let _ = writeln!(out, "  {value} : {prob:.6}");
    }
    Ok(out)
}

/// Runs single-site MH and renders the empirical return-value
/// distribution.
///
/// # Errors
///
/// Returns parse and evaluation errors.
pub fn cmd_sample(source: &str, steps: usize, seed: u64) -> Result<String, PplError> {
    let program = parse(source)?;
    let kernel = SingleSiteMh::new(program.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = simulate(&program, &mut rng)?;
    let burn_in = steps / 5;
    let mut counts: Vec<(Value, usize)> = Vec::new();
    for i in 0..steps {
        trace = kernel.step(&trace, &mut rng)?;
        if i >= burn_in {
            if let Some(v) = trace.return_value() {
                match counts.iter_mut().find(|(u, _)| u.num_eq(v)) {
                    Some(slot) => slot.1 += 1,
                    None => counts.push((v.clone(), 1)),
                }
            }
        }
    }
    let kept = (steps - burn_in).max(1);
    counts.sort_by_key(|(_, count)| std::cmp::Reverse(*count));
    let mut out = String::new();
    let _ = writeln!(out, "{steps} MH steps ({burn_in} burn-in); return values:");
    for (value, count) in counts.into_iter().take(20) {
        let _ = writeln!(out, "  {value} : {:.4}", count as f64 / kept as f64);
    }
    Ok(out)
}

/// Parses a `--policy` argument: `fail-fast`, `drop:<max_loss>` (e.g.
/// `drop:0.1`), or `retry:<attempts>[:<seed>]` (e.g. `retry:3` or
/// `retry:3:42`).
///
/// # Errors
///
/// Returns an error describing the expected grammar on a malformed spec.
pub fn parse_policy(spec: &str) -> Result<FailurePolicy, PplError> {
    let bad = |msg: &str| {
        PplError::Other(format!(
            "invalid --policy `{spec}`: {msg} \
             (expected `fail-fast`, `drop:<max_loss>`, or `retry:<attempts>[:<seed>]`)"
        ))
    };
    let mut parts = spec.split(':');
    match parts.next() {
        Some("fail-fast") => match parts.next() {
            None => Ok(FailurePolicy::FailFast),
            Some(_) => Err(bad("fail-fast takes no parameter")),
        },
        Some("drop") => {
            let max_loss: f64 = parts
                .next()
                .ok_or_else(|| bad("drop needs a loss fraction"))?
                .parse()
                .map_err(|_| bad("loss fraction must be a number"))?;
            if !(0.0..=1.0).contains(&max_loss) {
                return Err(bad("loss fraction must be in [0, 1]"));
            }
            match parts.next() {
                None => Ok(FailurePolicy::DropAndRenormalize { max_loss }),
                Some(_) => Err(bad("drop takes one parameter")),
            }
        }
        Some("retry") => {
            let max_attempts: usize = parts
                .next()
                .ok_or_else(|| bad("retry needs an attempt count"))?
                .parse()
                .map_err(|_| bad("attempt count must be an integer"))?;
            if max_attempts == 0 {
                return Err(bad("attempt count must be at least 1"));
            }
            let seed: u64 = match parts.next() {
                None => 0,
                Some(s) => s.parse().map_err(|_| bad("seed must be an integer"))?,
            };
            match parts.next() {
                None => Ok(FailurePolicy::Retry { max_attempts, seed }),
                Some(_) => Err(bad("retry takes at most two parameters")),
            }
        }
        _ => Err(bad("unknown policy")),
    }
}

/// Incremental inference across a program edit: derives the
/// correspondence by diffing, obtains posterior traces of `P` (exactly
/// when enumerable, otherwise by thinned MH), translates them under the
/// given [`FailurePolicy`], and renders the weighted return-value
/// estimate for `Q` plus diagnostics — including the step's health
/// report (ESS, quarantined/retried particles, collapse events).
///
/// # Errors
///
/// Returns parse, inference, and translation errors (typed SMC errors
/// flattened to [`PplError`]).
pub fn cmd_translate(
    p_source: &str,
    q_source: &str,
    traces: usize,
    seed: u64,
    policy: &FailurePolicy,
) -> Result<String, PplError> {
    let p = parse(p_source)?;
    let q = parse(q_source)?;
    let translator = IncrementalTranslator::from_edit(p.clone(), q.clone());
    let mut rng = StdRng::seed_from_u64(seed);

    let mut out = String::new();
    let _ = writeln!(out, "derived correspondence (Q site -> P site):");
    let mut rules: Vec<_> = translator
        .edit()
        .correspondence
        .site_rules()
        .map(|(a, b)| format!("  {a} -> {b}"))
        .collect();
    rules.sort();
    for r in &rules {
        let _ = writeln!(out, "{r}");
    }
    if rules.is_empty() {
        let _ = writeln!(out, "  (none)");
    }

    let input = posterior_traces(&p, traces, &mut rng, &mut out)?;

    let particles = ParticleCollection::from_traces(input);
    let (adapted, report) = incremental::infer_with_policy(
        &translator,
        None,
        &particles,
        &SmcConfig::translate_only(),
        policy,
        0,
        &mut rng,
    )
    .map_err(PplError::from)?;
    let _ = writeln!(
        out,
        "translated {} traces; ESS = {:.1}",
        adapted.len(),
        adapted.ess()
    );
    let _ = writeln!(out, "health: {report}");
    for failure in &report.failures {
        let _ = writeln!(out, "  quarantined: {failure}");
    }
    render_return_posterior(&mut out, &adapted)?;
    Ok(out)
}

/// Draws `traces` posterior samples of `p` — exact when the program is
/// finite discrete, otherwise a thinned single-site MH chain — noting
/// which sampler was used in `out`.
fn posterior_traces(
    p: &Program,
    traces: usize,
    rng: &mut StdRng,
    out: &mut String,
) -> Result<Vec<Trace>, PplError> {
    match ExactPosterior::new(p) {
        Ok(sampler) => {
            let _ = writeln!(out, "P posterior: exact (by enumeration)");
            Ok(sampler.samples(traces, rng))
        }
        Err(_) => {
            let _ = writeln!(out, "P posterior: single-site MH (thinned chain)");
            let kernel = SingleSiteMh::new(p.clone());
            let mut chain = simulate(p, rng)?;
            let thin = 10;
            for _ in 0..50 * thin {
                chain = kernel.step(&chain, rng)?; // burn-in
            }
            let mut collected = Vec::with_capacity(traces);
            while collected.len() < traces {
                for _ in 0..thin {
                    chain = kernel.step(&chain, rng)?;
                }
                collected.push(chain.clone());
            }
            Ok(collected)
        }
    }
}

/// Appends the weighted posterior over return values (top 20 rows).
fn render_return_posterior(
    out: &mut String,
    collection: &ParticleCollection,
) -> Result<(), PplError> {
    let _ = writeln!(out, "weighted posterior over Q's return values:");
    let mut rows: Vec<(Value, f64)> = Vec::new();
    let weights = collection.normalized_weights()?;
    for (particle, w) in collection.iter().zip(weights) {
        if let Some(v) = particle.trace.return_value() {
            match rows.iter_mut().find(|(u, _)| u.num_eq(v)) {
                Some(slot) => slot.1 += w,
                None => rows.push((v.clone(), w)),
            }
        }
    }
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    for (value, prob) in rows.into_iter().take(20) {
        let _ = writeln!(out, "  {value} : {prob:.4}");
    }
    Ok(())
}

/// Graph-native SMC across a whole edit history: samples the posterior
/// of the first program, lifts the particles into execution graphs once,
/// then propagates the *graphs* through every edit on the persistent
/// worker pool ([`depgraph::run_edit_sequence_parallel_with_policy`]).
/// Per-particle randomness derives from `seed`, so the output is
/// bit-identical for any `threads` value; particles are flattened back
/// to traces only here, at the output boundary.
///
/// # Errors
///
/// Returns parse, evaluation, and SMC runtime errors.
pub fn cmd_sequence(
    sources: &[String],
    traces: usize,
    seed: u64,
    threads: usize,
    policy: &FailurePolicy,
) -> Result<String, PplError> {
    let programs: Vec<Program> = sources.iter().map(|s| parse(s)).collect::<Result<_, _>>()?;
    if programs.len() < 2 {
        return Err(PplError::Other(
            "sequence needs at least two programs".to_string(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "edit history: {} programs, {} stages",
        programs.len(),
        programs.len() - 1
    );
    let input = posterior_traces(&programs[0], traces, &mut rng, &mut out)?;
    let particles = ParticleCollection::from_traces(input);
    let run = run_edit_sequence_parallel_with_policy(
        &programs,
        &particles,
        &SmcConfig::translate_only(),
        policy,
        seed,
        threads.max(1),
        &mut rng,
    )
    .map_err(PplError::from)?;
    for (step, (ess, report)) in run.ess_history.iter().zip(&run.reports).enumerate() {
        let _ = writeln!(out, "stage {step}: ESS = {ess:.1}; health: {report}");
        for failure in &report.failures {
            let _ = writeln!(out, "  quarantined: {failure}");
        }
    }
    let flat = run.last().flatten()?;
    render_return_posterior(&mut out, &flat)?;
    Ok(out)
}

/// A CLI-level error: a rendered message plus the process exit code it
/// maps to, so callers (and scripts around the `ppl` binary) can tell
/// inference failures from I/O problems.
///
/// Exit codes: `1` usage/parse/evaluation errors, `2` inference failures
/// (particle collapse, fail-fast particle errors, excessive drop loss),
/// `3` I/O and checkpoint errors.
#[derive(Debug)]
pub struct CliError {
    /// The message printed to stderr.
    pub message: String,
    /// The process exit code (1, 2, or 3).
    pub code: u8,
}

impl CliError {
    /// A usage / parse / evaluation error (exit code 1).
    pub fn usage(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
            code: 1,
        }
    }

    /// An I/O error (exit code 3).
    pub fn io(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
            code: 3,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl From<String> for CliError {
    fn from(message: String) -> CliError {
        CliError::usage(message)
    }
}

impl From<PplError> for CliError {
    fn from(e: PplError) -> CliError {
        CliError::usage(e.to_string())
    }
}

impl From<CheckpointError> for CliError {
    fn from(e: CheckpointError) -> CliError {
        CliError::io(e.to_string())
    }
}

impl From<SmcError> for CliError {
    fn from(e: SmcError) -> CliError {
        let code = match &e {
            SmcError::Particle(_) | SmcError::TooManyDropped { .. } | SmcError::Collapse { .. } => {
                2
            }
            _ => 1,
        };
        CliError {
            message: e.to_string(),
            code,
        }
    }
}

/// Options for [`cmd_sequence_supervised`] beyond the program sources.
#[derive(Debug, Clone)]
pub struct SequenceOpts {
    /// Number of posterior traces of the first program to start from.
    pub traces: usize,
    /// Base seed; all per-stage randomness derives from it.
    pub seed: u64,
    /// Worker-pool width (1 = serial).
    pub threads: usize,
    /// Per-particle failure policy.
    pub policy: FailurePolicy,
    /// Watchdog deadline per translation batch, in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Directory for durable checkpoints (`--checkpoint`).
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint every N completed stages (`--checkpoint-every`).
    pub checkpoint_every: usize,
    /// Resume from the latest checkpoint in `checkpoint_dir` (`--resume`).
    pub resume: bool,
    /// Write a `metrics/v1` JSON report here (`--metrics-out`).
    pub metrics_out: Option<PathBuf>,
    /// Particles per worker task (`--chunk-size`; `None` = automatic).
    /// Output is identical for every value.
    pub chunk_size: Option<usize>,
}

impl Default for SequenceOpts {
    fn default() -> SequenceOpts {
        SequenceOpts {
            traces: 1_000,
            seed: 0,
            threads: 1,
            policy: FailurePolicy::FailFast,
            deadline_ms: None,
            checkpoint_dir: None,
            checkpoint_every: 1,
            resume: false,
            metrics_out: None,
            chunk_size: None,
        }
    }
}

/// Appends one `stage N: ...` line (plus quarantine details) per report.
fn render_stage_reports(out: &mut String, ess: &[f64], reports: &[incremental::StepReport]) {
    for (step, (ess, report)) in ess.iter().zip(reports).enumerate() {
        let _ = writeln!(out, "stage {step}: ESS = {ess:.1}; health: {report}");
        for failure in &report.failures {
            let _ = writeln!(out, "  quarantined: {failure}");
        }
    }
}

/// Writes the `metrics/v1` JSON report to `path` and appends the human
/// summary table to `out`.
fn emit_metrics(
    path: &std::path::Path,
    recorder: &MetricsRecorder,
    out: &mut String,
) -> Result<(), CliError> {
    let report = recorder.report("sequence");
    std::fs::write(path, report.to_json()).map_err(|e| CliError {
        message: format!("cannot write metrics to {}: {e}", path.display()),
        code: 3,
    })?;
    out.push_str(&report.render());
    let _ = writeln!(out, "metrics written to {}", path.display());
    Ok(())
}

/// Flattens a trace collection to the weighted choice-map entries used by
/// both the checkpoint format and [`collection_checksum`].
fn collection_entries(collection: &ParticleCollection) -> Vec<(ppl::ChoiceMap, f64)> {
    collection
        .iter()
        .map(|p| (p.trace.to_choice_map(), p.log_weight.log()))
        .collect()
}

/// Crash-safe variant of [`cmd_sequence`]: graph-native SMC across an
/// edit history with optional durable checkpoints, watchdog deadlines,
/// and resume-from-checkpoint.
///
/// With `--checkpoint <dir>`, every `checkpoint_every`-th stage boundary
/// (and the final one) is written atomically to `dir`; with `resume`,
/// the run restarts from the latest checkpoint found there — validating
/// its checksum and program fingerprint — and continues bit-identically
/// to an uninterrupted run. The final line reports a checksum of the
/// flattened output collection so interrupted-and-resumed runs can be
/// compared against uninterrupted references.
///
/// # Errors
///
/// [`CliError`] carrying the exit code: parse/eval errors (1), inference
/// failures (2), checkpoint/I/O errors (3).
pub fn cmd_sequence_supervised(
    sources: &[String],
    opts: &SequenceOpts,
) -> Result<String, CliError> {
    let programs: Vec<Program> = sources
        .iter()
        .map(|s| parse(s))
        .collect::<Result<_, _>>()
        .map_err(CliError::from)?;
    if programs.len() < 2 {
        return Err(CliError::usage("sequence needs at least two programs"));
    }
    if opts.resume && opts.checkpoint_dir.is_none() {
        return Err(CliError::usage("--resume needs --checkpoint <dir>"));
    }
    let n_stages = programs.len() - 1;
    // Install before any work so the recorder sees every stage; the guard
    // keeps collection enabled (and other metrics runs excluded) until
    // this command returns.
    let metrics = opts.metrics_out.as_ref().map(|path| {
        let recorder = Arc::new(MetricsRecorder::new());
        let guard = incremental::metrics::install(Arc::clone(&recorder) as _);
        (path, recorder, guard)
    });
    let mut out = String::new();
    let _ = writeln!(
        out,
        "edit history: {} programs, {n_stages} stages",
        programs.len()
    );

    let resumed = match (&opts.checkpoint_dir, opts.resume) {
        (Some(dir), true) => Checkpoint::latest_in(dir)?,
        _ => None,
    };
    let (collection, base_seed, start_step, prior_ess, prior_reports) = match &resumed {
        Some((path, ck)) => {
            let _ = writeln!(
                out,
                "resumed from {} ({} of {n_stages} stages complete)",
                path.display(),
                ck.step
            );
            let collection = resume_collection(&programs, ck)?;
            (
                collection,
                ck.base_seed,
                ck.step,
                ck.ess_history.clone(),
                ck.reports.clone(),
            )
        }
        None => {
            if opts.resume {
                let _ = writeln!(out, "no checkpoint found; starting from stage 0");
            }
            let mut rng = StdRng::seed_from_u64(opts.seed);
            let input = posterior_traces(&programs[0], opts.traces, &mut rng, &mut out)
                .map_err(CliError::from)?;
            (
                ParticleCollection::from_traces(input),
                opts.seed,
                0,
                Vec::new(),
                Vec::new(),
            )
        }
    };

    if start_step >= n_stages {
        // The checkpoint already covers the whole sequence.
        render_stage_reports(&mut out, &prior_ess, &prior_reports);
        let _ = writeln!(out, "all {n_stages} stages already complete");
        render_return_posterior(&mut out, &collection).map_err(CliError::from)?;
        let entries = collection_entries(&collection);
        let _ = writeln!(
            out,
            "final collection checksum: {:016x}",
            collection_checksum(&entries)
        );
        if let Some((path, recorder, _guard)) = &metrics {
            emit_metrics(path, recorder, &mut out)?;
        }
        return Ok(out);
    }

    let mut stage_policy = StagePolicy::checkpoint_every(if opts.checkpoint_dir.is_some() {
        opts.checkpoint_every.max(1)
    } else {
        0
    });
    if let Some(ms) = opts.deadline_ms {
        stage_policy = stage_policy.with_deadline(Duration::from_millis(ms));
    }

    let fingerprints: Vec<u64> = programs.iter().map(program_fingerprint).collect();
    let mut ck_err: Option<CheckpointError> = None;
    let run_result = {
        let mut saver;
        let observer: Option<&mut StageObserver<'_, Arc<ExecGraph>>> = match &opts.checkpoint_dir {
            Some(dir) => {
                saver = |snap: &StageSnapshot<'_, Arc<ExecGraph>>| -> Result<(), SmcError> {
                    let ck = Checkpoint::from_snapshot(snap, base_seed, fingerprints[snap.step])
                        .map_err(SmcError::Eval)?;
                    if let Err(e) = ck.save(dir) {
                        let msg = e.to_string();
                        ck_err = Some(e);
                        return Err(SmcError::Internal(format!(
                            "checkpoint write failed: {msg}"
                        )));
                    }
                    Ok(())
                };
                Some(&mut saver)
            }
            None => None,
        };
        run_edit_sequence_supervised(
            &programs,
            &collection,
            start_step,
            &prior_ess,
            &prior_reports,
            &SmcConfig::translate_only().with_chunk_size(opts.chunk_size),
            &opts.policy,
            &stage_policy,
            base_seed,
            opts.threads.max(1),
            observer,
        )
    };
    let run = match run_result {
        Ok(run) => run,
        Err(e) => {
            // A checkpoint-write failure surfaces as an I/O error (exit 3),
            // not as the Internal error it rode through the runner on.
            if let Some(ck) = ck_err {
                return Err(CliError::from(ck));
            }
            return Err(CliError::from(e));
        }
    };

    render_stage_reports(&mut out, &run.ess_history, &run.reports);
    let flat = run.last().flatten().map_err(CliError::from)?;
    render_return_posterior(&mut out, &flat).map_err(CliError::from)?;
    let entries = collection_entries(&flat);
    let _ = writeln!(
        out,
        "final collection checksum: {:016x}",
        collection_checksum(&entries)
    );
    if let Some((path, recorder, _guard)) = &metrics {
        emit_metrics(path, recorder, &mut out)?;
    }
    Ok(out)
}

/// Builds and translates through the dependency graph, reporting the
/// visit statistics — the `--stats` mode of `translate`.
///
/// # Errors
///
/// Returns parse, evaluation, and translation errors.
pub fn cmd_translate_stats(p_source: &str, q_source: &str, seed: u64) -> Result<String, PplError> {
    let p = parse(p_source)?;
    let q = parse(q_source)?;
    let translator = IncrementalTranslator::from_edit(p.clone(), q);
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = ExecGraph::simulate(&p, &mut rng)?;
    graph.warm_index();
    let result = translator.translate_graph(&graph, &mut rng)?;
    let mut out = String::new();
    let _ = writeln!(out, "trace size: {} choices", graph.num_choices());
    let _ = writeln!(
        out,
        "visited {} statement instances, skipped {}",
        result.stats.visited, result.stats.skipped
    );
    let _ = writeln!(out, "log weight: {:.6}", result.log_weight.log());
    Ok(out)
}

/// Renders usage help.
pub fn usage() -> String {
    "usage: ppl <command> [args]\n\
     commands:\n\
       check <file> [--deny-warnings]       parse and statically check (spans +\n\
                                            stable codes; exit 1 on errors, or on\n\
                                            warnings under --deny-warnings)\n\
       analyze <old> <new> [--json]         static diff-impact slice of an edit\n\
                                            (--json: versioned ppl-analyze/v1 report)\n\
       fmt <file>                           canonical pretty-printed form\n\
       run <file> [--seed N] [--save F]     simulate one trace\n\
       enumerate <file> [--limit N]         exact posterior (finite discrete)\n\
       sample <file> --steps N [--seed N] [--save F --keep K]\n\
                                            single-site MH\n\
       translate <p> <q> [--traces M] [--seed N] [--policy P] [--stats] [--load F]\n\
                                            incremental inference across an edit\n\
                                            (P: fail-fast | drop:<max_loss> | retry:<n>[:<seed>])\n\
       sequence <p0> <p1> [<p2> ...] [--traces M] [--seed N] [--threads T] [--policy P]\n\
                [--checkpoint DIR] [--checkpoint-every N] [--deadline-ms N] [--resume]\n\
                [--metrics-out FILE] [--chunk-size K] [--verify-slices]\n\
                                            graph-native SMC across an edit history;\n\
                                            output is identical for any --threads\n\
                                            and any --chunk-size (particles per\n\
                                            worker task; default: auto).\n\
                                            --checkpoint writes durable stage snapshots,\n\
                                            --resume restarts from the latest one,\n\
                                            --deadline-ms supervises hung translations,\n\
                                            --metrics-out writes a metrics/v1 JSON report\n\
                                            (propagation counters, stage timings, pool stats),\n\
                                            --verify-slices checks every dynamically visited\n\
                                            statement against the static impact slice\n\
     exit codes: 0 ok, 1 usage/parse/eval error, 2 inference failure, 3 I/O error\n"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    const COIN: &str = "x = flip(0.3) @ x; observe(flip(x ? 0.9 : 0.1) @ o == 1); return x;";

    #[test]
    fn check_reports_clean_and_dirty() {
        assert_eq!(cmd_check(COIN, false).unwrap(), "no issues found\n");
        // Errors carry a span and a stable code, and fail the command.
        let err = cmd_check("y = ghost; return y;", false).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("error[PPL001]"), "{}", err.message);
        assert!(err.message.contains("1:1: "), "{}", err.message);
        assert!(err.message.contains("1 error(s)"), "{}", err.message);
        assert!(cmd_check("x = ;", false).is_err());
    }

    #[test]
    fn check_denies_warnings_only_when_asked() {
        // `w` is assigned but never read: PPL010, a warning.
        let dusty = "w = 1; x = flip(0.5) @ x; return x;";
        let out = cmd_check(dusty, false).unwrap();
        assert!(out.contains("warning[PPL010]"), "{out}");
        assert!(out.contains("0 error(s), 1 warning(s)"), "{out}");
        let err = cmd_check(dusty, true).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("warnings denied"), "{}", err.message);
    }

    #[test]
    fn analyze_renders_the_impact_slice() {
        let p = "a = 1; b = flip(a / 3) @ b; c = flip(0.5) @ c; return b;";
        let q = "a = 2; b = flip(a / 3) @ b; c = flip(0.5) @ c; return b;";
        let out = cmd_analyze(p, q, false).unwrap();
        assert!(
            out.contains("2 of 3 statement(s) impacted, 1 proven skippable"),
            "{out}"
        );
        assert!(out.contains("a = …"), "{out}");
        assert!(out.contains("skippable"), "{out}");
        assert!(out.contains("may-dirty variables: {a, b}"), "{out}");
    }

    #[test]
    fn analyze_json_is_versioned_and_structured() {
        let p = "a = 1; b = flip(a / 3) @ b; c = flip(0.5) @ c; return b;";
        let q = "a = 2; b = flip(a / 3) @ b; c = flip(0.5) @ c; return b;";
        let out = cmd_analyze(p, q, true).unwrap();
        assert!(out.contains("\"schema\": \"ppl-analyze/v1\""), "{out}");
        assert!(out.contains("\"statements\": 3"), "{out}");
        assert!(out.contains("\"impacted\": 2"), "{out}");
        assert!(out.contains("\"skippable\": 1"), "{out}");
        assert!(out.contains("\"sites\": [\"b\"]"), "{out}");
        // An identity edit impacts nothing.
        let same = cmd_analyze(p, p, true).unwrap();
        assert!(same.contains("\"impacted\": 0"), "{same}");
        assert!(same.contains("\"skippable\": 3"), "{same}");
    }

    #[test]
    fn fmt_is_canonical() {
        let out = cmd_fmt("x=flip(0.3)@x;return x;").unwrap();
        assert!(out.contains("x = flip(0.3) @ \"x\";"), "{out}");
        // Idempotent.
        assert_eq!(cmd_fmt(&out).unwrap(), out);
    }

    #[test]
    fn run_prints_a_trace() {
        let out = cmd_run(COIN, 1).unwrap();
        assert!(out.contains("x ->"), "{out}");
        assert!(out.contains("return"), "{out}");
    }

    #[test]
    fn enumerate_prints_z_and_distribution() {
        let out = cmd_enumerate(COIN, 10_000).unwrap();
        assert!(out.contains("Z = 0.34"), "{out}"); // 0.3*0.9 + 0.7*0.1
        assert!(out.contains("posterior over return values"), "{out}");
        // Continuous programs are rejected.
        assert!(cmd_enumerate("x = gauss(0.0, 1.0); return x;", 100).is_err());
    }

    #[test]
    fn sample_matches_enumeration() {
        let out = cmd_sample(COIN, 40_000, 3).unwrap();
        // exact posterior P(x=1) = 0.27 / 0.34 ≈ 0.794
        let line = out
            .lines()
            .find(|l| l.trim_start().starts_with("true"))
            .expect("true row");
        let freq: f64 = line.split(':').nth(1).unwrap().trim().parse().unwrap();
        assert!((freq - 0.794).abs() < 0.02, "{out}");
    }

    #[test]
    fn translate_reports_correspondence_and_estimate() {
        let q = "x = flip(0.3) @ x; observe(flip(x ? 0.99 : 0.01) @ o == 1); return x;";
        let out = cmd_translate(COIN, q, 20_000, 4, &FailurePolicy::FailFast).unwrap();
        assert!(out.contains("health:"), "{out}");
        assert!(out.contains("x -> x"), "{out}");
        assert!(out.contains("exact (by enumeration)"), "{out}");
        let line = out
            .lines()
            .find(|l| l.trim_start().starts_with("true"))
            .expect("true row");
        let freq: f64 = line.split(':').nth(1).unwrap().trim().parse().unwrap();
        // exact for Q: 0.3*0.99 / (0.3*0.99 + 0.7*0.01) ≈ 0.977
        assert!((freq - 0.977).abs() < 0.02, "{out}");
    }

    #[test]
    fn translate_falls_back_to_mh_for_continuous_p() {
        let p = "m = gauss(0.0, 2.0) @ m; observe(gauss(m, 1.0) @ o == 1.5); return m;";
        let q = "m = gauss(0.0, 2.0) @ m; observe(gauss(m, 0.5) @ o == 1.5); return m;";
        let out = cmd_translate(p, q, 50, 5, &FailurePolicy::FailFast).unwrap();
        assert!(out.contains("single-site MH"), "{out}");
        assert!(out.contains("ESS"), "{out}");
    }

    #[test]
    fn translate_stats_shows_visits() {
        let p = "a = 1; b = flip(a / 3) @ b; c = flip(0.5) @ c; return b;";
        let q = "a = 2; b = flip(a / 3) @ b; c = flip(0.5) @ c; return b;";
        let out = cmd_translate_stats(p, q, 6).unwrap();
        assert!(out.contains("visited"), "{out}");
        assert!(out.contains("log weight"), "{out}");
    }

    #[test]
    fn sequence_runs_graph_native_end_to_end() {
        let mid = "x = flip(0.3) @ x; observe(flip(x ? 0.95 : 0.05) @ o == 1); return x;";
        let last = "x = flip(0.3) @ x; observe(flip(x ? 0.99 : 0.01) @ o == 1); return x;";
        let sources = [COIN.to_string(), mid.to_string(), last.to_string()];
        let out = cmd_sequence(&sources, 20_000, 4, 1, &FailurePolicy::FailFast).unwrap();
        assert!(out.contains("3 programs, 2 stages"), "{out}");
        assert!(out.contains("stage 0: ESS"), "{out}");
        assert!(out.contains("stage 1: ESS"), "{out}");
        let line = out
            .lines()
            .find(|l| l.trim_start().starts_with("true"))
            .expect("true row");
        let freq: f64 = line.split(':').nth(1).unwrap().trim().parse().unwrap();
        // exact for the final program: 0.3*0.99 / (0.3*0.99 + 0.7*0.01) ≈ 0.977
        assert!((freq - 0.977).abs() < 0.02, "{out}");
    }

    #[test]
    fn sequence_output_is_identical_for_any_thread_count() {
        let mid = "x = flip(0.3) @ x; observe(flip(x ? 0.95 : 0.05) @ o == 1); return x;";
        let sources = [COIN.to_string(), mid.to_string()];
        let serial = cmd_sequence(&sources, 2_000, 7, 1, &FailurePolicy::FailFast).unwrap();
        let pooled = cmd_sequence(&sources, 2_000, 7, 4, &FailurePolicy::FailFast).unwrap();
        assert_eq!(serial, pooled);
    }

    #[test]
    fn sequence_rejects_a_single_program() {
        let sources = [COIN.to_string()];
        assert!(cmd_sequence(&sources, 10, 0, 1, &FailurePolicy::FailFast).is_err());
    }

    #[test]
    fn sequence_metrics_out_writes_versioned_json() {
        let mid = "x = flip(0.3) @ x; observe(flip(x ? 0.95 : 0.05) @ o == 1); return x;";
        let sources = [COIN.to_string(), mid.to_string()];
        let path =
            std::env::temp_dir().join(format!("ppl-metrics-test-{}.json", std::process::id()));
        let opts = SequenceOpts {
            traces: 500,
            seed: 5,
            threads: 2,
            metrics_out: Some(path.clone()),
            ..SequenceOpts::default()
        };
        let out = cmd_sequence_supervised(&sources, &opts).unwrap();
        assert!(out.contains("metrics for `sequence`"), "{out}");
        assert!(out.contains("metrics written to"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(json.contains("\"schema\": \"metrics/v1\""), "{json}");
        assert!(json.contains("\"nodes_visited\": "), "{json}");
        assert!(json.contains("\"translate_ms\": "), "{json}");
        assert!(json.contains("\"pool\": "), "{json}");
    }

    #[test]
    fn save_and_reload_round_trip() {
        // Save MH samples of P, reload them, translate into Q.
        let q = "x = flip(0.3) @ x; observe(flip(x ? 0.99 : 0.01) @ o == 1); return x;";
        let saved = cmd_sample_save(COIN, 30_000, 2_000, 9).unwrap();
        assert!(saved.starts_with("# incremental-ppl collection v1"));
        let out = cmd_translate_saved(COIN, q, &saved, 10).unwrap();
        assert!(out.contains("loaded 2000 traces"), "{out}");
        let line = out
            .lines()
            .find(|l| l.trim_start().starts_with("true"))
            .expect("true row");
        let freq: f64 = line.split(':').nth(1).unwrap().trim().parse().unwrap();
        assert!((freq - 0.977).abs() < 0.05, "{out}");
    }

    #[test]
    fn run_save_produces_parsable_choices() {
        let saved = cmd_run_save(COIN, 11).unwrap();
        let map = ppl::trace_io::parse_choice_map(&saved).unwrap();
        assert_eq!(map.len(), 1); // one latent (the observation is not a choice)
    }

    #[test]
    fn parse_policy_accepts_the_documented_grammar() {
        assert_eq!(parse_policy("fail-fast").unwrap(), FailurePolicy::FailFast);
        assert_eq!(
            parse_policy("drop:0.25").unwrap(),
            FailurePolicy::DropAndRenormalize { max_loss: 0.25 }
        );
        assert_eq!(
            parse_policy("retry:3").unwrap(),
            FailurePolicy::Retry {
                max_attempts: 3,
                seed: 0
            }
        );
        assert_eq!(
            parse_policy("retry:3:42").unwrap(),
            FailurePolicy::Retry {
                max_attempts: 3,
                seed: 42
            }
        );
    }

    #[test]
    fn parse_policy_rejects_malformed_specs() {
        for spec in [
            "",
            "nonsense",
            "fail-fast:1",
            "drop",
            "drop:2.0",
            "drop:x",
            "drop:0.1:0",
            "retry",
            "retry:0",
            "retry:x",
            "retry:2:y",
            "retry:2:3:4",
        ] {
            let err = parse_policy(spec).unwrap_err().to_string();
            assert!(err.contains("invalid --policy"), "{spec}: {err}");
        }
    }

    #[test]
    fn usage_lists_commands() {
        let u = usage();
        for cmd in ["check", "fmt", "run", "enumerate", "sample", "translate"] {
            assert!(u.contains(cmd));
        }
    }
}
