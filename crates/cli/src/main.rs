//! The `ppl` binary: thin argument/file plumbing over [`ppl_cli`].

use std::path::PathBuf;
use std::process::ExitCode;

use ppl_cli::CliError;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{}", e.message);
            ExitCode::from(e.code)
        }
    }
}

fn run(args: &[String]) -> Result<String, CliError> {
    let command = args.first().map(String::as_str).unwrap_or("help");
    let read = |path: &str| -> Result<String, CliError> {
        std::fs::read_to_string(path)
            .map_err(|e| CliError::io(format!("cannot read `{path}`: {e}")))
    };
    let flag = |name: &str, default: u64| -> Result<u64, String> {
        match args.iter().position(|a| a == name) {
            None => Ok(default),
            Some(i) => args
                .get(i + 1)
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse()
                .map_err(|e| format!("{name}: {e}")),
        }
    };
    let positional = |n: usize| -> Result<&String, String> {
        args.iter()
            .skip(1)
            .filter(|a| !a.starts_with("--"))
            .nth(n)
            .ok_or_else(|| format!("missing argument; see `ppl help`\n{}", ppl_cli::usage()))
    };
    let render = |r: Result<String, ppl::PplError>| r.map_err(CliError::from);

    if args.iter().any(|a| a == "--verify-slices") {
        depgraph::set_verify_slices(true);
    }

    match command {
        "help" | "--help" | "-h" => Ok(ppl_cli::usage()),
        "check" => ppl_cli::cmd_check(
            &read(positional(0)?)?,
            args.iter().any(|a| a == "--deny-warnings"),
        ),
        "analyze" => render(ppl_cli::cmd_analyze(
            &read(positional(0)?)?,
            &read(positional(1)?)?,
            args.iter().any(|a| a == "--json"),
        )),
        "fmt" => render(ppl_cli::cmd_fmt(&read(positional(0)?)?)),
        "run" => {
            let source = read(positional(0)?)?;
            let seed = flag("--seed", 0)?;
            match args.iter().position(|a| a == "--save") {
                Some(i) => {
                    let path = args
                        .get(i + 1)
                        .ok_or_else(|| "--save needs a path".to_string())?;
                    let text = render(ppl_cli::cmd_run_save(&source, seed))?;
                    std::fs::write(path, text)
                        .map_err(|e| CliError::io(format!("cannot write `{path}`: {e}")))?;
                    Ok(format!("saved trace to {path}\n"))
                }
                None => render(ppl_cli::cmd_run(&source, seed)),
            }
        }
        "enumerate" => {
            let source = read(positional(0)?)?;
            render(ppl_cli::cmd_enumerate(
                &source,
                flag("--limit", 1_000_000)? as usize,
            ))
        }
        "sample" => {
            let source = read(positional(0)?)?;
            let steps = flag("--steps", 10_000)? as usize;
            let seed = flag("--seed", 0)?;
            match args.iter().position(|a| a == "--save") {
                Some(i) => {
                    let path = args
                        .get(i + 1)
                        .ok_or_else(|| "--save needs a path".to_string())?;
                    let keep = flag("--keep", 100)? as usize;
                    let text = render(ppl_cli::cmd_sample_save(&source, steps, keep, seed))?;
                    std::fs::write(path, text)
                        .map_err(|e| CliError::io(format!("cannot write `{path}`: {e}")))?;
                    Ok(format!("saved samples to {path}\n"))
                }
                None => render(ppl_cli::cmd_sample(&source, steps, seed)),
            }
        }
        "translate" => {
            let p = read(positional(0)?)?;
            let q = read(positional(1)?)?;
            if args.iter().any(|a| a == "--stats") {
                render(ppl_cli::cmd_translate_stats(&p, &q, flag("--seed", 0)?))
            } else if let Some(i) = args.iter().position(|a| a == "--load") {
                let path = args
                    .get(i + 1)
                    .ok_or_else(|| "--load needs a path".to_string())?;
                let saved = read(path)?;
                render(ppl_cli::cmd_translate_saved(
                    &p,
                    &q,
                    &saved,
                    flag("--seed", 0)?,
                ))
            } else {
                let policy = match args.iter().position(|a| a == "--policy") {
                    None => incremental::FailurePolicy::FailFast,
                    Some(i) => {
                        let spec = args
                            .get(i + 1)
                            .ok_or_else(|| "--policy needs a value".to_string())?;
                        ppl_cli::parse_policy(spec).map_err(|e| e.to_string())?
                    }
                };
                render(ppl_cli::cmd_translate(
                    &p,
                    &q,
                    flag("--traces", 1_000)? as usize,
                    flag("--seed", 0)?,
                    &policy,
                ))
            }
        }
        "sequence" => {
            let mut sources = Vec::new();
            let mut skip_next = false;
            for arg in args.iter().skip(1) {
                if skip_next {
                    skip_next = false;
                    continue;
                }
                if arg == "--resume" || arg == "--verify-slices" {
                    // Boolean sequence flags: take no value.
                    continue;
                }
                if arg.starts_with("--") {
                    // Every other sequence flag takes a value.
                    skip_next = true;
                    continue;
                }
                sources.push(read(arg)?);
            }
            if sources.len() < 2 {
                return Err(CliError::usage(format!(
                    "sequence needs at least two program files\n{}",
                    ppl_cli::usage()
                )));
            }
            let policy = match args.iter().position(|a| a == "--policy") {
                None => incremental::FailurePolicy::FailFast,
                Some(i) => {
                    let spec = args
                        .get(i + 1)
                        .ok_or_else(|| "--policy needs a value".to_string())?;
                    ppl_cli::parse_policy(spec).map_err(|e| e.to_string())?
                }
            };
            let checkpoint_dir = match args.iter().position(|a| a == "--checkpoint") {
                None => None,
                Some(i) => Some(PathBuf::from(
                    args.get(i + 1)
                        .ok_or_else(|| "--checkpoint needs a path".to_string())?,
                )),
            };
            let deadline_ms = match args.iter().position(|a| a == "--deadline-ms") {
                None => None,
                Some(_) => Some(flag("--deadline-ms", 0)?),
            };
            let chunk_size = match args.iter().position(|a| a == "--chunk-size") {
                None => None,
                Some(_) => {
                    let k = flag("--chunk-size", 0)? as usize;
                    if k == 0 {
                        return Err(CliError::usage("--chunk-size must be at least 1"));
                    }
                    Some(k)
                }
            };
            let metrics_out = match args.iter().position(|a| a == "--metrics-out") {
                None => None,
                Some(i) => Some(PathBuf::from(
                    args.get(i + 1)
                        .ok_or_else(|| "--metrics-out needs a path".to_string())?,
                )),
            };
            let opts = ppl_cli::SequenceOpts {
                traces: flag("--traces", 1_000)? as usize,
                seed: flag("--seed", 0)?,
                threads: flag("--threads", 1)? as usize,
                policy,
                deadline_ms,
                checkpoint_dir,
                checkpoint_every: flag("--checkpoint-every", 1)? as usize,
                resume: args.iter().any(|a| a == "--resume"),
                metrics_out,
                chunk_size,
            };
            ppl_cli::cmd_sequence_supervised(&sources, &opts)
        }
        other => Err(CliError::usage(format!(
            "unknown command `{other}`\n{}",
            ppl_cli::usage()
        ))),
    }
}
