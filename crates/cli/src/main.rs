//! The `ppl` binary: thin argument/file plumbing over [`ppl_cli`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<String, String> {
    let command = args.first().map(String::as_str).unwrap_or("help");
    let read = |path: &str| -> Result<String, String> {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
    };
    let flag = |name: &str, default: u64| -> Result<u64, String> {
        match args.iter().position(|a| a == name) {
            None => Ok(default),
            Some(i) => args
                .get(i + 1)
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse()
                .map_err(|e| format!("{name}: {e}")),
        }
    };
    let positional = |n: usize| -> Result<&String, String> {
        args.iter()
            .skip(1)
            .filter(|a| !a.starts_with("--"))
            .nth(n)
            .ok_or_else(|| format!("missing argument; see `ppl help`\n{}", ppl_cli::usage()))
    };
    let render = |r: Result<String, ppl::PplError>| r.map_err(|e| e.to_string());

    match command {
        "help" | "--help" | "-h" => Ok(ppl_cli::usage()),
        "check" => render(ppl_cli::cmd_check(&read(positional(0)?)?)),
        "fmt" => render(ppl_cli::cmd_fmt(&read(positional(0)?)?)),
        "run" => {
            let source = read(positional(0)?)?;
            let seed = flag("--seed", 0)?;
            match args.iter().position(|a| a == "--save") {
                Some(i) => {
                    let path = args
                        .get(i + 1)
                        .ok_or_else(|| "--save needs a path".to_string())?;
                    let text = render(ppl_cli::cmd_run_save(&source, seed))?;
                    std::fs::write(path, text)
                        .map_err(|e| format!("cannot write `{path}`: {e}"))?;
                    Ok(format!("saved trace to {path}\n"))
                }
                None => render(ppl_cli::cmd_run(&source, seed)),
            }
        }
        "enumerate" => {
            let source = read(positional(0)?)?;
            render(ppl_cli::cmd_enumerate(
                &source,
                flag("--limit", 1_000_000)? as usize,
            ))
        }
        "sample" => {
            let source = read(positional(0)?)?;
            let steps = flag("--steps", 10_000)? as usize;
            let seed = flag("--seed", 0)?;
            match args.iter().position(|a| a == "--save") {
                Some(i) => {
                    let path = args
                        .get(i + 1)
                        .ok_or_else(|| "--save needs a path".to_string())?;
                    let keep = flag("--keep", 100)? as usize;
                    let text = render(ppl_cli::cmd_sample_save(&source, steps, keep, seed))?;
                    std::fs::write(path, text)
                        .map_err(|e| format!("cannot write `{path}`: {e}"))?;
                    Ok(format!("saved samples to {path}\n"))
                }
                None => render(ppl_cli::cmd_sample(&source, steps, seed)),
            }
        }
        "translate" => {
            let p = read(positional(0)?)?;
            let q = read(positional(1)?)?;
            if args.iter().any(|a| a == "--stats") {
                render(ppl_cli::cmd_translate_stats(&p, &q, flag("--seed", 0)?))
            } else if let Some(i) = args.iter().position(|a| a == "--load") {
                let path = args
                    .get(i + 1)
                    .ok_or_else(|| "--load needs a path".to_string())?;
                let saved = read(path)?;
                render(ppl_cli::cmd_translate_saved(
                    &p,
                    &q,
                    &saved,
                    flag("--seed", 0)?,
                ))
            } else {
                let policy = match args.iter().position(|a| a == "--policy") {
                    None => incremental::FailurePolicy::FailFast,
                    Some(i) => {
                        let spec = args
                            .get(i + 1)
                            .ok_or_else(|| "--policy needs a value".to_string())?;
                        ppl_cli::parse_policy(spec).map_err(|e| e.to_string())?
                    }
                };
                render(ppl_cli::cmd_translate(
                    &p,
                    &q,
                    flag("--traces", 1_000)? as usize,
                    flag("--seed", 0)?,
                    &policy,
                ))
            }
        }
        "sequence" => {
            let mut sources = Vec::new();
            let mut skip_next = false;
            for arg in args.iter().skip(1) {
                if skip_next {
                    skip_next = false;
                    continue;
                }
                if arg.starts_with("--") {
                    // Every sequence flag takes a value.
                    skip_next = true;
                    continue;
                }
                sources.push(read(arg)?);
            }
            if sources.len() < 2 {
                return Err(format!(
                    "sequence needs at least two program files\n{}",
                    ppl_cli::usage()
                ));
            }
            let policy = match args.iter().position(|a| a == "--policy") {
                None => incremental::FailurePolicy::FailFast,
                Some(i) => {
                    let spec = args
                        .get(i + 1)
                        .ok_or_else(|| "--policy needs a value".to_string())?;
                    ppl_cli::parse_policy(spec).map_err(|e| e.to_string())?
                }
            };
            render(ppl_cli::cmd_sequence(
                &sources,
                flag("--traces", 1_000)? as usize,
                flag("--seed", 0)?,
                flag("--threads", 1)? as usize,
                &policy,
            ))
        }
        other => Err(format!("unknown command `{other}`\n{}", ppl_cli::usage())),
    }
}
