//! End-to-end tests of the `ppl` binary: real process invocations over
//! real files.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn ppl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ppl"))
}

fn temp_file(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ppl-cli-test-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    fs::write(&path, contents).unwrap();
    path
}

const COIN: &str = "x = flip(0.3) @ x; observe(flip(x ? 0.9 : 0.1) @ o == 1); return x;";
const COIN_SHARP: &str = "x = flip(0.3) @ x; observe(flip(x ? 0.99 : 0.01) @ o == 1); return x;";

#[test]
fn help_prints_usage_and_succeeds() {
    let out = ppl().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("translate"), "{text}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = ppl().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("unknown command"), "{text}");
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = ppl()
        .args(["check", "/nonexistent/nope.ppl"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("cannot read"), "{text}");
}

#[test]
fn check_and_enumerate_round_trip() {
    let file = temp_file("coin.ppl", COIN);
    let out = ppl().arg("check").arg(&file).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("no issues"));

    let out = ppl().arg("enumerate").arg(&file).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Z = 0.34"), "{text}");
}

#[test]
fn run_save_then_translate_load() {
    let p = temp_file("p.ppl", COIN);
    let q = temp_file("q.ppl", COIN_SHARP);
    let saved = temp_file("samples.txt", "");
    // Save MH samples of P.
    let out = ppl()
        .args(["sample"])
        .arg(&p)
        .args(["--steps", "20000", "--save"])
        .arg(&saved)
        .args(["--keep", "500", "--seed", "3"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let saved_text = fs::read_to_string(&saved).unwrap();
    assert!(saved_text.contains("weight"), "{saved_text}");
    // Translate the saved samples into Q.
    let out = ppl()
        .arg("translate")
        .arg(&p)
        .arg(&q)
        .arg("--load")
        .arg(&saved)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("loaded 500 traces"), "{text}");
    assert!(text.contains("true"), "{text}");
}

#[test]
fn translate_stats_on_files() {
    let p = temp_file("stats_p.ppl", "a = 1; b = flip(a / 3) @ b; return b;");
    let q = temp_file("stats_q.ppl", "a = 2; b = flip(a / 3) @ b; return b;");
    let out = ppl()
        .arg("translate")
        .arg(&p)
        .arg(&q)
        .arg("--stats")
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("visited"), "{text}");
}
