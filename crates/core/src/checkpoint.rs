//! Durable checkpoints for sequence runs: the crash-safety half of the
//! robustness layer.
//!
//! A long edit sequence (the paper's Fig. 9 regime — hundreds of
//! programs, particles carried end to end) keeps all inference state in
//! memory; one crash or OOM-kill loses the whole run. A [`Checkpoint`]
//! snapshots everything needed to continue from a stage boundary:
//!
//! - the particle collection as *flat* weighted choice maps (graph-native
//!   states flatten on save and re-lift on resume), serialized with the
//!   existing [`ppl::trace_io`] format, which round-trips every `f64`
//!   exactly;
//! - the number of completed stages and the run's base seed — with the
//!   supervised runner's per-stage seed derivation
//!   ([`crate::stage_seed`] / [`crate::resample_seed`]) these two values
//!   reconstruct *all* remaining randomness, so no RNG state needs to be
//!   persisted;
//! - the fingerprint of the program the particles target (opaque to this
//!   crate; computed and validated by `depgraph`), so a checkpoint is
//!   never resumed against an edited program;
//! - the accumulated ESS and [`StepReport`] history, so a resumed run
//!   reports the full sequence.
//!
//! Durability: [`Checkpoint::save`] writes to a temp file in the target
//! directory, syncs it, and renames it into place, so a crash mid-write
//! can never produce a truncated checkpoint under the final name. An
//! FxHash64 checksum trailer covers the whole body; [`Checkpoint::parse`]
//! rejects any corruption with a typed [`CheckpointError`] — a bit-flipped
//! checkpoint is never silently resumed.
//!
//! Lossiness: particle values, weights, seeds, and step indices round-trip
//! bit-exactly. Failure *diagnostics* do not: a structured
//! [`FailureKind::Error`] reloads as `PplError::Other` with the same
//! message, and embedded newlines in panic/error messages are flattened
//! to spaces. Diagnostics never feed back into inference, so this cannot
//! affect resume determinism.

use std::fmt;
use std::hash::Hasher;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use ppl::trace_io::{parse_weighted_collection, write_weighted_collection};
use ppl::{ChoiceMap, FxHasher, PplError};

use crate::health::{FailureKind, ParticleFailure, StepReport};
use crate::particles::ParticleState;
use crate::sequence::StageSnapshot;

/// The first line of every checkpoint file; bump the trailing version on
/// any format change (and keep a migration or a clear error).
const HEADER: &str = "# incremental-ppl checkpoint v1";

/// Typed failures of checkpoint I/O and validation. Every variant is an
/// explicit refusal to resume — corruption is never silently ignored.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// Filesystem-level failure (open, read, write, sync, rename).
    Io {
        /// The path involved.
        path: PathBuf,
        /// The OS error message.
        message: String,
    },
    /// The file does not parse as a checkpoint (missing or malformed
    /// fields, bad particle block, truncated trailer).
    Corrupt {
        /// What failed to parse.
        reason: String,
    },
    /// The integrity checksum does not match the file body: the file was
    /// altered (or bit-rotted) after it was written.
    ChecksumMismatch {
        /// Checksum recomputed from the body.
        computed: u64,
        /// Checksum recorded in the trailer.
        recorded: u64,
    },
    /// The file's header is not this version's [`HEADER`] line.
    VersionMismatch {
        /// The header line actually found.
        found: String,
    },
    /// The checkpointed program fingerprint does not match the program
    /// the resume was asked to continue into.
    FingerprintMismatch {
        /// Fingerprint of the program at the checkpoint's step.
        expected: u64,
        /// Fingerprint recorded in the checkpoint.
        found: u64,
    },
    /// The checkpoint's step index is beyond the supplied sequence.
    StepOutOfRange {
        /// Completed-stage count recorded in the checkpoint.
        step: usize,
        /// Number of programs in the sequence being resumed.
        programs: usize,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, message } => {
                write!(f, "checkpoint I/O error at {}: {message}", path.display())
            }
            CheckpointError::Corrupt { reason } => {
                write!(f, "corrupt checkpoint: {reason}")
            }
            CheckpointError::ChecksumMismatch { computed, recorded } => write!(
                f,
                "checkpoint checksum mismatch: body hashes to {computed:016x} \
                 but trailer records {recorded:016x}"
            ),
            CheckpointError::VersionMismatch { found } => write!(
                f,
                "unsupported checkpoint version: expected `{HEADER}`, found `{found}`"
            ),
            CheckpointError::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint program fingerprint {found:016x} does not match \
                 the sequence being resumed (expected {expected:016x}); \
                 the program was edited since the checkpoint was written"
            ),
            CheckpointError::StepOutOfRange { step, programs } => write!(
                f,
                "checkpoint records {step} completed stages but the sequence \
                 has only {programs} programs"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<CheckpointError> for PplError {
    fn from(e: CheckpointError) -> PplError {
        PplError::Other(e.to_string())
    }
}

/// A durable snapshot of a sequence run at a stage boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Number of completed stages — equivalently, the index of the
    /// program the particles currently target. Resuming runs stages
    /// `step..` of the same program sequence.
    pub step: usize,
    /// The run's base seed. All remaining per-stage randomness derives
    /// from this and the absolute stage index.
    pub base_seed: u64,
    /// Fingerprint of the program the particles target (`programs[step]`),
    /// opaque to this crate; `depgraph::resume_collection` validates it.
    pub fingerprint: u64,
    /// ESS after every completed stage.
    pub ess_history: Vec<f64>,
    /// Health reports of every completed stage.
    pub reports: Vec<StepReport>,
    /// The particle collection, flattened to weighted choice maps
    /// (`(choices, log_weight)`).
    pub particles: Vec<(ChoiceMap, f64)>,
}

impl Checkpoint {
    /// Builds a checkpoint from a supervised-runner stage snapshot,
    /// flattening the collection to weighted choice maps.
    ///
    /// # Errors
    ///
    /// Propagates [`ParticleState::to_trace`] failures from flattening
    /// graph-native states.
    pub fn from_snapshot<S: ParticleState>(
        snapshot: &StageSnapshot<'_, S>,
        base_seed: u64,
        fingerprint: u64,
    ) -> Result<Checkpoint, PplError> {
        let mut particles = Vec::with_capacity(snapshot.collection.len());
        for p in snapshot.collection.iter() {
            let trace = p.trace.to_trace()?;
            particles.push((trace.to_choice_map(), p.log_weight.log()));
        }
        Ok(Checkpoint {
            step: snapshot.step,
            base_seed,
            fingerprint,
            ess_history: snapshot.ess_history.to_vec(),
            reports: snapshot.reports.to_vec(),
            particles,
        })
    }

    /// Checks the checkpoint against the fingerprint of the program it
    /// is about to be resumed into.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::FingerprintMismatch`] when they differ.
    pub fn validate_fingerprint(&self, expected: u64) -> Result<(), CheckpointError> {
        if self.fingerprint == expected {
            Ok(())
        } else {
            Err(CheckpointError::FingerprintMismatch {
                expected,
                found: self.fingerprint,
            })
        }
    }

    /// The file name of the checkpoint for `step` completed stages.
    ///
    /// Zero-padded to 8 digits so lexicographic file ordering matches
    /// numeric step ordering up to step 99 999 999 (5 digits broke at
    /// step 100 000). [`Checkpoint::latest_in`] parses the step
    /// numerically, so directories mixing old 5-digit and new 8-digit
    /// names still resolve to the highest step.
    pub fn file_name(step: usize) -> String {
        format!("step-{step:08}.ckpt")
    }

    /// Renders the checkpoint to its on-disk text format, including the
    /// checksum trailer. The format is pinned by
    /// `tests/checkpoint_golden.rs`.
    pub fn render(&self) -> String {
        let mut body = String::new();
        body.push_str(HEADER);
        body.push('\n');
        body.push_str(&format!("step {}\n", self.step));
        body.push_str(&format!("base-seed {}\n", self.base_seed));
        body.push_str(&format!("fingerprint {}\n", self.fingerprint));
        for ess in &self.ess_history {
            body.push_str(&format!("ess {ess:?}\n"));
        }
        for report in &self.reports {
            body.push_str(&render_report(report));
        }
        body.push_str("begin particles\n");
        body.push_str(&write_weighted_collection(&self.particles));
        body.push_str("end particles\n");
        let checksum = fxhash64(body.as_bytes());
        body.push_str(&format!("checksum {checksum:016x}\n"));
        body
    }

    /// Parses and validates checkpoint text: header version, field
    /// syntax, particle block, and the checksum trailer.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::VersionMismatch`], [`CheckpointError::Corrupt`],
    /// or [`CheckpointError::ChecksumMismatch`].
    pub fn parse(text: &str) -> Result<Checkpoint, CheckpointError> {
        // Split off the checksum trailer: the last non-empty line.
        let trimmed = text.trim_end_matches(['\n', '\r']);
        let trailer_start = trimmed.rfind('\n').map(|i| i + 1).unwrap_or(0);
        let trailer = &trimmed[trailer_start..];
        let recorded = trailer
            .strip_prefix("checksum ")
            .and_then(|h| u64::from_str_radix(h.trim(), 16).ok())
            .ok_or_else(|| CheckpointError::Corrupt {
                reason: "missing or malformed checksum trailer".to_string(),
            })?;
        let body = &text[..trailer_start];
        let computed = fxhash64(body.as_bytes());
        if computed != recorded {
            return Err(CheckpointError::ChecksumMismatch { computed, recorded });
        }

        let mut lines = body.lines();
        let header = lines.next().unwrap_or("");
        if header != HEADER {
            return Err(CheckpointError::VersionMismatch {
                found: header.to_string(),
            });
        }

        let mut step: Option<usize> = None;
        let mut base_seed: Option<u64> = None;
        let mut fingerprint: Option<u64> = None;
        let mut ess_history: Vec<f64> = Vec::new();
        let mut reports: Vec<StepReport> = Vec::new();
        let mut particle_text = String::new();
        let mut in_particles = false;
        let mut saw_particles = false;
        for line in lines {
            if in_particles {
                if line == "end particles" {
                    in_particles = false;
                } else {
                    particle_text.push_str(line);
                    particle_text.push('\n');
                }
                continue;
            }
            if line.is_empty() {
                continue;
            }
            if line == "begin particles" {
                in_particles = true;
                saw_particles = true;
            } else if let Some(v) = line.strip_prefix("step ") {
                step = Some(parse_field(v, "step")?);
            } else if let Some(v) = line.strip_prefix("base-seed ") {
                base_seed = Some(parse_field(v, "base-seed")?);
            } else if let Some(v) = line.strip_prefix("fingerprint ") {
                fingerprint = Some(parse_field(v, "fingerprint")?);
            } else if let Some(v) = line.strip_prefix("ess ") {
                ess_history.push(parse_field(v, "ess")?);
            } else if let Some(v) = line.strip_prefix("report ") {
                reports.push(parse_report(v)?);
            } else if let Some(v) = line.strip_prefix("failure ") {
                let report = reports.last_mut().ok_or_else(|| CheckpointError::Corrupt {
                    reason: "failure line before any report line".to_string(),
                })?;
                report.failures.push(parse_failure(v)?);
            } else if !line.starts_with('#') {
                return Err(CheckpointError::Corrupt {
                    reason: format!("unrecognized line: `{line}`"),
                });
            }
        }
        if in_particles {
            return Err(CheckpointError::Corrupt {
                reason: "unterminated particle block".to_string(),
            });
        }
        if !saw_particles {
            return Err(CheckpointError::Corrupt {
                reason: "missing particle block".to_string(),
            });
        }
        let particles =
            parse_weighted_collection(&particle_text).map_err(|e| CheckpointError::Corrupt {
                reason: format!("particle block: {e}"),
            })?;
        Ok(Checkpoint {
            step: step.ok_or_else(|| missing("step"))?,
            base_seed: base_seed.ok_or_else(|| missing("base-seed"))?,
            fingerprint: fingerprint.ok_or_else(|| missing("fingerprint"))?,
            ess_history,
            reports,
            particles,
        })
    }

    /// Writes the checkpoint durably into `dir` as
    /// [`Checkpoint::file_name`]`(self.step)`: the text is written to a
    /// temp file in the same directory, synced, renamed into place, and
    /// the directory itself is synced — so a crash mid-save never leaves
    /// a truncated file under the final name, and a power loss right
    /// after `save` returns cannot lose the directory entry of the
    /// completed checkpoint. Stale temp files orphaned by an earlier
    /// crash (a SIGKILL between temp-file creation and rename) are swept
    /// first. Creates `dir` if needed. Returns the final path.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on any filesystem failure.
    pub fn save(&self, dir: &Path) -> Result<PathBuf, CheckpointError> {
        let io = |path: &Path| {
            let path = path.to_path_buf();
            move |e: std::io::Error| CheckpointError::Io {
                path,
                message: e.to_string(),
            }
        };
        std::fs::create_dir_all(dir).map_err(io(dir))?;
        sweep_stale_tmps(dir);
        let final_path = dir.join(Checkpoint::file_name(self.step));
        let tmp_path = dir.join(format!(
            ".{}.tmp-{}",
            Checkpoint::file_name(self.step),
            std::process::id()
        ));
        {
            let mut tmp = std::fs::File::create(&tmp_path).map_err(io(&tmp_path))?;
            tmp.write_all(self.render().as_bytes())
                .map_err(io(&tmp_path))?;
            tmp.sync_all().map_err(io(&tmp_path))?;
        }
        std::fs::rename(&tmp_path, &final_path).map_err(io(&final_path))?;
        // The rename is durable only once the directory entry itself is
        // on disk: fsync the parent directory.
        sync_dir(dir).map_err(io(dir))?;
        Ok(final_path)
    }

    /// Loads and validates a checkpoint file.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on read failure; parse/validation errors
    /// as [`Checkpoint::parse`].
    pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
        let text = std::fs::read_to_string(path).map_err(|e| CheckpointError::Io {
            path: path.to_path_buf(),
            message: e.to_string(),
        })?;
        Checkpoint::parse(&text)
    }

    /// Finds and loads the checkpoint with the highest step number in
    /// `dir`. Returns `Ok(None)` when the directory does not exist or
    /// holds no checkpoint files.
    ///
    /// # Errors
    ///
    /// As [`Checkpoint::load`] for the newest file found.
    pub fn latest_in(dir: &Path) -> Result<Option<(PathBuf, Checkpoint)>, CheckpointError> {
        let entries = match std::fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(CheckpointError::Io {
                    path: dir.to_path_buf(),
                    message: e.to_string(),
                })
            }
        };
        sweep_stale_tmps(dir);
        let mut best: Option<(usize, String, PathBuf)> = None;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(step) = name
                .strip_prefix("step-")
                .and_then(|s| s.strip_suffix(".ckpt"))
                .and_then(|s| s.parse::<usize>().ok())
            else {
                continue;
            };
            // A step can appear under both the current 8-digit padding
            // and the legacy 5-digit one; prefer the current (longer)
            // name so the pick never depends on directory order.
            let better = match &best {
                None => true,
                Some((s, n, _)) => {
                    step > *s || (step == *s && (name.len(), name) > (n.len(), n.as_str()))
                }
            };
            if better {
                best = Some((step, name.to_string(), entry.path()));
            }
        }
        match best {
            Some((_, _, path)) => {
                let ck = Checkpoint::load(&path)?;
                Ok(Some((path, ck)))
            }
            None => Ok(None),
        }
    }

    /// The checksum of this checkpoint's particle collection — the value
    /// the kill-and-resume differential tests compare.
    pub fn particle_checksum(&self) -> u64 {
        collection_checksum(&self.particles)
    }
}

/// FxHash64 checksum of the checkpoint's particle collection in its
/// serialized form. Two collections have equal checksums iff their
/// serialized choice maps and log-weights are byte-identical — the
/// "bit-identical resume" acceptance criterion in executable form.
pub fn collection_checksum(entries: &[(ChoiceMap, f64)]) -> u64 {
    fxhash64(write_weighted_collection(entries).as_bytes())
}

/// Process-wide count of successful parent-directory fsyncs performed by
/// [`Checkpoint::save`] — the strace-free unit seam for asserting the
/// rename was made durable.
static DIR_SYNCS: AtomicU64 = AtomicU64::new(0);

/// Number of checkpoint-directory fsyncs performed by [`Checkpoint::save`]
/// since process start. A successful `save` increments this exactly once,
/// *after* the rename; tests diff it across a save to prove the directory
/// entry was synced.
pub fn dir_sync_count() -> u64 {
    DIR_SYNCS.load(Ordering::Relaxed)
}

/// Fsyncs a directory so a just-renamed entry survives power loss.
fn sync_dir(dir: &Path) -> std::io::Result<()> {
    let handle = std::fs::File::open(dir)?;
    handle.sync_all()?;
    DIR_SYNCS.fetch_add(1, Ordering::Relaxed);
    Ok(())
}

/// Removes temp files orphaned by a crash between temp-file creation and
/// rename (`.step-NNNNN.ckpt.tmp-<pid>`, any padding width). Best-effort:
/// per-file errors are ignored — a concurrent sweeper may have won the
/// race, and an unremovable orphan must not fail the save that found it.
fn sweep_stale_tmps(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with(".step-") && name.contains(".ckpt.tmp-") {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

fn fxhash64(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

fn missing(field: &str) -> CheckpointError {
    CheckpointError::Corrupt {
        reason: format!("missing `{field}` field"),
    }
}

fn parse_field<T: std::str::FromStr>(v: &str, field: &str) -> Result<T, CheckpointError> {
    v.trim().parse().map_err(|_| CheckpointError::Corrupt {
        reason: format!("malformed `{field}` value `{}`", v.trim()),
    })
}

/// Flattens embedded newlines so a diagnostic message stays on one line
/// of the checkpoint file (documented lossy; see module docs).
fn one_line(msg: &str) -> String {
    msg.replace(['\n', '\r'], " ")
}

fn render_report(r: &StepReport) -> String {
    let mut out = format!(
        "report step={} in={} out={} ess={:?} dropped={} retries={} recovered={} resampled={} collapse={}\n",
        r.step,
        r.input_particles,
        r.output_particles,
        r.ess,
        r.dropped,
        r.retries,
        r.recovered,
        u8::from(r.resampled),
        u8::from(r.collapse_recovered),
    );
    for f in &r.failures {
        let kind = match &f.kind {
            FailureKind::Error(e) => format!("kind=error msg={}", one_line(&e.to_string())),
            FailureKind::Panic(msg) => format!("kind=panic msg={}", one_line(msg)),
            FailureKind::NonFiniteWeight(w) => format!("kind=nonfinite value={w:?}"),
            FailureKind::Timeout { waited_ms } => format!("kind=timeout waited={waited_ms}"),
        };
        out.push_str(&format!(
            "failure step={} particle={} attempts={} {kind}\n",
            f.step, f.particle, f.attempts
        ));
    }
    out
}

/// Pulls `key=` from a `key=value` token list, returning the value up to
/// the next space (or, for `msg=`, the rest of the line).
fn take_kv<'a>(line: &'a str, key: &str) -> Result<&'a str, CheckpointError> {
    let pat = format!("{key}=");
    let start = line.find(&pat).ok_or_else(|| CheckpointError::Corrupt {
        reason: format!("missing `{key}=` in `{line}`"),
    })? + pat.len();
    let rest = &line[start..];
    if key == "msg" {
        Ok(rest)
    } else {
        Ok(rest.split_whitespace().next().unwrap_or(""))
    }
}

fn parse_report(v: &str) -> Result<StepReport, CheckpointError> {
    Ok(StepReport {
        step: parse_field(take_kv(v, "step")?, "report step")?,
        input_particles: parse_field(take_kv(v, "in")?, "report in")?,
        output_particles: parse_field(take_kv(v, "out")?, "report out")?,
        ess: parse_field(take_kv(v, "ess")?, "report ess")?,
        dropped: parse_field(take_kv(v, "dropped")?, "report dropped")?,
        retries: parse_field(take_kv(v, "retries")?, "report retries")?,
        recovered: parse_field(take_kv(v, "recovered")?, "report recovered")?,
        failures: Vec::new(),
        resampled: parse_field::<u8>(take_kv(v, "resampled")?, "report resampled")? != 0,
        collapse_recovered: parse_field::<u8>(take_kv(v, "collapse")?, "report collapse")? != 0,
    })
}

fn parse_failure(v: &str) -> Result<ParticleFailure, CheckpointError> {
    let kind = match take_kv(v, "kind")? {
        // A structured error reloads as its message (documented lossy).
        "error" => FailureKind::Error(PplError::Other(take_kv(v, "msg")?.to_string())),
        "panic" => FailureKind::Panic(take_kv(v, "msg")?.to_string()),
        "nonfinite" => {
            FailureKind::NonFiniteWeight(parse_field(take_kv(v, "value")?, "failure value")?)
        }
        "timeout" => FailureKind::Timeout {
            waited_ms: parse_field(take_kv(v, "waited")?, "failure waited")?,
        },
        other => {
            return Err(CheckpointError::Corrupt {
                reason: format!("unknown failure kind `{other}`"),
            })
        }
    };
    Ok(ParticleFailure {
        step: parse_field(take_kv(v, "step")?, "failure step")?,
        particle: parse_field(take_kv(v, "particle")?, "failure particle")?,
        attempts: parse_field(take_kv(v, "attempts")?, "failure attempts")?,
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl::{addr, Value};

    fn sample_checkpoint() -> Checkpoint {
        let mut m1 = ChoiceMap::new();
        m1.insert(addr!["x"], Value::Bool(true));
        m1.insert(addr!["mu", 2], Value::Real(0.1 + 0.2));
        let mut m2 = ChoiceMap::new();
        m2.insert(addr!["x"], Value::Bool(false));
        Checkpoint {
            step: 3,
            base_seed: 777,
            fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            ess_history: vec![15.5, 12.25, 1.0 / 3.0],
            reports: vec![
                StepReport {
                    step: 2,
                    input_particles: 2,
                    output_particles: 2,
                    ess: 1.75,
                    dropped: 0,
                    retries: 1,
                    recovered: 1,
                    failures: vec![],
                    resampled: true,
                    collapse_recovered: false,
                },
                StepReport {
                    step: 2,
                    input_particles: 2,
                    output_particles: 1,
                    ess: 1.0,
                    dropped: 1,
                    retries: 0,
                    recovered: 0,
                    failures: vec![
                        ParticleFailure {
                            step: 2,
                            particle: 1,
                            attempts: 2,
                            kind: FailureKind::Panic("boom:\nmultiline".to_string()),
                        },
                        ParticleFailure {
                            step: 2,
                            particle: 0,
                            attempts: 1,
                            kind: FailureKind::Timeout { waited_ms: 250 },
                        },
                        ParticleFailure {
                            step: 2,
                            particle: 3,
                            attempts: 1,
                            kind: FailureKind::NonFiniteWeight(f64::INFINITY),
                        },
                    ],
                    resampled: false,
                    collapse_recovered: true,
                },
            ],
            particles: vec![(m1, -0.5), (m2, 0.0)],
        }
    }

    #[test]
    fn render_parse_round_trips() {
        let ck = sample_checkpoint();
        let parsed = Checkpoint::parse(&ck.render()).unwrap();
        assert_eq!(parsed.step, ck.step);
        assert_eq!(parsed.base_seed, ck.base_seed);
        assert_eq!(parsed.fingerprint, ck.fingerprint);
        assert_eq!(parsed.particles, ck.particles);
        for (a, b) in parsed.ess_history.iter().zip(ck.ess_history.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(parsed.reports.len(), 2);
        assert_eq!(parsed.reports[0], ck.reports[0]);
        // The multiline panic message flattens (documented lossy); the
        // rest of the failure records round-trip exactly.
        let fs = &parsed.reports[1].failures;
        assert_eq!(
            fs[0].kind,
            FailureKind::Panic("boom: multiline".to_string())
        );
        assert_eq!(fs[1], ck.reports[1].failures[1]);
        assert_eq!(fs[2], ck.reports[1].failures[2]);
        assert_eq!(parsed.particle_checksum(), ck.particle_checksum());
    }

    #[test]
    fn nan_ess_round_trips() {
        let mut ck = sample_checkpoint();
        ck.reports.truncate(1);
        ck.ess_history = vec![f64::NAN];
        let parsed = Checkpoint::parse(&ck.render()).unwrap();
        assert!(parsed.ess_history[0].is_nan());
    }

    #[test]
    fn every_bit_flip_is_rejected_or_roundtrips_nothing_silently() {
        // Flipping any single byte of the rendered text must never yield
        // a checkpoint that parses clean with different content.
        let ck = sample_checkpoint();
        let text = ck.render();
        let canonical = Checkpoint::parse(&text).unwrap();
        let bytes = text.as_bytes();
        // Probe a spread of positions (full scan is O(n²) in test time).
        for pos in (0..bytes.len()).step_by(7) {
            let mut corrupted = bytes.to_vec();
            corrupted[pos] ^= 0x01;
            let Ok(corrupted) = String::from_utf8(corrupted) else {
                continue;
            };
            match Checkpoint::parse(&corrupted) {
                Err(_) => {}
                Ok(reparsed) => assert_eq!(
                    reparsed, canonical,
                    "byte {pos}: corrupted checkpoint parsed to different content"
                ),
            }
        }
    }

    #[test]
    fn checksum_mismatch_is_typed() {
        let ck = sample_checkpoint();
        let text = ck.render();
        // Flip a content byte well inside the body.
        let mut corrupted = text.clone().into_bytes();
        let pos = text.find("base-seed 777").unwrap() + 10;
        corrupted[pos] = b'8';
        let err = Checkpoint::parse(&String::from_utf8(corrupted).unwrap()).unwrap_err();
        assert!(matches!(err, CheckpointError::ChecksumMismatch { .. }));
    }

    #[test]
    fn version_mismatch_is_typed() {
        let ck = sample_checkpoint();
        let body = ck.render().replace("checkpoint v1", "checkpoint v99");
        // Re-trailer so the version check (not the checksum) fires.
        let without_trailer = &body[..body.rfind("checksum ").unwrap()];
        let sum = fxhash64(without_trailer.as_bytes());
        let retrailered = format!("{without_trailer}checksum {sum:016x}\n");
        let err = Checkpoint::parse(&retrailered).unwrap_err();
        assert!(matches!(err, CheckpointError::VersionMismatch { .. }));
    }

    #[test]
    fn fingerprint_validation() {
        let ck = sample_checkpoint();
        ck.validate_fingerprint(0xDEAD_BEEF_CAFE_F00D).unwrap();
        let err = ck.validate_fingerprint(1).unwrap_err();
        assert!(matches!(err, CheckpointError::FingerprintMismatch { .. }));
    }

    #[test]
    fn save_load_and_latest() {
        let dir =
            std::env::temp_dir().join(format!("ppl-ckpt-unit-{}-save-load", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut ck = sample_checkpoint();
        ck.step = 2;
        let p2 = ck.save(&dir).unwrap();
        assert!(p2.ends_with("step-00000002.ckpt"));
        ck.step = 5;
        ck.save(&dir).unwrap();
        let (path, latest) = Checkpoint::latest_in(&dir).unwrap().unwrap();
        assert!(path.ends_with("step-00000005.ckpt"));
        assert_eq!(latest.step, 5);
        assert_eq!(latest.particles, ck.particles);
        // Missing directory is a clean None, not an error.
        let missing_dir = dir.join("nope");
        assert!(Checkpoint::latest_in(&missing_dir).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_syncs_the_checkpoint_directory() {
        let dir =
            std::env::temp_dir().join(format!("ppl-ckpt-unit-{}-dir-sync", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ck = sample_checkpoint();
        let before = dir_sync_count();
        ck.save(&dir).unwrap();
        let after = dir_sync_count();
        // Exactly-once per save can't be asserted process-wide (other
        // tests save concurrently); at-least-once across *this* save can.
        assert!(
            after > before,
            "save must fsync the parent directory after rename"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tmp_files_are_swept_and_real_checkpoints_kept() {
        let dir =
            std::env::temp_dir().join(format!("ppl-ckpt-unit-{}-tmp-sweep", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Plant orphans as a SIGKILLed writer would leave them: one with
        // the current padding, one with the legacy 5-digit padding, from
        // a process id that no longer exists.
        let orphan_new = dir.join(".step-00000007.ckpt.tmp-99999");
        let orphan_old = dir.join(".step-00007.ckpt.tmp-4242");
        std::fs::write(&orphan_new, "partial write").unwrap();
        std::fs::write(&orphan_old, "partial write").unwrap();
        let mut ck = sample_checkpoint();
        ck.step = 1;
        let real = ck.save(&dir).unwrap();
        assert!(!orphan_new.exists(), "save must sweep orphaned tmp files");
        assert!(
            !orphan_old.exists(),
            "save must sweep legacy-padded orphans"
        );
        assert!(real.exists(), "the real checkpoint must be untouched");

        // latest_in sweeps too, and still resolves the real checkpoint.
        std::fs::write(&orphan_new, "partial write").unwrap();
        let (path, latest) = Checkpoint::latest_in(&dir).unwrap().unwrap();
        assert!(!orphan_new.exists(), "latest_in must sweep orphans");
        assert_eq!(path, real);
        assert_eq!(latest.step, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn latest_in_handles_mixed_padding_widths() {
        let dir = std::env::temp_dir().join(format!(
            "ppl-ckpt-unit-{}-mixed-padding",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // An old 5-digit checkpoint (written by a pre-widening build)
        // alongside new 8-digit ones, including a step past 100000 where
        // 5-digit lexicographic ordering used to break.
        let mut ck = sample_checkpoint();
        ck.step = 3;
        std::fs::write(dir.join("step-00003.ckpt"), ck.render()).unwrap();
        ck.step = 12;
        ck.save(&dir).unwrap();
        ck.step = 100_001;
        let newest = ck.save(&dir).unwrap();
        assert!(newest.ends_with("step-00100001.ckpt"));
        let (path, latest) = Checkpoint::latest_in(&dir).unwrap().unwrap();
        assert_eq!(path, newest);
        assert_eq!(latest.step, 100_001);

        // With the >100k checkpoint gone, the newest of the remaining
        // mixed-width names wins regardless of padding.
        std::fs::remove_file(&newest).unwrap();
        let (_, latest) = Checkpoint::latest_in(&dir).unwrap().unwrap();
        assert_eq!(latest.step, 12);
        std::fs::remove_file(dir.join(Checkpoint::file_name(12))).unwrap();
        let (path, latest) = Checkpoint::latest_in(&dir).unwrap().unwrap();
        assert!(path.ends_with("step-00003.ckpt"));
        assert_eq!(latest.step, 3);

        // The same step under both paddings: the current 8-digit name
        // wins deterministically (never directory order), so stale
        // legacy-named files — even corrupt ones — cannot shadow a valid
        // current checkpoint of the same step.
        ck.step = 3;
        let current = ck.save(&dir).unwrap();
        std::fs::write(dir.join("step-00003.ckpt"), "garbage\n").unwrap();
        let (path, latest) = Checkpoint::latest_in(&dir).unwrap().unwrap();
        assert_eq!(path, current);
        assert_eq!(latest.step, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_collection_checkpoint_round_trips() {
        let ck = Checkpoint {
            step: 0,
            base_seed: 1,
            fingerprint: 2,
            ess_history: vec![],
            reports: vec![],
            particles: vec![],
        };
        let parsed = Checkpoint::parse(&ck.render()).unwrap();
        assert_eq!(parsed, ck);
    }
}
