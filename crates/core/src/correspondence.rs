//! Semantic correspondence between the random choices of two programs.
//!
//! A correspondence (Section 5.1) is a bijection `f : F_Q → F_P` between a
//! subset of the addresses of program `Q` and a subset of the addresses of
//! program `P`. Two kinds of entries are supported:
//!
//! - **explicit pairs** between individual addresses, and
//! - **site rules** mapping a site label of `Q` to a site label of `P`
//!   while preserving loop-index components — the indexed-family scheme of
//!   Section 5.4 (e.g. every `hidden/i` of the second-order HMM corresponds
//!   to `hidden/i` of the first-order HMM).
//!
//! Lookups are on the translate/replay hot path (once per random choice,
//! forward and backward), so pairs are keyed on interned [`AddressId`]s
//! and site-rule resolutions are memoized per address: after the first
//! translation of a trace shape, every `lookup_id` is a single fast-hash
//! probe.

use std::collections::HashMap;
use std::sync::RwLock;

use ppl::address::Component;
use ppl::fxhash::{FxHashMap, FxHashSet};
use ppl::{Address, AddressId, PplError};

/// A correspondence `f : F_Q → F_P` from addresses of the *new* program `Q`
/// to addresses of the *old* program `P`.
///
/// # Examples
///
/// ```
/// use incremental::Correspondence;
/// use ppl::addr;
/// let mut f = Correspondence::new();
/// f.add_pair(addr!["eps"], addr!["alpha"]).unwrap();
/// f.add_site_rule("hidden", "hidden").unwrap();
/// assert_eq!(f.lookup(&addr!["eps"]), Some(addr!["alpha"]));
/// assert_eq!(f.lookup(&addr!["hidden", 3]), Some(addr!["hidden", 3]));
/// assert_eq!(f.lookup(&addr!["other"]), None);
/// ```
#[derive(Debug, Default)]
pub struct Correspondence {
    pairs: FxHashMap<AddressId, AddressId>,
    site_rules: HashMap<String, String>,
    /// Memoized site-rule resolutions (`q id → f(q) id`, `None` for
    /// unmapped). Cleared on mutation; never observable in results.
    cache: RwLock<FxHashMap<AddressId, Option<AddressId>>>,
}

impl Clone for Correspondence {
    fn clone(&self) -> Correspondence {
        Correspondence {
            pairs: self.pairs.clone(),
            site_rules: self.site_rules.clone(),
            cache: RwLock::new(self.cache.read().expect("cache poisoned").clone()),
        }
    }
}

impl Correspondence {
    /// Creates an empty correspondence (no choice is reused).
    pub fn new() -> Correspondence {
        Correspondence::default()
    }

    /// The identity correspondence on the given site labels: each site of
    /// `Q` maps to the same-named site of `P`, preserving indices.
    ///
    /// # Panics
    ///
    /// Panics if a site appears twice in `sites`.
    pub fn identity_on<'a>(sites: impl IntoIterator<Item = &'a str>) -> Correspondence {
        let mut f = Correspondence::new();
        for s in sites {
            f.add_site_rule(s, s)
                .expect("duplicate site in identity correspondence");
        }
        f
    }

    /// Builds a correspondence from explicit `(Q address, P address)`
    /// pairs.
    ///
    /// # Errors
    ///
    /// Returns an error if the pairs do not describe a bijection.
    pub fn from_pairs(
        pairs: impl IntoIterator<Item = (Address, Address)>,
    ) -> Result<Correspondence, PplError> {
        let mut f = Correspondence::new();
        for (q, p) in pairs {
            f.add_pair(q, p)?;
        }
        Ok(f)
    }

    /// Adds an explicit address pair `f(q) = p`.
    ///
    /// # Errors
    ///
    /// Returns an error if `q` is already mapped or `p` is already a target
    /// (the correspondence must stay a bijection).
    pub fn add_pair(&mut self, q: Address, p: Address) -> Result<(), PplError> {
        let q_id = q.id();
        let p_id = p.id();
        if self.pairs.contains_key(&q_id) {
            return Err(PplError::Other(format!(
                "correspondence already maps Q address `{q}`"
            )));
        }
        if self.pairs.values().any(|existing| *existing == p_id) {
            return Err(PplError::Other(format!(
                "correspondence already targets P address `{p}`"
            )));
        }
        self.pairs.insert(q_id, p_id);
        self.cache.write().expect("cache poisoned").clear();
        Ok(())
    }

    /// Adds a site rule: every Q address with head symbol `q_site` maps to
    /// the P address with head `p_site` and the same index components.
    ///
    /// # Errors
    ///
    /// Returns an error if `q_site` already has a rule or `p_site` is
    /// already a rule target.
    pub fn add_site_rule(&mut self, q_site: &str, p_site: &str) -> Result<(), PplError> {
        if self.site_rules.contains_key(q_site) {
            return Err(PplError::Other(format!(
                "correspondence already has a rule for Q site `{q_site}`"
            )));
        }
        if self.site_rules.values().any(|existing| existing == p_site) {
            return Err(PplError::Other(format!(
                "correspondence already targets P site `{p_site}`"
            )));
        }
        self.site_rules
            .insert(q_site.to_string(), p_site.to_string());
        self.cache.write().expect("cache poisoned").clear();
        Ok(())
    }

    /// Looks up `f(q)`, if `q ∈ F_Q`. Explicit pairs take precedence over
    /// site rules.
    pub fn lookup(&self, q: &Address) -> Option<Address> {
        self.lookup_id(q.id()).map(|id| id.resolve().clone())
    }

    /// Looks up `f(q)` on interned ids — the hot path. Semantics are
    /// identical to [`Correspondence::lookup`].
    pub fn lookup_id(&self, q: AddressId) -> Option<AddressId> {
        if let Some(&p) = self.pairs.get(&q) {
            return Some(p);
        }
        if self.site_rules.is_empty() {
            return None;
        }
        if let Some(&hit) = self.cache.read().expect("cache poisoned").get(&q) {
            return hit;
        }
        let q_addr = q.resolve();
        let result = match q_addr.components().first() {
            Some(Component::Sym(head)) => self
                .site_rules
                .get(head.as_ref())
                .map(|p_site| q_addr.with_head_sym(p_site).id()),
            _ => None,
        };
        self.cache
            .write()
            .expect("cache poisoned")
            .insert(q, result);
        result
    }

    /// Whether `q ∈ F_Q`.
    pub fn maps(&self, q: &Address) -> bool {
        self.lookup_id(q.id()).is_some()
    }

    /// The inverse correspondence `f⁻¹ : F_P → F_Q` (used by the backward
    /// kernel `ℓ_{Q→P} = k_{Q→P}` of Eq. (7)).
    pub fn inverse(&self) -> Correspondence {
        Correspondence {
            pairs: self.pairs.iter().map(|(&q, &p)| (p, q)).collect(),
            site_rules: self
                .site_rules
                .iter()
                .map(|(q, p)| (p.clone(), q.clone()))
                .collect(),
            cache: RwLock::new(FxHashMap::default()),
        }
    }

    /// Number of explicit pairs (site rules not counted: they describe
    /// unboundedly many pairs).
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the correspondence is empty (maps nothing).
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty() && self.site_rules.is_empty()
    }

    /// Iterates over the explicit pairs.
    pub fn pairs(&self) -> impl Iterator<Item = (&Address, &Address)> {
        self.pairs.iter().map(|(q, p)| (q.resolve(), p.resolve()))
    }

    /// Iterates over the site rules as `(Q site, P site)`.
    pub fn site_rules(&self) -> impl Iterator<Item = (&str, &str)> {
        self.site_rules
            .iter()
            .map(|(q, p)| (q.as_str(), p.as_str()))
    }
}

/// A diagnostic of how a correspondence covers a concrete pair of
/// traces — useful before committing to a translation (Section 5.3: the
/// error grows with every non-corresponding choice).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoverageReport {
    /// Pairs `(q address, p address)` that would be reused (mapped, both
    /// present, supports equal).
    pub reusable: Vec<(Address, Address)>,
    /// Q addresses with no correspondence entry.
    pub unmapped_q: Vec<Address>,
    /// Q addresses mapped to a P address absent from the P trace
    /// (Section 5.1 case (i)).
    pub missing_in_p: Vec<Address>,
    /// Q addresses mapped to a same-named choice with a different support
    /// (Section 5.1 case (ii)).
    pub support_mismatch: Vec<Address>,
    /// P addresses in the correspondence image that no Q choice consumed.
    pub unconsumed_p: Vec<Address>,
}

impl CoverageReport {
    /// Fraction of Q's choices that reuse a P choice (1.0 = every choice
    /// carried over).
    pub fn reuse_fraction(&self) -> f64 {
        let total = self.reusable.len()
            + self.unmapped_q.len()
            + self.missing_in_p.len()
            + self.support_mismatch.len();
        if total == 0 {
            return 1.0;
        }
        self.reusable.len() as f64 / total as f64
    }
}

impl Correspondence {
    /// Analyzes how this correspondence covers the concrete trace pair
    /// `(t of P, u of Q)` — which choices reuse, which fall back, and
    /// which P choices go unconsumed.
    pub fn coverage(&self, p_trace: &ppl::Trace, q_trace: &ppl::Trace) -> CoverageReport {
        let mut report = CoverageReport::default();
        let mut consumed: FxHashSet<AddressId> = FxHashSet::default();
        for (q_id, q_choice) in q_trace.choices_interned() {
            let q_addr = q_id.resolve();
            match self.lookup_id(q_id) {
                None => report.unmapped_q.push(q_addr.clone()),
                Some(p_id) => match p_trace.choice_by_id(p_id) {
                    None => report.missing_in_p.push(q_addr.clone()),
                    Some(p_choice) => {
                        if q_choice.dist.same_support(&p_choice.dist) {
                            consumed.insert(p_id);
                            report
                                .reusable
                                .push((q_addr.clone(), p_id.resolve().clone()));
                        } else {
                            report.support_mismatch.push(q_addr.clone());
                        }
                    }
                },
            }
        }
        let inverse = self.inverse();
        for (p_id, _) in p_trace.choices_interned() {
            if inverse.lookup_id(p_id).is_some() && !consumed.contains(&p_id) {
                report.unconsumed_p.push(p_id.resolve().clone());
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl::addr;

    #[test]
    fn explicit_pairs_round_trip() {
        // Fig. 5 correspondence: ε↔α, ζ↔β, η↔γ.
        let f = Correspondence::from_pairs([
            (addr!["eps"], addr!["alpha"]),
            (addr!["zeta"], addr!["beta"]),
            (addr!["eta"], addr!["gamma"]),
        ])
        .unwrap();
        assert_eq!(f.lookup(&addr!["eps"]), Some(addr!["alpha"]));
        assert_eq!(f.lookup(&addr!["iota"]), None);
        assert_eq!(f.num_pairs(), 3);
        let inv = f.inverse();
        assert_eq!(inv.lookup(&addr!["alpha"]), Some(addr!["eps"]));
        assert_eq!(inv.lookup(&addr!["eps"]), None);
    }

    #[test]
    fn bijectivity_enforced() {
        let mut f = Correspondence::new();
        f.add_pair(addr!["a"], addr!["x"]).unwrap();
        assert!(f.add_pair(addr!["a"], addr!["y"]).is_err());
        assert!(f.add_pair(addr!["b"], addr!["x"]).is_err());
        f.add_site_rule("s", "t").unwrap();
        assert!(f.add_site_rule("s", "u").is_err());
        assert!(f.add_site_rule("v", "t").is_err());
    }

    #[test]
    fn site_rules_preserve_indices() {
        // Section 5.4: geometric trial i corresponds to trial i.
        let f = Correspondence::identity_on(["trial"]);
        assert_eq!(f.lookup(&addr!["trial", 7]), Some(addr!["trial", 7]));
        assert_eq!(f.lookup(&addr!["trial"]), Some(addr!["trial"]));
        let mut g = Correspondence::new();
        g.add_site_rule("state", "hidden").unwrap();
        assert_eq!(g.lookup(&addr!["state", 2]), Some(addr!["hidden", 2]));
    }

    #[test]
    fn explicit_pairs_shadow_site_rules() {
        let mut f = Correspondence::new();
        f.add_site_rule("x", "x").unwrap();
        f.add_pair(addr!["x", 0], addr!["y", 9]).unwrap();
        assert_eq!(f.lookup(&addr!["x", 0]), Some(addr!["y", 9]));
        assert_eq!(f.lookup(&addr!["x", 1]), Some(addr!["x", 1]));
    }

    #[test]
    fn cached_lookups_survive_mutation() {
        // The memo cache must be invalidated by add_pair/add_site_rule.
        let mut f = Correspondence::new();
        f.add_site_rule("a", "b").unwrap();
        assert_eq!(f.lookup(&addr!["a", 1]), Some(addr!["b", 1]));
        assert_eq!(f.lookup(&addr!["q", 1]), None);
        // Now shadow the site rule with an explicit pair and add a rule
        // covering the previously-unmapped head.
        f.add_pair(addr!["a", 1], addr!["z", 0]).unwrap();
        f.add_site_rule("q", "r").unwrap();
        assert_eq!(f.lookup(&addr!["a", 1]), Some(addr!["z", 0]));
        assert_eq!(f.lookup(&addr!["a", 2]), Some(addr!["b", 2]));
        assert_eq!(f.lookup(&addr!["q", 1]), Some(addr!["r", 1]));
        // Clones behave identically.
        let g = f.clone();
        assert_eq!(g.lookup(&addr!["a", 1]), Some(addr!["z", 0]));
        assert_eq!(g.lookup(&addr!["q", 7]), Some(addr!["r", 7]));
    }

    #[test]
    fn lookup_and_lookup_id_agree() {
        let f = Correspondence::identity_on(["trial"]);
        let a = addr!["trial", 3];
        assert_eq!(
            f.lookup(&a).map(|p| p.id()),
            f.lookup_id(a.id()),
            "lookup and lookup_id disagree"
        );
        let unmapped = addr!["nope", 3];
        assert_eq!(f.lookup(&unmapped), None);
        assert_eq!(f.lookup_id(unmapped.id()), None);
    }

    #[test]
    fn empty_correspondence_maps_nothing() {
        let f = Correspondence::new();
        assert!(f.is_empty());
        assert!(!f.maps(&addr!["anything"]));
    }

    #[test]
    fn coverage_classifies_every_case() {
        use ppl::dist::Dist;
        use ppl::{Trace, Value};
        // P trace: alpha (flip), beta (uniform 0..5), omega (flip, mapped
        // but never consumed).
        let mut t = Trace::new();
        for (name, dist, value) in [
            ("alpha", Dist::flip(0.5), Value::Bool(true)),
            ("beta", Dist::uniform_int(0, 5), Value::Int(3)),
            ("omega", Dist::flip(0.5), Value::Bool(false)),
        ] {
            let lp = dist.log_prob(&value);
            t.record_choice(addr![name], value, dist, lp).unwrap();
        }
        // Q trace: eps (mapped to alpha, reusable), zeta (mapped to beta
        // but support differs), eta (mapped to missing gamma), iota
        // (unmapped).
        let mut u = Trace::new();
        for (name, dist, value) in [
            ("eps", Dist::flip(0.25), Value::Bool(true)),
            ("zeta", Dist::uniform_int(0, 9), Value::Int(7)),
            ("eta", Dist::flip(0.5), Value::Bool(true)),
            ("iota", Dist::uniform_int(-5, -2), Value::Int(-3)),
        ] {
            let lp = dist.log_prob(&value);
            u.record_choice(addr![name], value, dist, lp).unwrap();
        }
        let f = Correspondence::from_pairs([
            (addr!["eps"], addr!["alpha"]),
            (addr!["zeta"], addr!["beta"]),
            (addr!["eta"], addr!["gamma"]),
            (addr!["never"], addr!["omega"]),
        ])
        .unwrap();
        let report = f.coverage(&t, &u);
        assert_eq!(report.reusable, vec![(addr!["eps"], addr!["alpha"])]);
        assert_eq!(report.support_mismatch, vec![addr!["zeta"]]);
        assert_eq!(report.missing_in_p, vec![addr!["eta"]]);
        assert_eq!(report.unmapped_q, vec![addr!["iota"]]);
        assert_eq!(report.unconsumed_p, vec![addr!["beta"], addr!["omega"]]);
        assert!((report.reuse_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn full_coverage_reports_fraction_one() {
        let f = Correspondence::new();
        let report = f.coverage(&ppl::Trace::new(), &ppl::Trace::new());
        assert_eq!(report.reuse_fraction(), 1.0);
    }
}
