//! Weight diagnostics: effective sample size and degeneracy detection.
//!
//! Section 4.2 recommends monitoring the "effective number of traces"
//! [Liu & Chen 1995] to decide when to resample and to "detect when an
//! incremental approach may not be feasible".

use ppl::logweight::log_sum_exp;

/// Effective sample size `ESS = (Σ_j w_j)² / Σ_j w_j²`, computed stably
/// from log weights. Ranges from 1 (one particle dominates) to `M` (equal
/// weights); 0 for an empty or all-zero collection.
///
/// Non-finite weights are handled without NaN fallout: any `+∞` weight
/// dominates all finite mass, so the ESS is the count of `+∞` entries
/// (they share the mass equally in the limit); a NaN weight makes the
/// ESS 0, since a collection containing an invalid weight carries no
/// usable information. The SMC runtime quarantines both cases at the
/// collection boundary ([`crate::ParticleCollection::push_checked`]), so
/// these branches only fire on hand-built weight vectors.
pub fn effective_sample_size(log_weights: &[f64]) -> f64 {
    if log_weights.iter().any(|w| w.is_nan()) {
        return 0.0;
    }
    let infinite = log_weights.iter().filter(|w| **w == f64::INFINITY).count();
    if infinite > 0 {
        return infinite as f64;
    }
    let lse = log_sum_exp(log_weights);
    if lse == f64::NEG_INFINITY {
        return 0.0;
    }
    let doubled: Vec<f64> = log_weights.iter().map(|w| 2.0 * w).collect();
    let lse2 = log_sum_exp(&doubled);
    (2.0 * lse - lse2).exp()
}

/// A compact summary of a weight vector, for logging and experiment
/// output.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightSummary {
    /// Number of particles.
    pub count: usize,
    /// Effective sample size.
    pub ess: f64,
    /// Fraction of particles with zero weight.
    pub zero_fraction: f64,
    /// Largest normalized weight (1/M for uniform weights, →1 under
    /// degeneracy).
    pub max_normalized: f64,
}

/// Summarizes log weights.
pub fn summarize(log_weights: &[f64]) -> WeightSummary {
    let count = log_weights.len();
    let zeroes = log_weights
        .iter()
        .filter(|w| **w == f64::NEG_INFINITY)
        .count();
    let lse = log_sum_exp(log_weights);
    let max_normalized = if lse == f64::NEG_INFINITY {
        0.0
    } else {
        log_weights
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
            .exp()
            / lse.exp()
    };
    WeightSummary {
        count,
        ess: effective_sample_size(log_weights),
        zero_fraction: if count == 0 {
            0.0
        } else {
            zeroes as f64 / count as f64
        },
        max_normalized,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ess_equal_weights() {
        let lw = vec![2.5; 16];
        assert!((effective_sample_size(&lw) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn ess_single_survivor() {
        let mut lw = vec![f64::NEG_INFINITY; 9];
        lw.push(0.0);
        assert!((effective_sample_size(&lw) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ess_known_two_weight_case() {
        // weights 3 and 1: ESS = 16 / 10 = 1.6
        let lw = [3.0_f64.ln(), 1.0_f64.ln()];
        assert!((effective_sample_size(&lw) - 1.6).abs() < 1e-12);
    }

    #[test]
    fn ess_empty_and_degenerate() {
        assert_eq!(effective_sample_size(&[]), 0.0);
        assert_eq!(effective_sample_size(&[f64::NEG_INFINITY]), 0.0);
    }

    #[test]
    fn ess_non_finite_weights() {
        // NaN anywhere: no usable information.
        assert_eq!(effective_sample_size(&[0.0, f64::NAN]), 0.0);
        // +inf entries dominate; ESS is their count.
        assert_eq!(effective_sample_size(&[f64::INFINITY, 0.0, -1.0]), 1.0);
        assert_eq!(
            effective_sample_size(&[f64::INFINITY, f64::INFINITY, 0.0]),
            2.0
        );
        // A single particle has ESS exactly 1 whatever its finite weight.
        assert_eq!(effective_sample_size(&[-123.0]), 1.0);
    }

    #[test]
    fn ess_is_scale_invariant() {
        let a = [0.0, -1.0, -2.0];
        let b = [100.0, 99.0, 98.0];
        assert!((effective_sample_size(&a) - effective_sample_size(&b)).abs() < 1e-9);
    }

    #[test]
    fn summary_fields() {
        let s = summarize(&[0.0, f64::NEG_INFINITY]);
        assert_eq!(s.count, 2);
        assert!((s.zero_fraction - 0.5).abs() < 1e-12);
        assert!((s.max_normalized - 1.0).abs() < 1e-12);
        assert!((s.ess - 1.0).abs() < 1e-12);
        let empty = summarize(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.zero_fraction, 0.0);
    }
}
