//! Exact trace translator error (Eq. 4) and its Section 5.3
//! decomposition, computed by exhaustive enumeration on finite discrete
//! programs.
//!
//! The translator error
//!
//! ```text
//! ε(R) = D_KL(Q ‖ η_{P→Q})
//!      + E_{u∼Q}[ D_KL( ℓ_{Q→P}(·; u) ‖ ℓ_OPT(·; u) ) ]         (Eq. 4)
//! ```
//!
//! governs how many translated traces are needed for a given accuracy
//! (approximately exponentially many in ε(R), Appendix B). For the
//! correspondence translator, Section 5.3 splits ε(R) into three terms:
//! a *semantic* term `D_KL(Q^(f) ‖ P^(f))` on the corresponding choices, a
//! *forward-sampling* term for non-corresponding choices of `Q` sampled
//! from the prior, and a *backward-sampling* term for non-corresponding
//! choices of `P`.
//!
//! Everything here is exact (no Monte Carlo), which is why it demands
//! finite discrete programs. The test suite verifies `ε = Σ terms` and the
//! benches use it as an ablation axis.

use std::collections::HashMap;

use ppl::dist::Dist;
use ppl::Address;
use ppl::{ChoiceMap, Enumeration, Handler, LogWeight, Model, PplError, Trace, Value};

use crate::correspondence::Correspondence;
use crate::forward::kernel_density;

/// The exact error of a correspondence translator, with the Section 5.3
/// decomposition.
#[derive(Debug, Clone)]
pub struct TranslatorErrorReport {
    /// `ε(R)` of Eq. (4). `f64::INFINITY` when the translator cannot reach
    /// some posterior trace of `Q`.
    pub epsilon: f64,
    /// First term of Eq. (4): `D_KL(Q ‖ η_{P→Q})`.
    pub output_divergence: f64,
    /// Second term of Eq. (4): expected backward-kernel divergence from
    /// the optimal backward kernel (Eq. 3).
    pub backward_divergence: f64,
    /// Section 5.3 term 1: `D_KL(Q^(f) ‖ P^(f))` — the difference in
    /// probabilistic semantics of the corresponding choices.
    pub semantic_term: f64,
    /// Section 5.3 term 2: error from prior-sampling the
    /// non-corresponding choices of `Q`.
    pub forward_sampling_term: f64,
    /// Section 5.3 term 3: error from prior-sampling the
    /// non-corresponding choices of `P` in the weight estimate.
    pub backward_sampling_term: f64,
}

impl TranslatorErrorReport {
    /// The sum of the three Section 5.3 terms (equal to
    /// [`TranslatorErrorReport::epsilon`] whenever the correspondence is
    /// always consumable, per the paper's standing assumption).
    pub fn decomposition_sum(&self) -> f64 {
        self.semantic_term + self.forward_sampling_term + self.backward_sampling_term
    }
}

/// Computes the exact translator error for finite discrete `p`, `q`, and
/// `correspondence` (Q addresses → P addresses).
///
/// # Errors
///
/// Propagates enumeration failures (non-finite supports, trace-limit
/// overflow) and evaluation errors.
pub fn translator_error(
    p: &dyn Model,
    q: &dyn Model,
    correspondence: &Correspondence,
) -> Result<TranslatorErrorReport, PplError> {
    let p_enum = Enumeration::run(p)?;
    let q_enum = Enumeration::run(q)?;
    let inverse = correspondence.inverse();

    // Posterior tables keyed by canonical choice-map strings.
    let p_post: Vec<(Trace, f64)> = p_enum.posterior().map(|(t, pr)| (t.clone(), pr)).collect();
    let q_post: Vec<(Trace, f64)> = q_enum.posterior().map(|(u, pr)| (u.clone(), pr)).collect();

    // η_{P→Q}(u) = Σ_t Pr[t ∼ P] k(u; t): enumerate the forward kernel
    // from every posterior trace of P.
    let mut eta: HashMap<String, f64> = HashMap::new();
    let mut kernel_outputs: HashMap<String, Vec<(String, f64)>> = HashMap::new();
    for (t, p_t) in &p_post {
        let outputs = enumerate_kernel(q, t, correspondence)?;
        let mut entry = Vec::with_capacity(outputs.len());
        for (u, k) in outputs {
            let u_key = key_of(&u);
            *eta.entry(u_key.clone()).or_insert(0.0) += p_t * k;
            entry.push((u_key, k));
        }
        kernel_outputs.insert(key_of(t), entry);
    }

    // Term 1 of Eq. (4): D_KL(Q ‖ η).
    let mut output_divergence = 0.0;
    for (u, q_u) in &q_post {
        if *q_u == 0.0 {
            continue;
        }
        match eta.get(&key_of(u)) {
            Some(eta_u) if *eta_u > 0.0 => output_divergence += q_u * (q_u / eta_u).ln(),
            _ => {
                output_divergence = f64::INFINITY;
                break;
            }
        }
    }

    // Term 2 of Eq. (4): E_{u∼Q} D_KL(ℓ(·;u) ‖ ℓ_OPT(·;u)), with
    // ℓ_OPT(t;u) = Pr[t ∼ P] k(u;t) / η(u) (Eq. 3).
    let mut backward_divergence = 0.0;
    if output_divergence.is_finite() {
        for (u, q_u) in &q_post {
            if *q_u == 0.0 {
                continue;
            }
            let eta_u = eta.get(&key_of(u)).copied().unwrap_or(0.0);
            let backward = enumerate_kernel(p, u, &inverse)?;
            let mut inner = 0.0;
            for (t, l) in &backward {
                if *l == 0.0 {
                    continue;
                }
                // ℓ_OPT needs Pr[t ∼ P] and k(u; t).
                let p_t = p_post
                    .iter()
                    .find(|(pt, _)| key_of(pt) == key_of(t))
                    .map(|(_, pr)| *pr)
                    .unwrap_or(0.0);
                let (k_log, _) = kernel_density(q, u, t, correspondence)?;
                let k = k_log.prob();
                let l_opt = if eta_u > 0.0 { p_t * k / eta_u } else { 0.0 };
                if l_opt == 0.0 {
                    inner = f64::INFINITY;
                    break;
                }
                inner += l * (l / l_opt).ln();
            }
            backward_divergence += q_u * inner;
            if backward_divergence.is_infinite() {
                break;
            }
        }
    }

    let epsilon = output_divergence + backward_divergence;

    // ----- Section 5.3 three-term decomposition -----

    // Q^(f): marginal of the corresponding partial trace under Q.
    let mut q_f: HashMap<String, f64> = HashMap::new();
    let mut q_by_partial: HashMap<String, Vec<(Trace, f64)>> = HashMap::new();
    for (u, q_u) in &q_post {
        let s = partial_of_q(u, correspondence);
        let s_key = s.to_string();
        *q_f.entry(s_key.clone()).or_insert(0.0) += q_u;
        q_by_partial
            .entry(s_key)
            .or_default()
            .push((u.clone(), *q_u));
    }
    // P^(f): same partial (expressed in Q addresses) under P.
    let mut p_f: HashMap<String, f64> = HashMap::new();
    let mut p_by_partial: HashMap<String, Vec<(Trace, f64)>> = HashMap::new();
    for (t, p_t) in &p_post {
        let s = partial_of_p(t, &inverse);
        let s_key = s.to_string();
        *p_f.entry(s_key.clone()).or_insert(0.0) += p_t;
        p_by_partial
            .entry(s_key)
            .or_default()
            .push((t.clone(), *p_t));
    }

    // Term 1: D_KL(Q^(f) ‖ P^(f)).
    let mut semantic_term = 0.0;
    for (s_key, q_s) in &q_f {
        if *q_s == 0.0 {
            continue;
        }
        match p_f.get(s_key) {
            Some(p_s) if *p_s > 0.0 => semantic_term += q_s * (q_s / p_s).ln(),
            _ => {
                semantic_term = f64::INFINITY;
                break;
            }
        }
    }

    // Term 2: E_{s∼Q^(f)} D_KL(Q(·|s) ‖ η_{P→Q}(·|s)).
    // η(u|s) = k_{P→Q}(u; t) for any t consistent with f[s].
    let mut forward_sampling_term = 0.0;
    for (s_key, q_s) in &q_f {
        if *q_s == 0.0 {
            continue;
        }
        let Some(reps) = p_by_partial.get(s_key) else {
            forward_sampling_term = f64::INFINITY;
            break;
        };
        let rep_t = &reps[0].0;
        let mut inner = 0.0;
        for (u, q_u) in &q_by_partial[s_key] {
            let cond_q = q_u / q_s;
            if cond_q == 0.0 {
                continue;
            }
            let (k_log, _) = kernel_density(q, u, rep_t, correspondence)?;
            let k = k_log.prob();
            if k == 0.0 {
                inner = f64::INFINITY;
                break;
            }
            inner += cond_q * (cond_q / k).ln();
        }
        forward_sampling_term += q_s * inner;
        if forward_sampling_term.is_infinite() {
            break;
        }
    }

    // Term 3: E_{s∼Q^(f)} D_KL(η_{Q→P}(·|f[s]) ‖ P(·|f[s])).
    // η_{Q→P}(t|f[s]) = ℓ(t; u) for any u consistent with s.
    let mut backward_sampling_term = 0.0;
    for (s_key, q_s) in &q_f {
        if *q_s == 0.0 {
            continue;
        }
        let Some(p_group) = p_by_partial.get(s_key) else {
            backward_sampling_term = f64::INFINITY;
            break;
        };
        let p_s: f64 = p_group.iter().map(|(_, pr)| pr).sum();
        let rep_u = &q_by_partial[s_key][0].0;
        let backward = enumerate_kernel(p, rep_u, &inverse)?;
        let mut inner = 0.0;
        for (t, l) in &backward {
            if *l == 0.0 {
                continue;
            }
            let p_t = p_group
                .iter()
                .find(|(pt, _)| key_of(pt) == key_of(t))
                .map(|(_, pr)| *pr)
                .unwrap_or(0.0);
            let cond_p = if p_s > 0.0 { p_t / p_s } else { 0.0 };
            if cond_p == 0.0 {
                inner = f64::INFINITY;
                break;
            }
            inner += l * (l / cond_p).ln();
        }
        backward_sampling_term += q_s * inner;
        if backward_sampling_term.is_infinite() {
            break;
        }
    }

    Ok(TranslatorErrorReport {
        epsilon,
        output_divergence,
        backward_divergence,
        semantic_term,
        forward_sampling_term,
        backward_sampling_term,
    })
}

/// Canonical key of a trace: its choice map rendered in address order.
fn key_of(t: &Trace) -> String {
    t.to_choice_map().to_string()
}

/// The corresponding partial trace `s` of a trace `u` of `Q`: the choices
/// at addresses in `F_Q`.
fn partial_of_q(u: &Trace, correspondence: &Correspondence) -> ChoiceMap {
    u.filter_choices(|addr| correspondence.maps(addr))
}

/// The corresponding partial trace of a trace `t` of `P`, expressed in Q
/// addresses (so it is directly comparable with [`partial_of_q`]).
fn partial_of_p(t: &Trace, inverse: &Correspondence) -> ChoiceMap {
    let mut s = ChoiceMap::new();
    for (addr_p, rec) in t.choices() {
        if let Some(addr_q) = inverse.lookup(addr_p) {
            s.insert(addr_q, rec.value.clone());
        }
    }
    s
}

/// Enumerates the output distribution of a correspondence kernel: all
/// traces of `model` obtainable by reusing corresponding choices from
/// `source` and enumerating the rest, with their kernel probabilities.
fn enumerate_kernel(
    model: &dyn Model,
    source: &Trace,
    corr_into_source: &Correspondence,
) -> Result<Vec<(Trace, f64)>, PplError> {
    let mut results = Vec::new();
    let mut work: Vec<Vec<Value>> = vec![Vec::new()];
    while let Some(prefix) = work.pop() {
        if results.len() > ppl::enumerate::DEFAULT_TRACE_LIMIT {
            return Err(PplError::FuelExhausted {
                budget: ppl::enumerate::DEFAULT_TRACE_LIMIT as u64,
            });
        }
        let mut handler = KernelEnumHandler {
            source,
            corr: corr_into_source,
            prefix: &prefix,
            taken: Vec::new(),
            branch_supports: Vec::new(),
            trace: Trace::new(),
            log_k: LogWeight::ONE,
        };
        let value = model.exec(&mut handler)?;
        let KernelEnumHandler {
            taken,
            branch_supports,
            mut trace,
            log_k,
            ..
        } = handler;
        trace.set_return_value(value);
        for (pos, support) in branch_supports {
            for alt in support.into_iter().skip(1) {
                let mut new_prefix = taken[..pos].to_vec();
                new_prefix.push(alt);
                work.push(new_prefix);
            }
        }
        results.push((trace, log_k.prob()));
    }
    Ok(results)
}

/// Enumerating handler that reuses corresponding choices deterministically
/// and branches over the support of every fresh choice. Only the *fresh*
/// choices count toward the kernel probability; fresh choices also count
/// toward the branching prefix.
struct KernelEnumHandler<'a> {
    source: &'a Trace,
    corr: &'a Correspondence,
    prefix: &'a [Value],
    taken: Vec<Value>,
    branch_supports: Vec<(usize, Vec<Value>)>,
    trace: Trace,
    log_k: LogWeight,
}

impl Handler for KernelEnumHandler<'_> {
    fn sample(&mut self, addr: Address, dist: Dist) -> Result<Value, PplError> {
        let reusable = match self.corr.lookup_id(addr.id()) {
            Some(src_id) => match self.source.choice_by_id(src_id) {
                Some(record) if dist.same_support(&record.dist) => Some(record.value.clone()),
                _ => None,
            },
            None => None,
        };
        let value = match reusable {
            Some(v) => v,
            None => {
                // Fresh: consume the prefix or open a new branch point.
                let pos = self.taken.len();
                let v = if pos < self.prefix.len() {
                    self.prefix[pos].clone()
                } else {
                    let support = dist
                        .enumerate_support()
                        .ok_or(PplError::NonEnumerable(addr.clone()))?;
                    let first = support[0].clone();
                    self.branch_supports.push((pos, support));
                    first
                };
                self.log_k += dist.log_prob(&v);
                self.taken.push(v.clone());
                v
            }
        };
        let log_prob = dist.log_prob(&value);
        self.trace
            .record_choice(addr, value.clone(), dist, log_prob)?;
        Ok(value)
    }

    fn observe(&mut self, addr: Address, dist: Dist, value: Value) -> Result<(), PplError> {
        let log_prob = dist.log_prob(&value);
        self.trace.record_observation(addr, value, dist, log_prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl::addr;
    use ppl::Handler;

    /// P: x ~ flip(0.5); observe flip(x?0.9:0.1)=1.
    fn p_model(h: &mut dyn Handler) -> Result<Value, PplError> {
        let x = h.sample(addr!["x"], Dist::flip(0.5))?;
        let po = if x.truthy()? { 0.9 } else { 0.1 };
        h.observe(addr!["o"], Dist::flip(po), Value::Bool(true))?;
        Ok(x)
    }

    #[test]
    fn identity_translator_has_zero_error() {
        let f = Correspondence::identity_on(["x"]);
        let report = translator_error(&p_model, &p_model, &f).unwrap();
        assert!(report.epsilon.abs() < 1e-12, "ε = {}", report.epsilon);
        assert!(report.decomposition_sum().abs() < 1e-12);
    }

    #[test]
    fn semantic_term_detects_changed_prior() {
        // Q changes the prior on x; everything in correspondence, so the
        // error is purely semantic.
        let q_model = |h: &mut dyn Handler| {
            let x = h.sample(addr!["x"], Dist::flip(0.2))?;
            let po = if x.truthy()? { 0.9 } else { 0.1 };
            h.observe(addr!["o"], Dist::flip(po), Value::Bool(true))?;
            Ok(x)
        };
        let f = Correspondence::identity_on(["x"]);
        let report = translator_error(&p_model, &q_model, &f).unwrap();
        assert!(report.epsilon > 0.0);
        assert!(report.semantic_term > 0.0);
        assert!(report.forward_sampling_term.abs() < 1e-12);
        assert!(report.backward_sampling_term.abs() < 1e-12);
        assert!(
            (report.epsilon - report.decomposition_sum()).abs() < 1e-9,
            "ε {} vs sum {}",
            report.epsilon,
            report.decomposition_sum()
        );
    }

    #[test]
    fn forward_sampling_term_charges_new_choices() {
        // Q adds a fresh latent that the observation depends on, like the
        // earthquake variable of Fig. 1.
        let q_model = |h: &mut dyn Handler| {
            let x = h.sample(addr!["x"], Dist::flip(0.5))?;
            let y = h.sample(addr!["y"], Dist::flip(0.3))?;
            let po = if x.truthy()? || y.truthy()? { 0.9 } else { 0.1 };
            h.observe(addr!["o"], Dist::flip(po), Value::Bool(true))?;
            Ok(x)
        };
        let f = Correspondence::identity_on(["x"]);
        let report = translator_error(&p_model, &q_model, &f).unwrap();
        assert!(report.forward_sampling_term > 0.0);
        assert!(report.backward_sampling_term.abs() < 1e-12);
        assert!(
            (report.epsilon - report.decomposition_sum()).abs() < 1e-9,
            "ε {} vs sum {}",
            report.epsilon,
            report.decomposition_sum()
        );
    }

    #[test]
    fn backward_sampling_term_charges_removed_choices() {
        // P has an extra latent that Q lacks: the third term fires
        // ("if every random choice in P is in correspondence … the third
        // term is zero" — here it is not).
        let p_big = |h: &mut dyn Handler| {
            let x = h.sample(addr!["x"], Dist::flip(0.5))?;
            let y = h.sample(addr!["y"], Dist::flip(0.3))?;
            let po = if x.truthy()? || y.truthy()? { 0.9 } else { 0.1 };
            h.observe(addr!["o"], Dist::flip(po), Value::Bool(true))?;
            Ok(x)
        };
        let f = Correspondence::identity_on(["x"]);
        let report = translator_error(&p_big, &p_model, &f).unwrap();
        assert!(report.backward_sampling_term > 0.0);
        assert!(
            (report.epsilon - report.decomposition_sum()).abs() < 1e-9,
            "ε {} vs sum {}",
            report.epsilon,
            report.decomposition_sum()
        );
    }

    #[test]
    fn empty_correspondence_error_is_finite_and_decomposes() {
        let q_model = |h: &mut dyn Handler| {
            let y = h.sample(addr!["y"], Dist::flip(0.4))?;
            let po = if y.truthy()? { 0.6 } else { 0.3 };
            h.observe(addr!["o"], Dist::flip(po), Value::Bool(true))?;
            Ok(y)
        };
        let f = Correspondence::new();
        let report = translator_error(&p_model, &q_model, &f).unwrap();
        assert!(report.epsilon.is_finite());
        assert!(report.semantic_term.abs() < 1e-12); // nothing corresponds
        assert!(
            (report.epsilon - report.decomposition_sum()).abs() < 1e-9,
            "ε {} vs sum {}",
            report.epsilon,
            report.decomposition_sum()
        );
    }
}
