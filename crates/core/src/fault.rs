//! Deterministic fault injection for exercising the SMC failure paths.
//!
//! [`FaultyTranslator`] wraps any [`TraceTranslator`] and misbehaves
//! exactly where a [`FaultPlan`] says to: "particle `j` at step `s`
//! panics / returns a NaN weight / errors". Because faults key on the
//! [`TranslateCtx`] position rather than on call order, an injected run
//! is reproducible across thread counts and retry schedules — which is
//! what lets the integration tests assert exact recovery behavior.

use rand::RngCore;

use ppl::{LogWeight, PplError, Trace};

use crate::translator::{StateTranslator, TraceTranslator, TranslateCtx, Translated};

/// The kind of fault to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside `translate` (exercises panic isolation).
    Panic,
    /// Translate normally but overwrite the weight with a NaN log weight
    /// (exercises the non-finite-weight quarantine).
    NanWeight,
    /// Return a structured [`PplError`] (exercises error handling).
    Error,
    /// Sleep for the plan's hang duration before delegating to the inner
    /// translator, simulating a wedged translation (exercises the
    /// watchdog's deadline detection; see
    /// [`FaultPlan::with_hang_duration`]).
    Hang,
}

/// One planned fault: particle `particle` at step `step` misbehaves on
/// attempts `0..fail_attempts`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// The SMC step at which to inject.
    pub step: usize,
    /// The particle index to fault.
    pub particle: usize,
    /// What to do.
    pub kind: FaultKind,
    /// Number of leading attempts that fail; attempt `fail_attempts` and
    /// later succeed. `usize::MAX` means the particle never recovers.
    pub fail_attempts: usize,
}

impl FaultSpec {
    /// A fault that fails only the first attempt (so one retry recovers).
    pub fn once(step: usize, particle: usize, kind: FaultKind) -> FaultSpec {
        FaultSpec {
            step,
            particle,
            kind,
            fail_attempts: 1,
        }
    }

    /// A fault that fails every attempt.
    pub fn always(step: usize, particle: usize, kind: FaultKind) -> FaultSpec {
        FaultSpec {
            step,
            particle,
            kind,
            fail_attempts: usize::MAX,
        }
    }
}

/// A set of planned faults.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    faults: Vec<FaultSpec>,
    /// How long a [`FaultKind::Hang`] fault sleeps before completing.
    hang: std::time::Duration,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            faults: Vec::new(),
            hang: std::time::Duration::from_millis(500),
        }
    }
}

impl FaultPlan {
    /// An empty plan (no faults — the wrapper is transparent).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a fault to the plan.
    pub fn with(mut self, spec: FaultSpec) -> FaultPlan {
        self.faults.push(spec);
        self
    }

    /// Sets how long [`FaultKind::Hang`] faults sleep (default 500 ms —
    /// long enough to trip any realistic test deadline, short enough to
    /// keep test wall-clock bounded).
    #[must_use]
    pub fn with_hang_duration(mut self, hang: std::time::Duration) -> FaultPlan {
        self.hang = hang;
        self
    }

    /// The configured hang duration.
    pub fn hang_duration(&self) -> std::time::Duration {
        self.hang
    }

    /// The fault (if any) scheduled for the given position.
    pub fn fault_at(&self, ctx: TranslateCtx) -> Option<FaultKind> {
        self.faults
            .iter()
            .find(|f| {
                f.step == ctx.step && f.particle == ctx.particle && ctx.attempt < f.fail_attempts
            })
            .map(|f| f.kind)
    }

    /// Number of planned faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// A [`TraceTranslator`] wrapper that injects the faults of a
/// [`FaultPlan`] and otherwise delegates to the inner translator.
#[derive(Debug, Clone)]
pub struct FaultyTranslator<T> {
    inner: T,
    plan: FaultPlan,
}

impl<T> FaultyTranslator<T> {
    /// Wraps `inner` with the given plan.
    pub fn new(inner: T, plan: FaultPlan) -> FaultyTranslator<T> {
        FaultyTranslator { inner, plan }
    }

    /// The wrapped translator.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: TraceTranslator> TraceTranslator for FaultyTranslator<T> {
    fn translate(&self, t: &Trace, rng: &mut dyn RngCore) -> Result<Translated, PplError> {
        // A context-less call is position (0, 0, 0): plans targeting step
        // 0 / particle 0 still fire so the wrapper is testable standalone.
        self.translate_at(t, TranslateCtx::default(), rng)
    }

    fn translate_at(
        &self,
        t: &Trace,
        ctx: TranslateCtx,
        rng: &mut dyn RngCore,
    ) -> Result<Translated, PplError> {
        match self.plan.fault_at(ctx) {
            Some(FaultKind::Panic) => panic!(
                "injected panic: step {} particle {} attempt {}",
                ctx.step, ctx.particle, ctx.attempt
            ),
            Some(FaultKind::Error) => Err(PplError::Other(format!(
                "injected translation error: step {} particle {} attempt {}",
                ctx.step, ctx.particle, ctx.attempt
            ))),
            Some(FaultKind::NanWeight) => {
                let mut out = self.inner.translate_at(t, ctx, rng)?;
                out.log_weight = LogWeight::from_log(f64::NAN);
                Ok(out)
            }
            Some(FaultKind::Hang) => {
                std::thread::sleep(self.plan.hang);
                self.inner.translate_at(t, ctx, rng)
            }
            None => self.inner.translate_at(t, ctx, rng),
        }
    }
}

impl<S, T: StateTranslator<S>> StateTranslator<S> for FaultyTranslator<T> {
    fn translate_state(
        &self,
        state: &S,
        ctx: TranslateCtx,
        rng: &mut dyn RngCore,
    ) -> Result<(S, LogWeight), PplError> {
        match self.plan.fault_at(ctx) {
            Some(FaultKind::Panic) => panic!(
                "injected panic: step {} particle {} attempt {}",
                ctx.step, ctx.particle, ctx.attempt
            ),
            Some(FaultKind::Error) => Err(PplError::Other(format!(
                "injected translation error: step {} particle {} attempt {}",
                ctx.step, ctx.particle, ctx.attempt
            ))),
            Some(FaultKind::NanWeight) => {
                let (next, _) = self.inner.translate_state(state, ctx, rng)?;
                Ok((next, LogWeight::from_log(f64::NAN)))
            }
            Some(FaultKind::Hang) => {
                std::thread::sleep(self.plan.hang);
                self.inner.translate_state(state, ctx, rng)
            }
            None => self.inner.translate_state(state, ctx, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl::Value;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Identity;

    impl TraceTranslator for Identity {
        fn translate(&self, t: &Trace, _rng: &mut dyn RngCore) -> Result<Translated, PplError> {
            Ok(Translated {
                trace: t.clone(),
                log_weight: LogWeight::ONE,
                output: Value::Int(0),
            })
        }
    }

    #[test]
    fn empty_plan_is_transparent() {
        let mut rng = StdRng::seed_from_u64(0);
        let faulty = FaultyTranslator::new(Identity, FaultPlan::new());
        assert!(faulty.plan.is_empty());
        let out = faulty
            .translate_at(&Trace::new(), TranslateCtx::new(3, 9), &mut rng)
            .unwrap();
        assert_eq!(out.log_weight, LogWeight::ONE);
    }

    #[test]
    fn error_fault_fires_only_at_its_position() {
        let mut rng = StdRng::seed_from_u64(0);
        let plan = FaultPlan::new().with(FaultSpec::always(1, 2, FaultKind::Error));
        assert_eq!(plan.len(), 1);
        let faulty = FaultyTranslator::new(Identity, plan);
        let t = Trace::new();
        assert!(faulty
            .translate_at(&t, TranslateCtx::new(1, 2), &mut rng)
            .is_err());
        assert!(faulty
            .translate_at(&t, TranslateCtx::new(1, 3), &mut rng)
            .is_ok());
        assert!(faulty
            .translate_at(&t, TranslateCtx::new(0, 2), &mut rng)
            .is_ok());
    }

    #[test]
    fn once_fault_clears_after_first_attempt() {
        let mut rng = StdRng::seed_from_u64(0);
        let plan = FaultPlan::new().with(FaultSpec::once(0, 5, FaultKind::Error));
        let faulty = FaultyTranslator::new(Identity, plan);
        let t = Trace::new();
        let ctx = TranslateCtx::new(0, 5);
        assert!(faulty.translate_at(&t, ctx, &mut rng).is_err());
        assert!(faulty
            .translate_at(&t, ctx.with_attempt(1), &mut rng)
            .is_ok());
    }

    #[test]
    fn nan_fault_poisons_the_weight_only() {
        let mut rng = StdRng::seed_from_u64(0);
        let plan = FaultPlan::new().with(FaultSpec::always(0, 0, FaultKind::NanWeight));
        let faulty = FaultyTranslator::new(Identity, plan);
        let out = faulty
            .translate_at(&Trace::new(), TranslateCtx::new(0, 0), &mut rng)
            .unwrap();
        assert!(out.log_weight.is_nan());
        assert_eq!(out.output, Value::Int(0));
    }

    #[test]
    fn hang_fault_delays_then_succeeds() {
        let mut rng = StdRng::seed_from_u64(0);
        let plan = FaultPlan::new()
            .with(FaultSpec::once(0, 0, FaultKind::Hang))
            .with_hang_duration(std::time::Duration::from_millis(30));
        assert_eq!(plan.hang_duration(), std::time::Duration::from_millis(30));
        let faulty = FaultyTranslator::new(Identity, plan);
        let start = std::time::Instant::now();
        let out = faulty
            .translate_at(&Trace::new(), TranslateCtx::new(0, 0), &mut rng)
            .unwrap();
        assert!(start.elapsed() >= std::time::Duration::from_millis(30));
        assert_eq!(out.log_weight, LogWeight::ONE);
    }

    #[test]
    fn panic_fault_panics() {
        let plan = FaultPlan::new().with(FaultSpec::always(0, 0, FaultKind::Panic));
        let faulty = FaultyTranslator::new(Identity, plan);
        let result = std::panic::catch_unwind(|| {
            let mut rng = StdRng::seed_from_u64(0);
            faulty.translate_at(&Trace::new(), TranslateCtx::new(0, 0), &mut rng)
        });
        assert!(result.is_err());
    }
}
