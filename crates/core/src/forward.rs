//! The correspondence-based trace translator (Section 5).
//!
//! **Forward kernel** (Section 5.1, Eq. 6): execute `Q`; at a random
//! choice `i` with `f(i)` present in `t` and equal support, reuse the value
//! `t_{f(i)}`; otherwise sample by evaluating the random expression. The
//! kernel density is the product of the freshly sampled choices'
//! probabilities.
//!
//! **Backward kernel** (Section 5.2, Eq. 7): `ℓ_{Q→P} = k_{Q→P}` — the
//! kernel that translates back the same way. Its density at the original
//! trace `t` is computed exactly by replaying `P` pinned to `t`, charging
//! each choice that would *not* be reused from `u` its prior probability
//! (reused choices are deterministic; a reused choice that disagrees with
//! `t` makes the density zero).
//!
//! **Weight estimate** (Eq. 2/8):
//! `log ŵ = log P̃r[u ∼ Q] + log ℓ(t; u) − log P̃r[t ∼ P] − log k(u; t)`.
//! When every corresponding choice is consumed in both directions, the
//! fresh-choice factors cancel and this reduces exactly to Eq. (8) — the
//! ratio over corresponding choices and observations only.

use rand::RngCore;

use ppl::dist::Dist;
use ppl::{Address, Handler, LogWeight, Model, PplError, Trace, Value};

use crate::correspondence::Correspondence;
use crate::translator::{TraceTranslator, Translated};

/// Why a choice of `Q` was not reused from the old trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreshReason {
    /// The address has no correspondence entry (`i ∉ F_Q`).
    NotInCorrespondence,
    /// `f(i)` is not present in `t` (case (i) of Section 5.1).
    MissingInOld,
    /// The supports differ (case (ii) of Section 5.1).
    SupportMismatch,
}

/// Statistics of one translation, useful for diagnosing translator
/// quality.
#[derive(Debug, Clone, Default)]
pub struct TranslationStats {
    /// Number of choices of `u` reused from `t` through the
    /// correspondence.
    pub reused: usize,
    /// Freshly sampled choices, with the reason each fell back.
    pub fresh: Vec<(Address, FreshReason)>,
    /// Whether the backward kernel density was zero (the translated trace
    /// then carries weight zero).
    pub backward_zero: bool,
}

/// A proposal for the *fresh* (non-corresponding) choices of the forward
/// kernel.
///
/// The paper samples non-corresponding choices of `Q` "by evaluating the
/// appropriate random expression" — i.e. from the prior — and names
/// smarter choices as future work: "reducing the error of the trace
/// translator by exploiting analytically tractable conditional
/// distributions for non-corresponding choices is a promising area".
/// Implementations of this trait provide exactly that hook: given the
/// fresh choice's address, its prior, and the *old* trace, return a
/// custom distribution to sample from (the kernel density is adjusted
/// accordingly, so the weight estimate stays unbiased).
///
/// # Correctness requirement
///
/// The proposal's support must cover the prior's support wherever the
/// posterior of `Q` puts mass; otherwise some traces become unreachable
/// and Lemma 2's guarantee degrades to the reachable subset.
pub trait FreshProposal: Send + Sync {
    /// A proposal distribution for the fresh choice at `addr`, or `None`
    /// to sample from `prior`.
    fn propose(&self, addr: &Address, prior: &Dist, old: &Trace) -> Option<Dist>;
}

impl<F> FreshProposal for F
where
    F: Fn(&Address, &Dist, &Trace) -> Option<Dist> + Send + Sync,
{
    fn propose(&self, addr: &Address, prior: &Dist, old: &Trace) -> Option<Dist> {
        self(addr, prior, old)
    }
}

/// The Section 5 trace translator for a pair of programs related by a
/// semantic [`Correspondence`].
///
/// # Examples
///
/// ```
/// use incremental::{Correspondence, CorrespondenceTranslator, TraceTranslator};
/// use ppl::{addr, Handler, PplError, Value};
/// use ppl::dist::Dist;
/// use ppl::handlers::simulate;
/// use rand::SeedableRng;
///
/// let p = |h: &mut dyn Handler| h.sample(addr!["x"], Dist::flip(0.5));
/// let q = |h: &mut dyn Handler| h.sample(addr!["x"], Dist::flip(0.25));
/// let translator = CorrespondenceTranslator::new(p, q, Correspondence::identity_on(["x"]));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let t = simulate(&p, &mut rng)?;
/// let out = translator.translate(&t, &mut rng)?;
/// assert_eq!(out.trace.value(&addr!["x"]), t.value(&addr!["x"]));
/// # Ok::<(), PplError>(())
/// ```
#[derive(Clone)]
pub struct CorrespondenceTranslator<P, Q> {
    p: P,
    q: Q,
    correspondence: Correspondence,
    /// `f⁻¹`, computed once at construction: the backward replay needs it
    /// on every translation.
    inverse: Correspondence,
    proposal: Option<std::sync::Arc<dyn FreshProposal>>,
}

impl<P: std::fmt::Debug, Q: std::fmt::Debug> std::fmt::Debug for CorrespondenceTranslator<P, Q> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CorrespondenceTranslator")
            .field("p", &self.p)
            .field("q", &self.q)
            .field("correspondence", &self.correspondence)
            .field("has_proposal", &self.proposal.is_some())
            .finish()
    }
}

impl<P: Model, Q: Model> CorrespondenceTranslator<P, Q> {
    /// Creates a translator from `p` to `q` using `correspondence` (a map
    /// from `Q` addresses to `P` addresses).
    pub fn new(p: P, q: Q, correspondence: Correspondence) -> CorrespondenceTranslator<P, Q> {
        let inverse = correspondence.inverse();
        CorrespondenceTranslator {
            p,
            q,
            correspondence,
            inverse,
            proposal: None,
        }
    }

    /// Installs a custom proposal for fresh (non-corresponding) choices —
    /// the paper's "analytically tractable conditional distributions"
    /// future-work hook. See [`FreshProposal`] for the correctness
    /// requirement.
    #[must_use]
    pub fn with_fresh_proposal(
        mut self,
        proposal: impl FreshProposal + 'static,
    ) -> CorrespondenceTranslator<P, Q> {
        self.proposal = Some(std::sync::Arc::new(proposal));
        self
    }

    /// The correspondence in use.
    pub fn correspondence(&self) -> &Correspondence {
        &self.correspondence
    }

    /// Translates `t` and additionally returns per-translation statistics.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from `Q` and the backward replay of
    /// `P`.
    pub fn translate_with_stats(
        &self,
        t: &Trace,
        rng: &mut dyn RngCore,
    ) -> Result<(Translated, TranslationStats), PplError> {
        // 1. Forward: run Q, reusing corresponding choices of t.
        let mut fwd = ForwardHandler {
            old: t,
            correspondence: &self.correspondence,
            proposal: self.proposal.as_deref(),
            rng,
            trace: Trace::new(),
            log_kernel: LogWeight::ONE,
            stats: TranslationStats::default(),
        };
        let output = self.q.exec(&mut fwd)?;
        let ForwardHandler {
            mut trace,
            log_kernel,
            mut stats,
            ..
        } = fwd;
        trace.set_return_value(output.clone());

        // 2. Backward: replay P pinned to t, reusing from u, to get
        //    log ℓ_{Q→P}(t; u) and a freshly re-scored log P̃r[t ∼ P].
        let (log_l, replayed) = kernel_density(&self.p, t, &trace, &self.inverse)?;
        let t_score = replayed.score();
        if log_l.is_zero() {
            stats.backward_zero = true;
        }

        // 3. ŵ = P̃r[u ∼ Q] · ℓ(t; u) / (P̃r[t ∼ P] · k(u; t)).
        let log_weight = trace.score() + log_l - t_score - log_kernel;
        Ok((
            Translated {
                trace,
                log_weight,
                output,
            },
            stats,
        ))
    }
}

impl<P: Model, Q: Model> TraceTranslator for CorrespondenceTranslator<P, Q> {
    fn translate(&self, t: &Trace, rng: &mut dyn RngCore) -> Result<Translated, PplError> {
        self.translate_with_stats(t, rng).map(|(out, _)| out)
    }
}

struct ForwardHandler<'a> {
    old: &'a Trace,
    correspondence: &'a Correspondence,
    proposal: Option<&'a dyn FreshProposal>,
    rng: &'a mut dyn RngCore,
    trace: Trace,
    /// `log k_{P→Q}(u; t)`: probability of the freshly sampled choices.
    log_kernel: LogWeight,
    stats: TranslationStats,
}

impl Handler for ForwardHandler<'_> {
    fn sample(&mut self, addr: Address, dist: Dist) -> Result<Value, PplError> {
        // Intern once; every map touch below is a copyable-id probe.
        let id = addr.id();
        let mut fresh_reason = None;
        let reused_value = match self.correspondence.lookup_id(id) {
            None => {
                fresh_reason = Some(FreshReason::NotInCorrespondence);
                None
            }
            Some(p_id) => match self.old.choice_by_id(p_id) {
                None => {
                    fresh_reason = Some(FreshReason::MissingInOld);
                    None
                }
                Some(record) => {
                    if dist.same_support(&record.dist) {
                        Some(record.value.clone())
                    } else {
                        fresh_reason = Some(FreshReason::SupportMismatch);
                        None
                    }
                }
            },
        };
        let value = match reused_value {
            Some(v) => {
                self.stats.reused += 1;
                v
            }
            None => {
                // Fresh choice: sample from the prior, or from a custom
                // proposal when one is installed (the kernel density uses
                // whichever distribution produced the value).
                let proposal_dist = self
                    .proposal
                    .and_then(|p| p.propose(&addr, &dist, self.old));
                let v = match &proposal_dist {
                    Some(q_dist) => {
                        let v = q_dist.sample(self.rng);
                        self.log_kernel += q_dist.log_prob(&v);
                        v
                    }
                    None => {
                        let v = dist.sample(self.rng);
                        self.log_kernel += dist.log_prob(&v);
                        v
                    }
                };
                self.stats
                    .fresh
                    .push((addr, fresh_reason.expect("fresh without reason")));
                v
            }
        };
        let log_prob = dist.log_prob(&value);
        self.trace
            .record_choice_interned(id, value.clone(), dist, log_prob)?;
        Ok(value)
    }

    fn observe(&mut self, addr: Address, dist: Dist, value: Value) -> Result<(), PplError> {
        let log_prob = dist.log_prob(&value);
        self.trace.record_observation(addr, value, dist, log_prob)
    }
}

/// Evaluates the exact weight estimate `ŵ_{P→Q}(u; t)` (Eq. 2 with the
/// Section 5 kernels) for a *given* pair of traces.
///
/// This recomputes all four factors from scratch — `P̃r[u ∼ Q]`,
/// `ℓ_{Q→P}(t; u)`, `P̃r[t ∼ P]`, `k_{P→Q}(u; t)` — and is the reference
/// oracle the optimized Section 6 translator is differentially tested
/// against.
///
/// # Errors
///
/// Propagates evaluation errors from replaying either program.
pub fn exact_weight_estimate(
    p: &dyn Model,
    q: &dyn Model,
    correspondence: &Correspondence,
    t: &Trace,
    u: &Trace,
) -> Result<LogWeight, PplError> {
    let (log_k, u_rescored) = kernel_density(q, u, t, correspondence)?;
    let inverse = correspondence.inverse();
    let (log_l, t_rescored) = kernel_density(p, t, u, &inverse)?;
    Ok(u_rescored.score() + log_l - t_rescored.score() - log_k)
}

/// Evaluates the density of a correspondence kernel at a *given* output
/// trace.
///
/// Replays `model` pinned to the choices of `pinned`; a choice whose
/// address maps (through `corr_into_source`) to a same-support choice of
/// `source` would be reused deterministically by the kernel — it
/// contributes density 1 when the values agree and density 0 otherwise.
/// Every other choice is charged its prior probability. Returns the log
/// density together with the re-scored replay of `pinned` under `model`.
///
/// Instantiations: `kernel_density(P, t, u, f⁻¹)` is the backward density
/// `ℓ_{Q→P}(t; u) = k_{Q→P}(t; u)` of Eq. (7); `kernel_density(Q, u, t, f)`
/// is the forward density `k_{P→Q}(u; t)` of Eq. (6).
pub(crate) fn kernel_density(
    model: &dyn Model,
    pinned: &Trace,
    source: &Trace,
    corr_into_source: &Correspondence,
) -> Result<(LogWeight, Trace), PplError> {
    let mut scorer = KernelDensityScorer {
        pinned,
        source,
        corr: corr_into_source,
        replayed: Trace::new(),
        log_density: LogWeight::ONE,
    };
    model.exec(&mut scorer)?;
    Ok((scorer.log_density, scorer.replayed))
}

struct KernelDensityScorer<'a> {
    pinned: &'a Trace,
    source: &'a Trace,
    corr: &'a Correspondence,
    replayed: Trace,
    log_density: LogWeight,
}

impl Handler for KernelDensityScorer<'_> {
    fn sample(&mut self, addr: Address, dist: Dist) -> Result<Value, PplError> {
        let id = addr.id();
        let value = match self.pinned.value_by_id(id) {
            Some(v) => v.clone(),
            None => return Err(PplError::MissingChoice(addr)),
        };
        // Borrow the source value: it only feeds the num_eq comparison.
        let reusable = match self.corr.lookup_id(id) {
            Some(src_id) => match self.source.choice_by_id(src_id) {
                Some(record) if dist.same_support(&record.dist) => Some(&record.value),
                _ => None,
            },
            None => None,
        };
        match reusable {
            Some(src_value) => {
                // Deterministic reuse: density 1 if it reproduces the
                // pinned value, else 0.
                if !src_value.num_eq(&value) {
                    self.log_density = LogWeight::ZERO;
                }
            }
            None => {
                self.log_density += dist.log_prob(&value);
            }
        }
        let log_prob = dist.log_prob(&value);
        self.replayed
            .record_choice_interned(id, value.clone(), dist, log_prob)?;
        Ok(value)
    }

    fn observe(&mut self, addr: Address, dist: Dist, value: Value) -> Result<(), PplError> {
        let log_prob = dist.log_prob(&value);
        self.replayed
            .record_observation(addr, value, dist, log_prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl::addr;
    use ppl::handlers::simulate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Fig. 5 left program P.
    fn fig5_p(h: &mut dyn Handler) -> Result<Value, PplError> {
        let a = h.sample(addr!["alpha"], Dist::flip(0.5))?;
        let _b = if !a.truthy()? {
            h.sample(addr!["beta"], Dist::uniform_int(0, 5))?
        } else {
            h.sample(addr!["gamma"], Dist::flip(0.5))?
        };
        let _c = h.sample(addr!["delta"], Dist::flip(0.5))?;
        Ok(a)
    }

    /// Fig. 5 right program Q.
    fn fig5_q(h: &mut dyn Handler) -> Result<Value, PplError> {
        let a = h.sample(addr!["eps"], Dist::flip(1.0 / 3.0))?;
        let _b = if !a.truthy()? {
            h.sample(addr!["zeta"], Dist::uniform_int(0, 5))?
        } else {
            h.sample(addr!["eta"], Dist::flip(0.5))?
        };
        let _c = h.sample(addr!["theta"], Dist::uniform_int(1, 6))?;
        let _d = h.sample(addr!["iota"], Dist::uniform_int(-5, -2))?;
        Ok(a)
    }

    fn fig5_correspondence() -> Correspondence {
        Correspondence::from_pairs([
            (addr!["eps"], addr!["alpha"]),
            (addr!["zeta"], addr!["beta"]),
            (addr!["eta"], addr!["gamma"]),
        ])
        .unwrap()
    }

    #[test]
    fn example3_weight_estimate_is_two_thirds() {
        // t = [α ↦ 1, γ ↦ 1, δ ↦ 1]; the translated trace reuses α and γ;
        // ŵ = (1/3 · 1/2) / (1/2 · 1/2) = 2/3 (Section 5.2).
        let mut t = Trace::new();
        let d = Dist::flip(0.5);
        for name in ["alpha", "gamma", "delta"] {
            let lp = d.log_prob(&Value::Bool(true));
            t.record_choice(addr![name], Value::Bool(true), d.clone(), lp)
                .unwrap();
        }
        let translator = CorrespondenceTranslator::new(fig5_p, fig5_q, fig5_correspondence());
        let mut rng = StdRng::seed_from_u64(17);
        let (out, stats) = translator.translate_with_stats(&t, &mut rng).unwrap();
        assert_eq!(out.trace.value(&addr!["eps"]), Some(&Value::Bool(true)));
        assert_eq!(out.trace.value(&addr!["eta"]), Some(&Value::Bool(true)));
        assert_eq!(stats.reused, 2);
        assert_eq!(stats.fresh.len(), 2); // theta and iota sampled fresh
        assert!(!stats.backward_zero);
        assert!(
            (out.log_weight.prob() - 2.0 / 3.0).abs() < 1e-12,
            "weight {}",
            out.log_weight.prob()
        );
    }

    #[test]
    fn fig1_weight_is_1_19() {
        // The Overview example: ŵ = (0.02 · 0.95 · 0.9) / (0.02 · 0.9 · 0.8)
        // ≈ 1.19 for the trace [α ↦ 1, β ↦ 1].
        let p = |h: &mut dyn Handler| {
            let burglary = h.sample(addr!["alpha"], Dist::flip(0.02))?;
            let p_alarm = if burglary.truthy()? { 0.9 } else { 0.01 };
            let alarm = h.sample(addr!["beta"], Dist::flip(p_alarm))?;
            let p_wakes = if alarm.truthy()? { 0.8 } else { 0.05 };
            h.observe(addr!["o"], Dist::flip(p_wakes), Value::Bool(true))?;
            Ok(burglary)
        };
        let q = |h: &mut dyn Handler| {
            let burglary = h.sample(addr!["alpha'"], Dist::flip(0.02))?;
            let earthquake = h.sample(addr!["gamma'"], Dist::flip(0.005))?;
            let p_alarm = if earthquake.truthy()? {
                0.95
            } else if burglary.truthy()? {
                0.9
            } else {
                0.01
            };
            let alarm = h.sample(addr!["beta'"], Dist::flip(p_alarm))?;
            let p_wakes = if alarm.truthy()? {
                if earthquake.truthy()? {
                    0.9
                } else {
                    0.8
                }
            } else {
                0.05
            };
            h.observe(addr!["o'"], Dist::flip(p_wakes), Value::Bool(true))?;
            Ok(burglary)
        };
        let f = Correspondence::from_pairs([
            (addr!["alpha'"], addr!["alpha"]),
            (addr!["beta'"], addr!["beta"]),
        ])
        .unwrap();
        let translator = CorrespondenceTranslator::new(p, q, f);

        // The input trace [α ↦ 1, β ↦ 1] with its observation.
        let mut t = Trace::new();
        t.record_choice(
            addr!["alpha"],
            Value::Bool(true),
            Dist::flip(0.02),
            Dist::flip(0.02).log_prob(&Value::Bool(true)),
        )
        .unwrap();
        t.record_choice(
            addr!["beta"],
            Value::Bool(true),
            Dist::flip(0.9),
            Dist::flip(0.9).log_prob(&Value::Bool(true)),
        )
        .unwrap();
        t.record_observation(
            addr!["o"],
            Value::Bool(true),
            Dist::flip(0.8),
            Dist::flip(0.8).log_prob(&Value::Bool(true)),
        )
        .unwrap();

        // Find a run where γ' = 1 to match the paper's illustrated u.
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen_earthquake = false;
        for _ in 0..10_000 {
            let out = translator.translate(&t, &mut rng).unwrap();
            let earthquake = out.trace.value(&addr!["gamma'"]).unwrap().truthy().unwrap();
            if earthquake {
                seen_earthquake = true;
                let expected = (0.02 * 0.95 * 0.9) / (0.02 * 0.9 * 0.8);
                assert!(
                    (out.log_weight.prob() - expected).abs() < 1e-9,
                    "weight {} vs expected {expected}",
                    out.log_weight.prob()
                );
            } else {
                // γ' = 0: pAlarm stays 0.9, pMaryWakes stays 0.8 — the
                // weight is exactly 1 (nothing changed).
                assert!((out.log_weight.prob() - 1.0).abs() < 1e-9);
            }
        }
        assert!(seen_earthquake, "0.005 flip never came up in 10k runs");
    }

    #[test]
    fn support_mismatch_falls_back_to_sampling() {
        // Matching delta (flip) to theta (uniform 1..6) must not reuse.
        let f = Correspondence::from_pairs([
            (addr!["eps"], addr!["alpha"]),
            (addr!["theta"], addr!["delta"]),
        ])
        .unwrap();
        let translator = CorrespondenceTranslator::new(fig5_p, fig5_q, f);
        let mut t = Trace::new();
        let d = Dist::flip(0.5);
        for name in ["alpha", "gamma", "delta"] {
            let lp = d.log_prob(&Value::Bool(true));
            t.record_choice(addr![name], Value::Bool(true), d.clone(), lp)
                .unwrap();
        }
        let mut rng = StdRng::seed_from_u64(5);
        let (_, stats) = translator.translate_with_stats(&t, &mut rng).unwrap();
        assert!(stats
            .fresh
            .iter()
            .any(|(a, r)| *a == addr!["theta"] && *r == FreshReason::SupportMismatch));
    }

    #[test]
    fn missing_choice_falls_back_to_sampling() {
        // Case (i) of Section 5.1: the correspondence maps eta ↦ gamma,
        // but P never makes a gamma choice, so f(eta) is absent from every
        // trace t and eta must be sampled fresh.
        let p_small = |h: &mut dyn Handler| {
            let a = h.sample(addr!["alpha"], Dist::flip(0.5))?;
            let _c = h.sample(addr!["delta"], Dist::flip(0.5))?;
            Ok(a)
        };
        let mut rng = StdRng::seed_from_u64(6);
        // A valid trace of p_small with alpha = 1 (so Q takes the eta
        // branch).
        let t = loop {
            let t = simulate(&p_small, &mut rng).unwrap();
            if t.value(&addr!["alpha"]).unwrap().truthy().unwrap() {
                break t;
            }
        };
        let f = Correspondence::from_pairs([
            (addr!["eps"], addr!["alpha"]),
            (addr!["eta"], addr!["gamma"]),
        ])
        .unwrap();
        let translator = CorrespondenceTranslator::new(p_small, fig5_q, f);
        let (out, stats) = translator.translate_with_stats(&t, &mut rng).unwrap();
        assert_eq!(out.trace.value(&addr!["eps"]), Some(&Value::Bool(true)));
        assert!(stats
            .fresh
            .iter()
            .any(|(a, r)| *a == addr!["eta"] && *r == FreshReason::MissingInOld));
    }

    #[test]
    fn identity_translation_has_weight_one() {
        // P = Q and a full correspondence: ŵ must be exactly 1 for every
        // input trace.
        let model = |h: &mut dyn Handler| {
            let x = h.sample(addr!["x"], Dist::flip(0.3))?;
            let p = if x.truthy()? { 0.9 } else { 0.2 };
            let _y = h.sample(addr!["y"], Dist::flip(p))?;
            h.observe(addr!["o"], Dist::flip(0.6), Value::Bool(true))?;
            Ok(x)
        };
        let translator =
            CorrespondenceTranslator::new(model, model, Correspondence::identity_on(["x", "y"]));
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let t = simulate(&model, &mut rng).unwrap();
            let out = translator.translate(&t, &mut rng).unwrap();
            assert!(
                out.log_weight.log().abs() < 1e-12,
                "identity weight {}",
                out.log_weight.prob()
            );
            assert_eq!(out.trace.to_choice_map(), t.to_choice_map());
        }
    }

    /// The future-work hook: a smart proposal for a fresh choice leaves
    /// the estimator unbiased while collapsing the weight variance.
    #[test]
    fn fresh_proposal_reduces_variance_without_bias() {
        use crate::particles::ParticleCollection;
        // P: one coin with an observation.
        let p = |h: &mut dyn Handler| {
            let x = h.sample(addr!["x"], Dist::flip(0.5))?;
            let po = if x.truthy()? { 0.7 } else { 0.3 };
            h.observe(addr!["o"], Dist::flip(po), Value::Bool(true))?;
            Ok(x)
        };
        // Q: adds a tightly observed continuous latent y.
        let q = |h: &mut dyn Handler| {
            let x = h.sample(addr!["x"], Dist::flip(0.5))?;
            let po = if x.truthy()? { 0.7 } else { 0.3 };
            h.observe(addr!["o"], Dist::flip(po), Value::Bool(true))?;
            let y = h.sample(addr!["y"], Dist::normal(0.0, 5.0))?;
            h.observe(
                addr!["oy"],
                Dist::normal(y.as_real()?, 0.2),
                Value::Real(3.0),
            )?;
            Ok(x)
        };
        let corr = || Correspondence::identity_on(["x"]);
        let prior_translator = CorrespondenceTranslator::new(p, q, corr());
        // The conjugate conditional for y given the observation.
        let smart_translator = CorrespondenceTranslator::new(p, q, corr()).with_fresh_proposal(
            |addr: &Address, _prior: &Dist, _old: &Trace| {
                if *addr == addr!["y"] {
                    // posterior of y: precision 1/25 + 1/0.04, mean ≈ 2.995
                    let var = 1.0 / (1.0 / 25.0 + 1.0 / 0.04);
                    Some(Dist::normal(3.0 * var / 0.04, var.sqrt()))
                } else {
                    None
                }
            },
        );
        let mut rng = StdRng::seed_from_u64(21);
        let m = 4000;
        let mut run = |translator: &CorrespondenceTranslator<_, _>| {
            let mut out = ParticleCollection::new();
            for _ in 0..m {
                let t = simulate(&p, &mut rng).unwrap();
                let tr = translator.translate(&t, &mut rng).unwrap();
                out.push(tr.trace, tr.log_weight);
            }
            out
        };
        let with_prior = run(&prior_translator);
        let with_smart = run(&smart_translator);
        // Smart proposal: near-perfect ESS; prior proposal: collapsed.
        assert!(
            with_smart.ess() > 0.9 * m as f64,
            "smart ESS {}",
            with_smart.ess()
        );
        assert!(
            with_prior.ess() < 0.2 * m as f64,
            "prior ESS {}",
            with_prior.ess()
        );
        // And the smart estimator is accurate: E[y | obs] ≈ 2.995.
        let ey = with_smart
            .estimate(|t| t.value(&addr!["y"]).unwrap().as_real().unwrap())
            .unwrap();
        assert!((ey - 2.995).abs() < 0.02, "E[y] = {ey}");
    }

    #[test]
    fn empty_correspondence_is_importance_sampling_from_prior() {
        // With no correspondence, u is an independent prior sample of Q
        // and ŵ = P̃r[u]/k(u) × ℓ(t)/P̃r[t] = (obs of u) / (obs of t)
        // — since every choice is fresh both ways.
        let p = |h: &mut dyn Handler| {
            let x = h.sample(addr!["x"], Dist::flip(0.5))?;
            h.observe(addr!["o"], Dist::flip(0.25), Value::Bool(true))?;
            Ok(x)
        };
        let q = |h: &mut dyn Handler| {
            let y = h.sample(addr!["y"], Dist::flip(0.5))?;
            h.observe(addr!["o"], Dist::flip(0.75), Value::Bool(true))?;
            Ok(y)
        };
        let translator = CorrespondenceTranslator::new(p, q, Correspondence::new());
        let mut rng = StdRng::seed_from_u64(8);
        let t = simulate(&p, &mut rng).unwrap();
        let out = translator.translate(&t, &mut rng).unwrap();
        assert!((out.log_weight.prob() - 0.75 / 0.25).abs() < 1e-12);
    }
}
