//! Failure taxonomy, recovery policies, and per-step health reports for
//! the SMC runtime.
//!
//! Algorithm 2 assumes every `translate` call succeeds and returns a
//! usable weight. In a long-running system neither holds: user-supplied
//! model code can return errors, panic, or produce NaN/infinite weight
//! estimates (e.g. a density ratio of `∞/∞` from a mis-specified
//! correspondence). This module gives those events a structured
//! vocabulary:
//!
//! - [`ParticleFailure`] / [`FailureKind`] — what went wrong, for which
//!   particle, after how many attempts;
//! - [`FailurePolicy`] — what the runtime should do about it (abort,
//!   quarantine, or retry with a reseeded RNG);
//! - [`SmcError`] — the typed errors a policy-aware step can surface;
//! - [`StepReport`] — what actually happened during one step (ESS,
//!   drops, retries, collapse events), for monitoring and tests.
//!
//! The soundness story: dropping a failed particle and renormalizing over
//! the survivors keeps the collection properly weighted for the same
//! target (it is a smaller importance sample), as long as failures are
//! independent of the latent values — which is why the loss fraction is
//! bounded and every drop is reported rather than silent.

use std::fmt;

use ppl::PplError;

/// Why a single particle's translation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureKind {
    /// The translator returned a structured evaluation error.
    Error(PplError),
    /// The translator panicked; the captured payload message.
    Panic(String),
    /// Translation produced a weight whose log is NaN or `+∞`. The
    /// offending log-weight is carried for diagnosis (`-∞` — a zero
    /// weight — is *not* a failure; it is a valid degenerate weight).
    NonFiniteWeight(f64),
    /// The translation did not complete within the watchdog deadline
    /// (see [`StagePolicy::deadline`]); the particle is presumed hung.
    /// `waited_ms` is how long the supervisor waited before giving up.
    Timeout {
        /// Milliseconds waited before declaring the translation hung.
        waited_ms: u64,
    },
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::Error(e) => write!(f, "translation error: {e}"),
            FailureKind::Panic(msg) => write!(f, "translation panicked: {msg}"),
            FailureKind::NonFiniteWeight(w) => {
                write!(f, "non-finite log weight {w} from translation")
            }
            FailureKind::Timeout { waited_ms } => {
                write!(f, "translation timed out after {waited_ms} ms")
            }
        }
    }
}

/// The failure record of one particle at one SMC step.
#[derive(Debug, Clone, PartialEq)]
pub struct ParticleFailure {
    /// The SMC step (stage index) at which the failure happened.
    pub step: usize,
    /// The index of the failed particle.
    pub particle: usize,
    /// How many attempts were made (1 = failed on the first try with no
    /// retries).
    pub attempts: usize,
    /// What went wrong on the last attempt.
    pub kind: FailureKind,
}

impl fmt::Display for ParticleFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "particle {} at step {} failed after {} attempt(s): {}",
            self.particle, self.step, self.attempts, self.kind
        )
    }
}

/// How a policy-aware SMC step responds to particle failures.
///
/// All variants isolate panics (a panicking particle never takes down the
/// run un-reported) and quarantine non-finite weights at the collection
/// boundary; they differ in what happens next.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FailurePolicy {
    /// Abort the step on the first failure with
    /// [`SmcError::Particle`]. The default — matches the legacy
    /// error-propagating behavior, plus panic capture.
    #[default]
    FailFast,
    /// Quarantine failed particles: drop them and renormalize over the
    /// survivors, as long as at most `max_loss` (a fraction in `[0, 1]`)
    /// of the collection is lost; otherwise the step fails with
    /// [`SmcError::TooManyDropped`]. Every drop is recorded in the
    /// [`StepReport`].
    DropAndRenormalize {
        /// Maximum tolerated fraction of dropped particles per step.
        max_loss: f64,
    },
    /// Re-run a failed particle's translation with a fresh RNG seeded
    /// deterministically from `seed` and the particle's position
    /// ([`retry_seed`]), up to `max_attempts` total attempts. A particle
    /// still failing after the budget aborts the step with
    /// [`SmcError::Particle`] (with `attempts = max_attempts`).
    Retry {
        /// Total attempts per particle, counting the first (must be ≥ 1;
        /// 1 behaves like [`FailurePolicy::FailFast`]).
        max_attempts: usize,
        /// Base seed for deterministic reseeding of retry attempts.
        seed: u64,
    },
}

impl FailurePolicy {
    /// The retry budget: total attempts allowed per particle.
    pub fn max_attempts(&self) -> usize {
        match self {
            FailurePolicy::Retry { max_attempts, .. } => (*max_attempts).max(1),
            _ => 1,
        }
    }

    /// Whether a step that dropped `dropped` of `total` particles is
    /// within this policy's tolerated loss.
    pub fn loss_allowed(&self, dropped: usize, total: usize) -> bool {
        match self {
            FailurePolicy::DropAndRenormalize { max_loss } => {
                if total == 0 {
                    return dropped == 0;
                }
                dropped as f64 / total as f64 <= *max_loss
            }
            // Fail-fast and retry tolerate no drops at all.
            _ => dropped == 0,
        }
    }
}

/// Deterministic seed for retry attempt `attempt` of `particle` at `step`
/// (SplitMix64-style finalizer over the packed position).
///
/// The derived stream is independent of thread count and of how many
/// random draws earlier particles consumed, so retries reproduce exactly
/// across runs and parallel schedules.
pub fn retry_seed(seed: u64, step: usize, particle: usize, attempt: usize) -> u64 {
    let mut z = seed
        ^ (step as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (particle as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ (attempt as u64).wrapping_mul(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Exponential backoff schedule for retry rounds under deadline
/// supervision: attempt `n` (1-based, counting retries only) waits
/// `base * factor^(n-1)`, capped at `max`.
///
/// Backoff applies between *rounds* of the watchdog loop, not between
/// individual particles — all pending retries of a round share one
/// delay, keeping wall-clock bounded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Backoff {
    /// Delay before the first retry round.
    pub base: std::time::Duration,
    /// Multiplier applied per additional retry round (≥ 1 in practice).
    pub factor: f64,
    /// Upper bound on any single delay.
    pub max: std::time::Duration,
}

impl Default for Backoff {
    fn default() -> Backoff {
        Backoff {
            base: std::time::Duration::from_millis(50),
            factor: 2.0,
            max: std::time::Duration::from_secs(2),
        }
    }
}

impl Backoff {
    /// A schedule waiting `base * factor^(n-1)` before retry round `n`,
    /// capped at `max`.
    pub fn new(base: std::time::Duration, factor: f64, max: std::time::Duration) -> Backoff {
        Backoff { base, factor, max }
    }

    /// The delay before retry round `attempt` (1 = first retry). Returns
    /// zero for `attempt == 0` (the initial dispatch never waits).
    pub fn delay(&self, attempt: usize) -> std::time::Duration {
        if attempt == 0 {
            return std::time::Duration::ZERO;
        }
        let scale = self.factor.powi(attempt as i32 - 1);
        let ms = self.base.as_secs_f64() * 1000.0 * scale;
        if !ms.is_finite() || ms >= self.max.as_secs_f64() * 1000.0 {
            return self.max;
        }
        std::time::Duration::from_secs_f64(ms / 1000.0).min(self.max)
    }
}

/// Stage-level supervision policy for a sequence run: how often to
/// checkpoint, how long a translation batch may run before the watchdog
/// declares it hung, and how retries back off.
///
/// Orthogonal to [`FailurePolicy`], which decides what happens to a
/// particle once it *has* failed (including by
/// [`FailureKind::Timeout`]): retry, drop, or abort.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StagePolicy {
    /// Checkpoint every `n` completed stages (`0` = never). The final
    /// stage is always checkpointed when checkpointing is enabled.
    pub checkpoint_every: usize,
    /// Per-batch translation deadline. `None` disables the watchdog and
    /// uses plain (blocking) pooled translation.
    pub deadline: Option<std::time::Duration>,
    /// Backoff schedule between watchdog retry rounds.
    pub backoff: Backoff,
}

impl StagePolicy {
    /// A policy that checkpoints every `n` stages with no watchdog.
    pub fn checkpoint_every(n: usize) -> StagePolicy {
        StagePolicy {
            checkpoint_every: n,
            ..StagePolicy::default()
        }
    }

    /// Sets the watchdog deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: std::time::Duration) -> StagePolicy {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the retry backoff schedule.
    #[must_use]
    pub fn with_backoff(mut self, backoff: Backoff) -> StagePolicy {
        self.backoff = backoff;
        self
    }
}

/// Typed errors from a policy-aware SMC step.
#[derive(Debug, Clone, PartialEq)]
pub enum SmcError {
    /// A particle failed under [`FailurePolicy::FailFast`], or exhausted
    /// its retry budget under [`FailurePolicy::Retry`].
    Particle(ParticleFailure),
    /// More particles failed than
    /// [`FailurePolicy::DropAndRenormalize`]'s `max_loss` tolerates.
    TooManyDropped {
        /// The SMC step at which the loss occurred.
        step: usize,
        /// Number of particles dropped.
        dropped: usize,
        /// Collection size before the step.
        total: usize,
        /// The policy's tolerated loss fraction.
        max_loss: f64,
        /// The failure records of the dropped particles.
        failures: Vec<ParticleFailure>,
    },
    /// Every surviving weight is zero (ESS = 0) and the policy is
    /// fail-fast: the particle approximation has collapsed.
    Collapse {
        /// The SMC step at which the collapse was detected.
        step: usize,
    },
    /// An evaluation error outside per-particle translation (resampling a
    /// pathological collection, MCMC rejuvenation, ...).
    Eval(PplError),
    /// The parallel runtime itself misbehaved (a worker thread died
    /// outside user translation code, or a particle slot was never
    /// filled). Indicates a bug in the harness, not the model.
    Internal(String),
}

impl fmt::Display for SmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmcError::Particle(failure) => write!(f, "{failure}"),
            SmcError::TooManyDropped {
                step,
                dropped,
                total,
                max_loss,
                ..
            } => write!(
                f,
                "step {step} dropped {dropped} of {total} particles, \
                 exceeding the tolerated loss fraction {max_loss}"
            ),
            SmcError::Collapse { step } => write!(
                f,
                "step {step}: all particle weights are zero; the approximation has collapsed"
            ),
            SmcError::Eval(e) => write!(f, "{e}"),
            SmcError::Internal(msg) => write!(f, "internal SMC runtime error: {msg}"),
        }
    }
}

impl std::error::Error for SmcError {}

impl From<PplError> for SmcError {
    fn from(e: PplError) -> SmcError {
        SmcError::Eval(e)
    }
}

impl From<SmcError> for PplError {
    /// Flattens a typed SMC error for legacy `PplError` call sites,
    /// preserving the underlying evaluation error when there is one.
    fn from(e: SmcError) -> PplError {
        match e {
            SmcError::Particle(ParticleFailure {
                kind: FailureKind::Error(inner),
                ..
            }) => inner,
            SmcError::Eval(inner) => inner,
            other => PplError::Other(other.to_string()),
        }
    }
}

/// What happened during one policy-aware SMC step.
///
/// A clean step has `dropped == 0`, `retries == 0`, empty `failures`, and
/// `collapse_recovered == false`.
#[derive(Debug, Clone, PartialEq)]
pub struct StepReport {
    /// The step (stage) index.
    pub step: usize,
    /// Collection size before the step.
    pub input_particles: usize,
    /// Collection size after the step.
    pub output_particles: usize,
    /// Effective sample size after reweighting, before any resampling —
    /// the degeneracy diagnostic of Section 4.2.
    pub ess: f64,
    /// Number of particles quarantined (dropped) this step.
    pub dropped: usize,
    /// Total retry attempts made this step (beyond first attempts).
    pub retries: usize,
    /// Particles that succeeded only after at least one retry.
    pub recovered: usize,
    /// Failure records of every quarantined particle (empty unless the
    /// policy drops).
    pub failures: Vec<ParticleFailure>,
    /// Whether resampling ran this step.
    pub resampled: bool,
    /// Whether a total weight collapse was detected and recovered from by
    /// keeping the pre-step collection.
    pub collapse_recovered: bool,
}

impl StepReport {
    /// Whether the step completed without failures, drops, retries, or
    /// collapse events.
    pub fn is_clean(&self) -> bool {
        self.dropped == 0
            && self.retries == 0
            && self.recovered == 0
            && self.failures.is_empty()
            && !self.collapse_recovered
    }
}

impl fmt::Display for StepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "step {}: {} -> {} particles, ess {:.2}",
            self.step, self.input_particles, self.output_particles, self.ess
        )?;
        if self.dropped > 0 {
            write!(f, ", dropped {}", self.dropped)?;
        }
        if self.retries > 0 {
            write!(
                f,
                ", {} retries ({} recovered)",
                self.retries, self.recovered
            )?;
        }
        if self.resampled {
            write!(f, ", resampled")?;
        }
        if self.collapse_recovered {
            write!(f, ", collapse recovered")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_kinds_display() {
        let e = FailureKind::Error(PplError::DivisionByZero);
        assert!(e.to_string().contains("division by zero"));
        let p = FailureKind::Panic("boom".into());
        assert!(p.to_string().contains("boom"));
        let w = FailureKind::NonFiniteWeight(f64::NAN);
        assert!(w.to_string().contains("NaN"));
        let failure = ParticleFailure {
            step: 2,
            particle: 7,
            attempts: 3,
            kind: w,
        };
        let msg = failure.to_string();
        assert!(msg.contains("particle 7") && msg.contains("step 2") && msg.contains("3 attempt"));
    }

    #[test]
    fn timeout_kind_displays_wait() {
        let t = FailureKind::Timeout { waited_ms: 250 };
        assert!(t.to_string().contains("250 ms"));
    }

    #[test]
    fn backoff_delays_grow_and_cap() {
        let b = Backoff {
            base: std::time::Duration::from_millis(10),
            factor: 2.0,
            max: std::time::Duration::from_millis(35),
        };
        assert_eq!(b.delay(0), std::time::Duration::ZERO);
        assert_eq!(b.delay(1), std::time::Duration::from_millis(10));
        assert_eq!(b.delay(2), std::time::Duration::from_millis(20));
        assert_eq!(b.delay(3), std::time::Duration::from_millis(35));
        assert_eq!(b.delay(50), std::time::Duration::from_millis(35));
    }

    #[test]
    fn stage_policy_builders() {
        let p =
            StagePolicy::checkpoint_every(4).with_deadline(std::time::Duration::from_millis(200));
        assert_eq!(p.checkpoint_every, 4);
        assert_eq!(p.deadline, Some(std::time::Duration::from_millis(200)));
        assert_eq!(p.backoff, Backoff::default());
        let q = StagePolicy::default();
        assert_eq!(q.checkpoint_every, 0);
        assert!(q.deadline.is_none());
    }

    #[test]
    fn policy_loss_budgets() {
        let ff = FailurePolicy::FailFast;
        assert!(ff.loss_allowed(0, 10));
        assert!(!ff.loss_allowed(1, 10));
        assert_eq!(ff.max_attempts(), 1);

        let drop = FailurePolicy::DropAndRenormalize { max_loss: 0.2 };
        assert!(drop.loss_allowed(2, 10));
        assert!(!drop.loss_allowed(3, 10));
        assert!(drop.loss_allowed(0, 0));
        assert_eq!(drop.max_attempts(), 1);

        let retry = FailurePolicy::Retry {
            max_attempts: 3,
            seed: 42,
        };
        assert_eq!(retry.max_attempts(), 3);
        assert!(!retry.loss_allowed(1, 10));
        // A zero budget still allows the mandatory first attempt.
        let degenerate = FailurePolicy::Retry {
            max_attempts: 0,
            seed: 0,
        };
        assert_eq!(degenerate.max_attempts(), 1);
    }

    #[test]
    fn retry_seeds_are_distinct_and_deterministic() {
        let a = retry_seed(1, 0, 0, 1);
        assert_eq!(a, retry_seed(1, 0, 0, 1));
        // Varying any coordinate changes the seed.
        assert_ne!(a, retry_seed(2, 0, 0, 1));
        assert_ne!(a, retry_seed(1, 1, 0, 1));
        assert_ne!(a, retry_seed(1, 0, 1, 1));
        assert_ne!(a, retry_seed(1, 0, 0, 2));
    }

    #[test]
    fn smc_error_round_trips_to_ppl_error() {
        let inner = PplError::DivisionByZero;
        let e = SmcError::Particle(ParticleFailure {
            step: 0,
            particle: 1,
            attempts: 1,
            kind: FailureKind::Error(inner.clone()),
        });
        assert_eq!(PplError::from(e), inner);
        let e = SmcError::Eval(inner.clone());
        assert_eq!(PplError::from(e), inner);
        let e = SmcError::Collapse { step: 3 };
        match PplError::from(e) {
            PplError::Other(msg) => assert!(msg.contains("step 3")),
            other => panic!("expected Other, got {other:?}"),
        }
    }

    #[test]
    fn report_cleanliness_and_display() {
        let clean = StepReport {
            step: 0,
            input_particles: 10,
            output_particles: 10,
            ess: 9.5,
            dropped: 0,
            retries: 0,
            recovered: 0,
            failures: vec![],
            resampled: false,
            collapse_recovered: false,
        };
        assert!(clean.is_clean());
        let mut dirty = clean.clone();
        dirty.dropped = 1;
        dirty.resampled = true;
        assert!(!dirty.is_clean());
        let msg = dirty.to_string();
        assert!(msg.contains("dropped 1") && msg.contains("resampled"));
    }
}
