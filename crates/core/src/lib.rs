//! # incremental — trace translators and SMC for incremental inference
//!
//! The primary contribution of *Incremental Inference for Probabilistic
//! Programs* (PLDI 2018): adapt posterior samples (traces) of a program
//! `P` into weighted posterior samples of a related program `Q`, with SMC
//! convergence guarantees.
//!
//! - [`TraceTranslator`] / [`Translated`] — the abstract translator tuple
//!   `R = (P, Q, k_{P→Q}, ℓ_{Q→P})` and Algorithm 1.
//! - [`Correspondence`] + [`CorrespondenceTranslator`] — the Section 5
//!   translator: reuse corresponding random choices, sample the rest,
//!   weight by Eq. (8).
//! - [`infer`] — Algorithm 2: translate, reweight, optionally
//!   [`resample()`](resample::resample), optionally rejuvenate with an [`McmcKernel`].
//! - [`ParticleCollection`] — weighted collections and the Eq. (5)
//!   estimator; [`diagnostics`] — effective-sample-size monitoring.
//! - [`run_sequence`] — iterated SMC across program sequences.
//! - [`health`] + [`fault`] — the fault-tolerant runtime:
//!   [`infer_with_policy`] isolates per-particle panics, quarantines
//!   NaN/`+∞` weights, and applies a [`FailurePolicy`] (fail fast, drop
//!   and renormalize, or retry with reseeded RNGs), reporting each step
//!   in a [`StepReport`]; [`FaultyTranslator`] injects deterministic
//!   faults for testing.
//! - [`translator_error`] — the exact error ε(R) of Eq. (4) and its
//!   Section 5.3 decomposition, by enumeration.
//!
//! # Example: Figure 1, end to end
//!
//! ```
//! use incremental::{infer, Correspondence, CorrespondenceTranslator,
//!                   ParticleCollection, SmcConfig};
//! use ppl::{addr, Handler, PplError, Value};
//! use ppl::dist::Dist;
//! use ppl::handlers::simulate;
//! use rand::SeedableRng;
//!
//! // Original burglary model (Fig. 1 left).
//! let p = |h: &mut dyn Handler| {
//!     let burglary = h.sample(addr!["b"], Dist::flip(0.02))?;
//!     let p_alarm = if burglary.truthy()? { 0.9 } else { 0.01 };
//!     let alarm = h.sample(addr!["a"], Dist::flip(p_alarm))?;
//!     let p_wakes = if alarm.truthy()? { 0.8 } else { 0.05 };
//!     h.observe(addr!["o"], Dist::flip(p_wakes), Value::Bool(true))?;
//!     Ok(burglary)
//! };
//! // Refined model with an earthquake variable (Fig. 1 right).
//! let q = |h: &mut dyn Handler| {
//!     let burglary = h.sample(addr!["b"], Dist::flip(0.02))?;
//!     let quake = h.sample(addr!["e"], Dist::flip(0.005))?;
//!     let p_alarm = if quake.truthy()? { 0.95 }
//!                   else if burglary.truthy()? { 0.9 } else { 0.01 };
//!     let alarm = h.sample(addr!["a"], Dist::flip(p_alarm))?;
//!     let p_wakes = if alarm.truthy()? {
//!         if quake.truthy()? { 0.9 } else { 0.8 }
//!     } else { 0.05 };
//!     h.observe(addr!["o"], Dist::flip(p_wakes), Value::Bool(true))?;
//!     Ok(burglary)
//! };
//! let translator = CorrespondenceTranslator::new(p, q,
//!     Correspondence::identity_on(["b", "a"]));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(3);
//! let traces = (0..50).map(|_| simulate(&p, &mut rng)).collect::<Result<Vec<_>, _>>()?;
//! let particles = ParticleCollection::from_traces(traces);
//! let adapted = infer(&translator, None, &particles,
//!                     &SmcConfig::translate_only(), &mut rng)?;
//! assert_eq!(adapted.len(), 50);
//! # Ok::<(), PplError>(())
//! ```

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

pub mod checkpoint;
pub mod correspondence;
pub mod diagnostics;
pub mod error_decomp;
pub mod fault;
pub mod forward;
pub mod health;
pub mod mcmc;
pub mod metrics;
pub mod particles;
pub mod pool;
pub mod resample;
pub mod sequence;
pub mod smc;
pub mod translator;

pub use checkpoint::{collection_checksum, Checkpoint, CheckpointError};
pub use correspondence::{Correspondence, CoverageReport};
pub use error_decomp::{translator_error, TranslatorErrorReport};
pub use fault::{FaultKind, FaultPlan, FaultSpec, FaultyTranslator};
pub use forward::{
    exact_weight_estimate, CorrespondenceTranslator, FreshProposal, FreshReason, TranslationStats,
};
pub use health::{
    retry_seed, Backoff, FailureKind, FailurePolicy, ParticleFailure, SmcError, StagePolicy,
    StepReport,
};
pub use mcmc::{IdentityKernel, McmcKernel};
pub use metrics::{
    ArenaTelemetry, EvalTelemetry, MetricsGuard, MetricsRecorder, MetricsReport, MetricsSink,
    NoopSink, PoolTelemetry, PropagationCounters, StageMetrics,
};
pub use particles::{Particle, ParticleCollection, ParticleState};
pub use pool::WorkerPool;
pub use resample::{resample, ResampleError, ResampleScheme};
pub use sequence::{
    resample_seed, run_sequence, run_sequence_parallel, run_sequence_parallel_with_policy,
    run_sequence_with_policy, run_state_sequence_parallel_with_policy,
    run_state_sequence_supervised, run_state_sequence_with_policy, stage_seed, ParallelStage,
    SequenceRun, Stage, StageObserver, StageSnapshot,
};
pub use smc::{
    auto_chunk_size, infer, infer_parallel_with_policy, infer_states_parallel_with_policy,
    infer_states_supervised_with_policy, infer_states_with_policy, infer_with_policy,
    infer_without_weights, translate_collection, translate_parallel,
    translate_parallel_with_policy, translate_parallel_with_policy_scoped,
    translate_states_chunked_with_policy, translate_states_deadline_chunked_with_policy,
    translate_states_deadline_with_policy, translate_states_parallel_with_policy, ResamplePolicy,
    SmcConfig,
};
pub use translator::{
    StateTranslator, TraceStateAdapter, TraceTranslator, TranslateCtx, Translated,
};
