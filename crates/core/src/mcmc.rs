//! The MCMC rejuvenation interface used by Algorithm 2.
//!
//! `infer` optionally runs a sampler `mcmc_Q` on each translated trace.
//! Soundness (Lemma 2) requires the kernel to leave the posterior
//! `Pr[u ∼ Q]` invariant; concrete kernels (single-site
//! Metropolis–Hastings, Gibbs, independent-Metropolis cycles) live in the
//! `inference` crate and implement this trait.

use rand::RngCore;

use ppl::{PplError, Trace};

/// A Markov kernel on traces of `Q` with the posterior as invariant
/// distribution.
pub trait McmcKernel {
    /// Advances the chain by one transition from `trace`.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from re-running the program.
    fn step(&self, trace: &Trace, rng: &mut dyn RngCore) -> Result<Trace, PplError>;

    /// Advances the chain by `n` transitions ("one call to `mcmc_Q` can
    /// lead to multiple iterations of an MCMC sampler").
    ///
    /// # Errors
    ///
    /// Propagates errors from [`McmcKernel::step`].
    fn steps(&self, trace: &Trace, n: usize, rng: &mut dyn RngCore) -> Result<Trace, PplError> {
        let mut current = trace.clone();
        for _ in 0..n {
            current = self.step(&current, rng)?;
        }
        Ok(current)
    }
}

impl<K: McmcKernel + ?Sized> McmcKernel for &K {
    fn step(&self, trace: &Trace, rng: &mut dyn RngCore) -> Result<Trace, PplError> {
        (**self).step(trace, rng)
    }
}

impl<K: McmcKernel + ?Sized> McmcKernel for Box<K> {
    fn step(&self, trace: &Trace, rng: &mut dyn RngCore) -> Result<Trace, PplError> {
        (**self).step(trace, rng)
    }
}

/// The identity kernel: trivially invariant for every distribution. Useful
/// as a placeholder and in tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityKernel;

impl McmcKernel for IdentityKernel {
    fn step(&self, trace: &Trace, _rng: &mut dyn RngCore) -> Result<Trace, PplError> {
        Ok(trace.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_kernel_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = Trace::new();
        let k = IdentityKernel;
        assert_eq!(k.step(&t, &mut rng).unwrap(), t);
        assert_eq!(k.steps(&t, 10, &mut rng).unwrap(), t);
    }

    #[test]
    fn trait_objects_delegate() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = Trace::new();
        let boxed: Box<dyn McmcKernel> = Box::new(IdentityKernel);
        boxed.step(&t, &mut rng).unwrap();
        let by_ref: &dyn McmcKernel = &IdentityKernel;
        by_ref.steps(&t, 3, &mut rng).unwrap();
    }
}
