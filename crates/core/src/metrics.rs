//! Runtime observability: propagation counters, stage metrics, and pool
//! telemetry — zero-cost when disabled.
//!
//! The paper's central performance claim (a fixed-size edit costs O(1)
//! per SMC step, independent of program size — Figs. 9/10) is usually
//! argued with wall-clock medians. This module counts what the runtime
//! actually *did* — execution-graph nodes visited vs skipped, whole
//! loops skipped by summary reuse, random choices reused vs freshly
//! sampled — turning the asymptotic claim into an asserted invariant.
//! Alongside the counters it records per-stage wall time decomposed into
//! translate / resample / checkpoint, health tallies pulled from
//! [`StepReport`], and worker-pool telemetry (queue-depth high-water
//! mark, a fixed-bucket task-latency histogram, respawn and retirement
//! counts).
//!
//! # Design
//!
//! - **Disabled by default, one branch to check.** Every record path is
//!   gated on a single relaxed [`AtomicBool`] load ([`enabled`]); when
//!   off, hooks are a load-and-branch and [`clock`] returns `None`
//!   without touching the OS clock. Inference output is byte-identical
//!   with metrics on or off — the layer only *observes*.
//! - **Deterministic counters.** All counters are `u64` sums accumulated
//!   with relaxed atomic adds. Addition is commutative and associative,
//!   and every stage boundary is a barrier (the pooled runners drain all
//!   tasks before reporting), so per-stage counter totals are
//!   bit-identical across thread counts for a fixed seed — exactly like
//!   the weights they describe. Wall times and pool telemetry are
//!   inherently schedule-dependent and therefore excluded from the
//!   deterministic subset ([`MetricsReport::counters_json`]).
//! - **One run at a time.** [`install`] serializes metrics-enabled runs
//!   behind a process-wide lock so concurrent tests cannot contaminate
//!   each other's counters; the returned [`MetricsGuard`] re-disables
//!   collection on drop.
//!
//! The JSON schema (`metrics/v1`) is documented in DESIGN.md §13.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use crate::health::{FailureKind, StepReport};

/// Change-propagation work counters for one unit of translation work
/// (one particle, one stage, or a whole run — they add).
///
/// `depgraph` fills one of these per `translate_graph` call from its
/// `VisitStats`; the flat (non-graph) translator records nothing, so a
/// flat run reports all-zero propagation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PropagationCounters {
    /// Statement instances re-executed (the affected slice).
    pub nodes_visited: u64,
    /// Statement instances skipped with their recorded effects reused.
    pub nodes_skipped: u64,
    /// Whole loop records (`for`/`while`) skipped without entering the
    /// body — the O(1) fixed-size-edit claim in counter form.
    pub loop_skips: u64,
    /// Per-iteration skips inside loops that *were* entered.
    pub iter_skips: u64,
    /// Random choices reused from the source trace (summary cache hits).
    pub choices_reused: u64,
    /// Random choices freshly sampled.
    pub choices_fresh: u64,
    /// Observation statements re-scored.
    pub observes_rescored: u64,
    /// Statement records skipped purely from static impact-slice facts,
    /// with no runtime dirty check (subset of `nodes_skipped`).
    pub static_skips: u64,
    /// Slice-soundness oracle membership checks performed (non-zero only
    /// under `--verify-slices`).
    pub oracle_checks: u64,
}

impl PropagationCounters {
    /// Field-wise sum.
    #[must_use]
    pub fn merged(&self, other: &PropagationCounters) -> PropagationCounters {
        PropagationCounters {
            nodes_visited: self.nodes_visited + other.nodes_visited,
            nodes_skipped: self.nodes_skipped + other.nodes_skipped,
            loop_skips: self.loop_skips + other.loop_skips,
            iter_skips: self.iter_skips + other.iter_skips,
            choices_reused: self.choices_reused + other.choices_reused,
            choices_fresh: self.choices_fresh + other.choices_fresh,
            observes_rescored: self.observes_rescored + other.observes_rescored,
            static_skips: self.static_skips + other.static_skips,
            oracle_checks: self.oracle_checks + other.oracle_checks,
        }
    }

    /// Whether every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == PropagationCounters::default()
    }
}

/// Everything recorded about one completed SMC stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageMetrics {
    /// Absolute stage (SMC step) index.
    pub step: usize,
    /// Collection size before the stage.
    pub input_particles: usize,
    /// Collection size after the stage.
    pub output_particles: usize,
    /// Post-reweight ESS (the degeneracy diagnostic).
    pub ess: f64,
    /// Particles quarantined this stage.
    pub dropped: usize,
    /// Retry attempts beyond first attempts.
    pub retries: usize,
    /// Particles that succeeded only after a retry.
    pub recovered: usize,
    /// Failures of kind [`FailureKind::Timeout`] this stage.
    pub timeouts: usize,
    /// Whether resampling ran.
    pub resampled: bool,
    /// Whether a weight collapse was recovered from.
    pub collapse_recovered: bool,
    /// Wall time of the translate/reweight phase, milliseconds.
    pub translate_ms: f64,
    /// Wall time of the degeneracy tail (ESS + resampling), milliseconds.
    pub resample_ms: f64,
    /// Wall time spent in the checkpoint observer, milliseconds.
    pub checkpoint_ms: f64,
    /// Worker tasks dispatched for this stage's translate phase (0 on
    /// the serial fast path). Schedule-shaped (depends on thread count
    /// and chunk size), so not part of the deterministic subset.
    pub pool_tasks: u64,
    /// Particles per task used by this stage's translate dispatch (the
    /// high-water value across the stage's rounds; 0 when serial).
    pub chunk_size: u64,
    /// Propagation counters summed over every particle of the stage.
    pub propagation: PropagationCounters,
}

/// Number of log-spaced task-latency buckets: bucket `i` counts tasks
/// whose latency is in `[2^i, 2^{i+1})` microseconds (bucket 0 includes
/// sub-microsecond tasks; the last bucket is open-ended at ~2.3 hours).
pub const LATENCY_BUCKETS: usize = 24;

/// Worker-pool telemetry accumulated over a metrics-enabled run.
///
/// Schedule-dependent by nature (queue depth and latency depend on OS
/// scheduling), so never part of the deterministic counter subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolTelemetry {
    /// Tasks dispatched to the pool (scoped batches + owned spawns).
    pub tasks: u64,
    /// High-water mark of simultaneously pending scoped tasks.
    pub queue_depth_hwm: u64,
    /// Dead workers replaced by `respawn_dead`.
    pub respawns: u64,
    /// Global pools retired (wedged-pool replacement events).
    pub retirements: u64,
    /// Task-latency histogram, log2-spaced microsecond buckets.
    pub latency_buckets: [u64; LATENCY_BUCKETS],
}

impl Default for PoolTelemetry {
    fn default() -> PoolTelemetry {
        PoolTelemetry {
            tasks: 0,
            queue_depth_hwm: 0,
            respawns: 0,
            retirements: 0,
            latency_buckets: [0; LATENCY_BUCKETS],
        }
    }
}

/// Arena-allocator telemetry accumulated over a metrics-enabled run:
/// how many execution-graph nodes live in arena segments, and how much
/// segment capacity was recycled instead of re-allocated.
///
/// Node totals are value-deterministic, but frees (and therefore
/// occupancy and the high-water mark) happen when particle graphs drop —
/// a schedule-dependent instant under parallel translation — so the
/// whole struct stays out of the deterministic counter subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaTelemetry {
    /// Graph nodes allocated into arena segments.
    pub nodes_allocated: u64,
    /// Graph nodes released when their segment dropped.
    pub nodes_freed: u64,
    /// Nodes currently live (`allocated - freed`, saturating).
    pub occupancy: u64,
    /// High-water mark of live nodes.
    pub high_water: u64,
    /// Segment buffers reused from the capacity pool instead of being
    /// freshly allocated.
    pub recycled_buffers: u64,
}

/// Compiled-evaluation telemetry snapshot: compile-cache effectiveness,
/// compiled-vs-tree-walk execution mix, and eval-frame reuse. Counts are
/// process-wide and schedule-dependent (frame pools are per worker
/// thread, the compile cache persists across runs), so this section is
/// report-only and deliberately excluded from the deterministic subset
/// ([`MetricsReport::counters_json`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalTelemetry {
    /// Compile-cache lookups served from the cache.
    pub compile_cache_hits: u64,
    /// Compile-cache lookups that had to lower the program.
    pub compile_cache_misses: u64,
    /// Program executions through the compiled register path.
    pub compiled_execs: u64,
    /// Program executions through the tree-walk reference path.
    pub tree_walk_execs: u64,
    /// Eval frames allocated fresh.
    pub frames_created: u64,
    /// Eval frames reused from a worker's frame pool.
    pub frames_reused: u64,
}

/// Consumer of per-stage metrics. Implementations must be cheap and
/// non-blocking-ish: `record_stage` is called once per stage from the
/// sequence-runner thread, never from workers.
pub trait MetricsSink: Send + Sync {
    /// Called once after each completed stage.
    fn record_stage(&self, stage: &StageMetrics);
}

/// A sink that discards everything (the default when none is installed).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl MetricsSink for NoopSink {
    fn record_stage(&self, _stage: &StageMetrics) {}
}

/// The standard sink: accumulates stages in memory and snapshots them
/// into a [`MetricsReport`].
#[derive(Debug, Default)]
pub struct MetricsRecorder {
    stages: Mutex<Vec<StageMetrics>>,
}

impl MetricsRecorder {
    /// An empty recorder.
    pub fn new() -> MetricsRecorder {
        MetricsRecorder::default()
    }

    /// Snapshots the recorded stages plus the pool telemetry accumulated
    /// since [`install`] into a report.
    pub fn report(&self, label: &str) -> MetricsReport {
        MetricsReport {
            label: label.to_string(),
            stages: lock(&self.stages).clone(),
            pool: pool_telemetry(),
            arena: arena_telemetry(),
            eval: eval_telemetry(),
        }
    }
}

impl MetricsSink for MetricsRecorder {
    fn record_stage(&self, stage: &StageMetrics) {
        lock(&self.stages).push(stage.clone());
    }
}

/// A metrics-enabled run's collected output: per-stage metrics plus
/// run-wide pool telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Caller-chosen run label.
    pub label: String,
    /// One entry per completed stage, in order.
    pub stages: Vec<StageMetrics>,
    /// Pool telemetry accumulated over the run.
    pub pool: PoolTelemetry,
    /// Arena telemetry accumulated over the run.
    pub arena: ArenaTelemetry,
    /// Compiled-evaluation telemetry accumulated over the run.
    pub eval: EvalTelemetry,
}

impl MetricsReport {
    /// Propagation counters summed over all stages.
    pub fn total_propagation(&self) -> PropagationCounters {
        self.stages
            .iter()
            .fold(PropagationCounters::default(), |acc, s| {
                acc.merged(&s.propagation)
            })
    }

    /// The full `metrics/v1` JSON document: deterministic counters plus
    /// wall times and pool telemetry.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"metrics/v1\",\n");
        out.push_str(&format!("  \"label\": \"{}\",\n", escape(&self.label)));
        out.push_str("  \"stages\": [\n");
        for (i, s) in self.stages.iter().enumerate() {
            let sep = if i + 1 == self.stages.len() { "" } else { "," };
            out.push_str("    {\n");
            out.push_str(&stage_counter_fields(s, "      "));
            out.push_str(&format!(
                "      \"pool_tasks\": {},\n      \"chunk_size\": {},\n",
                s.pool_tasks, s.chunk_size
            ));
            out.push_str(&format!(
                "      \"translate_ms\": {:.3},\n      \"resample_ms\": {:.3},\n      \"checkpoint_ms\": {:.3}\n",
                s.translate_ms, s.resample_ms, s.checkpoint_ms
            ));
            out.push_str(&format!("    }}{sep}\n"));
        }
        out.push_str("  ],\n");
        out.push_str("  \"pool\": {\n");
        out.push_str(&format!("    \"tasks\": {},\n", self.pool.tasks));
        out.push_str(&format!(
            "    \"queue_depth_hwm\": {},\n",
            self.pool.queue_depth_hwm
        ));
        out.push_str(&format!("    \"respawns\": {},\n", self.pool.respawns));
        out.push_str(&format!(
            "    \"retirements\": {},\n",
            self.pool.retirements
        ));
        let buckets: Vec<String> = self
            .pool
            .latency_buckets
            .iter()
            .map(u64::to_string)
            .collect();
        out.push_str(&format!(
            "    \"latency_us_log2_buckets\": [{}]\n",
            buckets.join(", ")
        ));
        out.push_str("  },\n");
        out.push_str("  \"arena\": {\n");
        out.push_str(&format!(
            "    \"nodes_allocated\": {},\n",
            self.arena.nodes_allocated
        ));
        out.push_str(&format!(
            "    \"nodes_freed\": {},\n",
            self.arena.nodes_freed
        ));
        out.push_str(&format!("    \"occupancy\": {},\n", self.arena.occupancy));
        out.push_str(&format!("    \"high_water\": {},\n", self.arena.high_water));
        out.push_str(&format!(
            "    \"recycled_buffers\": {}\n",
            self.arena.recycled_buffers
        ));
        out.push_str("  },\n");
        out.push_str("  \"eval\": {\n");
        out.push_str(&format!(
            "    \"compile_cache_hits\": {},\n",
            self.eval.compile_cache_hits
        ));
        out.push_str(&format!(
            "    \"compile_cache_misses\": {},\n",
            self.eval.compile_cache_misses
        ));
        out.push_str(&format!(
            "    \"compiled_execs\": {},\n",
            self.eval.compiled_execs
        ));
        out.push_str(&format!(
            "    \"tree_walk_execs\": {},\n",
            self.eval.tree_walk_execs
        ));
        out.push_str(&format!(
            "    \"frames_created\": {},\n",
            self.eval.frames_created
        ));
        out.push_str(&format!(
            "    \"frames_reused\": {}\n",
            self.eval.frames_reused
        ));
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }

    /// The deterministic subset only: per-stage counters and health
    /// tallies, no wall times, no pool telemetry. Bit-identical across
    /// thread counts for a fixed seed — the determinism tests compare
    /// this string byte for byte.
    pub fn counters_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"metrics/v1-counters\",\n");
        out.push_str("  \"stages\": [\n");
        for (i, s) in self.stages.iter().enumerate() {
            let sep = if i + 1 == self.stages.len() { "" } else { "," };
            out.push_str("    {\n");
            let mut fields = stage_counter_fields(s, "      ");
            // Drop the trailing comma of the last counter field.
            if fields.ends_with(",\n") {
                fields.truncate(fields.len() - 2);
                fields.push('\n');
            }
            out.push_str(&fields);
            out.push_str(&format!("    }}{sep}\n"));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Human summary: one table row per stage plus pool totals.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("metrics for `{}`:\n", self.label));
        out.push_str(
            "  stage    visited    skipped  loop-skip     reused      fresh  \
             tasks  chunk  translate   resample  checkpoint\n",
        );
        for s in &self.stages {
            out.push_str(&format!(
                "  {:>5} {:>10} {:>10} {:>10} {:>10} {:>10} {:>6} {:>6} {:>9.2}ms {:>8.2}ms {:>9.2}ms\n",
                s.step,
                s.propagation.nodes_visited,
                s.propagation.nodes_skipped,
                s.propagation.loop_skips,
                s.propagation.choices_reused,
                s.propagation.choices_fresh,
                s.pool_tasks,
                s.chunk_size,
                s.translate_ms,
                s.resample_ms,
                s.checkpoint_ms,
            ));
        }
        let total = self.total_propagation();
        out.push_str(&format!(
            "  total: {} visited, {} skipped ({} whole-loop), \
             {} choices reused / {} fresh, {} observes re-scored\n",
            total.nodes_visited,
            total.nodes_skipped,
            total.loop_skips,
            total.choices_reused,
            total.choices_fresh,
            total.observes_rescored,
        ));
        out.push_str(&format!(
            "  static: {} records pre-pruned by the impact slice, {} oracle checks\n",
            total.static_skips, total.oracle_checks,
        ));
        out.push_str(&format!(
            "  pool: {} tasks, queue depth high-water {}, {} respawns, {} retirements\n",
            self.pool.tasks, self.pool.queue_depth_hwm, self.pool.respawns, self.pool.retirements,
        ));
        out.push_str(&format!(
            "  arena: {} nodes allocated, {} live (high-water {}), {} buffers recycled\n",
            self.arena.nodes_allocated,
            self.arena.occupancy,
            self.arena.high_water,
            self.arena.recycled_buffers,
        ));
        out.push_str(&format!(
            "  eval: {} compiled / {} tree-walk execs, cache {} hits / {} misses, \
             frames {} created / {} reused\n",
            self.eval.compiled_execs,
            self.eval.tree_walk_execs,
            self.eval.compile_cache_hits,
            self.eval.compile_cache_misses,
            self.eval.frames_created,
            self.eval.frames_reused,
        ));
        out
    }
}

/// The per-stage counter fields shared by [`MetricsReport::to_json`] and
/// [`MetricsReport::counters_json`] (every line comma-terminated).
fn stage_counter_fields(s: &StageMetrics, pad: &str) -> String {
    let p = &s.propagation;
    format!(
        "{pad}\"step\": {},\n\
         {pad}\"input_particles\": {},\n\
         {pad}\"output_particles\": {},\n\
         {pad}\"ess\": {:?},\n\
         {pad}\"dropped\": {},\n\
         {pad}\"retries\": {},\n\
         {pad}\"recovered\": {},\n\
         {pad}\"timeouts\": {},\n\
         {pad}\"resampled\": {},\n\
         {pad}\"collapse_recovered\": {},\n\
         {pad}\"nodes_visited\": {},\n\
         {pad}\"nodes_skipped\": {},\n\
         {pad}\"loop_skips\": {},\n\
         {pad}\"iter_skips\": {},\n\
         {pad}\"choices_reused\": {},\n\
         {pad}\"choices_fresh\": {},\n\
         {pad}\"observes_rescored\": {},\n\
         {pad}\"static_skips\": {},\n\
         {pad}\"oracle_checks\": {},\n",
        s.step,
        s.input_particles,
        s.output_particles,
        s.ess,
        s.dropped,
        s.retries,
        s.recovered,
        s.timeouts,
        s.resampled,
        s.collapse_recovered,
        p.nodes_visited,
        p.nodes_skipped,
        p.loop_skips,
        p.iter_skips,
        p.choices_reused,
        p.choices_fresh,
        p.observes_rescored,
        p.static_skips,
        p.oracle_checks,
    )
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------
// Global collection state.
//
// One metrics-enabled run at a time (serialized by EXCLUSIVE); all hot
// paths check ENABLED with one relaxed load and add into relaxed
// AtomicU64 accumulators, which the sequence runner drains at each stage
// boundary. Stage boundaries are barriers in every runner, so the drain
// is race-free with respect to worker threads.
// ---------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static EXCLUSIVE: Mutex<()> = Mutex::new(());
static SINK: Mutex<Option<std::sync::Arc<dyn MetricsSink>>> = Mutex::new(None);

// Propagation accumulators (drained per stage).
static P_VISITED: AtomicU64 = AtomicU64::new(0);
static P_SKIPPED: AtomicU64 = AtomicU64::new(0);
static P_LOOP_SKIPS: AtomicU64 = AtomicU64::new(0);
static P_ITER_SKIPS: AtomicU64 = AtomicU64::new(0);
static P_REUSED: AtomicU64 = AtomicU64::new(0);
static P_FRESH: AtomicU64 = AtomicU64::new(0);
static P_OBSERVES: AtomicU64 = AtomicU64::new(0);
static P_STATIC_SKIPS: AtomicU64 = AtomicU64::new(0);
static P_ORACLE_CHECKS: AtomicU64 = AtomicU64::new(0);

// Phase-time accumulators, nanoseconds (drained per stage).
static T_TRANSLATE_NS: AtomicU64 = AtomicU64::new(0);
static T_RESAMPLE_NS: AtomicU64 = AtomicU64::new(0);
static T_CHECKPOINT_NS: AtomicU64 = AtomicU64::new(0);

// Stage-dispatch gauges (drained per stage).
static D_TASKS: AtomicU64 = AtomicU64::new(0);
static D_CHUNK: AtomicU64 = AtomicU64::new(0);

// Arena telemetry (accumulated per run, read at report time).
static ARENA_ALLOC: AtomicU64 = AtomicU64::new(0);
static ARENA_FREED: AtomicU64 = AtomicU64::new(0);
static ARENA_HWM: AtomicU64 = AtomicU64::new(0);
static ARENA_RECYCLED: AtomicU64 = AtomicU64::new(0);

// Pool telemetry (accumulated per run, read at report time).
static POOL_TASKS: AtomicU64 = AtomicU64::new(0);
static POOL_DEPTH: AtomicU64 = AtomicU64::new(0);
static POOL_DEPTH_HWM: AtomicU64 = AtomicU64::new(0);
static POOL_RESPAWNS: AtomicU64 = AtomicU64::new(0);
static POOL_RETIREMENTS: AtomicU64 = AtomicU64::new(0);
static POOL_LATENCY: [AtomicU64; LATENCY_BUCKETS] = [const { AtomicU64::new(0) }; LATENCY_BUCKETS];

/// Whether metrics collection is currently enabled. One relaxed atomic
/// load — the entire cost of the layer when disabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// RAII guard of a metrics-enabled run: collection stays on until it is
/// dropped, and no other run can enable metrics while it lives.
pub struct MetricsGuard {
    _exclusive: MutexGuard<'static, ()>,
}

impl Drop for MetricsGuard {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
        *lock(&SINK) = None;
    }
}

/// Enables metrics collection with `sink` receiving per-stage metrics,
/// returning a guard that disables collection when dropped.
///
/// Blocks until any other metrics-enabled run finishes (collection state
/// is process-global), then resets all accumulators so the new run
/// starts from zero.
pub fn install(sink: std::sync::Arc<dyn MetricsSink>) -> MetricsGuard {
    let exclusive = EXCLUSIVE.lock().unwrap_or_else(PoisonError::into_inner);
    for c in [
        &P_VISITED,
        &P_SKIPPED,
        &P_LOOP_SKIPS,
        &P_ITER_SKIPS,
        &P_REUSED,
        &P_FRESH,
        &P_OBSERVES,
        &P_STATIC_SKIPS,
        &P_ORACLE_CHECKS,
        &T_TRANSLATE_NS,
        &T_RESAMPLE_NS,
        &T_CHECKPOINT_NS,
        &D_TASKS,
        &D_CHUNK,
        &ARENA_ALLOC,
        &ARENA_FREED,
        &ARENA_HWM,
        &ARENA_RECYCLED,
        &POOL_TASKS,
        &POOL_DEPTH,
        &POOL_DEPTH_HWM,
        &POOL_RESPAWNS,
        &POOL_RETIREMENTS,
    ] {
        c.store(0, Ordering::SeqCst);
    }
    for b in &POOL_LATENCY {
        b.store(0, Ordering::SeqCst);
    }
    ppl::compile::reset_eval_counters();
    *lock(&SINK) = Some(sink);
    ENABLED.store(true, Ordering::SeqCst);
    MetricsGuard {
        _exclusive: exclusive,
    }
}

/// Adds a translation's propagation counters to the current stage's
/// accumulators. Called by `depgraph` once per `translate_graph`.
#[inline]
pub fn record_propagation(c: &PropagationCounters) {
    if !enabled() {
        return;
    }
    P_VISITED.fetch_add(c.nodes_visited, Ordering::Relaxed);
    P_SKIPPED.fetch_add(c.nodes_skipped, Ordering::Relaxed);
    P_LOOP_SKIPS.fetch_add(c.loop_skips, Ordering::Relaxed);
    P_ITER_SKIPS.fetch_add(c.iter_skips, Ordering::Relaxed);
    P_REUSED.fetch_add(c.choices_reused, Ordering::Relaxed);
    P_FRESH.fetch_add(c.choices_fresh, Ordering::Relaxed);
    P_OBSERVES.fetch_add(c.observes_rescored, Ordering::Relaxed);
    P_STATIC_SKIPS.fetch_add(c.static_skips, Ordering::Relaxed);
    P_ORACLE_CHECKS.fetch_add(c.oracle_checks, Ordering::Relaxed);
}

/// `Some(now)` iff metrics are enabled — phase timing reads the OS clock
/// only when someone is listening.
#[inline]
pub fn clock() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

#[inline]
fn note_elapsed(counter: &AtomicU64, start: Option<Instant>) {
    if let Some(start) = start {
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        counter.fetch_add(ns, Ordering::Relaxed);
    }
}

/// Credits elapsed time since `start` (a [`clock`] result) to the
/// current stage's translate phase.
#[inline]
pub fn note_translate(start: Option<Instant>) {
    note_elapsed(&T_TRANSLATE_NS, start);
}

/// Credits elapsed time since `start` to the current stage's degeneracy
/// tail (ESS + resampling).
#[inline]
pub fn note_resample(start: Option<Instant>) {
    note_elapsed(&T_RESAMPLE_NS, start);
}

/// Credits elapsed time since `start` to the current stage's checkpoint
/// observer.
#[inline]
pub fn note_checkpoint(start: Option<Instant>) {
    note_elapsed(&T_CHECKPOINT_NS, start);
}

/// Drains the stage accumulators into a [`StageMetrics`] built from the
/// completed stage's [`StepReport`] and hands it to the installed sink.
/// Called by every sequence runner at each stage boundary (a barrier:
/// all of the stage's worker tasks have completed).
pub fn stage_complete(report: &StepReport) {
    if !enabled() {
        return;
    }
    let drain = |c: &AtomicU64| c.swap(0, Ordering::Relaxed);
    let propagation = PropagationCounters {
        nodes_visited: drain(&P_VISITED),
        nodes_skipped: drain(&P_SKIPPED),
        loop_skips: drain(&P_LOOP_SKIPS),
        iter_skips: drain(&P_ITER_SKIPS),
        choices_reused: drain(&P_REUSED),
        choices_fresh: drain(&P_FRESH),
        observes_rescored: drain(&P_OBSERVES),
        static_skips: drain(&P_STATIC_SKIPS),
        oracle_checks: drain(&P_ORACLE_CHECKS),
    };
    let to_ms = |ns: u64| ns as f64 / 1e6;
    let stage = StageMetrics {
        step: report.step,
        input_particles: report.input_particles,
        output_particles: report.output_particles,
        ess: report.ess,
        dropped: report.dropped,
        retries: report.retries,
        recovered: report.recovered,
        timeouts: report
            .failures
            .iter()
            .filter(|f| matches!(f.kind, FailureKind::Timeout { .. }))
            .count(),
        resampled: report.resampled,
        collapse_recovered: report.collapse_recovered,
        translate_ms: to_ms(drain(&T_TRANSLATE_NS)),
        resample_ms: to_ms(drain(&T_RESAMPLE_NS)),
        checkpoint_ms: to_ms(drain(&T_CHECKPOINT_NS)),
        pool_tasks: drain(&D_TASKS),
        chunk_size: drain(&D_CHUNK),
        propagation,
    };
    if let Some(sink) = lock(&SINK).clone() {
        sink.record_stage(&stage);
    }
}

/// Records one translate-phase dispatch of `tasks` worker tasks at
/// `chunk` particles per task. Tasks accumulate across a stage's rounds
/// (the deadline path re-dispatches stragglers); the chunk gauge keeps
/// the round high-water value.
#[inline]
pub fn note_stage_dispatch(tasks: u64, chunk: u64) {
    if !enabled() {
        return;
    }
    D_TASKS.fetch_add(tasks, Ordering::Relaxed);
    D_CHUNK.fetch_max(chunk, Ordering::Relaxed);
}

/// Records `n` execution-graph nodes allocated into an arena segment,
/// updating the live-node high-water mark.
#[inline]
pub fn note_arena_alloc(n: u64) {
    if !enabled() || n == 0 {
        return;
    }
    let allocated = ARENA_ALLOC.fetch_add(n, Ordering::Relaxed) + n;
    let live = allocated.saturating_sub(ARENA_FREED.load(Ordering::Relaxed));
    ARENA_HWM.fetch_max(live, Ordering::Relaxed);
}

/// Records `n` execution-graph nodes released by a dropped arena
/// segment.
#[inline]
pub fn note_arena_free(n: u64) {
    if enabled() && n > 0 {
        ARENA_FREED.fetch_add(n, Ordering::Relaxed);
    }
}

/// Records a segment buffer reused from the arena capacity pool.
#[inline]
pub fn note_arena_recycle() {
    if enabled() {
        ARENA_RECYCLED.fetch_add(1, Ordering::Relaxed);
    }
}

/// Snapshot of the arena telemetry accumulated since [`install`].
pub fn arena_telemetry() -> ArenaTelemetry {
    let nodes_allocated = ARENA_ALLOC.load(Ordering::Relaxed);
    let nodes_freed = ARENA_FREED.load(Ordering::Relaxed);
    ArenaTelemetry {
        nodes_allocated,
        nodes_freed,
        occupancy: nodes_allocated.saturating_sub(nodes_freed),
        high_water: ARENA_HWM.load(Ordering::Relaxed),
        recycled_buffers: ARENA_RECYCLED.load(Ordering::Relaxed),
    }
}

/// Snapshot of the compiled-evaluation telemetry maintained by
/// [`ppl::compile`]. Unlike the other accumulators these live in the
/// `ppl` crate (the hot eval paths must not depend on `core`); they are
/// zeroed by [`install`] so a report covers one run.
pub fn eval_telemetry() -> EvalTelemetry {
    let c = ppl::compile::eval_counters();
    EvalTelemetry {
        compile_cache_hits: c.compile_cache_hits,
        compile_cache_misses: c.compile_cache_misses,
        compiled_execs: c.compiled_execs,
        tree_walk_execs: c.tree_walk_execs,
        frames_created: c.frames_created,
        frames_reused: c.frames_reused,
    }
}

/// Records `n` tasks entering the pool's pending set, updating the
/// queue-depth high-water mark.
#[inline]
pub fn note_pool_enqueue(n: u64) {
    if !enabled() {
        return;
    }
    POOL_TASKS.fetch_add(n, Ordering::Relaxed);
    let depth = POOL_DEPTH.fetch_add(n, Ordering::Relaxed) + n;
    POOL_DEPTH_HWM.fetch_max(depth, Ordering::Relaxed);
}

/// Records completion of a pool task whose start was captured with
/// [`clock`]; a `None` start (metrics were off when the task began) is
/// ignored.
#[inline]
pub fn note_pool_task(start: Option<Instant>) {
    if let Some(start) = start {
        note_pool_task_done(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
}

/// Records one task leaving the pending set after running for
/// `elapsed_ns` nanoseconds; buckets the latency log2 by microsecond.
#[inline]
pub fn note_pool_task_done(elapsed_ns: u64) {
    if !enabled() {
        return;
    }
    // Saturating decrement: enqueue/dequeue pairs can straddle an
    // install() reset.
    let _ = POOL_DEPTH.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
        Some(d.saturating_sub(1))
    });
    let us = elapsed_ns / 1_000;
    // Bucket i covers [2^i, 2^{i+1}) µs; sub-µs tasks land in bucket 0.
    let idx = (63 - (us | 1).leading_zeros()) as usize;
    POOL_LATENCY[idx.min(LATENCY_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
}

/// Records `n` dead workers replaced by the pool's respawn sweep.
#[inline]
pub fn note_pool_respawn(n: u64) {
    if enabled() && n > 0 {
        POOL_RESPAWNS.fetch_add(n, Ordering::Relaxed);
    }
}

/// Records a global-pool retirement (wedged-pool replacement).
#[inline]
pub fn note_pool_retirement() {
    if enabled() {
        POOL_RETIREMENTS.fetch_add(1, Ordering::Relaxed);
    }
}

/// Snapshot of the pool telemetry accumulated since [`install`].
pub fn pool_telemetry() -> PoolTelemetry {
    let mut latency_buckets = [0u64; LATENCY_BUCKETS];
    for (out, b) in latency_buckets.iter_mut().zip(POOL_LATENCY.iter()) {
        *out = b.load(Ordering::Relaxed);
    }
    PoolTelemetry {
        tasks: POOL_TASKS.load(Ordering::Relaxed),
        queue_depth_hwm: POOL_DEPTH_HWM.load(Ordering::Relaxed),
        respawns: POOL_RESPAWNS.load(Ordering::Relaxed),
        retirements: POOL_RETIREMENTS.load(Ordering::Relaxed),
        latency_buckets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn report(step: usize) -> StepReport {
        StepReport {
            step,
            input_particles: 4,
            output_particles: 4,
            ess: 3.5,
            dropped: 0,
            retries: 0,
            recovered: 0,
            failures: vec![],
            resampled: false,
            collapse_recovered: false,
        }
    }

    #[test]
    fn disabled_hooks_are_inert() {
        assert!(!enabled());
        assert!(clock().is_none());
        record_propagation(&PropagationCounters {
            nodes_visited: 10,
            ..PropagationCounters::default()
        });
        note_pool_enqueue(5);
        stage_complete(&report(0)); // must not panic or record anywhere
    }

    #[test]
    fn install_collects_and_guard_disables() {
        let recorder = Arc::new(MetricsRecorder::new());
        {
            let _guard = install(recorder.clone());
            assert!(enabled());
            assert!(clock().is_some());
            record_propagation(&PropagationCounters {
                nodes_visited: 3,
                nodes_skipped: 7,
                loop_skips: 1,
                iter_skips: 0,
                choices_reused: 5,
                choices_fresh: 2,
                observes_rescored: 4,
                static_skips: 6,
                oracle_checks: 3,
            });
            note_pool_enqueue(3);
            note_pool_task_done(1_500_000); // 1.5 ms → 1500 µs → bucket 10
            stage_complete(&report(0));
            // Second stage sees drained (zeroed) accumulators.
            stage_complete(&report(1));
        }
        assert!(!enabled());
        let rep = recorder.report("unit");
        assert_eq!(rep.stages.len(), 2);
        assert_eq!(rep.stages[0].propagation.nodes_visited, 3);
        assert_eq!(rep.stages[0].propagation.loop_skips, 1);
        assert!(rep.stages[1].propagation.is_zero());
        assert_eq!(rep.total_propagation().nodes_skipped, 7);
        assert_eq!(rep.stages[0].propagation.static_skips, 6);
        assert_eq!(rep.total_propagation().oracle_checks, 3);
        assert_eq!(rep.pool.tasks, 3);
        assert_eq!(rep.pool.queue_depth_hwm, 3);
        assert_eq!(rep.pool.latency_buckets[10], 1);
        let json = rep.to_json();
        assert!(json.contains("\"schema\": \"metrics/v1\""));
        assert!(json.contains("\"nodes_visited\": 3"));
        assert!(json.contains("\"static_skips\": 6"));
        assert!(json.contains("\"oracle_checks\": 3"));
        assert!(json.contains("\"queue_depth_hwm\": 3"));
        assert!(json.contains("\"eval\": {"));
        assert!(json.contains("\"compiled_execs\""));
        assert!(json.contains("\"frames_reused\""));
        let counters = rep.counters_json();
        assert!(counters.contains("\"nodes_visited\": 3"));
        assert!(!counters.contains("translate_ms"));
        assert!(!counters.contains("pool"));
        assert!(!counters.contains("compiled_execs"));
        let table = rep.render();
        assert!(table.contains("visited"));
        assert!(table.contains("1 whole-loop"));
        assert!(table.contains("eval:"));
    }

    #[test]
    fn latency_bucketing_is_log2_microseconds() {
        let idx = |us: u64| (63 - (us | 1).leading_zeros()) as usize;
        assert_eq!(idx(0), 0);
        assert_eq!(idx(1), 0);
        assert_eq!(idx(2), 1);
        assert_eq!(idx(3), 1);
        assert_eq!(idx(1024), 10);
        assert_eq!(idx(u64::MAX).min(LATENCY_BUCKETS - 1), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn counters_merge_and_report_json_escapes_labels() {
        let a = PropagationCounters {
            nodes_visited: 1,
            choices_fresh: 2,
            ..PropagationCounters::default()
        };
        let b = PropagationCounters {
            nodes_visited: 10,
            loop_skips: 3,
            ..PropagationCounters::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.nodes_visited, 11);
        assert_eq!(m.loop_skips, 3);
        assert_eq!(m.choices_fresh, 2);
        let rep = MetricsReport {
            label: "a\"b\\c".to_string(),
            stages: vec![],
            pool: PoolTelemetry::default(),
            arena: ArenaTelemetry::default(),
            eval: EvalTelemetry::default(),
        };
        assert!(rep.to_json().contains("a\\\"b\\\\c"));
    }
}
