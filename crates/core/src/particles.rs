//! Weighted particle collections.
//!
//! A weighted collection `{(t_j, w_j)}` approximates a posterior
//! `Pr[t ∼ P]` by the empirical distribution
//! `P̂(t) = Σ_j (w_j / Σ_k w_k) δ(t, t_j)` (Section 4.2), and estimates
//! expectations with the self-normalized estimator of Eq. (5).
//!
//! Collections are generic over the particle *state* `S` (default
//! [`Trace`]): the Section 6 runtime keeps particles as execution graphs
//! across a whole edit sequence and only flattens them to traces at API
//! boundaries via [`ParticleState`].

use ppl::logweight::log_sum_exp;
use ppl::{LogWeight, PplError, Trace};

/// A particle state that can be flattened to a plain [`Trace`] at an API
/// boundary (estimation over trace predicates, reporting, hand-off to
/// trace-level translators).
///
/// A flat [`Trace`] is its own state (flattening is a clone); the
/// Section 6 runtime implements this for shared execution graphs so
/// graph-native collections can be inspected without leaving the graph
/// representation during inference.
pub trait ParticleState {
    /// Flattens the state to the trace it represents.
    ///
    /// # Errors
    ///
    /// Propagates representation-specific flattening failures (a
    /// [`Trace`] never fails).
    fn to_trace(&self) -> Result<Trace, PplError>;
}

impl ParticleState for Trace {
    fn to_trace(&self) -> Result<Trace, PplError> {
        Ok(self.clone())
    }
}

/// Shared states flatten through the reference — this is what lets
/// copy-on-write `Arc`-backed graph particles satisfy the boundary
/// contract without a newtype.
impl<S: ParticleState + ?Sized> ParticleState for std::sync::Arc<S> {
    fn to_trace(&self) -> Result<Trace, PplError> {
        (**self).to_trace()
    }
}

/// One weighted particle: a state (by default a trace) and its log
/// weight.
#[derive(Debug, Clone)]
pub struct Particle<S = Trace> {
    /// The particle state (a [`Trace`] unless the runtime carries a
    /// richer representation).
    pub trace: S,
    /// Its log weight.
    pub log_weight: LogWeight,
}

/// A weighted collection of particle states approximating a posterior.
///
/// # Examples
///
/// ```
/// use incremental::ParticleCollection;
/// use ppl::{addr, Handler, PplError};
/// use ppl::dist::Dist;
/// use ppl::handlers::simulate;
/// use rand::SeedableRng;
///
/// let model = |h: &mut dyn Handler| h.sample(addr!["x"], Dist::flip(0.5));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let traces = (0..100).map(|_| simulate(&model, &mut rng)).collect::<Result<Vec<_>, _>>()?;
/// let particles = ParticleCollection::from_traces(traces);
/// let p = particles.probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap())?;
/// assert!(p > 0.2 && p < 0.8);
/// # Ok::<(), PplError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ParticleCollection<S = Trace> {
    particles: Vec<Particle<S>>,
}

impl<S> Default for ParticleCollection<S> {
    fn default() -> ParticleCollection<S> {
        ParticleCollection {
            particles: Vec::new(),
        }
    }
}

impl<S> ParticleCollection<S> {
    /// Creates an empty collection.
    pub fn new() -> ParticleCollection<S> {
        ParticleCollection::default()
    }

    /// Creates a collection from explicit particles.
    pub fn from_particles(particles: Vec<Particle<S>>) -> ParticleCollection<S> {
        ParticleCollection { particles }
    }

    /// Adds a particle.
    pub fn push(&mut self, trace: S, log_weight: LogWeight) {
        self.particles.push(Particle { trace, log_weight });
    }

    /// Adds a particle only if its weight is admissible, rejecting NaN
    /// and `+∞` log weights that would poison `log_sum_exp`-based
    /// quantities ([`Self::normalized_weights`], [`Self::ess`]) for the
    /// whole collection. `-∞` (a zero weight) is admissible: it is a
    /// valid degenerate weight that the estimators handle.
    ///
    /// This is the quarantine boundary the fault-tolerant SMC runtime
    /// uses: a rejected weight becomes a recorded
    /// [`crate::ParticleFailure`] instead of a silent NaN estimate.
    ///
    /// # Errors
    ///
    /// Returns the offending log weight (and gives back the state, boxed
    /// to keep the `Err` path cheap) if the weight is NaN or `+∞`.
    pub fn push_checked(&mut self, trace: S, log_weight: LogWeight) -> Result<(), Box<(S, f64)>> {
        let lw = log_weight.log();
        if lw.is_nan() || lw == f64::INFINITY {
            return Err(Box::new((trace, lw)));
        }
        self.push(trace, log_weight);
        Ok(())
    }

    /// Number of particles `M`.
    pub fn len(&self) -> usize {
        self.particles.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.particles.is_empty()
    }

    /// Iterates over the particles.
    pub fn iter(&self) -> impl Iterator<Item = &Particle<S>> {
        self.particles.iter()
    }

    /// The particles as a slice.
    pub fn particles(&self) -> &[Particle<S>] {
        &self.particles
    }

    /// The log weights.
    pub fn log_weights(&self) -> Vec<f64> {
        self.particles.iter().map(|p| p.log_weight.log()).collect()
    }

    /// Self-normalized weights summing to 1.
    ///
    /// # Errors
    ///
    /// Errors if the collection is empty or all weights are zero (total
    /// particle degeneracy), or if the weight total is non-finite — a NaN
    /// or `+∞` weight slipped past the [`Self::push_checked`] quarantine,
    /// so no proper normalization exists.
    pub fn normalized_weights(&self) -> Result<Vec<f64>, PplError> {
        let lw = self.log_weights();
        let lse = log_sum_exp(&lw);
        if lse == f64::NEG_INFINITY {
            return Err(PplError::Other(
                "all particle weights are zero; the approximation has collapsed".to_string(),
            ));
        }
        if !lse.is_finite() {
            return Err(PplError::Other(format!(
                "particle weights have non-finite total (log-sum-exp = {lse}); \
                 a NaN or infinite weight entered the collection"
            )));
        }
        Ok(lw.iter().map(|w| (w - lse).exp()).collect())
    }

    /// The self-normalized estimator of Eq. (5):
    /// `Σ_j w'_j φ(u'_j) / Σ_j w'_j ≈ E_{u∼Q}[φ(u)]`.
    ///
    /// # Errors
    ///
    /// Errors on an empty or fully degenerate collection.
    pub fn estimate(&self, mut phi: impl FnMut(&S) -> f64) -> Result<f64, PplError> {
        let ws = self.normalized_weights()?;
        Ok(self
            .particles
            .iter()
            .zip(ws)
            .map(|(p, w)| w * phi(&p.trace))
            .sum())
    }

    /// Estimates the probability of an event `A ⊆ T_Q` using the indicator
    /// estimator of Section 4.2.
    ///
    /// # Errors
    ///
    /// Errors on an empty or fully degenerate collection.
    pub fn probability(&self, mut event: impl FnMut(&S) -> bool) -> Result<f64, PplError> {
        self.estimate(|t| if event(t) { 1.0 } else { 0.0 })
    }

    /// Effective sample size `(Σ_j w_j)² / Σ_j w_j²` — the degeneracy
    /// diagnostic of Section 4.2 ("Multiple Steps and resample").
    pub fn ess(&self) -> f64 {
        crate::diagnostics::effective_sample_size(&self.log_weights())
    }

    /// `log((1/M) Σ_j w_j)` — across one `infer` step starting from unit
    /// weights this estimates `log(Z_Q / Z_P)` (Lemma 6).
    pub fn log_mean_weight(&self) -> f64 {
        if self.particles.is_empty() {
            return f64::NEG_INFINITY;
        }
        log_sum_exp(&self.log_weights()) - (self.particles.len() as f64).ln()
    }
}

impl ParticleCollection {
    /// Creates a collection of unit-weight particles from plain traces
    /// (e.g. exact posterior samples, as in Sections 7.2–7.3).
    pub fn from_traces(traces: impl IntoIterator<Item = Trace>) -> ParticleCollection {
        ParticleCollection {
            particles: traces
                .into_iter()
                .map(|trace| Particle {
                    trace,
                    log_weight: LogWeight::ONE,
                })
                .collect(),
        }
    }
}

impl<S: ParticleState> ParticleCollection<S> {
    /// Flattens every particle state to its trace, preserving weights —
    /// the lazy boundary between a graph-native run and trace-level
    /// consumers.
    ///
    /// # Errors
    ///
    /// Propagates [`ParticleState::to_trace`] failures.
    pub fn flatten(&self) -> Result<ParticleCollection, PplError> {
        let mut out = ParticleCollection::new();
        for p in self.iter() {
            out.push(p.trace.to_trace()?, p.log_weight);
        }
        Ok(out)
    }
}

impl<S> FromIterator<Particle<S>> for ParticleCollection<S> {
    fn from_iter<I: IntoIterator<Item = Particle<S>>>(iter: I) -> Self {
        ParticleCollection {
            particles: iter.into_iter().collect(),
        }
    }
}

impl<S> Extend<Particle<S>> for ParticleCollection<S> {
    fn extend<I: IntoIterator<Item = Particle<S>>>(&mut self, iter: I) {
        self.particles.extend(iter);
    }
}

impl<S> IntoIterator for ParticleCollection<S> {
    type Item = Particle<S>;
    type IntoIter = std::vec::IntoIter<Particle<S>>;

    fn into_iter(self) -> Self::IntoIter {
        self.particles.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl::addr;
    use ppl::dist::Dist;
    use ppl::Value;

    fn trace_with(name: &str, b: bool) -> Trace {
        let mut t = Trace::new();
        let d = Dist::flip(0.5);
        let lp = d.log_prob(&Value::Bool(b));
        t.record_choice(addr![name], Value::Bool(b), d, lp).unwrap();
        t
    }

    #[test]
    fn weighted_estimate_matches_hand_computation() {
        let mut c = ParticleCollection::new();
        c.push(trace_with("x", true), LogWeight::from_prob(3.0));
        c.push(trace_with("x", false), LogWeight::from_prob(1.0));
        let p = c
            .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap())
            .unwrap();
        assert!((p - 0.75).abs() < 1e-12);
    }

    #[test]
    fn degenerate_collection_errors() {
        let mut c = ParticleCollection::new();
        c.push(trace_with("x", true), LogWeight::ZERO);
        assert!(c.estimate(|_| 1.0).is_err());
        assert!(ParticleCollection::<Trace>::new()
            .estimate(|_| 1.0)
            .is_err());
    }

    #[test]
    fn push_checked_quarantines_non_finite_weights() {
        let mut c = ParticleCollection::new();
        c.push_checked(trace_with("x", true), LogWeight::ONE)
            .unwrap();
        c.push_checked(trace_with("x", false), LogWeight::ZERO)
            .unwrap();
        let nan = c.push_checked(trace_with("x", true), LogWeight::from_log(f64::NAN));
        assert!(matches!(nan, Err(b) if b.1.is_nan()));
        let inf = c.push_checked(trace_with("x", true), LogWeight::from_log(f64::INFINITY));
        assert!(matches!(inf, Err(b) if b.1 == f64::INFINITY));
        // Only the admissible particles made it in, so the collection's
        // diagnostics stay finite.
        assert_eq!(c.len(), 2);
        assert!(c.ess().is_finite());
        assert!(c
            .normalized_weights()
            .unwrap()
            .iter()
            .all(|w| w.is_finite()));
    }

    #[test]
    fn normalized_weights_edge_cases() {
        // Single particle: weight 1 regardless of magnitude.
        let mut single = ParticleCollection::new();
        single.push(trace_with("x", true), LogWeight::from_log(-300.0));
        let ws = single.normalized_weights().unwrap();
        assert_eq!(ws, vec![1.0]);
        // All -inf: typed degeneracy error, not NaN output.
        let mut dead = ParticleCollection::new();
        dead.push(trace_with("x", true), LogWeight::ZERO);
        dead.push(trace_with("x", false), LogWeight::ZERO);
        assert!(dead.normalized_weights().is_err());
        // A +inf or NaN weight (pushed through the unchecked path) is a
        // typed error, not NaN-poisoned output.
        let mut spiked = ParticleCollection::new();
        spiked.push(trace_with("x", true), LogWeight::from_log(f64::INFINITY));
        spiked.push(trace_with("x", false), LogWeight::ONE);
        assert!(spiked.normalized_weights().is_err());
        assert_eq!(spiked.ess(), 1.0);
        let mut poisoned = ParticleCollection::new();
        poisoned.push(trace_with("x", true), LogWeight::from_log(f64::NAN));
        assert!(poisoned.normalized_weights().is_err());
        assert_eq!(poisoned.ess(), 0.0);
    }

    #[test]
    fn ess_of_equal_weights_is_m() {
        let c = ParticleCollection::from_traces((0..10).map(|_| trace_with("x", true)));
        assert!((c.ess() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn ess_collapses_with_one_dominant_weight() {
        let mut c = ParticleCollection::new();
        c.push(trace_with("x", true), LogWeight::from_log(0.0));
        for _ in 0..9 {
            c.push(trace_with("x", false), LogWeight::from_log(-40.0));
        }
        assert!(c.ess() < 1.001);
    }

    #[test]
    fn log_mean_weight_of_unit_weights_is_zero() {
        let c = ParticleCollection::from_traces((0..7).map(|_| trace_with("x", true)));
        assert!(c.log_mean_weight().abs() < 1e-12);
        assert_eq!(
            ParticleCollection::<Trace>::new().log_mean_weight(),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn flatten_of_trace_collection_is_identity() {
        let mut c = ParticleCollection::new();
        c.push(trace_with("x", true), LogWeight::from_prob(2.0));
        c.push(trace_with("x", false), LogWeight::from_prob(1.0));
        let flat = c.flatten().unwrap();
        assert_eq!(flat.len(), c.len());
        for (a, b) in c.iter().zip(flat.iter()) {
            assert_eq!(a.trace, b.trace);
            assert_eq!(a.log_weight.log().to_bits(), b.log_weight.log().to_bits());
        }
    }

    #[test]
    fn collect_and_extend() {
        let particles: Vec<Particle> = (0..3)
            .map(|_| Particle {
                trace: trace_with("x", true),
                log_weight: LogWeight::ONE,
            })
            .collect();
        let mut c: ParticleCollection = particles.clone().into_iter().collect();
        c.extend(particles);
        assert_eq!(c.len(), 6);
        assert_eq!(c.into_iter().count(), 6);
    }
}
