//! A persistent worker pool for parallel particle translation.
//!
//! Algorithm 2's translation loop is embarrassingly parallel, but the
//! historical implementation paid a full `std::thread::scope` spawn/join
//! cycle on *every* SMC step — hundreds of thread creations over a
//! [`crate::run_sequence`] of edits. [`WorkerPool`] amortizes that cost:
//! worker threads are spawned once (lazily, on first parallel
//! translation) and reused across steps for the lifetime of the process.
//!
//! Determinism is unaffected by pooling: work items carry their own
//! deterministic per-particle RNG seeds and write to disjoint,
//! pre-assigned output slots, so neither worker scheduling nor pool size
//! can influence results (see the determinism contract on
//! [`crate::translate_parallel_with_policy`]).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// The error message reported when worker infrastructure panics outside
/// user translation code (user panics are caught per-particle upstream).
pub(crate) const POOL_PANIC: &str = "translation worker panicked outside user code";

type Task = Box<dyn FnOnce() + Send + 'static>;

struct Job {
    task: Task,
    latch: Arc<Latch>,
}

/// A countdown latch: `run_scoped` blocks on it until every job of the
/// batch has completed (successfully or by panic).
struct Latch {
    /// `(jobs still running or queued, jobs that panicked)`.
    state: Mutex<(usize, usize)>,
    done: Condvar,
}

impl Latch {
    fn new() -> Latch {
        Latch {
            state: Mutex::new((0, 0)),
            done: Condvar::new(),
        }
    }

    fn add_one(&self) {
        self.lock().0 += 1;
    }

    fn complete(&self, panicked: bool) {
        let mut s = self.lock();
        s.0 -= 1;
        if panicked {
            s.1 += 1;
        }
        if s.0 == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until the count reaches zero; returns the panic count.
    fn wait(&self) -> usize {
        let mut s = self.lock();
        while s.0 > 0 {
            s = self
                .done
                .wait(s)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        s.1
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, (usize, usize)> {
        // A panicking job never holds this lock (completion runs after
        // catch_unwind), so poisoning is spurious; recover the guard.
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A fixed-size pool of worker threads with a scoped-execution API.
///
/// [`WorkerPool::run_scoped`] accepts borrowing closures (like
/// `std::thread::scope`) and does not return until every one of them has
/// finished executing, so the borrows cannot outlive their referents.
/// Panics inside a job are contained to that job and reported in the
/// batch result.
///
/// Use [`WorkerPool::global`] for the shared process-wide pool that the
/// SMC runtime reuses across steps; construct a private pool only in
/// tests that need a specific worker count.
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("size", &self.size)
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool with `size` worker threads (at least one).
    pub fn new(size: usize) -> WorkerPool {
        let size = size.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..size)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("smc-worker-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("failed to spawn SMC worker thread")
            })
            .collect();
        WorkerPool {
            sender: Some(tx),
            workers,
            size,
        }
    }

    /// The shared process-wide pool, created on first use with one worker
    /// per available hardware thread. This is the pool the SMC runtime
    /// uses, so successive steps of a sequence reuse the same threads.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            WorkerPool::new(
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1),
            )
        })
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Runs every task to completion on the pool, blocking until all have
    /// finished. Tasks may borrow from the caller's stack, exactly as
    /// with `std::thread::scope`.
    ///
    /// A batch of zero or one tasks runs inline on the calling thread
    /// (dispatch would only add latency).
    ///
    /// # Errors
    ///
    /// Returns an error if any task panicked; the remaining tasks still
    /// run to completion first.
    pub fn run_scoped<'scope>(
        &self,
        tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>,
    ) -> Result<(), String> {
        if tasks.len() <= 1 {
            for task in tasks {
                if catch_unwind(AssertUnwindSafe(task)).is_err() {
                    return Err(POOL_PANIC.to_string());
                }
            }
            return Ok(());
        }
        let latch = Arc::new(Latch::new());
        // Block until the batch drains before returning — on the normal
        // path and if anything below unwinds — so scoped borrows held by
        // in-flight tasks can never dangle.
        struct WaitGuard<'a>(&'a Latch);
        impl Drop for WaitGuard<'_> {
            fn drop(&mut self) {
                self.0.wait();
            }
        }
        let guard = WaitGuard(&latch);
        let sender = self
            .sender
            .as_ref()
            .expect("pool sender present until drop");
        for task in tasks {
            // SAFETY: `WaitGuard` blocks this function from returning (or
            // unwinding past this frame) until the worker has finished
            // running `task`, so every `'scope` borrow it captures strictly
            // outlives its execution. `Box<dyn FnOnce() + Send>` has the
            // same layout for both lifetimes; only the bound is erased.
            let task: Task =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(task) };
            latch.add_one();
            if sender
                .send(Job {
                    task,
                    latch: Arc::clone(&latch),
                })
                .is_err()
            {
                // All workers exited — only possible while the pool is
                // being torn down. Undo this job's count and report.
                latch.complete(false);
                drop(guard);
                return Err("worker pool is shut down".to_string());
            }
        }
        drop(guard); // waits for the batch
        if latch.wait() > 0 {
            Err(POOL_PANIC.to_string())
        } else {
            Ok(())
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel ends every worker's receive loop.
        drop(self.sender.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    loop {
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            // Receiver poisoned: a sibling worker panicked while holding
            // the lock (impossible — recv doesn't panic — but be safe).
            Err(_) => return,
        };
        match job {
            Ok(Job { task, latch }) => {
                let panicked = catch_unwind(AssertUnwindSafe(task)).is_err();
                latch.complete(panicked);
            }
            Err(_) => return, // channel closed: pool dropped
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_all_tasks_and_allows_borrows() {
        let pool = WorkerPool::new(3);
        let mut outputs = vec![0usize; 17];
        let inputs: Vec<usize> = (0..17).collect();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = inputs
            .chunks(4)
            .zip(outputs.chunks_mut(4))
            .map(|(ins, outs)| {
                Box::new(move || {
                    for (i, o) in ins.iter().zip(outs.iter_mut()) {
                        *o = i * i;
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_scoped(tasks).unwrap();
        let expected: Vec<usize> = (0..17).map(|i| i * i).collect();
        assert_eq!(outputs, expected);
    }

    #[test]
    fn panic_in_one_task_is_reported_and_others_complete() {
        let pool = WorkerPool::new(2);
        let completed = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..6)
            .map(|i| {
                let completed = &completed;
                Box::new(move || {
                    if i == 2 {
                        panic!("boom");
                    }
                    completed.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        let err = pool.run_scoped(tasks).unwrap_err();
        assert_eq!(err, POOL_PANIC);
        assert_eq!(completed.load(Ordering::SeqCst), 5);
        // The pool survives a panicked batch.
        let ok: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
            .map(|_| Box::new(|| {}) as Box<dyn FnOnce() + Send + '_>)
            .collect();
        pool.run_scoped(ok).unwrap();
    }

    #[test]
    fn pool_is_reusable_across_many_batches() {
        let pool = WorkerPool::new(4);
        for round in 0..50 {
            let counter = AtomicUsize::new(0);
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
                .map(|_| {
                    let counter = &counter;
                    Box::new(move || {
                        counter.fetch_add(1, Ordering::SeqCst);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_scoped(tasks).unwrap();
            assert_eq!(counter.load(Ordering::SeqCst), 8, "round {round}");
        }
    }

    #[test]
    fn single_task_batches_run_inline() {
        let pool = WorkerPool::new(2);
        let caller = std::thread::current().id();
        let mut observed = None;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = vec![Box::new(|| {
            observed = Some(std::thread::current().id());
        })];
        pool.run_scoped(tasks).unwrap();
        assert_eq!(observed, Some(caller));
        pool.run_scoped(Vec::new()).unwrap();
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = WorkerPool::global() as *const WorkerPool;
        let b = WorkerPool::global() as *const WorkerPool;
        assert_eq!(a, b);
        assert!(WorkerPool::global().size() >= 1);
    }
}
