//! A persistent worker pool for parallel particle translation.
//!
//! Algorithm 2's translation loop is embarrassingly parallel, but the
//! historical implementation paid a full `std::thread::scope` spawn/join
//! cycle on *every* SMC step — hundreds of thread creations over a
//! [`crate::run_sequence`] of edits. [`WorkerPool`] amortizes that cost:
//! worker threads are spawned once (lazily, on first parallel
//! translation) and reused across steps for the lifetime of the process.
//!
//! Determinism is unaffected by pooling: work items carry their own
//! deterministic per-particle RNG seeds and write to disjoint,
//! pre-assigned output slots, so neither worker scheduling nor pool size
//! can influence results (see the determinism contract on
//! [`crate::translate_parallel_with_policy`]).
//!
//! Two robustness mechanisms keep the pool healthy across a long
//! sequence run:
//!
//! - **Dead-worker respawn.** A worker thread that dies from an
//!   infrastructure panic (outside user translation code, which is
//!   caught per-task) would otherwise silently shrink effective
//!   parallelism for the life of the process. Every dispatch first calls
//!   [`WorkerPool::respawn_dead`] to bring the pool back to full
//!   strength.
//! - **Pool retirement.** A worker *wedged* inside user code (an
//!   infinite loop, a deadlocked translation) cannot be respawned — the
//!   thread never exits. The watchdog in
//!   [`crate::translate_states_deadline_with_policy`] detects the hang
//!   via a deadline, calls [`WorkerPool::retire_global`], and the next
//!   [`WorkerPool::global`] call builds a fresh pool. The wedged pool is
//!   dropped without joining (its healthy workers exit when the channel
//!   closes; the hung thread leaks boundedly instead of blocking
//!   forever).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::metrics;

/// The error message reported when worker infrastructure panics outside
/// user translation code (user panics are caught per-particle upstream).
pub(crate) const POOL_PANIC: &str = "translation worker panicked outside user code";

type Task = Box<dyn FnOnce() + Send + 'static>;

/// A unit of work a worker thread pulls off the shared channel.
enum Work {
    /// A scoped task from [`WorkerPool::run_scoped`]; completion is
    /// tracked by the batch latch.
    Scoped(Job),
    /// A fire-and-forget owned task from [`WorkerPool::spawn_owned`];
    /// the task reports results through its own channel (if any).
    Owned(Task),
    /// Test hook: the receiving worker exits immediately, simulating a
    /// worker lost to an infrastructure failure.
    #[allow(dead_code)]
    Die,
}

struct Job {
    task: Task,
    latch: Arc<Latch>,
}

/// A countdown latch: `run_scoped` blocks on it until every job of the
/// batch has completed (successfully or by panic).
struct Latch {
    /// `(jobs still running or queued, jobs that panicked)`.
    state: Mutex<(usize, usize)>,
    done: Condvar,
}

impl Latch {
    fn new() -> Latch {
        Latch {
            state: Mutex::new((0, 0)),
            done: Condvar::new(),
        }
    }

    fn add_one(&self) {
        self.lock().0 += 1;
    }

    fn complete(&self, panicked: bool) {
        let mut s = self.lock();
        s.0 -= 1;
        if panicked {
            s.1 += 1;
        }
        if s.0 == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until the count reaches zero; returns the panic count.
    fn wait(&self) -> usize {
        let mut s = self.lock();
        while s.0 > 0 {
            s = self
                .done
                .wait(s)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        s.1
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, (usize, usize)> {
        // A panicking job never holds this lock (completion runs after
        // catch_unwind), so poisoning is spurious; recover the guard.
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// The process-wide pool shared by the SMC runtime. Behind a `Mutex`
/// rather than a `OnceLock` so a wedged pool can be retired and replaced
/// ([`WorkerPool::retire_global`]); callers hold an `Arc`, so in-flight
/// batches on a retired pool drain safely before it drops.
static GLOBAL: Mutex<Option<Arc<WorkerPool>>> = Mutex::new(None);

/// A fixed-size pool of worker threads with scoped and owned execution
/// APIs.
///
/// [`WorkerPool::run_scoped`] accepts borrowing closures (like
/// `std::thread::scope`) and does not return until every one of them has
/// finished executing, so the borrows cannot outlive their referents.
/// Panics inside a job are contained to that job and reported in the
/// batch result.
///
/// [`WorkerPool::spawn_owned`] dispatches a `'static` task without
/// waiting for it — the building block for deadline-supervised
/// translation, where the caller must be able to give up on a hung task.
///
/// Use [`WorkerPool::global`] for the shared process-wide pool that the
/// SMC runtime reuses across steps; construct a private pool only in
/// tests that need a specific worker count.
pub struct WorkerPool {
    sender: Option<Sender<Work>>,
    rx: Arc<Mutex<Receiver<Work>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    size: usize,
    /// Total workers ever spawned; names continue across respawns so
    /// thread names stay unique (`smc-worker-0`, `smc-worker-1`, ...).
    spawned: AtomicUsize,
    /// Set when the pool is known to contain a hung worker. A wedged
    /// pool is never joined on drop (the hung thread would block
    /// forever); its healthy workers exit once the channel closes.
    wedged: AtomicBool,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("size", &self.size)
            .field("wedged", &self.wedged.load(Ordering::Relaxed))
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool with `size` worker threads (at least one).
    pub fn new(size: usize) -> WorkerPool {
        let size = size.max(1);
        let (tx, rx) = channel::<Work>();
        let rx = Arc::new(Mutex::new(rx));
        let pool = WorkerPool {
            sender: Some(tx),
            rx,
            workers: Mutex::new(Vec::with_capacity(size)),
            size,
            spawned: AtomicUsize::new(0),
            wedged: AtomicBool::new(false),
        };
        {
            let mut workers = pool.lock_workers();
            for _ in 0..size {
                workers.push(pool.spawn_worker());
            }
        }
        pool
    }

    fn spawn_worker(&self) -> JoinHandle<()> {
        let i = self.spawned.fetch_add(1, Ordering::Relaxed);
        let rx = Arc::clone(&self.rx);
        std::thread::Builder::new()
            .name(format!("smc-worker-{i}"))
            .spawn(move || worker_loop(&rx))
            .expect("failed to spawn SMC worker thread")
    }

    fn lock_workers(&self) -> std::sync::MutexGuard<'_, Vec<JoinHandle<()>>> {
        self.workers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The shared process-wide pool, created on first use with one worker
    /// per available hardware thread. This is the pool the SMC runtime
    /// uses, so successive steps of a sequence reuse the same threads.
    ///
    /// Returns an `Arc`: if the pool is retired mid-batch
    /// ([`WorkerPool::retire_global`]), callers holding the old handle
    /// finish their work on it safely while new callers get a fresh pool.
    pub fn global() -> Arc<WorkerPool> {
        let mut slot = GLOBAL
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(pool) = slot.as_ref() {
            return Arc::clone(pool);
        }
        let pool = Arc::new(WorkerPool::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        ));
        *slot = Some(Arc::clone(&pool));
        pool
    }

    /// Retires `pool` from global service: marks it wedged (so its drop
    /// never joins a hung thread) and, if it is still the installed
    /// global pool, removes it so the next [`WorkerPool::global`] call
    /// builds a replacement. In-flight batches holding an `Arc` to the
    /// retired pool drain normally — the work channel stays open until
    /// the last handle drops.
    pub fn retire_global(pool: &Arc<WorkerPool>) {
        metrics::note_pool_retirement();
        pool.mark_wedged();
        let mut slot = GLOBAL
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if slot.as_ref().is_some_and(|g| Arc::ptr_eq(g, pool)) {
            *slot = None;
        }
    }

    /// Marks the pool as containing a hung worker. Its destructor will
    /// close the work channel but skip joining, so teardown never blocks
    /// on a thread that will not exit.
    pub fn mark_wedged(&self) {
        self.wedged.store(true, Ordering::Release);
    }

    /// Whether the pool has been marked wedged.
    pub fn is_wedged(&self) -> bool {
        self.wedged.load(Ordering::Acquire)
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Replaces workers that have exited (an infrastructure panic kills
    /// its thread) so the pool runs at full strength again. Called on
    /// every dispatch; a no-op when all workers are alive.
    ///
    /// Workers *wedged in user code* are not dead — their threads never
    /// finish — so they cannot be respawned here; that case is handled
    /// by retiring the whole pool ([`WorkerPool::retire_global`]).
    pub fn respawn_dead(&self) {
        let mut workers = self.lock_workers();
        workers.retain(|h| !h.is_finished());
        metrics::note_pool_respawn((self.size - workers.len()) as u64);
        while workers.len() < self.size {
            workers.push(self.spawn_worker());
        }
    }

    /// Number of worker threads currently alive (not exited).
    #[cfg(test)]
    fn alive(&self) -> usize {
        self.lock_workers()
            .iter()
            .filter(|h| !h.is_finished())
            .count()
    }

    /// Test hook: tell one worker to exit, simulating a thread lost to
    /// an infrastructure failure.
    #[cfg(test)]
    fn kill_one_worker(&self) {
        self.sender
            .as_ref()
            .expect("pool sender present until drop")
            .send(Work::Die)
            .expect("pool channel open");
    }

    /// Dispatches an owned `'static` task to the pool without waiting
    /// for it to complete. The task communicates results through its own
    /// channel; if it hangs, the caller can simply stop listening — this
    /// is what makes deadline supervision possible, unlike
    /// [`WorkerPool::run_scoped`], which must always block until its
    /// borrowing tasks finish.
    ///
    /// # Errors
    ///
    /// Returns an error if the pool has been shut down.
    pub fn spawn_owned(&self, task: Task) -> Result<(), String> {
        self.respawn_dead();
        let sender = self
            .sender
            .as_ref()
            .expect("pool sender present until drop");
        metrics::note_pool_enqueue(1);
        sender
            .send(Work::Owned(task))
            .map_err(|_| "worker pool is shut down".to_string())
    }

    /// Runs every task to completion on the pool, blocking until all have
    /// finished. Tasks may borrow from the caller's stack, exactly as
    /// with `std::thread::scope`.
    ///
    /// A batch of zero or one tasks runs inline on the calling thread
    /// (dispatch would only add latency).
    ///
    /// # Errors
    ///
    /// Returns an error if any task panicked; the remaining tasks still
    /// run to completion first.
    pub fn run_scoped<'scope>(
        &self,
        tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>,
    ) -> Result<(), String> {
        if tasks.len() <= 1 {
            for task in tasks {
                // Inline tasks count toward pool telemetry too, so task
                // totals don't depend on batch size.
                metrics::note_pool_enqueue(1);
                let start = metrics::clock();
                let outcome = catch_unwind(AssertUnwindSafe(task));
                metrics::note_pool_task(start);
                if outcome.is_err() {
                    return Err(POOL_PANIC.to_string());
                }
            }
            return Ok(());
        }
        self.respawn_dead();
        metrics::note_pool_enqueue(tasks.len() as u64);
        let latch = Arc::new(Latch::new());
        // Block until the batch drains before returning — on the normal
        // path and if anything below unwinds — so scoped borrows held by
        // in-flight tasks can never dangle.
        struct WaitGuard<'a>(&'a Latch);
        impl Drop for WaitGuard<'_> {
            fn drop(&mut self) {
                self.0.wait();
            }
        }
        let guard = WaitGuard(&latch);
        let sender = self
            .sender
            .as_ref()
            .expect("pool sender present until drop");
        for task in tasks {
            // SAFETY: `WaitGuard` blocks this function from returning (or
            // unwinding past this frame) until the worker has finished
            // running `task`, so every `'scope` borrow it captures strictly
            // outlives its execution. `Box<dyn FnOnce() + Send>` has the
            // same layout for both lifetimes; only the bound is erased.
            let task: Task =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(task) };
            latch.add_one();
            if sender
                .send(Work::Scoped(Job {
                    task,
                    latch: Arc::clone(&latch),
                }))
                .is_err()
            {
                // All workers exited — only possible while the pool is
                // being torn down. Undo this job's count and report.
                latch.complete(false);
                drop(guard);
                return Err("worker pool is shut down".to_string());
            }
        }
        drop(guard); // waits for the batch
        if latch.wait() > 0 {
            Err(POOL_PANIC.to_string())
        } else {
            Ok(())
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel ends every worker's receive loop.
        drop(self.sender.take());
        if self.is_wedged() {
            // A hung worker never exits; joining would block forever.
            // Healthy workers drain and exit on their own now that the
            // channel is closed; the wedged thread leaks boundedly.
            return;
        }
        for handle in self.lock_workers().drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<Work>>) {
    loop {
        let work = match rx.lock() {
            Ok(guard) => guard.recv(),
            // Receiver poisoned: a sibling worker panicked while holding
            // the lock (impossible — recv doesn't panic — but be safe).
            Err(_) => return,
        };
        match work {
            Ok(Work::Scoped(Job { task, latch })) => {
                let start = metrics::clock();
                let panicked = catch_unwind(AssertUnwindSafe(task)).is_err();
                metrics::note_pool_task(start);
                latch.complete(panicked);
            }
            Ok(Work::Owned(task)) => {
                // An owned task that panics simply never reports a
                // result; its supervisor times the slot out.
                let start = metrics::clock();
                let _ = catch_unwind(AssertUnwindSafe(task));
                metrics::note_pool_task(start);
            }
            Ok(Work::Die) => return,
            Err(_) => return, // channel closed: pool dropped
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_all_tasks_and_allows_borrows() {
        let pool = WorkerPool::new(3);
        let mut outputs = vec![0usize; 17];
        let inputs: Vec<usize> = (0..17).collect();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = inputs
            .chunks(4)
            .zip(outputs.chunks_mut(4))
            .map(|(ins, outs)| {
                Box::new(move || {
                    for (i, o) in ins.iter().zip(outs.iter_mut()) {
                        *o = i * i;
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_scoped(tasks).unwrap();
        let expected: Vec<usize> = (0..17).map(|i| i * i).collect();
        assert_eq!(outputs, expected);
    }

    #[test]
    fn panic_in_one_task_is_reported_and_others_complete() {
        let pool = WorkerPool::new(2);
        let completed = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..6)
            .map(|i| {
                let completed = &completed;
                Box::new(move || {
                    if i == 2 {
                        panic!("boom");
                    }
                    completed.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        let err = pool.run_scoped(tasks).unwrap_err();
        assert_eq!(err, POOL_PANIC);
        assert_eq!(completed.load(Ordering::SeqCst), 5);
        // The pool survives a panicked batch.
        let ok: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
            .map(|_| Box::new(|| {}) as Box<dyn FnOnce() + Send + '_>)
            .collect();
        pool.run_scoped(ok).unwrap();
    }

    #[test]
    fn pool_is_reusable_across_many_batches() {
        let pool = WorkerPool::new(4);
        for round in 0..50 {
            let counter = AtomicUsize::new(0);
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
                .map(|_| {
                    let counter = &counter;
                    Box::new(move || {
                        counter.fetch_add(1, Ordering::SeqCst);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_scoped(tasks).unwrap();
            assert_eq!(counter.load(Ordering::SeqCst), 8, "round {round}");
        }
    }

    #[test]
    fn single_task_batches_run_inline() {
        let pool = WorkerPool::new(2);
        let caller = std::thread::current().id();
        let mut observed = None;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = vec![Box::new(|| {
            observed = Some(std::thread::current().id());
        })];
        pool.run_scoped(tasks).unwrap();
        assert_eq!(observed, Some(caller));
        pool.run_scoped(Vec::new()).unwrap();
    }

    // Singleton and retirement semantics are covered by one test because
    // both touch the process-wide GLOBAL slot; separate tests would race
    // under the parallel test runner.
    #[test]
    fn global_pool_singleton_and_retirement() {
        let a = WorkerPool::global();
        let b = WorkerPool::global();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.size() >= 1);
        WorkerPool::retire_global(&a);
        assert!(a.is_wedged());
        let c = WorkerPool::global();
        assert!(!Arc::ptr_eq(&a, &c));
        // Work still completes on the retired handle.
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
            .map(|_| {
                let counter = &counter;
                Box::new(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        a.run_scoped(tasks).unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn dead_workers_are_respawned_on_next_dispatch() {
        let pool = WorkerPool::new(3);
        pool.kill_one_worker();
        pool.kill_one_worker();
        // Wait for the doomed workers to actually exit.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while pool.alive() > 1 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(pool.alive(), 1, "two workers should have exited");
        // The next batch restores full parallelism and still completes.
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..9)
            .map(|_| {
                let counter = &counter;
                Box::new(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_scoped(tasks).unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 9);
        assert_eq!(pool.lock_workers().len(), 3, "pool back to full strength");
    }

    #[test]
    fn spawn_owned_runs_and_reports_via_channel() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = channel::<usize>();
        for i in 0..10usize {
            let tx = tx.clone();
            pool.spawn_owned(Box::new(move || {
                let _ = tx.send(i * 2);
            }))
            .unwrap();
        }
        drop(tx);
        let mut got: Vec<usize> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn wedged_pool_drop_does_not_block() {
        let pool = WorkerPool::new(2);
        let (started_tx, started_rx) = channel::<()>();
        // Wedge one worker permanently.
        pool.spawn_owned(Box::new(move || {
            let _ = started_tx.send(());
            loop {
                std::thread::park();
            }
        }))
        .unwrap();
        started_rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("wedged task should start");
        pool.mark_wedged();
        let start = std::time::Instant::now();
        drop(pool);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(2),
            "dropping a wedged pool must not join the hung thread"
        );
    }
}
