//! Resampling schemes for weighted particle collections.
//!
//! `resample` (Algorithm 2) draws `M` particles with replacement with
//! probability proportional to weight and resets all weights to 1,
//! re-allocating computation onto representative traces. The paper notes
//! that "other resampling schemes besides independent resampling are also
//! possible"; we provide the standard four.

use std::fmt;

use rand::RngCore;

use ppl::dist::util::uniform_unit;
use ppl::logweight::log_sum_exp;
use ppl::{LogWeight, PplError};

use crate::particles::{Particle, ParticleCollection};

/// Why a resampling step could not run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResampleError {
    /// The collection has no particles to draw from.
    Empty,
    /// Every particle's weight is zero: the approximation has collapsed
    /// and there is no distribution to resample from.
    Collapsed,
    /// The weight total is NaN or `+∞`, so normalized weights do not
    /// exist (an inadmissible weight bypassed the quarantine).
    NonFiniteTotal,
}

impl fmt::Display for ResampleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResampleError::Empty => write!(f, "cannot resample an empty particle collection"),
            ResampleError::Collapsed => write!(
                f,
                "cannot resample: all particle weights are zero (total collapse)"
            ),
            ResampleError::NonFiniteTotal => write!(
                f,
                "cannot resample: particle weights have a non-finite total"
            ),
        }
    }
}

impl std::error::Error for ResampleError {}

impl From<ResampleError> for PplError {
    fn from(e: ResampleError) -> PplError {
        PplError::Other(e.to_string())
    }
}

/// The resampling scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResampleScheme {
    /// Independent categorical draws (the paper's `resample`).
    #[default]
    Multinomial,
    /// A single uniform offset, stratified over `M` equal slices; lower
    /// variance than multinomial.
    Systematic,
    /// One uniform draw per slice.
    Stratified,
    /// Deterministic copies of `⌊M·w̄_j⌋`, residual mass multinomially.
    Residual,
}

/// Resamples `M = collection.len()` particles according to `scheme`,
/// returning a collection of unit-weight particles.
///
/// Works over any particle state: duplicating a particle clones its
/// state, which for shared-graph states (`Arc`-backed execution graphs)
/// is a copy-on-write reference bump rather than a deep copy.
///
/// # Errors
///
/// Returns [`ResampleError::Empty`] for an empty collection,
/// [`ResampleError::Collapsed`] when every weight is zero, and
/// [`ResampleError::NonFiniteTotal`] when the weight total is NaN or
/// infinite. The error converts into [`PplError`] via `?` at legacy call
/// sites.
pub fn resample<S: Clone>(
    collection: &ParticleCollection<S>,
    scheme: ResampleScheme,
    rng: &mut dyn RngCore,
) -> Result<ParticleCollection<S>, ResampleError> {
    let m = collection.len();
    if m == 0 {
        return Err(ResampleError::Empty);
    }
    let lw = collection.log_weights();
    let lse = log_sum_exp(&lw);
    if lse == f64::NEG_INFINITY {
        return Err(ResampleError::Collapsed);
    }
    if !lse.is_finite() {
        return Err(ResampleError::NonFiniteTotal);
    }
    let weights: Vec<f64> = lw.iter().map(|w| (w - lse).exp()).collect();
    let indices = match scheme {
        ResampleScheme::Multinomial => multinomial_indices(&weights, m, rng),
        ResampleScheme::Systematic => offset_indices(&weights, m, rng, true),
        ResampleScheme::Stratified => offset_indices(&weights, m, rng, false),
        ResampleScheme::Residual => residual_indices(&weights, m, rng),
    };
    Ok(indices
        .into_iter()
        .map(|i| Particle {
            trace: collection.particles()[i].trace.clone(),
            log_weight: LogWeight::ONE,
        })
        .collect())
}

fn multinomial_indices(weights: &[f64], m: usize, rng: &mut dyn RngCore) -> Vec<usize> {
    (0..m).map(|_| pick(weights, uniform_unit(rng))).collect()
}

/// Systematic (`single_offset = true`) or stratified resampling.
fn offset_indices(
    weights: &[f64],
    m: usize,
    rng: &mut dyn RngCore,
    single_offset: bool,
) -> Vec<usize> {
    let shared = uniform_unit(rng);
    (0..m)
        .map(|j| {
            let u = if single_offset {
                shared
            } else {
                uniform_unit(rng)
            };
            pick(weights, (j as f64 + u) / m as f64)
        })
        .collect()
}

fn residual_indices(weights: &[f64], m: usize, rng: &mut dyn RngCore) -> Vec<usize> {
    let mut indices = Vec::with_capacity(m);
    let mut residual = Vec::with_capacity(weights.len());
    for (i, w) in weights.iter().enumerate() {
        let expected = w * m as f64;
        let copies = expected.floor() as usize;
        indices.extend(std::iter::repeat_n(i, copies));
        residual.push(expected - copies as f64);
    }
    let remaining = m - indices.len();
    if remaining > 0 {
        let total: f64 = residual.iter().sum();
        if total > 0.0 {
            let normalized: Vec<f64> = residual.iter().map(|r| r / total).collect();
            for _ in 0..remaining {
                indices.push(pick(&normalized, uniform_unit(rng)));
            }
        } else {
            // Exact integer weights: fill by repeating the largest weight.
            let argmax = weights
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap_or(0);
            indices.extend(std::iter::repeat_n(argmax, remaining));
        }
    }
    indices
}

/// Inverse-CDF lookup of `u ∈ [0, 1)` in normalized `weights`.
fn pick(weights: &[f64], u: f64) -> usize {
    let mut acc = 0.0;
    for (i, w) in weights.iter().enumerate() {
        acc += w;
        if u < acc {
            return i;
        }
    }
    // Floating-point slack: the last positive-weight index.
    weights
        .iter()
        .rposition(|w| *w > 0.0)
        .expect("normalized weights must have positive mass")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl::dist::Dist;
    use ppl::{addr, Trace, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn labeled_trace(i: i64) -> Trace {
        let mut t = Trace::new();
        let d = Dist::uniform_int(0, 1_000);
        let lp = d.log_prob(&Value::Int(i));
        t.record_choice(addr!["id"], Value::Int(i), d, lp).unwrap();
        t
    }

    fn weighted_collection(weights: &[f64]) -> ParticleCollection {
        let mut c = ParticleCollection::new();
        for (i, w) in weights.iter().enumerate() {
            c.push(labeled_trace(i as i64), LogWeight::from_prob(*w));
        }
        c
    }

    fn label(p: &Particle) -> i64 {
        p.trace.value(&addr!["id"]).unwrap().as_int().unwrap()
    }

    #[test]
    fn all_schemes_preserve_count_and_reset_weights() {
        let c = weighted_collection(&[0.1, 0.2, 0.3, 0.4]);
        let mut rng = StdRng::seed_from_u64(1);
        for scheme in [
            ResampleScheme::Multinomial,
            ResampleScheme::Systematic,
            ResampleScheme::Stratified,
            ResampleScheme::Residual,
        ] {
            let r = resample(&c, scheme, &mut rng).unwrap();
            assert_eq!(r.len(), 4, "{scheme:?}");
            for p in r.iter() {
                assert_eq!(p.log_weight, LogWeight::ONE, "{scheme:?}");
            }
        }
    }

    /// Every scheme is unbiased: the expected number of copies of particle
    /// `j` is `M · w̄_j`.
    #[test]
    fn resampling_is_unbiased() {
        let weights = [0.05, 0.15, 0.30, 0.50];
        let c = weighted_collection(&weights);
        let mut rng = StdRng::seed_from_u64(2);
        let rounds = 20_000;
        for scheme in [
            ResampleScheme::Multinomial,
            ResampleScheme::Systematic,
            ResampleScheme::Stratified,
            ResampleScheme::Residual,
        ] {
            let mut counts = [0usize; 4];
            for _ in 0..rounds {
                let r = resample(&c, scheme, &mut rng).unwrap();
                for p in r.iter() {
                    counts[label(p) as usize] += 1;
                }
            }
            for (j, w) in weights.iter().enumerate() {
                let freq = counts[j] as f64 / (rounds * 4) as f64;
                assert!(
                    (freq - w).abs() < 0.01,
                    "{scheme:?}: particle {j} frequency {freq} vs weight {w}"
                );
            }
        }
    }

    #[test]
    fn zero_weight_particles_never_survive() {
        let c = weighted_collection(&[0.0, 1.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(3);
        for scheme in [
            ResampleScheme::Multinomial,
            ResampleScheme::Systematic,
            ResampleScheme::Stratified,
            ResampleScheme::Residual,
        ] {
            let r = resample(&c, scheme, &mut rng).unwrap();
            assert!(r.iter().all(|p| label(p) == 1), "{scheme:?}");
        }
    }

    #[test]
    fn residual_keeps_integer_copies() {
        // weights M*w = [2, 1, 1] exactly: residual resampling is
        // deterministic.
        let c = weighted_collection(&[0.5, 0.25, 0.25]);
        let mut rng = StdRng::seed_from_u64(4);
        // M = 3, expected copies: 1.5, 0.75, 0.75 — at least one copy of 0.
        let r = resample(&c, ResampleScheme::Residual, &mut rng).unwrap();
        assert!(r.iter().any(|p| label(p) == 0));
    }

    #[test]
    fn degenerate_input_errors_are_typed() {
        let c = weighted_collection(&[0.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(matches!(
            resample(&c, ResampleScheme::Multinomial, &mut rng),
            Err(ResampleError::Collapsed)
        ));
        let empty: ParticleCollection = ParticleCollection::new();
        assert!(matches!(
            resample(&empty, ResampleScheme::Systematic, &mut rng),
            Err(ResampleError::Empty)
        ));
        let mut spiked = ParticleCollection::new();
        spiked.push(labeled_trace(0), LogWeight::from_log(f64::INFINITY));
        assert!(matches!(
            resample(&spiked, ResampleScheme::Stratified, &mut rng),
            Err(ResampleError::NonFiniteTotal)
        ));
        // The conversion keeps the message.
        let e: PplError = ResampleError::Collapsed.into();
        assert!(e.to_string().contains("collapse"));
    }

    #[test]
    fn systematic_with_equal_weights_is_a_permutation() {
        let c = weighted_collection(&[0.25, 0.25, 0.25, 0.25]);
        let mut rng = StdRng::seed_from_u64(6);
        let r = resample(&c, ResampleScheme::Systematic, &mut rng).unwrap();
        let mut labels: Vec<i64> = r.iter().map(label).collect();
        labels.sort_unstable();
        assert_eq!(labels, vec![0, 1, 2, 3]);
    }
}
