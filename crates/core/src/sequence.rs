//! Iterated SMC across a sequence of programs (Section 4.2, "Multiple
//! Steps and resample").
//!
//! "Often, programs are modified in an iterative process … we can run
//! Algorithm 2 repeatedly, once for each new program in the sequence, to
//! iteratively transform the weighted collection of traces from one
//! program to the next."

use rand::RngCore;

use ppl::PplError;

use crate::health::{FailurePolicy, SmcError, StepReport};
use crate::mcmc::McmcKernel;
use crate::particles::ParticleCollection;
use crate::smc::{infer_with_policy, SmcConfig};
use crate::translator::TraceTranslator;

/// One stage of a program sequence: a translator into the stage's program
/// plus an optional rejuvenation kernel for it.
pub struct Stage<'a> {
    /// Translator from the previous stage's program.
    pub translator: &'a dyn TraceTranslator,
    /// Optional MCMC kernel with the stage posterior invariant.
    pub mcmc: Option<&'a dyn McmcKernel>,
}

impl std::fmt::Debug for Stage<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stage")
            .field("has_mcmc", &self.mcmc.is_some())
            .finish_non_exhaustive()
    }
}

/// The trajectory of a program-sequence run: the particle collection after
/// every stage, plus per-stage health for degeneracy monitoring.
#[derive(Debug, Clone)]
pub struct SequenceRun {
    /// Particle collections after each stage (the input collection is not
    /// included).
    pub collections: Vec<ParticleCollection>,
    /// ESS of the collection produced by each stage (after any resampling
    /// and rejuvenation).
    pub ess_history: Vec<f64>,
    /// Per-stage health reports: post-reweight ESS, dropped/retried
    /// particle counts, and collapse events. On a clean run every report
    /// [`StepReport::is_clean`]s.
    pub reports: Vec<StepReport>,
}

impl SequenceRun {
    /// The final collection.
    ///
    /// # Panics
    ///
    /// Panics if the sequence was empty.
    pub fn last(&self) -> &ParticleCollection {
        self.collections.last().expect("empty sequence run")
    }

    /// Whether every stage completed without drops, retries, or collapse
    /// events.
    pub fn is_clean(&self) -> bool {
        self.reports.iter().all(StepReport::is_clean)
    }
}

/// Runs Algorithm 2 once per stage under a [`FailurePolicy`], threading
/// the collection through the sequence. Stage `s` runs as SMC step `s`,
/// so fault plans and retry seeds address stages directly.
///
/// Weight collapse at any stage is handled by
/// [`infer_with_policy`]'s recovery contract: tolerant policies keep the
/// pre-stage collection (flagged in that stage's report) so later stages
/// still have particles to work with.
///
/// # Errors
///
/// Propagates typed errors from [`infer_with_policy`].
pub fn run_sequence_with_policy(
    stages: &[Stage<'_>],
    initial: &ParticleCollection,
    config: &SmcConfig,
    policy: &FailurePolicy,
    rng: &mut dyn RngCore,
) -> Result<SequenceRun, SmcError> {
    let mut collections = Vec::with_capacity(stages.len());
    let mut ess_history = Vec::with_capacity(stages.len());
    let mut reports = Vec::with_capacity(stages.len());
    let mut current = initial.clone();
    for (step, stage) in stages.iter().enumerate() {
        let (next, report) = infer_with_policy(
            stage.translator,
            stage.mcmc,
            &current,
            config,
            policy,
            step,
            rng,
        )?;
        ess_history.push(next.ess());
        reports.push(report);
        collections.push(next.clone());
        current = next;
    }
    Ok(SequenceRun {
        collections,
        ess_history,
        reports,
    })
}

/// Runs Algorithm 2 once per stage, threading the collection through the
/// sequence. This is [`run_sequence_with_policy`] under
/// [`FailurePolicy::FailFast`], with errors flattened to [`PplError`].
///
/// # Errors
///
/// Propagates errors from [`crate::infer`].
pub fn run_sequence(
    stages: &[Stage<'_>],
    initial: &ParticleCollection,
    config: &SmcConfig,
    rng: &mut dyn RngCore,
) -> Result<SequenceRun, PplError> {
    run_sequence_with_policy(stages, initial, config, &FailurePolicy::FailFast, rng)
        .map_err(PplError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correspondence::Correspondence;
    use crate::forward::CorrespondenceTranslator;
    use ppl::dist::Dist;
    use ppl::handlers::simulate;
    use ppl::{addr, Enumeration, Handler, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model_with_obs(
        p_obs_true: f64,
    ) -> impl Fn(&mut dyn Handler) -> Result<Value, ppl::PplError> {
        move |h: &mut dyn Handler| {
            let x = h.sample(addr!["x"], Dist::flip(0.5))?;
            let po = if x.truthy()? {
                p_obs_true
            } else {
                1.0 - p_obs_true
            };
            h.observe(addr!["o"], Dist::flip(po), Value::Bool(true))?;
            Ok(x)
        }
    }

    #[test]
    fn three_stage_sequence_tracks_final_posterior() {
        // P0 (prior-ish) → P1 → P2 with increasingly strong evidence.
        let m0 = model_with_obs(0.5);
        let m1 = model_with_obs(0.7);
        let m2 = model_with_obs(0.9);
        let t01 = CorrespondenceTranslator::new(m0, m1, Correspondence::identity_on(["x"]));
        let m1b = model_with_obs(0.7);
        let t12 = CorrespondenceTranslator::new(m1b, m2, Correspondence::identity_on(["x"]));
        let stages = [
            Stage {
                translator: &t01,
                mcmc: None,
            },
            Stage {
                translator: &t12,
                mcmc: None,
            },
        ];
        let mut rng = StdRng::seed_from_u64(7);
        let m0_again = model_with_obs(0.5);
        let traces: Vec<_> = (0..20_000)
            .map(|_| simulate(&m0_again, &mut rng).unwrap())
            .collect();
        // m0's observation is uninformative, so prior samples ARE
        // posterior samples of m0.
        let initial = ParticleCollection::from_traces(traces);
        let run = run_sequence(&stages, &initial, &SmcConfig::translate_only(), &mut rng).unwrap();
        assert_eq!(run.collections.len(), 2);
        assert_eq!(run.ess_history.len(), 2);
        assert_eq!(run.reports.len(), 2);
        assert!(run.is_clean());
        assert_eq!(run.reports[0].step, 0);
        assert_eq!(run.reports[1].step, 1);
        let estimate = run
            .last()
            .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap())
            .unwrap();
        let exact = Enumeration::run(&model_with_obs(0.9))
            .unwrap()
            .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap());
        assert!(
            (estimate - exact).abs() < 0.02,
            "estimate {estimate} vs exact {exact}"
        );
        // Weights concentrate, so ESS decreases along the sequence.
        assert!(run.ess_history[1] <= run.ess_history[0] * 1.05);
    }

    #[test]
    fn empty_sequence_is_empty_run() {
        let mut rng = StdRng::seed_from_u64(8);
        let initial = ParticleCollection::new();
        let run = run_sequence(&[], &initial, &SmcConfig::default(), &mut rng).unwrap();
        assert!(run.collections.is_empty());
    }
}
