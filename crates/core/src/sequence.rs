//! Iterated SMC across a sequence of programs (Section 4.2, "Multiple
//! Steps and resample").
//!
//! "Often, programs are modified in an iterative process … we can run
//! Algorithm 2 repeatedly, once for each new program in the sequence, to
//! iteratively transform the weighted collection of traces from one
//! program to the next."

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use ppl::{PplError, Trace};

use crate::health::{FailurePolicy, SmcError, StagePolicy, StepReport};
use crate::mcmc::McmcKernel;
use crate::metrics;
use crate::particles::{ParticleCollection, ParticleState};
use crate::smc::{
    infer_parallel_with_policy, infer_states_parallel_with_policy,
    infer_states_supervised_with_policy, infer_states_with_policy, infer_with_policy, SmcConfig,
};
use crate::translator::{StateTranslator, TraceTranslator};

/// One stage of a program sequence: a translator into the stage's program
/// plus an optional rejuvenation kernel for it.
pub struct Stage<'a> {
    /// Translator from the previous stage's program.
    pub translator: &'a dyn TraceTranslator,
    /// Optional MCMC kernel with the stage posterior invariant.
    pub mcmc: Option<&'a dyn McmcKernel>,
}

impl std::fmt::Debug for Stage<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stage")
            .field("has_mcmc", &self.mcmc.is_some())
            .finish_non_exhaustive()
    }
}

/// The trajectory of a program-sequence run: the particle collection after
/// every stage, plus per-stage health for degeneracy monitoring.
///
/// Generic over the particle state `S` (default [`Trace`]); graph-native
/// runs carry execution graphs end to end and [`SequenceRun::flatten`]
/// lazily at the API boundary.
#[derive(Debug, Clone)]
pub struct SequenceRun<S = Trace> {
    /// Particle collections after each stage (the input collection is not
    /// included).
    pub collections: Vec<ParticleCollection<S>>,
    /// ESS of the collection produced by each stage (after any resampling
    /// and rejuvenation).
    pub ess_history: Vec<f64>,
    /// Per-stage health reports: post-reweight ESS, dropped/retried
    /// particle counts, and collapse events. On a clean run every report
    /// [`StepReport::is_clean`]s.
    pub reports: Vec<StepReport>,
}

impl<S> SequenceRun<S> {
    /// The final collection.
    ///
    /// # Panics
    ///
    /// Panics if the sequence was empty.
    pub fn last(&self) -> &ParticleCollection<S> {
        self.collections.last().expect("empty sequence run")
    }

    /// Whether every stage completed without drops, retries, or collapse
    /// events.
    pub fn is_clean(&self) -> bool {
        self.reports.iter().all(StepReport::is_clean)
    }
}

impl<S: ParticleState> SequenceRun<S> {
    /// Flattens every stage's collection to plain traces, preserving
    /// weights, ESS history, and reports.
    ///
    /// # Errors
    ///
    /// Propagates [`ParticleState::to_trace`] failures.
    pub fn flatten(&self) -> Result<SequenceRun, PplError> {
        let collections = self
            .collections
            .iter()
            .map(ParticleCollection::flatten)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SequenceRun {
            collections,
            ess_history: self.ess_history.clone(),
            reports: self.reports.clone(),
        })
    }
}

/// Runs Algorithm 2 once per stage under a [`FailurePolicy`], threading
/// the collection through the sequence. Stage `s` runs as SMC step `s`,
/// so fault plans and retry seeds address stages directly.
///
/// Weight collapse at any stage is handled by
/// [`infer_with_policy`]'s recovery contract: tolerant policies keep the
/// pre-stage collection (flagged in that stage's report) so later stages
/// still have particles to work with.
///
/// # Errors
///
/// Propagates typed errors from [`infer_with_policy`].
pub fn run_sequence_with_policy(
    stages: &[Stage<'_>],
    initial: &ParticleCollection,
    config: &SmcConfig,
    policy: &FailurePolicy,
    rng: &mut dyn RngCore,
) -> Result<SequenceRun, SmcError> {
    let mut collections = Vec::with_capacity(stages.len());
    let mut ess_history = Vec::with_capacity(stages.len());
    let mut reports = Vec::with_capacity(stages.len());
    let mut current = initial.clone();
    for (step, stage) in stages.iter().enumerate() {
        let (next, report) = infer_with_policy(
            stage.translator,
            stage.mcmc,
            &current,
            config,
            policy,
            step,
            rng,
        )?;
        metrics::stage_complete(&report);
        ess_history.push(next.ess());
        reports.push(report);
        collections.push(next.clone());
        current = next;
    }
    Ok(SequenceRun {
        collections,
        ess_history,
        reports,
    })
}

/// Runs Algorithm 2 once per stage, threading the collection through the
/// sequence. This is [`run_sequence_with_policy`] under
/// [`FailurePolicy::FailFast`], with errors flattened to [`PplError`].
///
/// # Errors
///
/// Propagates errors from [`crate::infer`].
pub fn run_sequence(
    stages: &[Stage<'_>],
    initial: &ParticleCollection,
    config: &SmcConfig,
    rng: &mut dyn RngCore,
) -> Result<SequenceRun, PplError> {
    run_sequence_with_policy(stages, initial, config, &FailurePolicy::FailFast, rng)
        .map_err(PplError::from)
}

/// A [`Stage`] whose translator can be shared across worker threads
/// (required by the parallel sequence runner).
pub struct ParallelStage<'a> {
    /// Translator from the previous stage's program.
    pub translator: &'a (dyn TraceTranslator + Sync),
    /// Optional MCMC kernel with the stage posterior invariant (applied
    /// serially after the parallel translation phase).
    pub mcmc: Option<&'a dyn McmcKernel>,
}

impl std::fmt::Debug for ParallelStage<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelStage")
            .field("has_mcmc", &self.mcmc.is_some())
            .finish_non_exhaustive()
    }
}

/// The deterministic translation seed of stage `step` in a parallel
/// sequence run (a golden-ratio stride over `base_seed`).
///
/// Public because checkpoint/resume must re-derive the exact same seed
/// for stage `step` of a resumed run as the uninterrupted run used.
pub fn stage_seed(base_seed: u64, step: usize) -> u64 {
    base_seed.wrapping_add((step as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Salt separating the resampling seed stream from the translation seed
/// stream ([`stage_seed`]); an arbitrary odd constant.
const RESAMPLE_SALT: u64 = 0x5EED_5A17_C0FF_EE00;

/// The deterministic *resampling* seed of stage `step` in a supervised
/// sequence run.
///
/// The legacy runners thread one caller RNG through every stage's
/// resampling step, which makes a stage's randomness depend on how many
/// draws earlier stages consumed — impossible to reproduce when resuming
/// from a checkpoint without replaying the whole prefix. The supervised
/// runner instead seeds each stage's resampler from `base_seed` and the
/// absolute stage index alone, so stage `s` of a resumed run is
/// bit-identical to stage `s` of an uninterrupted one.
pub fn resample_seed(base_seed: u64, step: usize) -> u64 {
    stage_seed(base_seed ^ RESAMPLE_SALT, step)
}

/// [`run_sequence_with_policy`] with pooled parallel translation: every
/// stage's translate/reweight loop runs on the persistent
/// [`crate::WorkerPool`], which is spawned once and reused across all
/// stages (and across runs in the same process). Translation randomness
/// is derived from `base_seed` per stage, so results are bit-identical
/// for any `threads` value; `rng` drives only resampling and
/// rejuvenation, as in the serial runner.
///
/// (Edit sequences that stay graph-native end to end use
/// [`run_state_sequence_parallel_with_policy`] instead.)
///
/// # Errors
///
/// Propagates typed errors from [`infer_parallel_with_policy`].
pub fn run_sequence_parallel_with_policy(
    stages: &[ParallelStage<'_>],
    initial: &ParticleCollection,
    config: &SmcConfig,
    policy: &FailurePolicy,
    base_seed: u64,
    threads: usize,
    rng: &mut dyn RngCore,
) -> Result<SequenceRun, SmcError> {
    let mut collections = Vec::with_capacity(stages.len());
    let mut ess_history = Vec::with_capacity(stages.len());
    let mut reports = Vec::with_capacity(stages.len());
    let mut current = initial.clone();
    for (step, stage) in stages.iter().enumerate() {
        let (next, report) = infer_parallel_with_policy(
            stage.translator,
            stage.mcmc,
            &current,
            config,
            policy,
            step,
            stage_seed(base_seed, step),
            threads,
            rng,
        )?;
        metrics::stage_complete(&report);
        ess_history.push(next.ess());
        reports.push(report);
        collections.push(next.clone());
        current = next;
    }
    Ok(SequenceRun {
        collections,
        ess_history,
        reports,
    })
}

/// [`run_sequence_parallel_with_policy`] under
/// [`FailurePolicy::FailFast`], with errors flattened to [`PplError`].
///
/// # Errors
///
/// Propagates errors from [`infer_parallel_with_policy`].
pub fn run_sequence_parallel(
    stages: &[ParallelStage<'_>],
    initial: &ParticleCollection,
    config: &SmcConfig,
    base_seed: u64,
    threads: usize,
    rng: &mut dyn RngCore,
) -> Result<SequenceRun, PplError> {
    run_sequence_parallel_with_policy(
        stages,
        initial,
        config,
        &FailurePolicy::FailFast,
        base_seed,
        threads,
        rng,
    )
    .map_err(PplError::from)
}

/// [`run_sequence_with_policy`] generalized to any particle state: one
/// [`StateTranslator`] per stage, the collection threaded through them
/// serially. Stage `s` runs as SMC step `s`, exactly as in the trace
/// runner, so fault plans and retry seeds address stages directly. (No
/// MCMC rejuvenation — that is trace-level machinery.)
///
/// # Errors
///
/// Propagates typed errors from [`infer_states_with_policy`].
pub fn run_state_sequence_with_policy<S: Clone>(
    stages: &[&dyn StateTranslator<S>],
    initial: &ParticleCollection<S>,
    config: &SmcConfig,
    policy: &FailurePolicy,
    rng: &mut dyn RngCore,
) -> Result<SequenceRun<S>, SmcError> {
    let mut collections = Vec::with_capacity(stages.len());
    let mut ess_history = Vec::with_capacity(stages.len());
    let mut reports = Vec::with_capacity(stages.len());
    let mut current = initial.clone();
    for (step, translator) in stages.iter().enumerate() {
        let (next, report) =
            infer_states_with_policy(*translator, &current, config, policy, step, rng)?;
        metrics::stage_complete(&report);
        ess_history.push(next.ess());
        reports.push(report);
        collections.push(next.clone());
        current = next;
    }
    Ok(SequenceRun {
        collections,
        ess_history,
        reports,
    })
}

/// [`run_state_sequence_with_policy`] with pooled parallel translation:
/// every stage's translate/reweight loop runs on the persistent
/// [`crate::WorkerPool`] with per-particle seeds derived from
/// `base_seed` via the same stage stride as the trace runner, so results
/// are bit-identical for any `threads` value; `rng` drives only
/// resampling.
///
/// # Errors
///
/// Propagates typed errors from [`infer_states_parallel_with_policy`].
#[allow(clippy::too_many_arguments)]
pub fn run_state_sequence_parallel_with_policy<S: Clone + Send + Sync>(
    stages: &[&(dyn StateTranslator<S> + Sync)],
    initial: &ParticleCollection<S>,
    config: &SmcConfig,
    policy: &FailurePolicy,
    base_seed: u64,
    threads: usize,
    rng: &mut dyn RngCore,
) -> Result<SequenceRun<S>, SmcError> {
    let mut collections = Vec::with_capacity(stages.len());
    let mut ess_history = Vec::with_capacity(stages.len());
    let mut reports = Vec::with_capacity(stages.len());
    let mut current = initial.clone();
    for (step, translator) in stages.iter().enumerate() {
        let (next, report) = infer_states_parallel_with_policy(
            *translator,
            &current,
            config,
            policy,
            step,
            stage_seed(base_seed, step),
            threads,
            rng,
        )?;
        metrics::stage_complete(&report);
        ess_history.push(next.ess());
        reports.push(report);
        collections.push(next.clone());
        current = next;
    }
    Ok(SequenceRun {
        collections,
        ess_history,
        reports,
    })
}

/// The state of a supervised sequence run at a stage boundary, handed to
/// the [`StageObserver`] for checkpointing.
///
/// `step` counts *completed* stages — equivalently, the index of the
/// program the particles currently target — so a snapshot with
/// `step == n` resumes by running stages `n..` of the same sequence.
#[derive(Debug)]
pub struct StageSnapshot<'a, S> {
    /// Number of completed stages (absolute, counting pre-resume ones).
    pub step: usize,
    /// The collection after stage `step - 1`.
    pub collection: &'a ParticleCollection<S>,
    /// ESS after every completed stage, from stage 0.
    pub ess_history: &'a [f64],
    /// Health reports of every completed stage, from stage 0.
    pub reports: &'a [StepReport],
}

/// Callback fired at checkpoint boundaries of a supervised sequence run.
/// Returning an error aborts the run with [`SmcError::Internal`]-style
/// propagation (the error is returned as-is).
pub type StageObserver<'a, S> = dyn FnMut(&StageSnapshot<'_, S>) -> Result<(), SmcError> + 'a;

/// The crash-safe sequence runner: pooled (optionally deadline-watched)
/// translation per stage, per-stage deterministic resampling seeds, and
/// an observer fired at checkpoint boundaries.
///
/// Differences from [`run_state_sequence_parallel_with_policy`]:
///
/// - **Resume support.** `start_step` offsets every stage index:
///   `stages[i]` runs as absolute SMC step `start_step + i`, with
///   translation seeded by [`stage_seed`]`(base_seed, step)` and
///   resampling by [`resample_seed`]`(base_seed, step)`. Because all
///   per-stage randomness derives from `base_seed` and the absolute
///   index (there is no threaded RNG), running stages `k..n` on a
///   checkpointed collection reproduces the uninterrupted run's stages
///   `k..n` bit for bit.
/// - **History splicing.** `prior_ess` / `prior_reports` (from the
///   checkpoint) are prepended to the returned run's histories, so
///   observers always see the full sequence history. `collections` only
///   contains post-resume collections.
/// - **Watchdog.** When [`StagePolicy::deadline`] is set, translation is
///   deadline-supervised ([`crate::translate_states_deadline_with_policy`]):
///   hung particles become [`crate::FailureKind::Timeout`] failures
///   under `policy`, and a wedged worker pool is replaced instead of
///   blocking the run forever.
/// - **Observer.** After stage `i` completes, if its absolute completed
///   count hits a [`StagePolicy::checkpoint_every`] boundary (or it is
///   the final stage), `observer` is called with a [`StageSnapshot`].
///
/// # Errors
///
/// Propagates typed errors from the supervised step and any error the
/// observer returns.
#[allow(clippy::too_many_arguments)]
pub fn run_state_sequence_supervised<S>(
    stages: &[Arc<dyn StateTranslator<S> + Send + Sync>],
    initial: &ParticleCollection<S>,
    start_step: usize,
    prior_ess: &[f64],
    prior_reports: &[StepReport],
    config: &SmcConfig,
    policy: &FailurePolicy,
    stage_policy: &StagePolicy,
    base_seed: u64,
    threads: usize,
    mut observer: Option<&mut StageObserver<'_, S>>,
) -> Result<SequenceRun<S>, SmcError>
where
    S: Clone + Send + Sync + 'static,
{
    let mut collections = Vec::with_capacity(stages.len());
    let mut ess_history: Vec<f64> = prior_ess.to_vec();
    let mut reports: Vec<StepReport> = prior_reports.to_vec();
    let mut current = initial.clone();
    for (i, translator) in stages.iter().enumerate() {
        let step = start_step + i;
        let mut resample_rng = StdRng::seed_from_u64(resample_seed(base_seed, step));
        let (next, report) = infer_states_supervised_with_policy(
            translator,
            &current,
            config,
            policy,
            stage_policy,
            step,
            stage_seed(base_seed, step),
            threads,
            &mut resample_rng,
        )?;
        ess_history.push(next.ess());
        reports.push(report);
        collections.push(next.clone());
        current = next;
        if let Some(observer) = observer.as_deref_mut() {
            let completed = step + 1;
            let is_last = i + 1 == stages.len();
            let every = stage_policy.checkpoint_every;
            if every > 0 && (completed.is_multiple_of(every) || is_last) {
                let ck_start = metrics::clock();
                observer(&StageSnapshot {
                    step: completed,
                    collection: &current,
                    ess_history: &ess_history,
                    reports: &reports,
                })?;
                metrics::note_checkpoint(ck_start);
            }
        }
        // After the observer, so checkpoint time lands in this stage.
        metrics::stage_complete(reports.last().expect("stage just pushed"));
    }
    Ok(SequenceRun {
        collections,
        ess_history,
        reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correspondence::Correspondence;
    use crate::forward::CorrespondenceTranslator;
    use ppl::dist::Dist;
    use ppl::handlers::simulate;
    use ppl::{addr, Enumeration, Handler, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model_with_obs(
        p_obs_true: f64,
    ) -> impl Fn(&mut dyn Handler) -> Result<Value, ppl::PplError> {
        move |h: &mut dyn Handler| {
            let x = h.sample(addr!["x"], Dist::flip(0.5))?;
            let po = if x.truthy()? {
                p_obs_true
            } else {
                1.0 - p_obs_true
            };
            h.observe(addr!["o"], Dist::flip(po), Value::Bool(true))?;
            Ok(x)
        }
    }

    #[test]
    fn three_stage_sequence_tracks_final_posterior() {
        // P0 (prior-ish) → P1 → P2 with increasingly strong evidence.
        let m0 = model_with_obs(0.5);
        let m1 = model_with_obs(0.7);
        let m2 = model_with_obs(0.9);
        let t01 = CorrespondenceTranslator::new(m0, m1, Correspondence::identity_on(["x"]));
        let m1b = model_with_obs(0.7);
        let t12 = CorrespondenceTranslator::new(m1b, m2, Correspondence::identity_on(["x"]));
        let stages = [
            Stage {
                translator: &t01,
                mcmc: None,
            },
            Stage {
                translator: &t12,
                mcmc: None,
            },
        ];
        let mut rng = StdRng::seed_from_u64(7);
        let m0_again = model_with_obs(0.5);
        let traces: Vec<_> = (0..20_000)
            .map(|_| simulate(&m0_again, &mut rng).unwrap())
            .collect();
        // m0's observation is uninformative, so prior samples ARE
        // posterior samples of m0.
        let initial = ParticleCollection::from_traces(traces);
        let run = run_sequence(&stages, &initial, &SmcConfig::translate_only(), &mut rng).unwrap();
        assert_eq!(run.collections.len(), 2);
        assert_eq!(run.ess_history.len(), 2);
        assert_eq!(run.reports.len(), 2);
        assert!(run.is_clean());
        assert_eq!(run.reports[0].step, 0);
        assert_eq!(run.reports[1].step, 1);
        let estimate = run
            .last()
            .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap())
            .unwrap();
        let exact = Enumeration::run(&model_with_obs(0.9))
            .unwrap()
            .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap());
        assert!(
            (estimate - exact).abs() < 0.02,
            "estimate {estimate} vs exact {exact}"
        );
        // Weights concentrate, so ESS decreases along the sequence.
        assert!(run.ess_history[1] <= run.ess_history[0] * 1.05);
    }

    #[test]
    fn parallel_sequence_is_thread_count_invariant_and_correct() {
        let m0 = model_with_obs(0.5);
        let m1 = model_with_obs(0.7);
        let m2 = model_with_obs(0.9);
        let t01 = CorrespondenceTranslator::new(m0, m1, Correspondence::identity_on(["x"]));
        let m1b = model_with_obs(0.7);
        let t12 = CorrespondenceTranslator::new(m1b, m2, Correspondence::identity_on(["x"]));
        let stages = [
            ParallelStage {
                translator: &t01,
                mcmc: None,
            },
            ParallelStage {
                translator: &t12,
                mcmc: None,
            },
        ];
        let mut rng = StdRng::seed_from_u64(9);
        let m0_again = model_with_obs(0.5);
        let traces: Vec<_> = (0..8000)
            .map(|_| simulate(&m0_again, &mut rng).unwrap())
            .collect();
        let initial = ParticleCollection::from_traces(traces);
        let run_with = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(31);
            run_sequence_parallel(
                &stages,
                &initial,
                &SmcConfig::translate_only(),
                777,
                threads,
                &mut rng,
            )
            .unwrap()
        };
        let one = run_with(1);
        assert!(one.is_clean());
        let estimate = one
            .last()
            .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap())
            .unwrap();
        let exact = Enumeration::run(&model_with_obs(0.9))
            .unwrap()
            .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap());
        assert!(
            (estimate - exact).abs() < 0.03,
            "estimate {estimate} vs exact {exact}"
        );
        // Bit-identical trajectories for any thread count.
        for threads in [3, 8] {
            let other = run_with(threads);
            for (a, b) in one.collections.iter().zip(other.collections.iter()) {
                assert_eq!(a.len(), b.len());
                for (pa, pb) in a.iter().zip(b.iter()) {
                    assert_eq!(
                        pa.log_weight.log().to_bits(),
                        pb.log_weight.log().to_bits(),
                        "threads={threads}"
                    );
                    assert_eq!(pa.trace, pb.trace);
                }
            }
        }
    }

    #[test]
    fn empty_sequence_is_empty_run() {
        let mut rng = StdRng::seed_from_u64(8);
        let initial = ParticleCollection::new();
        let run = run_sequence(&[], &initial, &SmcConfig::default(), &mut rng).unwrap();
        assert!(run.collections.is_empty());
    }
}
