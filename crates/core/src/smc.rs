//! A single SMC step for probabilistic programs (Algorithm 2).
//!
//! `infer` transforms a weighted collection of traces of `P` into a
//! weighted collection of traces of `Q`:
//!
//! 1. translate every trace (`(u_j, Δw_j) ∼ translate(R, t_j)`,
//!    `w'_j ← w_j · Δw_j`);
//! 2. optionally resample;
//! 3. optionally rejuvenate each trace with an MCMC kernel for `Q`.
//!
//! Iterating `infer` over a sequence of programs is the "Multiple Steps"
//! regime of Section 4.2 (see [`crate::sequence`]).

use rand::RngCore;

use ppl::{PplError, Trace};

use crate::mcmc::McmcKernel;
use crate::particles::ParticleCollection;
use crate::resample::{resample, ResampleScheme};
use crate::translator::TraceTranslator;

/// When to resample within an `infer` step.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ResamplePolicy {
    /// Never resample (the weights carry all information).
    #[default]
    Never,
    /// Always resample after reweighting.
    Always,
    /// Resample when `ESS < threshold_fraction · M` — the standard
    /// degeneracy trigger suggested in Section 4.2.
    EssBelow(f64),
}

/// Configuration of one SMC step.
#[derive(Debug, Clone, Default)]
pub struct SmcConfig {
    /// When to resample.
    pub resample: ResamplePolicy,
    /// How to resample.
    pub scheme: ResampleScheme,
    /// Number of MCMC transitions applied per particle (0 disables
    /// rejuvenation even if a kernel is supplied).
    pub mcmc_steps: usize,
}

impl SmcConfig {
    /// The paper's default: no resampling, no rejuvenation — translation
    /// and reweighting only (as in the Section 7.2/7.3 experiments).
    pub fn translate_only() -> SmcConfig {
        SmcConfig::default()
    }

    /// Resample always with `n` rejuvenation sweeps.
    pub fn with_rejuvenation(n: usize) -> SmcConfig {
        SmcConfig {
            resample: ResamplePolicy::Always,
            scheme: ResampleScheme::default(),
            mcmc_steps: n,
        }
    }
}

/// One step of SMC (Algorithm 2): translate, reweight, optionally
/// resample, optionally run `mcmc_Q`.
///
/// # Errors
///
/// Propagates translation/MCMC errors, and resampling errors if all
/// weights collapse to zero under a policy that resamples.
///
/// # Examples
///
/// ```
/// use incremental::{infer, Correspondence, CorrespondenceTranslator,
///                   ParticleCollection, SmcConfig};
/// use ppl::{addr, Handler, PplError};
/// use ppl::dist::Dist;
/// use ppl::handlers::simulate;
/// use rand::SeedableRng;
///
/// let p = |h: &mut dyn Handler| h.sample(addr!["x"], Dist::flip(0.5));
/// let q = |h: &mut dyn Handler| h.sample(addr!["x"], Dist::flip(0.9));
/// let translator = CorrespondenceTranslator::new(p, q, Correspondence::identity_on(["x"]));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let traces = (0..200).map(|_| simulate(&p, &mut rng)).collect::<Result<Vec<_>, _>>()?;
/// let particles = ParticleCollection::from_traces(traces);
/// let out = infer(&translator, None, &particles, &SmcConfig::translate_only(), &mut rng)?;
/// let p_true = out.probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap())?;
/// assert!((p_true - 0.9).abs() < 0.1);
/// # Ok::<(), PplError>(())
/// ```
pub fn infer(
    translator: &dyn TraceTranslator,
    mcmc: Option<&dyn McmcKernel>,
    particles: &ParticleCollection,
    config: &SmcConfig,
    rng: &mut dyn RngCore,
) -> Result<ParticleCollection, PplError> {
    // 1. Translate and reweight.
    let mut translated = ParticleCollection::new();
    for particle in particles.iter() {
        let out = translator.translate(&particle.trace, rng)?;
        translated.push(out.trace, particle.log_weight + out.log_weight);
    }

    // 2. Optional resampling.
    let should_resample = match config.resample {
        ResamplePolicy::Never => false,
        ResamplePolicy::Always => true,
        ResamplePolicy::EssBelow(fraction) => {
            translated.ess() < fraction * translated.len() as f64
        }
    };
    let collection = if should_resample {
        resample(&translated, config.scheme, rng)?
    } else {
        translated
    };

    // 3. Optional MCMC rejuvenation.
    match (mcmc, config.mcmc_steps) {
        (Some(kernel), steps) if steps > 0 => {
            let mut rejuvenated = ParticleCollection::new();
            for particle in collection.iter() {
                let trace: Trace = kernel.steps(&particle.trace, steps, rng)?;
                rejuvenated.push(trace, particle.log_weight);
            }
            Ok(rejuvenated)
        }
        _ => Ok(collection),
    }
}

/// Parallel translation: each particle's `translate` is independent
/// (Algorithm 2's first loop is embarrassingly parallel), so the
/// collection is chunked across `threads` workers.
///
/// Determinism: particle `j` is translated with an RNG seeded from
/// `base_seed` and `j`, so the result is identical for any thread count
/// (and reproducible across runs) — unlike threading one RNG through.
///
/// # Errors
///
/// Propagates the first translation error encountered.
pub fn translate_parallel(
    translator: &(dyn TraceTranslator + Sync),
    particles: &ParticleCollection,
    base_seed: u64,
    threads: usize,
) -> Result<ParticleCollection, PplError> {
    use crate::particles::Particle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    type ChunkResult = Result<Vec<(usize, Trace, ppl::LogWeight)>, PplError>;
    let threads = threads.max(1);
    let items: Vec<(usize, &Particle)> = particles.iter().enumerate().collect();
    let chunk_size = items.len().div_ceil(threads).max(1);
    let results: Vec<ChunkResult> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut out = Vec::with_capacity(chunk.len());
                        for (j, particle) in chunk {
                            let mut rng = StdRng::seed_from_u64(
                                base_seed.wrapping_add((*j as u64).wrapping_mul(0x9E37_79B9)),
                            );
                            let translated = translator.translate(&particle.trace, &mut rng)?;
                            out.push((
                                *j,
                                translated.trace,
                                particle.log_weight + translated.log_weight,
                            ));
                        }
                        Ok(out)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("translation worker panicked"))
                .collect()
        });
    let mut slots: Vec<Option<(Trace, ppl::LogWeight)>> = vec![None; particles.len()];
    for chunk in results {
        for (j, trace, w) in chunk? {
            slots[j] = Some((trace, w));
        }
    }
    let mut out = ParticleCollection::new();
    for slot in slots {
        let (trace, w) = slot.expect("every particle translated");
        out.push(trace, w);
    }
    Ok(out)
}

/// Translates a collection without resampling or rejuvenation and also
/// returns the per-particle weight increments (useful for analysis of the
/// "no weights" ablation in the paper's Figures 8–9).
///
/// # Errors
///
/// Propagates translation errors.
pub fn translate_collection(
    translator: &dyn TraceTranslator,
    particles: &ParticleCollection,
    rng: &mut dyn RngCore,
) -> Result<(ParticleCollection, Vec<f64>), PplError> {
    let mut out = ParticleCollection::new();
    let mut increments = Vec::with_capacity(particles.len());
    for particle in particles.iter() {
        let translated = translator.translate(&particle.trace, rng)?;
        increments.push(translated.log_weight.log());
        out.push(translated.trace, particle.log_weight + translated.log_weight);
    }
    Ok((out, increments))
}

/// The "no weights" ablation: translate but *discard* the weight
/// estimates, keeping the input weights. Converges to the wrong
/// distribution (the translator output distribution `η_{P→Q}`, not the
/// posterior of `Q`) — exactly the failure mode Figures 8 and 9
/// demonstrate.
///
/// # Errors
///
/// Propagates translation errors.
pub fn infer_without_weights(
    translator: &dyn TraceTranslator,
    particles: &ParticleCollection,
    rng: &mut dyn RngCore,
) -> Result<ParticleCollection, PplError> {
    let mut out = ParticleCollection::new();
    for particle in particles.iter() {
        let translated = translator.translate(&particle.trace, rng)?;
        out.push(translated.trace, particle.log_weight);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correspondence::Correspondence;
    use crate::forward::CorrespondenceTranslator;
    use crate::mcmc::IdentityKernel;
    use ppl::dist::Dist;
    use ppl::{addr, Enumeration, Handler, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// P: x ~ flip(0.5), observe flip(x?0.2:0.8)=1.
    fn p_model(h: &mut dyn Handler) -> Result<Value, ppl::PplError> {
        let x = h.sample(addr!["x"], Dist::flip(0.5))?;
        let po = if x.truthy()? { 0.2 } else { 0.8 };
        h.observe(addr!["o"], Dist::flip(po), Value::Bool(true))?;
        Ok(x)
    }

    /// Q: same latent, different observation model.
    fn q_model(h: &mut dyn Handler) -> Result<Value, ppl::PplError> {
        let x = h.sample(addr!["x"], Dist::flip(0.5))?;
        let po = if x.truthy()? { 0.7 } else { 0.1 };
        h.observe(addr!["o"], Dist::flip(po), Value::Bool(true))?;
        Ok(x)
    }

    fn posterior_samples_of_p(m: usize, rng: &mut StdRng) -> ParticleCollection {
        // Exact posterior sampling by enumeration + inverse CDF.
        let e = Enumeration::run(&p_model).unwrap();
        let marg = e.probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap());
        let mut traces = Vec::with_capacity(m);
        for _ in 0..m {
            let x = ppl::dist::util::uniform_unit(rng) < marg;
            // Rebuild the full trace by constrained scoring.
            let mut map = ppl::ChoiceMap::new();
            map.insert(addr!["x"], Value::Bool(x));
            let t = ppl::handlers::score(&p_model, &map).unwrap();
            traces.push(t);
        }
        ParticleCollection::from_traces(traces)
    }

    #[test]
    fn infer_converges_to_q_posterior() {
        let mut rng = StdRng::seed_from_u64(99);
        let particles = posterior_samples_of_p(20_000, &mut rng);
        let translator =
            CorrespondenceTranslator::new(p_model, q_model, Correspondence::identity_on(["x"]));
        let out = infer(
            &translator,
            None,
            &particles,
            &SmcConfig::translate_only(),
            &mut rng,
        )
        .unwrap();
        let estimate = out
            .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap())
            .unwrap();
        let exact = Enumeration::run(&q_model)
            .unwrap()
            .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap());
        assert!(
            (estimate - exact).abs() < 0.02,
            "estimate {estimate} vs exact {exact}"
        );
    }

    #[test]
    fn without_weights_converges_to_wrong_answer() {
        let mut rng = StdRng::seed_from_u64(100);
        let particles = posterior_samples_of_p(20_000, &mut rng);
        let translator =
            CorrespondenceTranslator::new(p_model, q_model, Correspondence::identity_on(["x"]));
        let out = infer_without_weights(&translator, &particles, &mut rng).unwrap();
        let estimate = out
            .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap())
            .unwrap();
        // Without weights the x marginal stays at P's posterior.
        let p_posterior = Enumeration::run(&p_model)
            .unwrap()
            .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap());
        let q_posterior = Enumeration::run(&q_model)
            .unwrap()
            .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap());
        assert!((estimate - p_posterior).abs() < 0.02);
        assert!((estimate - q_posterior).abs() > 0.1);
    }

    #[test]
    fn resampling_policies_work() {
        let mut rng = StdRng::seed_from_u64(101);
        let particles = posterior_samples_of_p(500, &mut rng);
        let translator =
            CorrespondenceTranslator::new(p_model, q_model, Correspondence::identity_on(["x"]));
        for policy in [
            ResamplePolicy::Never,
            ResamplePolicy::Always,
            ResamplePolicy::EssBelow(0.99),
            ResamplePolicy::EssBelow(0.001),
        ] {
            let config = SmcConfig {
                resample: policy,
                ..SmcConfig::default()
            };
            let out = infer(&translator, None, &particles, &config, &mut rng).unwrap();
            assert_eq!(out.len(), 500);
            // After Always/high-threshold resampling, weights are unit.
            if policy == ResamplePolicy::Always {
                assert!(out.iter().all(|p| p.log_weight.log() == 0.0));
            }
        }
    }

    #[test]
    fn mcmc_rejuvenation_runs() {
        let mut rng = StdRng::seed_from_u64(102);
        let particles = posterior_samples_of_p(50, &mut rng);
        let translator =
            CorrespondenceTranslator::new(p_model, q_model, Correspondence::identity_on(["x"]));
        let config = SmcConfig {
            mcmc_steps: 3,
            ..SmcConfig::default()
        };
        let kernel = IdentityKernel;
        let out = infer(&translator, Some(&kernel), &particles, &config, &mut rng).unwrap();
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn parallel_translation_is_deterministic_and_correct() {
        let mut rng = StdRng::seed_from_u64(104);
        let particles = posterior_samples_of_p(2_000, &mut rng);
        let translator =
            CorrespondenceTranslator::new(p_model, q_model, Correspondence::identity_on(["x"]));
        let one = translate_parallel(&translator, &particles, 7, 1).unwrap();
        let four = translate_parallel(&translator, &particles, 7, 4).unwrap();
        let nine = translate_parallel(&translator, &particles, 7, 9).unwrap();
        // Thread-count independence: identical traces and weights.
        for ((a, b), c) in one.iter().zip(four.iter()).zip(nine.iter()) {
            assert_eq!(a.trace.to_choice_map(), b.trace.to_choice_map());
            assert_eq!(b.trace.to_choice_map(), c.trace.to_choice_map());
            assert!((a.log_weight.log() - b.log_weight.log()).abs() < 1e-15);
        }
        // And the estimate matches the exact posterior.
        let exact = Enumeration::run(&q_model)
            .unwrap()
            .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap());
        let estimate = four
            .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap())
            .unwrap();
        assert!((estimate - exact).abs() < 0.05, "{estimate} vs {exact}");
    }

    #[test]
    fn translate_collection_reports_increments() {
        let mut rng = StdRng::seed_from_u64(103);
        let particles = posterior_samples_of_p(10, &mut rng);
        let translator =
            CorrespondenceTranslator::new(p_model, q_model, Correspondence::identity_on(["x"]));
        let (out, increments) = translate_collection(&translator, &particles, &mut rng).unwrap();
        assert_eq!(out.len(), 10);
        assert_eq!(increments.len(), 10);
        // Increments are the weight ratio 0.7/0.2 or 0.1/0.8 (obs only).
        for inc in increments {
            let w = inc.exp();
            assert!(
                (w - 0.7 / 0.2).abs() < 1e-9 || (w - 0.1 / 0.8).abs() < 1e-9,
                "unexpected increment {w}"
            );
        }
    }
}
