//! A single SMC step for probabilistic programs (Algorithm 2).
//!
//! `infer` transforms a weighted collection of traces of `P` into a
//! weighted collection of traces of `Q`:
//!
//! 1. translate every trace (`(u_j, Δw_j) ∼ translate(R, t_j)`,
//!    `w'_j ← w_j · Δw_j`);
//! 2. optionally resample;
//! 3. optionally rejuvenate each trace with an MCMC kernel for `Q`.
//!
//! Iterating `infer` over a sequence of programs is the "Multiple Steps"
//! regime of Section 4.2 (see [`crate::sequence`]).
//!
//! [`infer_with_policy`] is the fault-tolerant entry point: it isolates
//! per-particle panics, quarantines non-finite weights, applies a
//! [`FailurePolicy`] to failures, recovers from total weight collapse,
//! and reports what happened in a [`StepReport`]. `infer` is the
//! fail-fast special case of it.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use ppl::{FxHashSet, LogWeight, PplError, Trace};

use crate::health::{
    retry_seed, Backoff, FailureKind, FailurePolicy, ParticleFailure, SmcError, StagePolicy,
    StepReport,
};
use crate::mcmc::McmcKernel;
use crate::metrics;
use crate::particles::{Particle, ParticleCollection};
use crate::pool::WorkerPool;
use crate::resample::{resample, ResampleError, ResampleScheme};
use crate::translator::{StateTranslator, TraceTranslator, TranslateCtx};

/// When to resample within an `infer` step.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ResamplePolicy {
    /// Never resample (the weights carry all information).
    #[default]
    Never,
    /// Always resample after reweighting.
    Always,
    /// Resample when `ESS < threshold_fraction · M` — the standard
    /// degeneracy trigger suggested in Section 4.2.
    EssBelow(f64),
}

/// Configuration of one SMC step.
#[derive(Debug, Clone, Default)]
pub struct SmcConfig {
    /// When to resample.
    pub resample: ResamplePolicy,
    /// How to resample.
    pub scheme: ResampleScheme,
    /// Number of MCMC transitions applied per particle (0 disables
    /// rejuvenation even if a kernel is supplied).
    pub mcmc_steps: usize,
    /// Particles per worker task in the parallel translate phase; `None`
    /// picks [`auto_chunk_size`]. Results are bit-identical for every
    /// value — this only tunes dispatch granularity.
    pub chunk_size: Option<usize>,
}

impl SmcConfig {
    /// The paper's default: no resampling, no rejuvenation — translation
    /// and reweighting only (as in the Section 7.2/7.3 experiments).
    pub fn translate_only() -> SmcConfig {
        SmcConfig::default()
    }

    /// Resample always with `n` rejuvenation sweeps.
    pub fn with_rejuvenation(n: usize) -> SmcConfig {
        SmcConfig {
            resample: ResamplePolicy::Always,
            scheme: ResampleScheme::default(),
            mcmc_steps: n,
            chunk_size: None,
        }
    }

    /// Sets an explicit particles-per-task chunk size for parallel
    /// translation (`None` restores the automatic choice).
    #[must_use]
    pub fn with_chunk_size(mut self, chunk_size: Option<usize>) -> SmcConfig {
        self.chunk_size = chunk_size;
        self
    }
}

/// The automatic particles-per-task chunk size: one contiguous chunk per
/// worker, so a stage of `n` particles costs `threads` dispatches rather
/// than `n`. Chunk size never changes results (per-particle seeds depend
/// only on `(base_seed, step, particle, attempt)`); it only trades
/// dispatch overhead against load-balancing granularity.
pub fn auto_chunk_size(particles: usize, threads: usize) -> usize {
    particles.div_ceil(threads.max(1)).max(1)
}

/// Renders a panic payload as a message for [`FailureKind::Panic`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Adapts a [`TraceTranslator`] to the [`StateTranslator`]`<Trace>`
/// runtime interface, so the trace-level entry points share the generic
/// SMC machinery bit for bit.
///
/// (A blanket `impl StateTranslator<Trace> for T: TraceTranslator` would
/// conflict with wrapper impls such as [`crate::FaultyTranslator`]'s
/// generic one, so the adaptation is this private newtype instead.)
struct AsState<'a, T: ?Sized>(&'a T);

impl<T: TraceTranslator + ?Sized> StateTranslator<Trace> for AsState<'_, T> {
    fn translate_state(
        &self,
        state: &Trace,
        ctx: TranslateCtx,
        rng: &mut dyn RngCore,
    ) -> Result<(Trace, LogWeight), PplError> {
        let out = self.0.translate_at(state, ctx, rng)?;
        Ok((out.trace, out.log_weight))
    }
}

/// Runs one translation attempt with panic isolation and weight
/// validation: a panic in the translator is caught, and a NaN or `+∞`
/// combined log weight is rejected before it can enter a collection.
fn attempt_translate<S>(
    translator: &dyn StateTranslator<S>,
    particle: &Particle<S>,
    ctx: TranslateCtx,
    rng: &mut dyn RngCore,
) -> Result<(S, LogWeight), FailureKind> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        translator.translate_state(&particle.trace, ctx, rng)
    }));
    match result {
        Err(payload) => Err(FailureKind::Panic(panic_message(payload))),
        Ok(Err(e)) => Err(FailureKind::Error(e)),
        Ok(Ok((state, delta))) => {
            let weight = particle.log_weight + delta;
            let lw = weight.log();
            if lw.is_nan() || lw == f64::INFINITY {
                Err(FailureKind::NonFiniteWeight(lw))
            } else {
                Ok((state, weight))
            }
        }
    }
}

/// The outcome of translating one particle under a policy's attempt
/// budget.
enum Outcome<S> {
    Ok {
        trace: S,
        weight: LogWeight,
        attempts: usize,
    },
    Failed(ParticleFailure),
}

/// Translates one particle, retrying with deterministically reseeded RNGs
/// under [`FailurePolicy::Retry`]. The first attempt draws from `rng`
/// (preserving the caller's stream exactly); retries draw from
/// `StdRng::seed_from_u64(retry_seed(...))` so their randomness is
/// independent of call order and thread schedule.
fn translate_one<S>(
    translator: &dyn StateTranslator<S>,
    particle: &Particle<S>,
    step: usize,
    index: usize,
    policy: &FailurePolicy,
    rng: &mut dyn RngCore,
) -> Outcome<S> {
    let max_attempts = policy.max_attempts();
    let seed = match policy {
        FailurePolicy::Retry { seed, .. } => *seed,
        _ => 0,
    };
    let mut attempt = 0;
    loop {
        let ctx = TranslateCtx::new(step, index).with_attempt(attempt);
        let result = if attempt == 0 {
            attempt_translate(translator, particle, ctx, rng)
        } else {
            let mut retry_rng = StdRng::seed_from_u64(retry_seed(seed, step, index, attempt));
            attempt_translate(translator, particle, ctx, &mut retry_rng)
        };
        match result {
            Ok((trace, weight)) => {
                return Outcome::Ok {
                    trace,
                    weight,
                    attempts: attempt + 1,
                }
            }
            Err(kind) => {
                attempt += 1;
                if attempt >= max_attempts {
                    return Outcome::Failed(ParticleFailure {
                        step,
                        particle: index,
                        attempts: attempt,
                        kind,
                    });
                }
            }
        }
    }
}

/// One step of SMC (Algorithm 2) under a [`FailurePolicy`]: translate
/// with panic isolation and weight quarantine, reweight, optionally
/// resample, optionally run `mcmc_Q` — returning the new collection plus
/// a [`StepReport`] of everything that went wrong and was recovered.
///
/// Failure handling:
///
/// - a particle whose translation errors, panics, or yields a NaN/`+∞`
///   weight is handled per `policy` (abort, drop, or retry);
/// - if after reweighting every surviving weight is zero (`ESS = 0` on a
///   non-empty input — total collapse), a fail-fast policy surfaces
///   [`SmcError::Collapse`]; tolerant policies keep the *pre-step*
///   collection (still properly weighted for the previous program),
///   skip resampling, apply rejuvenation to it, and flag the event as
///   `collapse_recovered` in the report.
///
/// With [`FailurePolicy::FailFast`] and a healthy model this is
/// bit-identical to [`infer`]: the first attempt draws from `rng` in the
/// same order as the legacy path.
///
/// # Errors
///
/// [`SmcError::Particle`] under fail-fast (or retry exhaustion),
/// [`SmcError::TooManyDropped`] when quarantining exceeded the policy's
/// loss budget, [`SmcError::Collapse`] on unrecoverable weight collapse,
/// and [`SmcError::Eval`] for evaluation errors outside translation
/// (resampling an empty collection, MCMC rejuvenation).
pub fn infer_with_policy(
    translator: &dyn TraceTranslator,
    mcmc: Option<&dyn McmcKernel>,
    particles: &ParticleCollection,
    config: &SmcConfig,
    policy: &FailurePolicy,
    step: usize,
    rng: &mut dyn RngCore,
) -> Result<(ParticleCollection, StepReport), SmcError> {
    // 1. Translate and reweight, applying the policy per particle.
    let t_translate = metrics::clock();
    let phase = translate_serial_with_policy(&AsState(translator), particles, policy, step, rng)?;
    metrics::note_translate(t_translate);

    // 2.–3. Degeneracy handling, resampling, and rejuvenation.
    let t_resample = metrics::clock();
    let tail = degeneracy_tail(phase.collection, mcmc, particles, config, policy, step, rng)?;
    metrics::note_resample(t_resample);

    let report = StepReport {
        step,
        input_particles: particles.len(),
        output_particles: tail.collection.len(),
        ess: tail.ess,
        dropped: phase.failures.len(),
        retries: phase.retries,
        recovered: phase.recovered,
        failures: phase.failures,
        resampled: tail.resampled,
        collapse_recovered: tail.collapse_recovered,
    };
    Ok((tail.collection, report))
}

/// One step of SMC over an arbitrary particle state, under a
/// [`FailurePolicy`]: [`infer_with_policy`] generalized from flat traces
/// to any [`StateTranslator`] state. MCMC rejuvenation is trace-level
/// machinery and does not apply here; everything else (panic isolation,
/// weight quarantine, drop/retry policies, resampling, collapse
/// recovery, per-step reports) behaves identically.
///
/// # Errors
///
/// As [`infer_with_policy`].
pub fn infer_states_with_policy<S: Clone>(
    translator: &dyn StateTranslator<S>,
    particles: &ParticleCollection<S>,
    config: &SmcConfig,
    policy: &FailurePolicy,
    step: usize,
    rng: &mut dyn RngCore,
) -> Result<(ParticleCollection<S>, StepReport), SmcError> {
    let t_translate = metrics::clock();
    let phase = translate_serial_with_policy(translator, particles, policy, step, rng)?;
    metrics::note_translate(t_translate);
    let t_resample = metrics::clock();
    let tail = degeneracy_tail_states(phase.collection, particles, config, policy, step, rng)?;
    metrics::note_resample(t_resample);
    let report = StepReport {
        step,
        input_particles: particles.len(),
        output_particles: tail.collection.len(),
        ess: tail.ess,
        dropped: phase.failures.len(),
        retries: phase.retries,
        recovered: phase.recovered,
        failures: phase.failures,
        resampled: tail.resampled,
        collapse_recovered: tail.collapse_recovered,
    };
    Ok((tail.collection, report))
}

/// Result of the serial translate/reweight phase of one SMC step.
struct TranslatePhase<S> {
    collection: ParticleCollection<S>,
    failures: Vec<ParticleFailure>,
    retries: usize,
    recovered: usize,
}

/// Phase 1 of Algorithm 2 (serial): translate and reweight every
/// particle under `policy`, enforcing the policy's loss budget.
fn translate_serial_with_policy<S>(
    translator: &dyn StateTranslator<S>,
    particles: &ParticleCollection<S>,
    policy: &FailurePolicy,
    step: usize,
    rng: &mut dyn RngCore,
) -> Result<TranslatePhase<S>, SmcError> {
    let mut translated = ParticleCollection::new();
    let mut failures: Vec<ParticleFailure> = Vec::new();
    let mut retries = 0;
    let mut recovered = 0;
    for (j, particle) in particles.iter().enumerate() {
        match translate_one(translator, particle, step, j, policy, rng) {
            Outcome::Ok {
                trace,
                weight,
                attempts,
            } => {
                retries += attempts - 1;
                if attempts > 1 {
                    recovered += 1;
                }
                translated.push(trace, weight);
            }
            Outcome::Failed(failure) => match policy {
                FailurePolicy::DropAndRenormalize { .. } => failures.push(failure),
                // Fail-fast, and retry budgets exhausted, abort the step.
                _ => return Err(SmcError::Particle(failure)),
            },
        }
    }
    let dropped = failures.len();
    if !policy.loss_allowed(dropped, particles.len()) {
        let max_loss = match policy {
            FailurePolicy::DropAndRenormalize { max_loss } => *max_loss,
            _ => 0.0,
        };
        return Err(SmcError::TooManyDropped {
            step,
            dropped,
            total: particles.len(),
            max_loss,
            failures,
        });
    }
    Ok(TranslatePhase {
        collection: translated,
        failures,
        retries,
        recovered,
    })
}

/// Result of the post-translation phases of one SMC step.
struct StepTail<S = Trace> {
    collection: ParticleCollection<S>,
    /// Post-reweight ESS (before any resampling).
    ess: f64,
    resampled: bool,
    collapse_recovered: bool,
}

/// Phases 2–3 of Algorithm 2 for flat traces: the generic degeneracy
/// tail plus optional MCMC rejuvenation (trace-level machinery).
fn degeneracy_tail(
    translated: ParticleCollection,
    mcmc: Option<&dyn McmcKernel>,
    particles: &ParticleCollection,
    config: &SmcConfig,
    policy: &FailurePolicy,
    step: usize,
    rng: &mut dyn RngCore,
) -> Result<StepTail, SmcError> {
    let tail = degeneracy_tail_states(translated, particles, config, policy, step, rng)?;

    // Optional MCMC rejuvenation (also applied to a collapse-recovered
    // collection, per the recovery contract).
    let final_collection = match (mcmc, config.mcmc_steps) {
        (Some(kernel), steps) if steps > 0 => {
            let mut rejuvenated = ParticleCollection::new();
            for particle in tail.collection.iter() {
                let trace: Trace = kernel.steps(&particle.trace, steps, rng)?;
                rejuvenated.push(trace, particle.log_weight);
            }
            rejuvenated
        }
        _ => tail.collection,
    };

    Ok(StepTail {
        collection: final_collection,
        ess: tail.ess,
        resampled: tail.resampled,
        collapse_recovered: tail.collapse_recovered,
    })
}

/// Phase 2 of Algorithm 2, shared by every step entry point: degeneracy
/// diagnosis, optional resampling, and collapse recovery — generic over
/// the particle state.
fn degeneracy_tail_states<S: Clone>(
    translated: ParticleCollection<S>,
    particles: &ParticleCollection<S>,
    config: &SmcConfig,
    policy: &FailurePolicy,
    step: usize,
    rng: &mut dyn RngCore,
) -> Result<StepTail<S>, SmcError> {
    // Degeneracy diagnosis and optional resampling. Dropping under
    // DropAndRenormalize needs no explicit renormalization: the
    // collection's estimators self-normalize over the survivors.
    let ess = translated.ess();
    let collapsed = !particles.is_empty() && ess == 0.0;
    let mut collapse_recovered = false;
    let (collection, resampled) = if collapsed {
        if matches!(policy, FailurePolicy::FailFast) {
            return Err(SmcError::Collapse { step });
        }
        // Recovery: the pre-step collection is still a properly weighted
        // approximation of the *previous* program's posterior — strictly
        // more useful than an empty or all-zero collection, and the
        // report makes the substitution visible.
        collapse_recovered = true;
        (particles.clone(), false)
    } else {
        let should_resample = match config.resample {
            ResamplePolicy::Never => false,
            ResamplePolicy::Always => true,
            ResamplePolicy::EssBelow(fraction) => ess < fraction * translated.len() as f64,
        };
        if should_resample {
            match resample(&translated, config.scheme, rng) {
                Ok(resampled) => (resampled, true),
                Err(ResampleError::Collapsed | ResampleError::NonFiniteTotal) => {
                    // Defensive: the ESS check above should have caught
                    // this, but treat it as the collapse it is.
                    if matches!(policy, FailurePolicy::FailFast) {
                        return Err(SmcError::Collapse { step });
                    }
                    collapse_recovered = true;
                    (particles.clone(), false)
                }
                Err(e @ ResampleError::Empty) => return Err(SmcError::Eval(e.into())),
            }
        } else {
            (translated, false)
        }
    };

    Ok(StepTail {
        collection,
        ess,
        resampled,
        collapse_recovered,
    })
}

/// One step of SMC with pooled parallel translation: phase 1 (the
/// embarrassingly parallel translate/reweight loop) runs on the
/// persistent [`WorkerPool`] with deterministic per-particle seeds
/// derived from `base_seed`; phases 2–3 (resampling, rejuvenation) run
/// serially on `rng`, exactly as in [`infer_with_policy`].
///
/// Unlike [`infer_with_policy`], translation randomness comes from
/// `base_seed` rather than `rng`, so the translated collection is
/// bit-identical for any `threads` value — see
/// [`translate_parallel_with_policy`] for the contract.
///
/// # Errors
///
/// As [`infer_with_policy`], plus [`SmcError::Internal`] for worker
/// infrastructure failures.
#[allow(clippy::too_many_arguments)]
pub fn infer_parallel_with_policy(
    translator: &(dyn TraceTranslator + Sync),
    mcmc: Option<&dyn McmcKernel>,
    particles: &ParticleCollection,
    config: &SmcConfig,
    policy: &FailurePolicy,
    step: usize,
    base_seed: u64,
    threads: usize,
    rng: &mut dyn RngCore,
) -> Result<(ParticleCollection, StepReport), SmcError> {
    let t_translate = metrics::clock();
    let adapted = AsState(translator);
    let (translated, translation_report) = translate_states_chunked_with_policy(
        &adapted,
        particles,
        base_seed,
        threads,
        policy,
        step,
        config.chunk_size,
    )?;
    metrics::note_translate(t_translate);
    let t_resample = metrics::clock();
    let tail = degeneracy_tail(translated, mcmc, particles, config, policy, step, rng)?;
    metrics::note_resample(t_resample);
    let report = StepReport {
        output_particles: tail.collection.len(),
        ess: tail.ess,
        resampled: tail.resampled,
        collapse_recovered: tail.collapse_recovered,
        ..translation_report
    };
    Ok((tail.collection, report))
}

/// One step of SMC over an arbitrary particle state with pooled parallel
/// translation: [`infer_parallel_with_policy`] generalized from flat
/// traces to any [`StateTranslator`] state (no MCMC rejuvenation, which
/// is trace-level machinery). Translation randomness is derived from
/// `base_seed` per particle, so the result is bit-identical for any
/// `threads` value; `rng` drives only resampling.
///
/// # Errors
///
/// As [`infer_parallel_with_policy`].
#[allow(clippy::too_many_arguments)]
pub fn infer_states_parallel_with_policy<S: Clone + Send + Sync>(
    translator: &(dyn StateTranslator<S> + Sync),
    particles: &ParticleCollection<S>,
    config: &SmcConfig,
    policy: &FailurePolicy,
    step: usize,
    base_seed: u64,
    threads: usize,
    rng: &mut dyn RngCore,
) -> Result<(ParticleCollection<S>, StepReport), SmcError> {
    let t_translate = metrics::clock();
    let (translated, translation_report) = translate_states_chunked_with_policy(
        translator,
        particles,
        base_seed,
        threads,
        policy,
        step,
        config.chunk_size,
    )?;
    metrics::note_translate(t_translate);
    let t_resample = metrics::clock();
    let tail = degeneracy_tail_states(translated, particles, config, policy, step, rng)?;
    metrics::note_resample(t_resample);
    let report = StepReport {
        output_particles: tail.collection.len(),
        ess: tail.ess,
        resampled: tail.resampled,
        collapse_recovered: tail.collapse_recovered,
        ..translation_report
    };
    Ok((tail.collection, report))
}

/// One step of SMC (Algorithm 2): translate, reweight, optionally
/// resample, optionally run `mcmc_Q`.
///
/// This is [`infer_with_policy`] under [`FailurePolicy::FailFast`] with
/// the report discarded: the first particle failure (translation error,
/// panic, or non-finite weight) aborts the step, and a total weight
/// collapse after reweighting (`ESS = 0` on a non-empty collection) is
/// an error rather than a silently degenerate collection. Use
/// [`infer_with_policy`] to drop or retry failed particles and to
/// observe per-step health.
///
/// # Errors
///
/// Propagates translation/MCMC errors (flattened to [`PplError`]), and a
/// collapse error if every weight is zero after reweighting.
///
/// # Examples
///
/// ```
/// use incremental::{infer, Correspondence, CorrespondenceTranslator,
///                   ParticleCollection, SmcConfig};
/// use ppl::{addr, Handler, PplError};
/// use ppl::dist::Dist;
/// use ppl::handlers::simulate;
/// use rand::SeedableRng;
///
/// let p = |h: &mut dyn Handler| h.sample(addr!["x"], Dist::flip(0.5));
/// let q = |h: &mut dyn Handler| h.sample(addr!["x"], Dist::flip(0.9));
/// let translator = CorrespondenceTranslator::new(p, q, Correspondence::identity_on(["x"]));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let traces = (0..200).map(|_| simulate(&p, &mut rng)).collect::<Result<Vec<_>, _>>()?;
/// let particles = ParticleCollection::from_traces(traces);
/// let out = infer(&translator, None, &particles, &SmcConfig::translate_only(), &mut rng)?;
/// let p_true = out.probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap())?;
/// assert!((p_true - 0.9).abs() < 0.1);
/// # Ok::<(), PplError>(())
/// ```
pub fn infer(
    translator: &dyn TraceTranslator,
    mcmc: Option<&dyn McmcKernel>,
    particles: &ParticleCollection,
    config: &SmcConfig,
    rng: &mut dyn RngCore,
) -> Result<ParticleCollection, PplError> {
    let (collection, _report) = infer_with_policy(
        translator,
        mcmc,
        particles,
        config,
        &FailurePolicy::FailFast,
        0,
        rng,
    )
    .map_err(PplError::from)?;
    Ok(collection)
}

/// The per-particle seed of the parallel path's first attempt. Kept
/// identical to the historical formula so clean parallel runs are
/// bit-for-bit reproducible across versions.
fn particle_seed(base_seed: u64, index: usize) -> u64 {
    base_seed.wrapping_add((index as u64).wrapping_mul(0x9E37_79B9))
}

/// The per-particle outcome slot of the parallel path: translated state +
/// combined weight + attempts used, or the particle's failure.
type Slot<S = Trace> = Result<(S, LogWeight, usize), ParticleFailure>;

/// Translates one particle for the parallel path, using its deterministic
/// per-attempt seeds — the unit of work both the pooled and the scoped
/// implementations dispatch.
fn translate_slot<S>(
    translator: &dyn StateTranslator<S>,
    particle: &Particle<S>,
    j: usize,
    base_seed: u64,
    policy_seed: u64,
    max_attempts: usize,
    step: usize,
) -> Slot<S> {
    let mut slot: Option<Slot<S>> = None;
    for attempt in 0..max_attempts {
        let seed = if attempt == 0 {
            particle_seed(base_seed, j)
        } else {
            retry_seed(policy_seed, step, j, attempt)
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let ctx = TranslateCtx::new(step, j).with_attempt(attempt);
        match attempt_translate(translator, particle, ctx, &mut rng) {
            Ok((trace, weight)) => {
                slot = Some(Ok((trace, weight, attempt + 1)));
                break;
            }
            Err(kind) => {
                slot = Some(Err(ParticleFailure {
                    step,
                    particle: j,
                    attempts: attempt + 1,
                    kind,
                }));
            }
        }
    }
    slot.expect("at least one attempt ran")
}

/// Parallel translation under a [`FailurePolicy`]: each particle's
/// `translate` is independent (Algorithm 2's first loop is
/// embarrassingly parallel), so the collection is chunked into `threads`
/// work items executed on the persistent [`WorkerPool`], with
/// per-particle panic isolation and weight quarantine. The pool is
/// created on first use and reused by every subsequent step, so a long
/// [`crate::run_sequence`] pays thread-spawn cost once, not per step.
///
/// Determinism: particle `j`'s first attempt uses an RNG seeded from
/// `base_seed` and `j`, and retry attempt `k` uses
/// `retry_seed(policy_seed, step, j, k)` — so results, reports, and
/// (under fail-fast) *which* failure is reported are identical for any
/// thread count and any pool size, and bit-identical to the historical
/// scoped-thread implementation
/// ([`translate_parallel_with_policy_scoped`]). Fail-fast surfaces the
/// failure of the smallest particle index, not whichever worker lost the
/// race.
///
/// # Errors
///
/// As [`infer_with_policy`], plus [`SmcError::Internal`] if the worker
/// infrastructure itself misbehaves (a panic outside user translation
/// code, or an unfilled particle slot).
pub fn translate_parallel_with_policy(
    translator: &(dyn TraceTranslator + Sync),
    particles: &ParticleCollection,
    base_seed: u64,
    threads: usize,
    policy: &FailurePolicy,
    step: usize,
) -> Result<(ParticleCollection, StepReport), SmcError> {
    let adapted = AsState(translator);
    translate_states_parallel_with_policy(&adapted, particles, base_seed, threads, policy, step)
}

/// [`translate_parallel_with_policy`] generalized to any particle state:
/// the pooled, deterministic, panic-isolated translate/reweight phase the
/// graph-native runtime drives with [`StateTranslator`]s. Same seed
/// formulae, same thread-count-invariance contract, same minimum-index
/// fail-fast behavior.
///
/// # Errors
///
/// As [`translate_parallel_with_policy`].
pub fn translate_states_parallel_with_policy<S: Send + Sync>(
    translator: &(dyn StateTranslator<S> + Sync),
    particles: &ParticleCollection<S>,
    base_seed: u64,
    threads: usize,
    policy: &FailurePolicy,
    step: usize,
) -> Result<(ParticleCollection<S>, StepReport), SmcError> {
    translate_states_chunked_with_policy(
        translator, particles, base_seed, threads, policy, step, None,
    )
}

/// [`translate_states_parallel_with_policy`] with an explicit
/// particles-per-task chunk size (`None` = [`auto_chunk_size`]).
///
/// Chunk size is pure dispatch granularity: every particle keeps its own
/// `(base_seed, step, particle, attempt)` seed derivation, its own
/// `catch_unwind` isolation, and its own output slot, so results,
/// reports, and fail-fast failure selection are bit-identical for any
/// chunk size and any thread count.
///
/// # Errors
///
/// As [`translate_states_parallel_with_policy`].
pub fn translate_states_chunked_with_policy<S: Send + Sync>(
    translator: &(dyn StateTranslator<S> + Sync),
    particles: &ParticleCollection<S>,
    base_seed: u64,
    threads: usize,
    policy: &FailurePolicy,
    step: usize,
    chunk_size: Option<usize>,
) -> Result<(ParticleCollection<S>, StepReport), SmcError> {
    let threads = threads.max(1);
    let max_attempts = policy.max_attempts();
    let policy_seed = match policy {
        FailurePolicy::Retry { seed, .. } => *seed,
        _ => 0,
    };
    let mut slots: Vec<Option<Slot<S>>> = (0..particles.len()).map(|_| None).collect();
    if threads == 1 || particles.len() <= 1 {
        // Serial fast path: no dispatch overhead, same seeds, same result.
        for (j, particle) in particles.iter().enumerate() {
            slots[j] = Some(translate_slot(
                translator,
                particle,
                j,
                base_seed,
                policy_seed,
                max_attempts,
                step,
            ));
        }
    } else {
        let items: Vec<(usize, &Particle<S>)> = particles.iter().enumerate().collect();
        let chunk = chunk_size
            .unwrap_or_else(|| auto_chunk_size(items.len(), threads))
            .clamp(1, items.len());
        // Items are enumerated in order, so chunking items and slots with
        // the same stride pairs every particle with its own output slot.
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = items
            .chunks(chunk)
            .zip(slots.chunks_mut(chunk))
            .map(|(chunk, out)| {
                Box::new(move || {
                    for ((j, particle), slot) in chunk.iter().zip(out.iter_mut()) {
                        *slot = Some(translate_slot(
                            translator,
                            particle,
                            *j,
                            base_seed,
                            policy_seed,
                            max_attempts,
                            step,
                        ));
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        metrics::note_stage_dispatch(tasks.len() as u64, chunk as u64);
        WorkerPool::global()
            .run_scoped(tasks)
            .map_err(SmcError::Internal)?;
    }
    assemble_parallel(particles, slots, policy, step)
}

/// A worker's progress messages for one supervised round: `Started`
/// right before user translation code runs, `Done` with the result
/// after. The gap between the two is what the watchdog can blame on the
/// translation itself rather than on queueing.
enum RoundMsg<S> {
    Started,
    Done(Result<(S, LogWeight), FailureKind>),
}

/// Deadline-supervised parallel translation: the watchdog half of the
/// crash-safety layer. Each particle is dispatched to the global
/// [`WorkerPool`] as an *owned* task ([`WorkerPool::spawn_owned`]) that
/// reports through a per-round channel, so — unlike the scoped path,
/// which must block until every borrowing task returns — the supervisor
/// can give up on a slot that misses `deadline`:
///
/// - a task that *started* but produced no result by the deadline is
///   presumed hung: it becomes [`FailureKind::Timeout`] and flows
///   through `policy` exactly like any other failure (retry with
///   backoff, drop, or fail fast);
/// - a task still *queued* behind a hung worker at the deadline is
///   rolled into the next round uncharged — on a small pool (even one
///   worker) innocent particles are never blamed for a neighbor's hang,
///   so supervision semantics are independent of pool size;
/// - a round that expires with hung tasks retires the global pool
///   ([`WorkerPool::retire_global`]): a worker wedged in user code can
///   never be reclaimed, so the next round (and the next caller) gets a
///   fresh pool while the wedged one drains and leaks only its hung
///   thread;
/// - after the `n`-th expired round, redispatch waits
///   `backoff.delay(n)`.
///
/// Determinism: seeds are the parallel path's
/// (`particle_seed(base_seed, j)` first, `retry_seed(...)` after a
/// particle's own failure), so a run with no timeouts is bit-identical
/// to [`translate_states_parallel_with_policy`] for any pool size; and
/// `waited_ms` in a timeout failure is the configured deadline, not the
/// measured wall-clock, so reports are reproducible too.
///
/// # Errors
///
/// As [`translate_states_parallel_with_policy`]; timed-out particles
/// surface as [`FailureKind::Timeout`] under the policy's usual rules.
pub fn translate_states_deadline_with_policy<S>(
    translator: &Arc<dyn StateTranslator<S> + Send + Sync>,
    particles: &ParticleCollection<S>,
    base_seed: u64,
    policy: &FailurePolicy,
    step: usize,
    deadline: Duration,
    backoff: &Backoff,
) -> Result<(ParticleCollection<S>, StepReport), SmcError>
where
    S: Clone + Send + Sync + 'static,
{
    translate_states_deadline_chunked_with_policy(
        translator, particles, base_seed, policy, step, deadline, backoff, None,
    )
}

/// [`translate_states_deadline_with_policy`] with an explicit
/// particles-per-task chunk size (`None` = [`auto_chunk_size`] over the
/// global pool's width). A chunk is one owned task that translates its
/// particles in index order, still announcing `Started`/`Done` per
/// particle — so the watchdog's blame rules are unchanged: a particle
/// that started and missed the deadline is charged a timeout, and one
/// queued behind a hung neighbor (whether in another task or earlier in
/// its own chunk) rolls over uncharged.
///
/// # Errors
///
/// As [`translate_states_deadline_with_policy`].
#[allow(clippy::too_many_arguments)]
pub fn translate_states_deadline_chunked_with_policy<S>(
    translator: &Arc<dyn StateTranslator<S> + Send + Sync>,
    particles: &ParticleCollection<S>,
    base_seed: u64,
    policy: &FailurePolicy,
    step: usize,
    deadline: Duration,
    backoff: &Backoff,
    chunk_size: Option<usize>,
) -> Result<(ParticleCollection<S>, StepReport), SmcError>
where
    S: Clone + Send + Sync + 'static,
{
    let max_attempts = policy.max_attempts();
    let policy_seed = match policy {
        FailurePolicy::Retry { seed, .. } => *seed,
        _ => 0,
    };
    let waited_ms = deadline.as_millis() as u64;
    let mut slots: Vec<Option<Slot<S>>> = (0..particles.len()).map(|_| None).collect();
    // Attempts already charged to each particle (timeouts and failures;
    // queue time is never charged).
    let mut attempts: Vec<usize> = vec![0; particles.len()];
    let mut pending: Vec<usize> = (0..particles.len()).collect();
    let mut expired_rounds = 0_usize;
    // Each round either drains `pending` or charges at least one hung
    // particle an attempt, so this bound is unreachable in practice; it
    // exists so pathological scheduling (a pool monopolized by another
    // caller, say) degrades into timeouts rather than an infinite loop.
    let max_rounds = max_attempts + particles.len();
    for _round in 0..max_rounds {
        if pending.is_empty() {
            break;
        }
        if expired_rounds > 0 {
            std::thread::sleep(backoff.delay(expired_rounds));
        }
        let pool = WorkerPool::global();
        let chunk = chunk_size
            .unwrap_or_else(|| auto_chunk_size(pending.len(), pool.size()))
            .clamp(1, pending.len());
        // A fresh channel per round: a hung task from an earlier round
        // that eventually completes sends into a closed channel and is
        // ignored, so stale results can never corrupt a later round.
        let (tx, rx) = mpsc::channel::<(usize, RoundMsg<S>)>();
        metrics::note_stage_dispatch(pending.len().div_ceil(chunk) as u64, chunk as u64);
        for chunk_js in pending.chunks(chunk) {
            let tx = tx.clone();
            let translator = Arc::clone(translator);
            // Each work item is fully precomputed so the worker does no
            // bookkeeping between particles beyond the Started/Done sends.
            let work: Vec<(usize, Particle<S>, usize, u64)> = chunk_js
                .iter()
                .map(|&j| {
                    let particle = Particle {
                        trace: particles.particles()[j].trace.clone(),
                        log_weight: particles.particles()[j].log_weight,
                    };
                    let attempt = attempts[j];
                    let seed = if attempt == 0 {
                        particle_seed(base_seed, j)
                    } else {
                        retry_seed(policy_seed, step, j, attempt)
                    };
                    (j, particle, attempt, seed)
                })
                .collect();
            pool.spawn_owned(Box::new(move || {
                for (j, particle, attempt, seed) in work {
                    let _ = tx.send((j, RoundMsg::Started));
                    let mut rng = StdRng::seed_from_u64(seed);
                    let ctx = TranslateCtx::new(step, j).with_attempt(attempt);
                    let t: &dyn StateTranslator<S> = &*translator;
                    let result = attempt_translate(t, &particle, ctx, &mut rng);
                    let _ = tx.send((j, RoundMsg::Done(result)));
                }
            }))
            .map_err(SmcError::Internal)?;
        }
        drop(tx);
        let expiry = Instant::now() + deadline;
        let mut outstanding: FxHashSet<usize> = pending.iter().copied().collect();
        let mut started: FxHashSet<usize> = FxHashSet::default();
        let mut next_pending: Vec<usize> = Vec::new();
        let mut handle = |j: usize,
                          msg: RoundMsg<S>,
                          outstanding: &mut FxHashSet<usize>,
                          started: &mut FxHashSet<usize>,
                          next_pending: &mut Vec<usize>| {
            match msg {
                RoundMsg::Started => {
                    started.insert(j);
                }
                RoundMsg::Done(Ok((state, weight))) => {
                    outstanding.remove(&j);
                    started.remove(&j);
                    slots[j] = Some(Ok((state, weight, attempts[j] + 1)));
                }
                RoundMsg::Done(Err(kind)) => {
                    outstanding.remove(&j);
                    started.remove(&j);
                    attempts[j] += 1;
                    if attempts[j] >= max_attempts {
                        slots[j] = Some(Err(ParticleFailure {
                            step,
                            particle: j,
                            attempts: attempts[j],
                            kind,
                        }));
                    } else {
                        next_pending.push(j);
                    }
                }
            }
        };
        while !outstanding.is_empty() {
            let now = Instant::now();
            if now >= expiry {
                break;
            }
            match rx.recv_timeout(expiry - now) {
                Ok((j, msg)) => handle(j, msg, &mut outstanding, &mut started, &mut next_pending),
                // Timeout: the round expired. Disconnected: every task
                // finished or died without reporting (an infrastructure
                // panic); either way the stragglers are classified below.
                Err(_) => break,
            }
        }
        // Drain messages that were sent before the deadline but not yet
        // read, so a translation that finished in time is never blamed.
        while let Ok((j, msg)) = rx.try_recv() {
            handle(j, msg, &mut outstanding, &mut started, &mut next_pending);
        }
        if !outstanding.is_empty() {
            expired_rounds += 1;
            let mut stragglers: Vec<usize> = outstanding.into_iter().collect();
            stragglers.sort_unstable();
            let any_hung = stragglers.iter().any(|j| started.contains(j));
            if any_hung {
                // A worker wedged in user code never comes back: replace
                // the pool for the next round and all future callers.
                WorkerPool::retire_global(&pool);
            }
            for j in stragglers {
                if started.contains(&j) {
                    // Started and missed the deadline: presumed hung.
                    attempts[j] += 1;
                    if attempts[j] >= max_attempts {
                        slots[j] = Some(Err(ParticleFailure {
                            step,
                            particle: j,
                            attempts: attempts[j],
                            kind: FailureKind::Timeout { waited_ms },
                        }));
                    } else {
                        next_pending.push(j);
                    }
                } else {
                    // Never ran — stuck in the queue behind a hung
                    // worker. Re-dispatch without charging an attempt.
                    next_pending.push(j);
                }
            }
        }
        next_pending.sort_unstable();
        pending = next_pending;
    }
    // Round-bound exhaustion (see `max_rounds`): time the leftovers out.
    for j in pending {
        slots[j] = Some(Err(ParticleFailure {
            step,
            particle: j,
            attempts: attempts[j] + 1,
            kind: FailureKind::Timeout { waited_ms },
        }));
    }
    assemble_parallel(particles, slots, policy, step)
}

/// One supervised SMC step: deadline-watched translation (when
/// [`StagePolicy::deadline`] is set; plain pooled translation otherwise)
/// followed by the standard degeneracy tail. This is the step primitive
/// [`crate::run_state_sequence_supervised`] drives.
///
/// # Errors
///
/// As [`infer_states_parallel_with_policy`].
#[allow(clippy::too_many_arguments)]
pub fn infer_states_supervised_with_policy<S>(
    translator: &Arc<dyn StateTranslator<S> + Send + Sync>,
    particles: &ParticleCollection<S>,
    config: &SmcConfig,
    policy: &FailurePolicy,
    stage_policy: &StagePolicy,
    step: usize,
    base_seed: u64,
    threads: usize,
    rng: &mut dyn RngCore,
) -> Result<(ParticleCollection<S>, StepReport), SmcError>
where
    S: Clone + Send + Sync + 'static,
{
    let t_translate = metrics::clock();
    let (translated, translation_report) = match stage_policy.deadline {
        Some(deadline) => translate_states_deadline_chunked_with_policy(
            translator,
            particles,
            base_seed,
            policy,
            step,
            deadline,
            &stage_policy.backoff,
            config.chunk_size,
        )?,
        None => {
            let t: &(dyn StateTranslator<S> + Sync) = &**translator;
            translate_states_chunked_with_policy(
                t,
                particles,
                base_seed,
                threads,
                policy,
                step,
                config.chunk_size,
            )?
        }
    };
    metrics::note_translate(t_translate);
    let t_resample = metrics::clock();
    let tail = degeneracy_tail_states(translated, particles, config, policy, step, rng)?;
    metrics::note_resample(t_resample);
    let report = StepReport {
        output_particles: tail.collection.len(),
        ess: tail.ess,
        resampled: tail.resampled,
        collapse_recovered: tail.collapse_recovered,
        ..translation_report
    };
    Ok((tail.collection, report))
}

/// The historical per-call `std::thread::scope` implementation of
/// [`translate_parallel_with_policy`], kept as the reference the pooled
/// path is differentially tested against (results must be bit-identical).
pub fn translate_parallel_with_policy_scoped(
    translator: &(dyn TraceTranslator + Sync),
    particles: &ParticleCollection,
    base_seed: u64,
    threads: usize,
    policy: &FailurePolicy,
    step: usize,
) -> Result<(ParticleCollection, StepReport), SmcError> {
    let threads = threads.max(1);
    let items: Vec<(usize, &Particle)> = particles.iter().enumerate().collect();
    let chunk_size = items.len().div_ceil(threads).max(1);
    let max_attempts = policy.max_attempts();
    let policy_seed = match policy {
        FailurePolicy::Retry { seed, .. } => *seed,
        _ => 0,
    };
    let adapted = AsState(translator);
    let results: Vec<Result<Vec<(usize, Slot)>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| {
                let adapted = &adapted;
                scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|(j, particle)| {
                            (
                                *j,
                                translate_slot(
                                    adapted,
                                    particle,
                                    *j,
                                    base_seed,
                                    policy_seed,
                                    max_attempts,
                                    step,
                                ),
                            )
                        })
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .map_err(|_| "translation worker panicked outside user code".to_string())
            })
            .collect()
    });

    let mut slots: Vec<Option<Slot>> = (0..particles.len()).map(|_| None).collect();
    for chunk in results {
        for (j, slot) in chunk.map_err(SmcError::Internal)? {
            slots[j] = Some(slot);
        }
    }
    assemble_parallel(particles, slots, policy, step)
}

/// Scans the filled slots in index order and builds the output collection
/// and report — shared tail of the pooled and scoped parallel paths.
fn assemble_parallel<S>(
    particles: &ParticleCollection<S>,
    slots: Vec<Option<Slot<S>>>,
    policy: &FailurePolicy,
    step: usize,
) -> Result<(ParticleCollection<S>, StepReport), SmcError> {
    let mut out = ParticleCollection::new();
    let mut failures: Vec<ParticleFailure> = Vec::new();
    let mut retries = 0;
    let mut recovered = 0;
    for (j, slot) in slots.into_iter().enumerate() {
        let slot =
            slot.ok_or_else(|| SmcError::Internal(format!("particle {j} was never translated")))?;
        match slot {
            Ok((trace, weight, attempts)) => {
                retries += attempts - 1;
                if attempts > 1 {
                    recovered += 1;
                }
                out.push(trace, weight);
            }
            Err(failure) => match policy {
                FailurePolicy::DropAndRenormalize { .. } => failures.push(failure),
                // Scanning in index order makes this the minimum failed
                // index, independent of worker scheduling.
                _ => return Err(SmcError::Particle(failure)),
            },
        }
    }
    let dropped = failures.len();
    if !policy.loss_allowed(dropped, particles.len()) {
        let max_loss = match policy {
            FailurePolicy::DropAndRenormalize { max_loss } => *max_loss,
            _ => 0.0,
        };
        return Err(SmcError::TooManyDropped {
            step,
            dropped,
            total: particles.len(),
            max_loss,
            failures,
        });
    }
    let report = StepReport {
        step,
        input_particles: particles.len(),
        output_particles: out.len(),
        ess: out.ess(),
        dropped,
        retries,
        recovered,
        failures,
        resampled: false,
        collapse_recovered: false,
    };
    Ok((out, report))
}

/// Parallel translation: each particle's `translate` is independent
/// (Algorithm 2's first loop is embarrassingly parallel), so the
/// collection is chunked across `threads` workers.
///
/// Determinism: particle `j` is translated with an RNG seeded from
/// `base_seed` and `j`, so the result is identical for any thread count
/// (and reproducible across runs) — unlike threading one RNG through.
///
/// This is [`translate_parallel_with_policy`] under
/// [`FailurePolicy::FailFast`]: the smallest-index failure (error,
/// panic, or non-finite weight) aborts translation with a typed error
/// flattened to [`PplError`].
///
/// # Errors
///
/// Propagates the failure of the smallest failing particle index.
pub fn translate_parallel(
    translator: &(dyn TraceTranslator + Sync),
    particles: &ParticleCollection,
    base_seed: u64,
    threads: usize,
) -> Result<ParticleCollection, PplError> {
    translate_parallel_with_policy(
        translator,
        particles,
        base_seed,
        threads,
        &FailurePolicy::FailFast,
        0,
    )
    .map(|(collection, _report)| collection)
    .map_err(PplError::from)
}

/// Translates a collection without resampling or rejuvenation and also
/// returns the per-particle weight increments (useful for analysis of the
/// "no weights" ablation in the paper's Figures 8–9).
///
/// # Errors
///
/// Propagates translation errors.
pub fn translate_collection(
    translator: &dyn TraceTranslator,
    particles: &ParticleCollection,
    rng: &mut dyn RngCore,
) -> Result<(ParticleCollection, Vec<f64>), PplError> {
    let mut out = ParticleCollection::new();
    let mut increments = Vec::with_capacity(particles.len());
    for particle in particles.iter() {
        let translated = translator.translate(&particle.trace, rng)?;
        increments.push(translated.log_weight.log());
        out.push(
            translated.trace,
            particle.log_weight + translated.log_weight,
        );
    }
    Ok((out, increments))
}

/// The "no weights" ablation: translate but *discard* the weight
/// estimates, keeping the input weights. Converges to the wrong
/// distribution (the translator output distribution `η_{P→Q}`, not the
/// posterior of `Q`) — exactly the failure mode Figures 8 and 9
/// demonstrate.
///
/// # Errors
///
/// Propagates translation errors.
pub fn infer_without_weights(
    translator: &dyn TraceTranslator,
    particles: &ParticleCollection,
    rng: &mut dyn RngCore,
) -> Result<ParticleCollection, PplError> {
    let mut out = ParticleCollection::new();
    for particle in particles.iter() {
        let translated = translator.translate(&particle.trace, rng)?;
        out.push(translated.trace, particle.log_weight);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correspondence::Correspondence;
    use crate::fault::{FaultKind, FaultPlan, FaultSpec, FaultyTranslator};
    use crate::forward::CorrespondenceTranslator;
    use crate::mcmc::IdentityKernel;
    use ppl::dist::Dist;
    use ppl::{addr, Enumeration, Handler, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// P: x ~ flip(0.5), observe flip(x?0.2:0.8)=1.
    fn p_model(h: &mut dyn Handler) -> Result<Value, ppl::PplError> {
        let x = h.sample(addr!["x"], Dist::flip(0.5))?;
        let po = if x.truthy()? { 0.2 } else { 0.8 };
        h.observe(addr!["o"], Dist::flip(po), Value::Bool(true))?;
        Ok(x)
    }

    /// Q: same latent, different observation model.
    fn q_model(h: &mut dyn Handler) -> Result<Value, ppl::PplError> {
        let x = h.sample(addr!["x"], Dist::flip(0.5))?;
        let po = if x.truthy()? { 0.7 } else { 0.1 };
        h.observe(addr!["o"], Dist::flip(po), Value::Bool(true))?;
        Ok(x)
    }

    fn posterior_samples_of_p(m: usize, rng: &mut StdRng) -> ParticleCollection {
        // Exact posterior sampling by enumeration + inverse CDF.
        let e = Enumeration::run(&p_model).unwrap();
        let marg = e.probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap());
        let mut traces = Vec::with_capacity(m);
        for _ in 0..m {
            let x = ppl::dist::util::uniform_unit(rng) < marg;
            // Rebuild the full trace by constrained scoring.
            let mut map = ppl::ChoiceMap::new();
            map.insert(addr!["x"], Value::Bool(x));
            let t = ppl::handlers::score(&p_model, &map).unwrap();
            traces.push(t);
        }
        ParticleCollection::from_traces(traces)
    }

    type ModelFn = fn(&mut dyn Handler) -> Result<Value, ppl::PplError>;

    fn pq_translator() -> CorrespondenceTranslator<ModelFn, ModelFn> {
        CorrespondenceTranslator::new(
            p_model as ModelFn,
            q_model as ModelFn,
            Correspondence::identity_on(["x"]),
        )
    }

    #[test]
    fn infer_converges_to_q_posterior() {
        let mut rng = StdRng::seed_from_u64(99);
        let particles = posterior_samples_of_p(20_000, &mut rng);
        let translator = pq_translator();
        let out = infer(
            &translator,
            None,
            &particles,
            &SmcConfig::translate_only(),
            &mut rng,
        )
        .unwrap();
        let estimate = out
            .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap())
            .unwrap();
        let exact = Enumeration::run(&q_model)
            .unwrap()
            .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap());
        assert!(
            (estimate - exact).abs() < 0.02,
            "estimate {estimate} vs exact {exact}"
        );
    }

    #[test]
    fn without_weights_converges_to_wrong_answer() {
        let mut rng = StdRng::seed_from_u64(100);
        let particles = posterior_samples_of_p(20_000, &mut rng);
        let translator = pq_translator();
        let out = infer_without_weights(&translator, &particles, &mut rng).unwrap();
        let estimate = out
            .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap())
            .unwrap();
        // Without weights the x marginal stays at P's posterior.
        let p_posterior = Enumeration::run(&p_model)
            .unwrap()
            .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap());
        let q_posterior = Enumeration::run(&q_model)
            .unwrap()
            .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap());
        assert!((estimate - p_posterior).abs() < 0.02);
        assert!((estimate - q_posterior).abs() > 0.1);
    }

    #[test]
    fn resampling_policies_work() {
        let mut rng = StdRng::seed_from_u64(101);
        let particles = posterior_samples_of_p(500, &mut rng);
        let translator = pq_translator();
        for policy in [
            ResamplePolicy::Never,
            ResamplePolicy::Always,
            ResamplePolicy::EssBelow(0.99),
            ResamplePolicy::EssBelow(0.001),
        ] {
            let config = SmcConfig {
                resample: policy,
                ..SmcConfig::default()
            };
            let out = infer(&translator, None, &particles, &config, &mut rng).unwrap();
            assert_eq!(out.len(), 500);
            // After Always/high-threshold resampling, weights are unit.
            if policy == ResamplePolicy::Always {
                assert!(out.iter().all(|p| p.log_weight.log() == 0.0));
            }
        }
    }

    #[test]
    fn mcmc_rejuvenation_runs() {
        let mut rng = StdRng::seed_from_u64(102);
        let particles = posterior_samples_of_p(50, &mut rng);
        let translator = pq_translator();
        let config = SmcConfig {
            mcmc_steps: 3,
            ..SmcConfig::default()
        };
        let kernel = IdentityKernel;
        let out = infer(&translator, Some(&kernel), &particles, &config, &mut rng).unwrap();
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn parallel_translation_is_deterministic_and_correct() {
        let mut rng = StdRng::seed_from_u64(104);
        let particles = posterior_samples_of_p(2_000, &mut rng);
        let translator = pq_translator();
        let one = translate_parallel(&translator, &particles, 7, 1).unwrap();
        let four = translate_parallel(&translator, &particles, 7, 4).unwrap();
        let nine = translate_parallel(&translator, &particles, 7, 9).unwrap();
        // Thread-count independence: identical traces and weights.
        for ((a, b), c) in one.iter().zip(four.iter()).zip(nine.iter()) {
            assert_eq!(a.trace.to_choice_map(), b.trace.to_choice_map());
            assert_eq!(b.trace.to_choice_map(), c.trace.to_choice_map());
            assert!((a.log_weight.log() - b.log_weight.log()).abs() < 1e-15);
        }
        // And the estimate matches the exact posterior.
        let exact = Enumeration::run(&q_model)
            .unwrap()
            .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap());
        let estimate = four
            .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap())
            .unwrap();
        assert!((estimate - exact).abs() < 0.05, "{estimate} vs {exact}");
    }

    #[test]
    fn translate_collection_reports_increments() {
        let mut rng = StdRng::seed_from_u64(103);
        let particles = posterior_samples_of_p(10, &mut rng);
        let translator = pq_translator();
        let (out, increments) = translate_collection(&translator, &particles, &mut rng).unwrap();
        assert_eq!(out.len(), 10);
        assert_eq!(increments.len(), 10);
        // Increments are the weight ratio 0.7/0.2 or 0.1/0.8 (obs only).
        for inc in increments {
            let w = inc.exp();
            assert!(
                (w - 0.7 / 0.2).abs() < 1e-9 || (w - 0.1 / 0.8).abs() < 1e-9,
                "unexpected increment {w}"
            );
        }
    }

    #[test]
    fn clean_policy_run_matches_legacy_infer_exactly() {
        let mut rng_a = StdRng::seed_from_u64(105);
        let mut rng_b = StdRng::seed_from_u64(105);
        let particles_a = posterior_samples_of_p(300, &mut rng_a);
        let particles_b = posterior_samples_of_p(300, &mut rng_b);
        let translator = pq_translator();
        let config = SmcConfig {
            resample: ResamplePolicy::EssBelow(0.9),
            ..SmcConfig::default()
        };
        let legacy = infer(&translator, None, &particles_a, &config, &mut rng_a).unwrap();
        let (fresh, report) = infer_with_policy(
            &translator,
            None,
            &particles_b,
            &config,
            &FailurePolicy::DropAndRenormalize { max_loss: 0.5 },
            0,
            &mut rng_b,
        )
        .unwrap();
        assert!(report.is_clean());
        assert_eq!(legacy.len(), fresh.len());
        for (a, b) in legacy.iter().zip(fresh.iter()) {
            assert_eq!(a.trace.to_choice_map(), b.trace.to_choice_map());
            assert_eq!(a.log_weight.log().to_bits(), b.log_weight.log().to_bits());
        }
    }

    #[test]
    fn failfast_surfaces_minimum_index_panic_across_thread_counts() {
        let mut rng = StdRng::seed_from_u64(106);
        let particles = posterior_samples_of_p(64, &mut rng);
        let plan = FaultPlan::new()
            .with(FaultSpec::always(0, 41, FaultKind::Panic))
            .with(FaultSpec::always(0, 17, FaultKind::Panic));
        let faulty = FaultyTranslator::new(pq_translator(), plan);
        for threads in [1, 3, 8] {
            let err = translate_parallel_with_policy(
                &faulty,
                &particles,
                7,
                threads,
                &FailurePolicy::FailFast,
                0,
            )
            .unwrap_err();
            match err {
                SmcError::Particle(failure) => {
                    assert_eq!(failure.particle, 17, "threads = {threads}");
                    assert!(matches!(failure.kind, FailureKind::Panic(_)));
                }
                other => panic!("expected particle failure, got {other:?}"),
            }
        }
    }

    #[test]
    fn drop_policy_parallel_is_thread_count_invariant_under_faults() {
        let mut rng = StdRng::seed_from_u64(107);
        let particles = posterior_samples_of_p(200, &mut rng);
        let plan = FaultPlan::new()
            .with(FaultSpec::always(0, 3, FaultKind::Panic))
            .with(FaultSpec::always(0, 77, FaultKind::NanWeight))
            .with(FaultSpec::always(0, 150, FaultKind::Error));
        let faulty = FaultyTranslator::new(pq_translator(), plan);
        let policy = FailurePolicy::DropAndRenormalize { max_loss: 0.05 };
        let (first, first_report) =
            translate_parallel_with_policy(&faulty, &particles, 11, 1, &policy, 0).unwrap();
        for threads in [2, 5, 16] {
            let (other, report) =
                translate_parallel_with_policy(&faulty, &particles, 11, threads, &policy, 0)
                    .unwrap();
            // NaN in the NonFiniteWeight record defeats `==` on the whole
            // report, so compare field by field.
            assert_eq!(report.ess.to_bits(), first_report.ess.to_bits());
            assert_eq!(report.dropped, first_report.dropped, "threads = {threads}");
            assert_eq!(report.retries, first_report.retries);
            let positions: Vec<_> = report
                .failures
                .iter()
                .map(|f| (f.particle, f.attempts, std::mem::discriminant(&f.kind)))
                .collect();
            let first_positions: Vec<_> = first_report
                .failures
                .iter()
                .map(|f| (f.particle, f.attempts, std::mem::discriminant(&f.kind)))
                .collect();
            assert_eq!(positions, first_positions, "threads = {threads}");
            assert_eq!(other.len(), first.len());
            for (a, b) in first.iter().zip(other.iter()) {
                assert_eq!(a.trace.to_choice_map(), b.trace.to_choice_map());
                assert_eq!(a.log_weight.log().to_bits(), b.log_weight.log().to_bits());
            }
        }
        assert_eq!(first_report.dropped, 3);
        assert_eq!(first.len(), 197);
        let kinds: Vec<_> = first_report.failures.iter().map(|f| f.particle).collect();
        assert_eq!(kinds, vec![3, 77, 150]);
    }

    #[test]
    fn retry_policy_recovers_transient_faults_deterministically() {
        let mut rng = StdRng::seed_from_u64(108);
        let particles = posterior_samples_of_p(50, &mut rng);
        let plan = FaultPlan::new().with(FaultSpec::once(0, 20, FaultKind::Error));
        let faulty = FaultyTranslator::new(pq_translator(), plan);
        let policy = FailurePolicy::Retry {
            max_attempts: 3,
            seed: 99,
        };
        let (a, report_a) =
            translate_parallel_with_policy(&faulty, &particles, 5, 2, &policy, 0).unwrap();
        let (b, report_b) =
            translate_parallel_with_policy(&faulty, &particles, 5, 7, &policy, 0).unwrap();
        assert_eq!(report_a, report_b);
        assert_eq!(report_a.retries, 1);
        assert_eq!(report_a.recovered, 1);
        assert_eq!(report_a.dropped, 0);
        assert_eq!(a.len(), 50);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.trace.to_choice_map(), y.trace.to_choice_map());
        }
    }

    #[test]
    fn collapse_recovery_keeps_pre_step_collection() {
        /// A translator that zeroes every weight: total collapse.
        struct Zeroing;
        impl TraceTranslator for Zeroing {
            fn translate(
                &self,
                t: &Trace,
                _rng: &mut dyn RngCore,
            ) -> Result<crate::Translated, PplError> {
                Ok(crate::Translated {
                    trace: t.clone(),
                    log_weight: LogWeight::ZERO,
                    output: Value::Int(0),
                })
            }
        }
        let mut rng = StdRng::seed_from_u64(109);
        let particles = posterior_samples_of_p(30, &mut rng);
        // Fail-fast: typed collapse error.
        let err = infer_with_policy(
            &Zeroing,
            None,
            &particles,
            &SmcConfig::translate_only(),
            &FailurePolicy::FailFast,
            4,
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, SmcError::Collapse { step: 4 }));
        // Tolerant policy: pre-step collection survives, flagged.
        let (recovered, report) = infer_with_policy(
            &Zeroing,
            None,
            &particles,
            &SmcConfig::with_rejuvenation(0),
            &FailurePolicy::DropAndRenormalize { max_loss: 0.5 },
            4,
            &mut rng,
        )
        .unwrap();
        assert!(report.collapse_recovered);
        assert!(!report.resampled);
        assert_eq!(recovered.len(), particles.len());
        for (a, b) in particles.iter().zip(recovered.iter()) {
            assert_eq!(a.trace.to_choice_map(), b.trace.to_choice_map());
        }
    }
}
