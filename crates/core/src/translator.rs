//! Abstract trace translators (Section 4.1, Algorithm 1).
//!
//! A trace translator is a tuple `R = (P, Q, k_{P→Q}, ℓ_{Q→P})`. Its
//! `translate` operation (Algorithm 1) samples `u ∼ k_{P→Q}(·; t)` and
//! evaluates the weight estimate
//!
//! ```text
//!             P̃r[u ∼ Q] · ℓ_{Q→P}(t; u)
//! ŵ(u; t) =  ---------------------------          (Eq. 2)
//!             P̃r[t ∼ P] · k_{P→Q}(u; t)
//! ```
//!
//! which is an unbiased estimate of `(Z_Q / Z_P) · w_{P→Q}(u)` (Lemma 4 of
//! the supplement).

use rand::RngCore;

use ppl::{LogWeight, PplError, Trace, Value};

/// The position of one `translate` call inside a larger SMC run: which
/// sequence step, which particle, and which attempt (0 for the first try,
/// ≥ 1 for retries under [`crate::FailurePolicy::Retry`]).
///
/// The runtime threads this through [`TraceTranslator::translate_at`] so
/// that wrappers such as [`crate::FaultyTranslator`] can behave
/// deterministically regardless of thread count or retry schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TranslateCtx {
    /// Index of the SMC step (stage in a program sequence).
    pub step: usize,
    /// Index of the particle being translated.
    pub particle: usize,
    /// Attempt number: 0 for the initial translation, `k` for the `k`-th
    /// retry.
    pub attempt: usize,
}

impl TranslateCtx {
    /// A context for `particle` at `step`, attempt 0.
    pub fn new(step: usize, particle: usize) -> TranslateCtx {
        TranslateCtx {
            step,
            particle,
            attempt: 0,
        }
    }

    /// The same position with the attempt counter set to `attempt`.
    pub fn with_attempt(self, attempt: usize) -> TranslateCtx {
        TranslateCtx { attempt, ..self }
    }
}

/// The result of translating one trace.
#[derive(Debug, Clone)]
pub struct Translated {
    /// The translated trace `u` of program `Q`.
    pub trace: Trace,
    /// The log weight estimate `log ŵ_{P→Q}(u; t)`.
    pub log_weight: LogWeight,
    /// The return value of `Q` under `u`.
    pub output: Value,
}

/// A trace translator: anything that can adapt a trace of one program into
/// a weighted trace of another (Algorithm 1's `translate`).
///
/// Implementations in this workspace:
/// - [`crate::CorrespondenceTranslator`] — the Section 5 translator driven
///   by a semantic correspondence of random choices;
/// - `depgraph::IncrementalTranslator` — the Section 6 optimized
///   translator that re-executes only the program slice affected by an
///   edit.
pub trait TraceTranslator {
    /// Translates trace `t` of `P` into a weighted trace of `Q`.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from running `Q` (or replaying `P`).
    fn translate(&self, t: &Trace, rng: &mut dyn RngCore) -> Result<Translated, PplError>;

    /// Translates trace `t` at a known position `ctx` within an SMC run.
    ///
    /// The default implementation ignores the context and calls
    /// [`TraceTranslator::translate`] — translators are position-independent
    /// unless they opt in (fault injectors, per-particle instrumentation).
    /// Wrapper impls (`&T`, `Box<T>`) forward the context so injection
    /// works through trait objects.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from running `Q` (or replaying `P`).
    fn translate_at(
        &self,
        t: &Trace,
        ctx: TranslateCtx,
        rng: &mut dyn RngCore,
    ) -> Result<Translated, PplError> {
        let _ = ctx;
        self.translate(t, rng)
    }
}

impl<T: TraceTranslator + ?Sized> TraceTranslator for &T {
    fn translate(&self, t: &Trace, rng: &mut dyn RngCore) -> Result<Translated, PplError> {
        (**self).translate(t, rng)
    }

    fn translate_at(
        &self,
        t: &Trace,
        ctx: TranslateCtx,
        rng: &mut dyn RngCore,
    ) -> Result<Translated, PplError> {
        (**self).translate_at(t, ctx, rng)
    }
}

impl<T: TraceTranslator + ?Sized> TraceTranslator for Box<T> {
    fn translate(&self, t: &Trace, rng: &mut dyn RngCore) -> Result<Translated, PplError> {
        (**self).translate(t, rng)
    }

    fn translate_at(
        &self,
        t: &Trace,
        ctx: TranslateCtx,
        rng: &mut dyn RngCore,
    ) -> Result<Translated, PplError> {
        (**self).translate_at(t, ctx, rng)
    }
}

/// A translator over an arbitrary particle state `S`.
///
/// [`TraceTranslator`] is Algorithm 1's interface over flat traces;
/// `StateTranslator` generalizes the *runtime* contract so SMC can thread
/// richer particle states (the Section 6 execution graphs) through a
/// whole program sequence without flattening between stages. The returned
/// [`LogWeight`] is the weight increment `log ŵ`, exactly as
/// [`Translated::log_weight`].
pub trait StateTranslator<S> {
    /// Translates `state` at a known position `ctx` within an SMC run,
    /// returning the successor state and the log weight increment.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from running the target program.
    fn translate_state(
        &self,
        state: &S,
        ctx: TranslateCtx,
        rng: &mut dyn RngCore,
    ) -> Result<(S, LogWeight), PplError>;
}

impl<S, T: StateTranslator<S> + ?Sized> StateTranslator<S> for &T {
    fn translate_state(
        &self,
        state: &S,
        ctx: TranslateCtx,
        rng: &mut dyn RngCore,
    ) -> Result<(S, LogWeight), PplError> {
        (**self).translate_state(state, ctx, rng)
    }
}

impl<S, T: StateTranslator<S> + ?Sized> StateTranslator<S> for Box<T> {
    fn translate_state(
        &self,
        state: &S,
        ctx: TranslateCtx,
        rng: &mut dyn RngCore,
    ) -> Result<(S, LogWeight), PplError> {
        (**self).translate_state(state, ctx, rng)
    }
}

/// Adapts an owned [`TraceTranslator`] to the
/// [`StateTranslator`]`<Trace>` runtime interface (forwarding the call
/// context), so flat-trace stages can be driven by the state-generic
/// machinery — in particular the `Arc<dyn StateTranslator<_>>` stages of
/// the supervised sequence runner.
///
/// (A blanket `impl StateTranslator<Trace> for T: TraceTranslator` would
/// conflict with wrapper impls such as [`crate::FaultyTranslator`]'s
/// generic one, hence the explicit newtype.)
#[derive(Debug, Clone)]
pub struct TraceStateAdapter<T>(pub T);

impl<T: TraceTranslator> StateTranslator<Trace> for TraceStateAdapter<T> {
    fn translate_state(
        &self,
        state: &Trace,
        ctx: TranslateCtx,
        rng: &mut dyn RngCore,
    ) -> Result<(Trace, LogWeight), PplError> {
        let out = self.0.translate_at(state, ctx, rng)?;
        Ok((out.trace, out.log_weight))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A translator usable through references and boxes.
    struct Null;

    impl TraceTranslator for Null {
        fn translate(&self, t: &Trace, _rng: &mut dyn RngCore) -> Result<Translated, PplError> {
            Ok(Translated {
                trace: t.clone(),
                log_weight: LogWeight::ONE,
                output: Value::Int(0),
            })
        }
    }

    #[test]
    fn trait_objects_compose() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = Trace::new();
        let boxed: Box<dyn TraceTranslator> = Box::new(Null);
        let out = boxed.translate(&t, &mut rng).unwrap();
        assert_eq!(out.log_weight, LogWeight::ONE);
        let by_ref: &dyn TraceTranslator = &Null;
        by_ref.translate(&t, &mut rng).unwrap();
    }

    /// A translator whose output encodes the context it was handed, to
    /// check that wrappers forward `translate_at` rather than falling back
    /// to the context-blind default.
    struct CtxEcho;

    impl TraceTranslator for CtxEcho {
        fn translate(&self, t: &Trace, rng: &mut dyn RngCore) -> Result<Translated, PplError> {
            self.translate_at(t, TranslateCtx::default(), rng)
        }

        fn translate_at(
            &self,
            t: &Trace,
            ctx: TranslateCtx,
            _rng: &mut dyn RngCore,
        ) -> Result<Translated, PplError> {
            Ok(Translated {
                trace: t.clone(),
                log_weight: LogWeight::ONE,
                output: Value::Int((ctx.step * 100 + ctx.particle * 10 + ctx.attempt) as i64),
            })
        }
    }

    #[test]
    fn wrappers_forward_translate_at() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = Trace::new();
        let ctx = TranslateCtx::new(1, 2).with_attempt(3);
        let boxed: Box<dyn TraceTranslator> = Box::new(CtxEcho);
        assert_eq!(
            boxed.translate_at(&t, ctx, &mut rng).unwrap().output,
            Value::Int(123)
        );
        let by_ref: &dyn TraceTranslator = &CtxEcho;
        assert_eq!(
            by_ref.translate_at(&t, ctx, &mut rng).unwrap().output,
            Value::Int(123)
        );
        // The default impl ignores the context.
        assert_eq!(
            Null.translate_at(&t, ctx, &mut rng).unwrap().log_weight,
            LogWeight::ONE
        );
    }
}
