//! Abstract trace translators (Section 4.1, Algorithm 1).
//!
//! A trace translator is a tuple `R = (P, Q, k_{P→Q}, ℓ_{Q→P})`. Its
//! `translate` operation (Algorithm 1) samples `u ∼ k_{P→Q}(·; t)` and
//! evaluates the weight estimate
//!
//! ```text
//!             P̃r[u ∼ Q] · ℓ_{Q→P}(t; u)
//! ŵ(u; t) =  ---------------------------          (Eq. 2)
//!             P̃r[t ∼ P] · k_{P→Q}(u; t)
//! ```
//!
//! which is an unbiased estimate of `(Z_Q / Z_P) · w_{P→Q}(u)` (Lemma 4 of
//! the supplement).

use rand::RngCore;

use ppl::{LogWeight, PplError, Trace, Value};

/// The result of translating one trace.
#[derive(Debug, Clone)]
pub struct Translated {
    /// The translated trace `u` of program `Q`.
    pub trace: Trace,
    /// The log weight estimate `log ŵ_{P→Q}(u; t)`.
    pub log_weight: LogWeight,
    /// The return value of `Q` under `u`.
    pub output: Value,
}

/// A trace translator: anything that can adapt a trace of one program into
/// a weighted trace of another (Algorithm 1's `translate`).
///
/// Implementations in this workspace:
/// - [`crate::CorrespondenceTranslator`] — the Section 5 translator driven
///   by a semantic correspondence of random choices;
/// - `depgraph::IncrementalTranslator` — the Section 6 optimized
///   translator that re-executes only the program slice affected by an
///   edit.
pub trait TraceTranslator {
    /// Translates trace `t` of `P` into a weighted trace of `Q`.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from running `Q` (or replaying `P`).
    fn translate(&self, t: &Trace, rng: &mut dyn RngCore) -> Result<Translated, PplError>;
}

impl<T: TraceTranslator + ?Sized> TraceTranslator for &T {
    fn translate(&self, t: &Trace, rng: &mut dyn RngCore) -> Result<Translated, PplError> {
        (**self).translate(t, rng)
    }
}

impl<T: TraceTranslator + ?Sized> TraceTranslator for Box<T> {
    fn translate(&self, t: &Trace, rng: &mut dyn RngCore) -> Result<Translated, PplError> {
        (**self).translate(t, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A translator usable through references and boxes.
    struct Null;

    impl TraceTranslator for Null {
        fn translate(&self, t: &Trace, _rng: &mut dyn RngCore) -> Result<Translated, PplError> {
            Ok(Translated {
                trace: t.clone(),
                log_weight: LogWeight::ONE,
                output: Value::Int(0),
            })
        }
    }

    #[test]
    fn trait_objects_compose() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = Trace::new();
        let boxed: Box<dyn TraceTranslator> = Box::new(Null);
        let out = boxed.translate(&t, &mut rng).unwrap();
        assert_eq!(out.log_weight, LogWeight::ONE);
        let by_ref: &dyn TraceTranslator = &Null;
        by_ref.translate(&t, &mut rng).unwrap();
    }
}
