//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! This workspace builds in environments with no crates-registry access,
//! so the external `criterion` dev-dependency is replaced by this
//! in-tree harness exposing the same surface the workspace's benches
//! use: [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`black_box`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: a short warm-up, then a fixed
//! time budget of timed iterations, reporting mean wall-clock time per
//! iteration. No statistics, plots, or baselines.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a value computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The top-level benchmark driver.
pub struct Criterion {
    warmup: Duration,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            warmup: Duration::from_millis(100),
            budget: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; this harness uses a fixed time
    /// budget rather than a target sample count, so the value is ignored.
    #[must_use]
    pub fn sample_size(self, _n: usize) -> Criterion {
        self
    }

    /// Sets the timed-iteration budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, budget: Duration) -> Criterion {
        self.budget = budget;
        self
    }

    /// Accepted for API compatibility; this harness has no command-line
    /// configuration.
    #[must_use]
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            warmup: self.warmup,
            budget: self.budget,
            report: None,
        };
        f(&mut bencher);
        bencher.print(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group, parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        self.criterion.bench_function(&full, |b| f(b, input));
        self
    }

    /// Runs one named benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group (no-op; for API compatibility).
    pub fn finish(self) {}
}

/// An identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id from a function name and a parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    warmup: Duration,
    budget: Duration,
    report: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `f`, running it repeatedly for the configured budget.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let warm_until = Instant::now() + self.warmup;
        let mut warm_iters: u64 = 0;
        while Instant::now() < warm_until {
            black_box(f());
            warm_iters += 1;
        }
        // Run batches sized from the warm-up rate to avoid calling
        // Instant::now around very fast closures.
        let batch = (warm_iters / 50).max(1);
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < self.budget {
            for _ in 0..batch {
                black_box(f());
            }
            iters += batch;
        }
        self.report = Some((iters, start.elapsed()));
    }

    fn print(&self, name: &str) {
        match self.report {
            Some((iters, total)) if iters > 0 => {
                let per = total.as_nanos() as f64 / iters as f64;
                println!("{name}: {per:.1} ns/iter ({iters} iterations)");
            }
            _ => println!("{name}: no measurement"),
        }
    }
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a benchmark binary from runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion {
            warmup: Duration::from_millis(1),
            budget: Duration::from_millis(5),
        };
        let mut ran = false;
        c.bench_function("noop", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1));
        });
        assert!(ran);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion {
            warmup: Duration::from_millis(1),
            budget: Duration::from_millis(2),
        };
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 3), &3, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
        assert_eq!(BenchmarkId::from_parameter(7).0, "7");
    }
}
