//! Building execution graphs: run a program once, recording every
//! statement instance, its dependencies, and its effects.
//!
//! Execution drives the compiled form of the program
//! ([`ppl::compile`]): the program is lowered once (cached globally) and
//! every build shares the artifact by `Arc`; the environment is a pooled
//! slot frame instead of a string-keyed map.

use std::collections::BTreeSet;
use std::sync::Arc;

use rand::RngCore;

use ppl::ast::Program;
use ppl::compile::{
    acquire_frame, compiled_for_shared, note_compiled_exec, CBlockId, CStmt, CompiledProgram,
    EvalFrame, ExprId,
};
use ppl::dist::Dist;
use ppl::{Address, ChoiceMap, PplError, Trace, Value};

use crate::eval::{ChoiceSource, ExprEval};
use crate::record::{
    BlockRecord, Effect, ExecGraph, ObsData, StmtId, StmtRecord, StoreBuilder, Summary,
};

/// Samples every choice from its prior.
struct PriorSource<'a> {
    rng: &'a mut dyn RngCore,
}

impl ChoiceSource for PriorSource<'_> {
    fn draw(&mut self, _addr: &Address, dist: &Dist) -> Result<Value, PplError> {
        Ok(dist.sample(self.rng))
    }
}

/// Replays choices from a map; errors on missing addresses.
struct ReplaySource<'a> {
    choices: &'a ChoiceMap,
}

impl ChoiceSource for ReplaySource<'_> {
    fn draw(&mut self, addr: &Address, _dist: &Dist) -> Result<Value, PplError> {
        self.choices
            .get(addr)
            .cloned()
            .ok_or_else(|| PplError::MissingChoice(addr.clone()))
    }
}

impl ExecGraph {
    /// Builds a graph by executing `program` under the prior.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn simulate(program: &Program, rng: &mut dyn RngCore) -> Result<ExecGraph, PplError> {
        Self::simulate_shared(&Arc::new(program.clone()), rng)
    }

    /// [`ExecGraph::simulate`] with a shared program handle: the graph
    /// aliases `program` instead of cloning it, so translator validation
    /// can succeed on `Arc` identity alone.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn simulate_shared(
        program: &Arc<Program>,
        rng: &mut dyn RngCore,
    ) -> Result<ExecGraph, PplError> {
        let mut source = PriorSource { rng };
        build(program, &mut source)
    }

    /// Builds a graph by replaying the given choices.
    ///
    /// # Errors
    ///
    /// Returns [`PplError::MissingChoice`] when the program needs a choice
    /// the map lacks, plus any evaluation errors.
    pub fn replay(program: &Program, choices: &ChoiceMap) -> Result<ExecGraph, PplError> {
        let mut source = ReplaySource { choices };
        build(&Arc::new(program.clone()), &mut source)
    }

    /// Builds a graph from an existing trace of the program.
    ///
    /// # Errors
    ///
    /// See [`ExecGraph::replay`].
    pub fn from_trace(program: &Program, trace: &Trace) -> Result<ExecGraph, PplError> {
        Self::replay(program, &trace.to_choice_map())
    }

    /// [`ExecGraph::from_trace`] with a shared program handle.
    ///
    /// # Errors
    ///
    /// See [`ExecGraph::replay`].
    pub fn from_trace_shared(program: &Arc<Program>, trace: &Trace) -> Result<ExecGraph, PplError> {
        let choices = trace.to_choice_map();
        let mut source = ReplaySource { choices: &choices };
        build(program, &mut source)
    }
}

fn build(program: &Arc<Program>, source: &mut dyn ChoiceSource) -> Result<ExecGraph, PplError> {
    let compiled = compiled_for_shared(program);
    note_compiled_exec();
    let mut frame = acquire_frame();
    frame.prepare(compiled.slot_count());
    let mut store = StoreBuilder::new();
    let mut builder = Builder {
        prog: &compiled,
        frame: &mut frame,
        source,
        store: &mut store,
    };
    let mut stmts = builder.exec_block(compiled.body())?;
    // The return expression is recorded as a trailing pseudo-leaf so that
    // any choices it makes are part of the graph.
    let mut ret_summary = Summary::default();
    let return_value = match compiled.ret() {
        Some(e) => {
            let v = builder.eval(e, &mut ret_summary)?;
            if !ret_summary.choices.is_empty() || !ret_summary.reads.is_empty() {
                stmts.push(builder.store.push_stmt(StmtRecord::Leaf {
                    summary: ret_summary,
                }));
            }
            v
        }
        None => Value::Int(0),
    };
    let root_block = BlockRecord::finalize(&store, stmts);
    let root = store.push_block(root_block);
    Ok(ExecGraph::assemble(
        Arc::clone(program),
        store.finish(),
        root,
        return_value,
    ))
}

struct Builder<'a> {
    prog: &'a CompiledProgram,
    frame: &'a mut EvalFrame,
    source: &'a mut dyn ChoiceSource,
    store: &'a mut StoreBuilder,
}

impl Builder<'_> {
    fn eval(&mut self, expr: ExprId, sum: &mut Summary) -> Result<Value, PplError> {
        let mut ev = ExprEval {
            prog: self.prog,
            frame: self.frame,
            source: self.source,
        };
        ev.eval(expr, sum)
    }

    fn exec_block(&mut self, block: CBlockId) -> Result<Vec<StmtId>, PplError> {
        let n = self.prog.block(block).stmts.len();
        let mut records = Vec::with_capacity(n);
        for i in 0..n {
            let sid = self.prog.block(block).stmts[i];
            let record = self.exec_stmt(sid)?;
            records.push(self.store.push_stmt(record));
        }
        Ok(records)
    }

    fn exec_stmt(&mut self, id: ppl::compile::CStmtId) -> Result<StmtRecord, PplError> {
        match self.prog.stmt(id) {
            CStmt::Skip => Ok(StmtRecord::Skip),
            CStmt::Assign { slot, name, expr } => {
                let (slot, name, expr) = (*slot, *name, *expr);
                let mut summary = Summary::default();
                let value = self.eval(expr, &mut summary)?;
                self.frame.bind(slot, value.clone(), false);
                summary.effects.push(Effect::Var(name, value));
                Ok(StmtRecord::Leaf { summary })
            }
            CStmt::AssignIndex {
                slot,
                name,
                index,
                expr,
            } => {
                let (slot, name, index, expr) = (*slot, *name, *index, *expr);
                let mut summary = Summary::default();
                let i = self.eval(index, &mut summary)?.as_int()?;
                let value = self.eval(expr, &mut summary)?;
                // Element assignment reads the array (it preserves the
                // other elements).
                summary.reads.insert(name);
                let s = self
                    .frame
                    .get_mut(slot)
                    .ok_or_else(|| PplError::UnboundVariable(name.to_string()))?;
                let items = s.value.as_array_mut()?;
                if i < 0 || i as usize >= items.len() {
                    return Err(PplError::IndexOutOfBounds {
                        index: i,
                        len: items.len(),
                    });
                }
                items[i as usize] = value.clone();
                summary.effects.push(Effect::Elem(name, i, value));
                Ok(StmtRecord::Leaf { summary })
            }
            CStmt::Observe { rand, value } => {
                let (rand, value_e) = (rand.clone(), *value);
                let mut summary = Summary::default();
                let dist = {
                    let mut ev = ExprEval {
                        prog: self.prog,
                        frame: self.frame,
                        source: self.source,
                    };
                    ev.build_dist(&rand.kind, &mut summary)?
                };
                let value = self.eval(value_e, &mut summary)?;
                let addr = self.frame.address_for(&rand.site);
                let log_prob = dist.log_prob(&value);
                summary.obs_score += log_prob;
                summary.observations.push((
                    addr,
                    ObsData {
                        value,
                        dist,
                        log_prob,
                    },
                ));
                Ok(StmtRecord::Leaf { summary })
            }
            CStmt::If {
                cond,
                then_b,
                else_b,
            } => {
                let (cond, then_b, else_b) = (*cond, *then_b, *else_b);
                let mut summary = Summary::default();
                let took_then = self.eval(cond, &mut summary)?.truthy()?;
                let branch = if took_then { then_b } else { else_b };
                let stmts = self.exec_block(branch)?;
                let body_block = BlockRecord::finalize(self.store, stmts);
                summary
                    .reads
                    .extend(body_block.summary.reads.iter().cloned());
                summary
                    .effects
                    .extend(body_block.summary.effects.iter().cloned());
                summary.obs_score += body_block.summary.obs_score;
                let body = self.store.push_block(body_block);
                Ok(StmtRecord::If {
                    took_then,
                    body,
                    summary,
                })
            }
            CStmt::For {
                slot,
                name,
                lo,
                hi,
                body,
            } => {
                let (slot, var_name, lo_e, hi_e, body) = (*slot, *name, *lo, *hi, *body);
                let mut summary = Summary::default();
                let lo = self.eval(lo_e, &mut summary)?.as_int()?;
                let hi = self.eval(hi_e, &mut summary)?.as_int()?;
                let mut iters = Vec::with_capacity((hi - lo).max(0) as usize);
                let mut written: BTreeSet<&'static str> = BTreeSet::new();
                written.insert(var_name);
                for i in lo..hi {
                    self.frame.bind(slot, Value::Int(i), false);
                    self.frame.push_loop(i);
                    let iter_result = self.exec_block(body);
                    self.frame.pop_loop();
                    let iter = BlockRecord::finalize(self.store, iter_result?);
                    // Def-before-use across iterations: a read satisfied
                    // by an earlier iteration's write is loop-internal.
                    summary.reads.extend(
                        iter.summary
                            .reads
                            .iter()
                            .filter(|r| !written.contains(*r))
                            .copied(),
                    );
                    summary.obs_score += iter.summary.obs_score;
                    for effect in &iter.summary.effects {
                        written.insert(effect.var_name());
                    }
                    iters.push(self.store.push_block(iter));
                }
                // Compress effects into one final snapshot per written
                // variable (O(1) each thanks to Arc-backed arrays).
                for name in &written {
                    if let Some(slot) = self.prog.slot_of(name) {
                        if let Some(s) = self.frame.get(slot) {
                            summary.effects.push(Effect::Var(name, s.value.clone()));
                        }
                    }
                }
                // The loop variable itself is loop-internal; reading it
                // within the body does not create an external dependency.
                summary.reads.remove(var_name);
                Ok(StmtRecord::For {
                    lo,
                    hi,
                    iters,
                    summary,
                })
            }
            CStmt::While { cond, body } => {
                let (cond_e, body) = (*cond, *body);
                let mut summary = Summary::default();
                let mut iters = Vec::new();
                let mut written: BTreeSet<&'static str> = BTreeSet::new();
                let mut i = 0_i64;
                loop {
                    self.frame.push_loop(i);
                    let mut cond_sum = Summary::default();
                    let continued = self.eval(cond_e, &mut cond_sum).and_then(|v| v.truthy());
                    let continued = match continued {
                        Ok(b) => b,
                        Err(e) => {
                            self.frame.pop_loop();
                            return Err(e);
                        }
                    };
                    summary.reads.extend(
                        cond_sum
                            .reads
                            .iter()
                            .filter(|r| !written.contains(*r))
                            .copied(),
                    );
                    summary.obs_score += cond_sum.obs_score;
                    if !continued {
                        self.frame.pop_loop();
                        iters.push(crate::record::WhileIter {
                            cond: cond_sum,
                            continued: false,
                            body: None,
                        });
                        break;
                    }
                    let body_result = self.exec_block(body);
                    self.frame.pop_loop();
                    let body_rec = BlockRecord::finalize(self.store, body_result?);
                    summary.reads.extend(
                        body_rec
                            .summary
                            .reads
                            .iter()
                            .filter(|r| !written.contains(*r))
                            .copied(),
                    );
                    summary.obs_score += body_rec.summary.obs_score;
                    for effect in &body_rec.summary.effects {
                        written.insert(effect.var_name());
                    }
                    iters.push(crate::record::WhileIter {
                        cond: cond_sum,
                        continued: true,
                        body: Some(self.store.push_block(body_rec)),
                    });
                    i += 1;
                    if i > 10_000_000 {
                        return Err(PplError::FuelExhausted { budget: 10_000_000 });
                    }
                }
                for name in &written {
                    if let Some(slot) = self.prog.slot_of(name) {
                        if let Some(s) = self.frame.get(slot) {
                            summary.effects.push(Effect::Var(name, s.value.clone()));
                        }
                    }
                }
                Ok(StmtRecord::While { iters, summary })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl::handlers::simulate;
    use ppl::parse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn graph_flattens_to_the_same_trace_as_the_interpreter() {
        let program = parse(
            "a = 1;
             b = flip(a / 3) @ b;
             if a < 2 { c = uniform(0, 5) @ c1; } else { c = uniform(6, 10) @ c2; }
             d = flip(b / 2) @ d;
             observe(flip(1 / 5) @ o == d);
             return c;",
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let reference = simulate(&program, &mut rng).unwrap();
        let graph = ExecGraph::from_trace(&program, &reference).unwrap();
        let flattened = graph.to_trace().unwrap();
        assert_eq!(flattened.to_choice_map(), reference.to_choice_map());
        assert!((flattened.score().log() - reference.score().log()).abs() < 1e-12);
        assert_eq!(flattened.return_value(), reference.return_value());
        assert!((graph.score().log() - reference.score().log()).abs() < 1e-12);
    }

    #[test]
    fn gmm_graph_records_loops() {
        let program = models::gmm::gmm_program(10.0, 20, 5);
        let mut rng = StdRng::seed_from_u64(2);
        let graph = ExecGraph::simulate(&program, &mut rng).unwrap();
        assert_eq!(graph.num_choices(), 5 + 2 * 20);
        let trace = graph.to_trace().unwrap();
        assert_eq!(trace.len(), 45);
        // Evaluation order: centers first, then pick/point interleaved.
        let order: Vec<&ppl::Address> = trace.choices().map(|(a, _)| a).collect();
        assert_eq!(order[0], &ppl::addr!["center", 0]);
        assert_eq!(order[5], &ppl::addr!["pick", 0]);
        assert_eq!(order[6], &ppl::addr!["point", 0]);
    }

    #[test]
    fn simulate_and_replay_agree() {
        let program = models::gmm::gmm_program(5.0, 7, 3);
        let mut rng = StdRng::seed_from_u64(3);
        let g1 = ExecGraph::simulate(&program, &mut rng).unwrap();
        let t1 = g1.to_trace().unwrap();
        let g2 = ExecGraph::from_trace(&program, &t1).unwrap();
        let t2 = g2.to_trace().unwrap();
        assert_eq!(t1.to_choice_map(), t2.to_choice_map());
        assert!((t1.score().log() - t2.score().log()).abs() < 1e-12);
    }

    #[test]
    fn while_graph_matches_interpreter() {
        let program = parse("n = 1; while flip(0.6) @ t { n = n + 1; } return n;").unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            let reference = simulate(&program, &mut rng).unwrap();
            let graph = ExecGraph::from_trace(&program, &reference).unwrap();
            let flattened = graph.to_trace().unwrap();
            assert_eq!(flattened.to_choice_map(), reference.to_choice_map());
            assert!((flattened.score().log() - reference.score().log()).abs() < 1e-12);
            assert_eq!(flattened.return_value(), reference.return_value());
        }
    }

    #[test]
    fn observations_recorded_with_scores() {
        let program = parse("observe(flip(0.25) @ o == 1); return 0;").unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let graph = ExecGraph::simulate(&program, &mut rng).unwrap();
        let obs = graph.observation(&ppl::addr!["o"]).unwrap();
        assert!((obs.log_prob.prob() - 0.25).abs() < 1e-12);
        assert!((graph.score().prob() - 0.25).abs() < 1e-12);
    }
}
