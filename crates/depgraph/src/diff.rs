//! Structural diff of two programs, and the derived correspondence.
//!
//! Section 6: "We generate a semantic correspondence automatically from a
//! program edit by assuming that random expressions that correspond
//! syntactically in the two programs also correspond semantically."
//!
//! Statements are aligned block-by-block with a weighted LCS; matched
//! statements are compared *modulo site labels* (two separately parsed
//! programs number their auto-generated sites independently), and random
//! expressions at matching structural positions yield site rules in the
//! [`Correspondence`].

use incremental::Correspondence;
use ppl::ast::{Block, Expr, Program, RandExpr, RandKind, Stmt};

/// How a matched statement pair differs.
#[derive(Debug, Clone)]
pub enum StmtDiff {
    /// Deep-equal modulo site labels: skippable when no inputs changed.
    Unchanged,
    /// Same shape (kind and target), but sub-expressions differ: must be
    /// re-executed.
    Edited,
    /// Matched `if` statements; branches diff recursively.
    IfDiff {
        /// Whether the conditions differ (modulo sites).
        cond_changed: bool,
        /// Diff of the then-branches.
        then_diff: Box<BlockDiff>,
        /// Diff of the else-branches.
        else_diff: Box<BlockDiff>,
    },
    /// Matched `for` statements; the body diffs recursively.
    ForDiff {
        /// Whether the bound expressions differ (modulo sites).
        bounds_changed: bool,
        /// Diff of the bodies.
        body_diff: Box<BlockDiff>,
    },
    /// Matched `while` statements; the body diffs recursively.
    WhileDiff {
        /// Whether the conditions differ (modulo sites or in site labels).
        cond_changed: bool,
        /// Diff of the bodies.
        body_diff: Box<BlockDiff>,
    },
}

impl StmtDiff {
    /// Whether the whole subtree is unchanged (skippable when clean).
    pub fn is_unchanged(&self) -> bool {
        match self {
            StmtDiff::Unchanged => true,
            StmtDiff::Edited => false,
            StmtDiff::IfDiff {
                cond_changed,
                then_diff,
                else_diff,
            } => !cond_changed && then_diff.is_unchanged() && else_diff.is_unchanged(),
            StmtDiff::ForDiff {
                bounds_changed,
                body_diff,
            } => !bounds_changed && body_diff.is_unchanged(),
            StmtDiff::WhileDiff {
                cond_changed,
                body_diff,
            } => !cond_changed && body_diff.is_unchanged(),
        }
    }
}

/// One entry in a block's diff, in Q-program order (with removals
/// interleaved at their original position).
#[derive(Debug, Clone)]
pub enum DiffOp {
    /// A Q statement, possibly matched to a P statement.
    Stmt {
        /// Index into the Q block.
        q_index: usize,
        /// Index into the P block, when matched.
        p_index: Option<usize>,
        /// How the pair differs (always [`StmtDiff::Edited`]-equivalent
        /// semantics when unmatched — callers treat `p_index: None` as
        /// fresh execution).
        diff: StmtDiff,
    },
    /// A P statement with no counterpart in Q (deleted by the edit).
    RemovedP(usize),
}

/// The diff of two blocks.
#[derive(Debug, Clone, Default)]
pub struct BlockDiff {
    /// Operations in order.
    pub ops: Vec<DiffOp>,
}

impl BlockDiff {
    /// Whether the whole block is unchanged.
    pub fn is_unchanged(&self) -> bool {
        self.ops.iter().all(|op| match op {
            DiffOp::Stmt { p_index, diff, .. } => p_index.is_some() && diff.is_unchanged(),
            DiffOp::RemovedP(_) => false,
        })
    }
}

/// A program edit: the target program `Q`, the structural diff against
/// `P`, and the derived site correspondence (Q sites → P sites).
#[derive(Debug, Clone)]
pub struct ProgramEdit {
    /// The diff of the top-level blocks.
    pub diff: BlockDiff,
    /// The derived semantic correspondence.
    pub correspondence: Correspondence,
}

/// Diffs `p` against `q` and derives the correspondence.
pub fn diff_programs(p: &Program, q: &Program) -> ProgramEdit {
    let mut corr = Correspondence::new();
    let diff = diff_blocks(&p.body, &q.body, &mut corr);
    ProgramEdit {
        diff,
        correspondence: corr,
    }
}

/// Alignment score: higher is better; `None` means the pair must not be
/// matched.
fn match_score(p: &Stmt, q: &Stmt) -> Option<u32> {
    if stmt_eq_mod_sites(p, q) {
        return Some(3);
    }
    match (p, q) {
        (Stmt::Assign(a, _), Stmt::Assign(b, _)) if a == b => Some(2),
        (Stmt::AssignIndex(a, _, _), Stmt::AssignIndex(b, _, _)) if a == b => Some(2),
        (Stmt::If(..), Stmt::If(..)) => Some(2),
        (Stmt::While(..), Stmt::While(..)) => Some(2),
        (Stmt::For(a, ..), Stmt::For(b, ..)) if a == b => Some(2),
        (Stmt::Observe(..), Stmt::Observe(..)) => Some(2),
        (Stmt::Assign(..), Stmt::Assign(..)) => Some(1),
        _ => None,
    }
}

fn diff_blocks(p: &Block, q: &Block, corr: &mut Correspondence) -> BlockDiff {
    let ps = p.stmts();
    let qs = q.stmts();
    // Weighted LCS (Needleman–Wunsch with zero gap penalty).
    let n = ps.len();
    let m = qs.len();
    let mut table = vec![vec![0u32; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            let skip = table[i + 1][j].max(table[i][j + 1]);
            let matched = match_score(&ps[i], &qs[j]).map(|s| s + table[i + 1][j + 1]);
            table[i][j] = matched.map_or(skip, |mv| mv.max(skip));
        }
    }
    // Trace back the alignment.
    let mut ops = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < n && j < m {
        let matched = match_score(&ps[i], &qs[j]).map(|s| s + table[i + 1][j + 1]);
        if matched == Some(table[i][j]) && matched.is_some() {
            let diff = diff_stmt(&ps[i], &qs[j], corr);
            ops.push(DiffOp::Stmt {
                q_index: j,
                p_index: Some(i),
                diff,
            });
            i += 1;
            j += 1;
        } else if table[i + 1][j] >= table[i][j + 1] {
            ops.push(DiffOp::RemovedP(i));
            i += 1;
        } else {
            ops.push(DiffOp::Stmt {
                q_index: j,
                p_index: None,
                diff: StmtDiff::Edited,
            });
            j += 1;
        }
    }
    while i < n {
        ops.push(DiffOp::RemovedP(i));
        i += 1;
    }
    while j < m {
        ops.push(DiffOp::Stmt {
            q_index: j,
            p_index: None,
            diff: StmtDiff::Edited,
        });
        j += 1;
    }
    BlockDiff { ops }
}

fn diff_stmt(p: &Stmt, q: &Stmt, corr: &mut Correspondence) -> StmtDiff {
    match (p, q) {
        (Stmt::If(pc, pt, pe), Stmt::If(qc, qt, qe)) => {
            pair_expr_sites(pc, qc, corr);
            StmtDiff::IfDiff {
                cond_changed: !expr_eq_mod_sites(pc, qc) || !exprs_sites_equal(pc, qc),
                then_diff: Box::new(diff_blocks(pt, qt, corr)),
                else_diff: Box::new(diff_blocks(pe, qe, corr)),
            }
        }
        (Stmt::While(pc, pb), Stmt::While(qc, qb)) => {
            pair_expr_sites(pc, qc, corr);
            StmtDiff::WhileDiff {
                cond_changed: !expr_eq_mod_sites(pc, qc) || !exprs_sites_equal(pc, qc),
                body_diff: Box::new(diff_blocks(pb, qb, corr)),
            }
        }
        (Stmt::For(_, plo, phi, pb), Stmt::For(_, qlo, qhi, qb)) => {
            pair_expr_sites(plo, qlo, corr);
            pair_expr_sites(phi, qhi, corr);
            StmtDiff::ForDiff {
                bounds_changed: !expr_eq_mod_sites(plo, qlo)
                    || !expr_eq_mod_sites(phi, qhi)
                    || !exprs_sites_equal(plo, qlo)
                    || !exprs_sites_equal(phi, qhi),
                body_diff: Box::new(diff_blocks(pb, qb, corr)),
            }
        }
        _ => {
            pair_stmt_sites(p, q, corr);
            // A statement is skippable only when it is deep-equal
            // *including* site labels: skipping shares the old record, so
            // its recorded addresses must be exactly what Q would
            // generate. (Auto-generated labels shift under insertions;
            // such statements are re-executed instead — the
            // correspondence still reuses their values, so the weight is
            // unaffected.)
            if stmt_eq_mod_sites(p, q) && stmt_sites_equal(p, q) {
                StmtDiff::Unchanged
            } else {
                StmtDiff::Edited
            }
        }
    }
}

/// Whether two expressions carry identical site labels (in identical
/// syntactic order).
fn exprs_sites_equal(a: &Expr, b: &Expr) -> bool {
    let mut sa = Vec::new();
    let mut sb = Vec::new();
    a.collect_sites(&mut sa);
    b.collect_sites(&mut sb);
    sa == sb
}

/// Whether two (leaf) statements carry identical site labels.
fn stmt_sites_equal(p: &Stmt, q: &Stmt) -> bool {
    fn stmt_sites(s: &Stmt, out: &mut Vec<ppl::ast::SiteId>) {
        match s {
            Stmt::Skip => {}
            Stmt::Assign(_, e) => e.collect_sites(out),
            Stmt::AssignIndex(_, i, e) => {
                i.collect_sites(out);
                e.collect_sites(out);
            }
            Stmt::Observe(r, e) => {
                out.push(r.site.clone());
                match &r.kind {
                    RandKind::Flip(p)
                    | RandKind::Poisson(p)
                    | RandKind::GeometricDist(p)
                    | RandKind::Exponential(p) => p.collect_sites(out),
                    RandKind::UniformInt(a, b)
                    | RandKind::UniformReal(a, b)
                    | RandKind::Gauss(a, b)
                    | RandKind::Beta(a, b) => {
                        a.collect_sites(out);
                        b.collect_sites(out);
                    }
                    RandKind::Categorical(ws) => {
                        for w in ws {
                            w.collect_sites(out);
                        }
                    }
                }
                e.collect_sites(out);
            }
            Stmt::If(c, t, e) => {
                c.collect_sites(out);
                for s in t.stmts().iter().chain(e.stmts()) {
                    stmt_sites(s, out);
                }
            }
            Stmt::While(c, b) => {
                c.collect_sites(out);
                for s in b.stmts() {
                    stmt_sites(s, out);
                }
            }
            Stmt::For(_, lo, hi, b) => {
                lo.collect_sites(out);
                hi.collect_sites(out);
                for s in b.stmts() {
                    stmt_sites(s, out);
                }
            }
        }
    }
    let mut sp = Vec::new();
    let mut sq = Vec::new();
    stmt_sites(p, &mut sp);
    stmt_sites(q, &mut sq);
    sp == sq
}

/// Deep statement equality ignoring site labels.
pub fn stmt_eq_mod_sites(p: &Stmt, q: &Stmt) -> bool {
    match (p, q) {
        (Stmt::Skip, Stmt::Skip) => true,
        (Stmt::Assign(a, e1), Stmt::Assign(b, e2)) => a == b && expr_eq_mod_sites(e1, e2),
        (Stmt::AssignIndex(a, i1, e1), Stmt::AssignIndex(b, i2, e2)) => {
            a == b && expr_eq_mod_sites(i1, i2) && expr_eq_mod_sites(e1, e2)
        }
        (Stmt::If(c1, t1, e1), Stmt::If(c2, t2, e2)) => {
            expr_eq_mod_sites(c1, c2) && block_eq_mod_sites(t1, t2) && block_eq_mod_sites(e1, e2)
        }
        (Stmt::While(c1, b1), Stmt::While(c2, b2)) => {
            expr_eq_mod_sites(c1, c2) && block_eq_mod_sites(b1, b2)
        }
        (Stmt::For(v1, l1, h1, b1), Stmt::For(v2, l2, h2, b2)) => {
            v1 == v2
                && expr_eq_mod_sites(l1, l2)
                && expr_eq_mod_sites(h1, h2)
                && block_eq_mod_sites(b1, b2)
        }
        (Stmt::Observe(r1, e1), Stmt::Observe(r2, e2)) => {
            rand_eq_mod_sites(r1, r2) && expr_eq_mod_sites(e1, e2)
        }
        _ => false,
    }
}

fn block_eq_mod_sites(a: &Block, b: &Block) -> bool {
    a.stmts().len() == b.stmts().len()
        && a.stmts()
            .iter()
            .zip(b.stmts())
            .all(|(x, y)| stmt_eq_mod_sites(x, y))
}

/// Deep expression equality ignoring site labels.
pub fn expr_eq_mod_sites(a: &Expr, b: &Expr) -> bool {
    match (a, b) {
        (Expr::Const(x), Expr::Const(y)) => x == y,
        (Expr::Var(x), Expr::Var(y)) => x == y,
        (Expr::Unary(o1, e1), Expr::Unary(o2, e2)) => o1 == o2 && expr_eq_mod_sites(e1, e2),
        (Expr::Binary(o1, a1, b1), Expr::Binary(o2, a2, b2)) => {
            o1 == o2 && expr_eq_mod_sites(a1, a2) && expr_eq_mod_sites(b1, b2)
        }
        (Expr::Index(a1, b1), Expr::Index(a2, b2))
        | (Expr::ArrayInit(a1, b1), Expr::ArrayInit(a2, b2)) => {
            expr_eq_mod_sites(a1, a2) && expr_eq_mod_sites(b1, b2)
        }
        (Expr::Call(f1, as1), Expr::Call(f2, as2)) => {
            f1 == f2
                && as1.len() == as2.len()
                && as1.iter().zip(as2).all(|(x, y)| expr_eq_mod_sites(x, y))
        }
        (Expr::Ternary(c1, t1, e1), Expr::Ternary(c2, t2, e2)) => {
            expr_eq_mod_sites(c1, c2) && expr_eq_mod_sites(t1, t2) && expr_eq_mod_sites(e1, e2)
        }
        (Expr::Random(r1), Expr::Random(r2)) => rand_eq_mod_sites(r1, r2),
        _ => false,
    }
}

fn rand_eq_mod_sites(a: &RandExpr, b: &RandExpr) -> bool {
    match (&a.kind, &b.kind) {
        (RandKind::Flip(p1), RandKind::Flip(p2))
        | (RandKind::Poisson(p1), RandKind::Poisson(p2))
        | (RandKind::GeometricDist(p1), RandKind::GeometricDist(p2))
        | (RandKind::Exponential(p1), RandKind::Exponential(p2)) => expr_eq_mod_sites(p1, p2),
        (RandKind::UniformInt(a1, b1), RandKind::UniformInt(a2, b2))
        | (RandKind::UniformReal(a1, b1), RandKind::UniformReal(a2, b2))
        | (RandKind::Gauss(a1, b1), RandKind::Gauss(a2, b2))
        | (RandKind::Beta(a1, b1), RandKind::Beta(a2, b2)) => {
            expr_eq_mod_sites(a1, a2) && expr_eq_mod_sites(b1, b2)
        }
        (RandKind::Categorical(w1), RandKind::Categorical(w2)) => {
            w1.len() == w2.len() && w1.iter().zip(w2).all(|(x, y)| expr_eq_mod_sites(x, y))
        }
        _ => false,
    }
}

/// Pairs the random-expression sites of two *matched* statements.
fn pair_stmt_sites(p: &Stmt, q: &Stmt, corr: &mut Correspondence) {
    match (p, q) {
        (Stmt::Assign(_, e1), Stmt::Assign(_, e2)) => pair_expr_sites(e1, e2, corr),
        (Stmt::AssignIndex(_, i1, e1), Stmt::AssignIndex(_, i2, e2)) => {
            pair_expr_sites(i1, i2, corr);
            pair_expr_sites(e1, e2, corr);
        }
        (Stmt::Observe(r1, e1), Stmt::Observe(r2, e2)) => {
            pair_rand_sites(r1, r2, corr);
            pair_expr_sites(e1, e2, corr);
        }
        _ => {}
    }
}

/// Walks two expressions in parallel; random expressions of the same
/// family at the same structural position are put in correspondence.
fn pair_expr_sites(p: &Expr, q: &Expr, corr: &mut Correspondence) {
    match (p, q) {
        (Expr::Unary(_, e1), Expr::Unary(_, e2)) => pair_expr_sites(e1, e2, corr),
        (Expr::Binary(_, a1, b1), Expr::Binary(_, a2, b2))
        | (Expr::Index(a1, b1), Expr::Index(a2, b2))
        | (Expr::ArrayInit(a1, b1), Expr::ArrayInit(a2, b2)) => {
            pair_expr_sites(a1, a2, corr);
            pair_expr_sites(b1, b2, corr);
        }
        (Expr::Call(_, as1), Expr::Call(_, as2)) => {
            for (x, y) in as1.iter().zip(as2) {
                pair_expr_sites(x, y, corr);
            }
        }
        (Expr::Ternary(c1, t1, e1), Expr::Ternary(c2, t2, e2)) => {
            pair_expr_sites(c1, c2, corr);
            pair_expr_sites(t1, t2, corr);
            pair_expr_sites(e1, e2, corr);
        }
        (Expr::Random(r1), Expr::Random(r2)) => pair_rand_sites(r1, r2, corr),
        _ => {}
    }
}

fn pair_rand_sites(p: &RandExpr, q: &RandExpr, corr: &mut Correspondence) {
    if p.kind.family() != q.kind.family() {
        return;
    }
    // Recurse into parameters first (nested random expressions).
    match (&p.kind, &q.kind) {
        (RandKind::Flip(a), RandKind::Flip(b))
        | (RandKind::Poisson(a), RandKind::Poisson(b))
        | (RandKind::GeometricDist(a), RandKind::GeometricDist(b))
        | (RandKind::Exponential(a), RandKind::Exponential(b)) => pair_expr_sites(a, b, corr),
        (RandKind::UniformInt(a1, b1), RandKind::UniformInt(a2, b2))
        | (RandKind::UniformReal(a1, b1), RandKind::UniformReal(a2, b2))
        | (RandKind::Gauss(a1, b1), RandKind::Gauss(a2, b2))
        | (RandKind::Beta(a1, b1), RandKind::Beta(a2, b2)) => {
            pair_expr_sites(a1, a2, corr);
            pair_expr_sites(b1, b2, corr);
        }
        (RandKind::Categorical(w1), RandKind::Categorical(w2)) => {
            for (x, y) in w1.iter().zip(w2) {
                pair_expr_sites(x, y, corr);
            }
        }
        _ => {}
    }
    // Best effort: duplicate labels (same site reused) are skipped rather
    // than erroring — the translator then treats the choice as fresh.
    let _ = corr.add_site_rule(q.site.as_str(), p.site.as_str());
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl::parse;

    #[test]
    fn identical_programs_diff_as_unchanged() {
        let p = parse("x = flip(0.5); y = x + 1; return y;").unwrap();
        let q = parse("x = flip(0.5); y = x + 1; return y;").unwrap();
        let edit = diff_programs(&p, &q);
        assert!(edit.diff.is_unchanged());
        // flip#1 of Q maps to flip#1 of P.
        assert_eq!(
            edit.correspondence.lookup(&ppl::addr!["flip#1"]),
            Some(ppl::addr!["flip#1"])
        );
    }

    #[test]
    fn constant_edit_is_edited_statement() {
        let p = parse("a = 1; b = flip(a / 3); return b;").unwrap();
        let q = parse("a = 2; b = flip(a / 3); return b;").unwrap();
        let edit = diff_programs(&p, &q);
        assert!(!edit.diff.is_unchanged());
        let kinds: Vec<bool> = edit
            .diff
            .ops
            .iter()
            .map(|op| match op {
                DiffOp::Stmt { diff, p_index, .. } => p_index.is_some() && diff.is_unchanged(),
                DiffOp::RemovedP(_) => false,
            })
            .collect();
        assert_eq!(kinds, [false, true]); // a=... edited, b=... unchanged
                                          // The flip still corresponds.
        assert!(edit.correspondence.maps(&ppl::addr!["flip#1"]));
    }

    #[test]
    fn insertion_shifts_auto_labels_but_still_corresponds() {
        // Q inserts a flip before the shared one: the shared flip is
        // flip#1 in P but flip#2 in Q.
        let p = parse("x = flip(0.5); return x;").unwrap();
        let q = parse("e = flip(0.1); x = flip(0.5); return x;").unwrap();
        let edit = diff_programs(&p, &q);
        assert_eq!(
            edit.correspondence.lookup(&ppl::addr!["flip#2"]),
            Some(ppl::addr!["flip#1"])
        );
        assert!(!edit.correspondence.maps(&ppl::addr!["flip#1"]));
    }

    #[test]
    fn deletion_produces_removed_op() {
        let p = parse("a = flip(0.5); b = flip(0.5); return b;").unwrap();
        let q = parse("b = flip(0.5); return b;").unwrap();
        let edit = diff_programs(&p, &q);
        let removed: Vec<usize> = edit
            .diff
            .ops
            .iter()
            .filter_map(|op| match op {
                DiffOp::RemovedP(i) => Some(*i),
                _ => None,
            })
            .collect();
        assert_eq!(removed, [0]);
    }

    #[test]
    fn if_and_for_diff_recursively() {
        let p = parse(
            "k = 2; xs = array(k, 0);
             for i in [0..k) { xs[i] = gauss(0.0, 1.0); }
             if k < 3 { y = 1; } else { y = 2; }
             return y;",
        )
        .unwrap();
        let q = parse(
            "k = 2; xs = array(k, 0);
             for i in [0..k) { xs[i] = gauss(0.0, 5.0); }
             if k < 3 { y = 1; } else { y = 2; }
             return y;",
        )
        .unwrap();
        let edit = diff_programs(&p, &q);
        let mut saw_for = false;
        for op in &edit.diff.ops {
            if let DiffOp::Stmt {
                diff:
                    StmtDiff::ForDiff {
                        bounds_changed,
                        body_diff,
                    },
                ..
            } = op
            {
                saw_for = true;
                assert!(!bounds_changed);
                assert!(!body_diff.is_unchanged());
            }
        }
        assert!(saw_for);
        // The gauss inside the loop still corresponds (it moved from
        // parameter 1.0 to 5.0 but keeps its structural position).
        assert!(edit.correspondence.maps(&ppl::addr!["gauss#1", 0]));
    }

    #[test]
    fn different_families_do_not_correspond() {
        // Fig. 5 moral: flip and uniform never pair up.
        let p = parse("c = flip(0.5); return c;").unwrap();
        let q = parse("c = uniform(1, 6); return c;").unwrap();
        let edit = diff_programs(&p, &q);
        assert!(!edit.correspondence.maps(&ppl::addr!["uniform#1"]));
    }

    #[test]
    fn annotated_sites_survive_the_diff() {
        let p = parse("x = flip(0.5) @ keep; return x;").unwrap();
        let q = parse("x = flip(0.25) @ kept; return x;").unwrap();
        let edit = diff_programs(&p, &q);
        assert_eq!(
            edit.correspondence.lookup(&ppl::addr!["kept"]),
            Some(ppl::addr!["keep"])
        );
    }
}
