//! Shared expression evaluator for the dependency-graph runtime.
//!
//! Mirrors the semantics of `ppl::interp` exactly (operator semantics are
//! reused from there), but additionally records into a [`Summary`] the
//! variables read and the random choices made — the dependency
//! information change propagation runs on.
//!
//! Since the compiled-evaluation rework, this evaluator walks a
//! [`CompiledProgram`]'s flat expression arena instead of the AST:
//! variables are already resolved to dense frame slots ([`EvalFrame`]),
//! constants are pre-folded (folded subtrees are effect- and read-free,
//! so folding never changes a [`Summary`]), and builtin arity is
//! pre-checked. The frame doubles as the propagation environment — each
//! slot carries the value plus the dirty bit change propagation tracks.

use ppl::compile::{bad_arity, CRand, CRandKind, CompiledProgram, EvalFrame, ExprId};
use ppl::dist::Dist;
use ppl::interp::{apply_binary, apply_builtin, apply_unary};
use ppl::{Address, PplError, Value};

use crate::record::{ChoiceData, Effect, Summary};

/// Where choice values come from: prior sampling (graph building), replay
/// (rebuilding a graph from a trace), or correspondence reuse (change
/// propagation).
pub(crate) trait ChoiceSource {
    fn draw(&mut self, addr: &Address, dist: &Dist) -> Result<Value, PplError>;
}

/// Evaluates compiled expressions against a slot frame and a choice
/// source, recording reads and choices into summaries.
pub(crate) struct ExprEval<'a> {
    pub prog: &'a CompiledProgram,
    pub frame: &'a mut EvalFrame,
    pub source: &'a mut dyn ChoiceSource,
}

impl ExprEval<'_> {
    pub fn address_for(&self, rand: &CRand) -> Address {
        self.frame.address_for(&rand.site)
    }

    pub fn eval(&mut self, id: ExprId, sum: &mut Summary) -> Result<Value, PplError> {
        use ppl::compile::CExpr;
        match self.prog.expr(id) {
            CExpr::Const { value, .. } => Ok(value.clone()),
            CExpr::Var { slot, name } => {
                sum.reads.insert(name);
                self.frame
                    .get(*slot)
                    .map(|s| s.value.clone())
                    .ok_or_else(|| PplError::UnboundVariable((*name).to_string()))
            }
            CExpr::Unary(op, e) => {
                let v = self.eval(*e, sum)?;
                apply_unary(*op, &v)
            }
            CExpr::Binary(op, a, b) => {
                let (a, b) = (*a, *b);
                let va = self.eval(a, sum)?;
                let vb = self.eval(b, sum)?;
                apply_binary(*op, &va, &vb)
            }
            CExpr::Index(arr, idx) => {
                let (arr, idx) = (*arr, *idx);
                let a = self.eval(arr, sum)?;
                let i = self.eval(idx, sum)?.as_int()?;
                let items = a.as_array()?;
                if i < 0 || i as usize >= items.len() {
                    return Err(PplError::IndexOutOfBounds {
                        index: i,
                        len: items.len(),
                    });
                }
                Ok(items[i as usize].clone())
            }
            CExpr::ArrayInit(n, init) => {
                let (n, init) = (*n, *init);
                let n = self.eval(n, sum)?.as_int()?;
                if n < 0 {
                    return Err(PplError::Other(format!("array length is negative: {n}")));
                }
                let init = self.eval(init, sum)?;
                Ok(Value::array(vec![init; n as usize]))
            }
            CExpr::Call { builtin, args } => {
                let (builtin, args) = (*builtin, *args);
                // Arity was verified at compile time and is at most 2:
                // evaluate into fixed scratch, no per-eval allocation.
                let mut vals: [Value; 2] = [Value::Int(0), Value::Int(0)];
                let n = args.len();
                for (k, val) in vals.iter_mut().enumerate().take(n) {
                    let arg = self.prog.args(args)[k];
                    *val = self.eval(arg, sum)?;
                }
                apply_builtin(builtin, &vals[..n])
            }
            CExpr::CallBadArity { builtin, got } => Err(bad_arity(*builtin, *got)),
            CExpr::Ternary(c, t, e) => {
                let (c, t, e) = (*c, *t, *e);
                if self.eval(c, sum)?.truthy()? {
                    self.eval(t, sum)
                } else {
                    self.eval(e, sum)
                }
            }
            CExpr::Random(rand) => {
                let rand = rand.clone();
                let dist = self.build_dist(&rand.kind, sum)?;
                let addr = self.address_for(&rand);
                let value = self.source.draw(&addr, &dist)?;
                let log_prob = dist.log_prob(&value);
                sum.choices.push((
                    addr,
                    ChoiceData {
                        value: value.clone(),
                        dist,
                        log_prob,
                    },
                ));
                Ok(value)
            }
        }
    }

    pub fn build_dist(&mut self, kind: &CRandKind, sum: &mut Summary) -> Result<Dist, PplError> {
        match kind {
            CRandKind::Flip(p) => {
                let p = self.eval(*p, sum)?.as_real()?;
                Dist::try_flip(p)
            }
            CRandKind::UniformInt(lo, hi) => {
                let (lo, hi) = (*lo, *hi);
                let lo = self.eval(lo, sum)?.as_int()?;
                let hi = self.eval(hi, sum)?.as_int()?;
                Dist::try_uniform_int(lo, hi)
            }
            CRandKind::UniformReal(lo, hi) => {
                let (lo, hi) = (*lo, *hi);
                let lo = self.eval(lo, sum)?.as_real()?;
                let hi = self.eval(hi, sum)?.as_real()?;
                Dist::try_uniform_real(lo, hi)
            }
            CRandKind::Gauss(mean, std) => {
                let (mean, std) = (*mean, *std);
                let mean = self.eval(mean, sum)?.as_real()?;
                let std = self.eval(std, sum)?.as_real()?;
                Dist::try_normal(mean, std)
            }
            CRandKind::Categorical(ws) => {
                let ws = *ws;
                let mut probs = Vec::with_capacity(ws.len());
                for k in 0..ws.len() {
                    let w = self.prog.args(ws)[k];
                    probs.push(self.eval(w, sum)?.as_real()?);
                }
                Dist::try_categorical(&probs)
            }
            CRandKind::Poisson(l) => {
                let l = self.eval(*l, sum)?.as_real()?;
                Dist::try_poisson(l)
            }
            CRandKind::GeometricDist(p) => {
                let p = self.eval(*p, sum)?.as_real()?;
                Dist::try_geometric(p)
            }
            CRandKind::Beta(a, b) => {
                let (a, b) = (*a, *b);
                let a = self.eval(a, sum)?.as_real()?;
                let b = self.eval(b, sum)?.as_real()?;
                Dist::try_beta(a, b)
            }
            CRandKind::Exponential(r) => {
                let r = self.eval(*r, sum)?.as_real()?;
                Dist::try_exponential(r)
            }
        }
    }
}

/// Replays recorded effects into the frame, marking every written slot
/// with the given dirtiness. Used when an unchanged record is skipped
/// (`dirty = false`: the skipped subtree wrote exactly what it wrote
/// before) and when an old branch's state must be reconstructed.
pub(crate) fn apply_effects(
    prog: &CompiledProgram,
    frame: &mut EvalFrame,
    effects: &[Effect],
    dirty: bool,
) -> Result<(), PplError> {
    for effect in effects {
        match effect {
            Effect::Var(name, value) => {
                let slot = prog
                    .slot_of(name)
                    .expect("pair-compiled slot table covers every old-program effect");
                frame.bind(slot, value.clone(), dirty);
            }
            Effect::Elem(name, i, value) => {
                let slot = prog
                    .slot_of(name)
                    .expect("pair-compiled slot table covers every old-program effect");
                let s = frame
                    .get_mut(slot)
                    .ok_or_else(|| PplError::UnboundVariable((*name).to_string()))?;
                let items = s.value.as_array_mut()?;
                if *i < 0 || *i as usize >= items.len() {
                    return Err(PplError::IndexOutOfBounds {
                        index: *i,
                        len: items.len(),
                    });
                }
                items[*i as usize] = value.clone();
                s.dirty = s.dirty || dirty;
            }
        }
    }
    Ok(())
}

/// Whether any of the named reads is (possibly) dirty. A name with no
/// slot or no binding is conservatively dirty.
pub(crate) fn any_dirty<'a>(
    prog: &CompiledProgram,
    frame: &EvalFrame,
    mut reads: impl Iterator<Item = &'a str>,
) -> bool {
    reads.any(|name| match prog.slot_of(name) {
        Some(slot) => frame.get(slot).map(|s| s.dirty).unwrap_or(true),
        None => true,
    })
}
