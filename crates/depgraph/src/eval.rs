//! Shared expression evaluator for the dependency-graph runtime.
//!
//! Mirrors the semantics of `ppl::interp` exactly (operator semantics are
//! reused from there), but additionally records into a [`Summary`] the
//! variables read and the random choices made — the dependency
//! information change propagation runs on.

use std::collections::HashMap;

use ppl::ast::{Expr, RandExpr, RandKind};
use ppl::dist::Dist;
use ppl::interp::{apply_binary, apply_builtin, apply_unary};
use ppl::{Address, PplError, Value};

use crate::record::{ChoiceData, Summary};

/// An environment slot: the value plus whether it (possibly) differs from
/// the corresponding old execution.
#[derive(Debug, Clone)]
pub(crate) struct Slot {
    pub value: Value,
    pub dirty: bool,
}

/// Variable environment.
pub(crate) type Env = HashMap<&'static str, Slot>;

/// Where choice values come from: prior sampling (graph building), replay
/// (rebuilding a graph from a trace), or correspondence reuse (change
/// propagation).
pub(crate) trait ChoiceSource {
    fn draw(&mut self, addr: &Address, dist: &Dist) -> Result<Value, PplError>;
}

/// Evaluates expressions against an environment and a choice source,
/// recording reads and choices into summaries.
pub(crate) struct ExprEval<'a> {
    pub env: &'a mut Env,
    pub loops: &'a mut Vec<i64>,
    pub source: &'a mut dyn ChoiceSource,
}

impl ExprEval<'_> {
    pub fn address_for(&self, rand: &RandExpr) -> Address {
        // Reuse the site's existing `Arc<str>` (refcount bump) instead of
        // allocating a fresh one per visit.
        let mut addr = Address::from_components([std::sync::Arc::clone(&rand.site.0).into()]);
        for &i in self.loops.iter() {
            addr.push(i);
        }
        addr
    }

    pub fn eval(&mut self, expr: &Expr, sum: &mut Summary) -> Result<Value, PplError> {
        match expr {
            Expr::Const(v) => Ok(v.clone()),
            Expr::Var(name) => {
                sum.reads.insert(crate::record::intern_name(name));
                self.env
                    .get(name.as_str())
                    .map(|slot| slot.value.clone())
                    .ok_or_else(|| PplError::UnboundVariable(name.clone()))
            }
            Expr::Unary(op, e) => {
                let v = self.eval(e, sum)?;
                apply_unary(*op, &v)
            }
            Expr::Binary(op, a, b) => {
                let va = self.eval(a, sum)?;
                let vb = self.eval(b, sum)?;
                apply_binary(*op, &va, &vb)
            }
            Expr::Index(arr, idx) => {
                let a = self.eval(arr, sum)?;
                let i = self.eval(idx, sum)?.as_int()?;
                let items = a.as_array()?;
                if i < 0 || i as usize >= items.len() {
                    return Err(PplError::IndexOutOfBounds {
                        index: i,
                        len: items.len(),
                    });
                }
                Ok(items[i as usize].clone())
            }
            Expr::ArrayInit(n, init) => {
                let n = self.eval(n, sum)?.as_int()?;
                if n < 0 {
                    return Err(PplError::Other(format!("array length is negative: {n}")));
                }
                let init = self.eval(init, sum)?;
                Ok(Value::array(vec![init; n as usize]))
            }
            Expr::Call(builtin, args) => {
                if args.len() != builtin.arity() {
                    return Err(PplError::Other(format!(
                        "{} expects {} argument(s), got {}",
                        builtin.name(),
                        builtin.arity(),
                        args.len()
                    )));
                }
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, sum)?);
                }
                apply_builtin(*builtin, &vals)
            }
            Expr::Ternary(c, t, e) => {
                if self.eval(c, sum)?.truthy()? {
                    self.eval(t, sum)
                } else {
                    self.eval(e, sum)
                }
            }
            Expr::Random(rand) => {
                let dist = self.build_dist(&rand.kind, sum)?;
                let addr = self.address_for(rand);
                let value = self.source.draw(&addr, &dist)?;
                let log_prob = dist.log_prob(&value);
                sum.choices.push((
                    addr,
                    ChoiceData {
                        value: value.clone(),
                        dist,
                        log_prob,
                    },
                ));
                Ok(value)
            }
        }
    }

    pub fn build_dist(&mut self, kind: &RandKind, sum: &mut Summary) -> Result<Dist, PplError> {
        match kind {
            RandKind::Flip(p) => {
                let p = self.eval(p, sum)?.as_real()?;
                Dist::try_flip(p)
            }
            RandKind::UniformInt(lo, hi) => {
                let lo = self.eval(lo, sum)?.as_int()?;
                let hi = self.eval(hi, sum)?.as_int()?;
                Dist::try_uniform_int(lo, hi)
            }
            RandKind::UniformReal(lo, hi) => {
                let lo = self.eval(lo, sum)?.as_real()?;
                let hi = self.eval(hi, sum)?.as_real()?;
                Dist::try_uniform_real(lo, hi)
            }
            RandKind::Gauss(mean, std) => {
                let mean = self.eval(mean, sum)?.as_real()?;
                let std = self.eval(std, sum)?.as_real()?;
                Dist::try_normal(mean, std)
            }
            RandKind::Categorical(ws) => {
                let mut probs = Vec::with_capacity(ws.len());
                for w in ws {
                    probs.push(self.eval(w, sum)?.as_real()?);
                }
                Dist::try_categorical(&probs)
            }
            RandKind::Poisson(l) => {
                let l = self.eval(l, sum)?.as_real()?;
                Dist::try_poisson(l)
            }
            RandKind::GeometricDist(p) => {
                let p = self.eval(p, sum)?.as_real()?;
                Dist::try_geometric(p)
            }
            RandKind::Beta(a, b) => {
                let a = self.eval(a, sum)?.as_real()?;
                let b = self.eval(b, sum)?.as_real()?;
                Dist::try_beta(a, b)
            }
            RandKind::Exponential(r) => {
                let r = self.eval(r, sum)?.as_real()?;
                Dist::try_exponential(r)
            }
        }
    }
}
