//! Static diff-impact slicing: from a structural diff to a
//! [`ChangeSeed`] and an over-approximate [`ImpactSet`].
//!
//! [`ppl::analysis`] owns the generic machinery (effect inference and the
//! impact fixpoint over an abstract change seed); this module supplies
//! the missing link — walking a [`ProgramEdit`]'s [`BlockDiff`] in
//! lockstep with the new program's AST and the old program's AST to
//! classify every new-program statement ([`ChangeKind`]) and collect the
//! old-program writes that go stale (removed or replaced statements whose
//! final values the propagation runtime re-derives as dirty).
//!
//! The derived [`ImpactSet`] is what [`crate::plan::StagePlan`] bakes
//! into per-statement `static_skip` decisions and what the
//! `--verify-slices` oracle checks dynamic visits against.

use ppl::analysis::{
    impact, infer_effects, stmt_effects, ChangeKind, ChangeSeed, ImpactSet, ProgramEffects,
};
use ppl::ast::{Block, Program, Stmt};

use crate::diff::{BlockDiff, DiffOp, ProgramEdit, StmtDiff};

/// Classifies every statement of `q` under the edit `p → q` and collects
/// the stale old-program writes, producing the seed for
/// [`ppl::analysis::impact`]. `effects` must be [`infer_effects`]`(q)`.
pub fn change_seed(
    q: &Program,
    p: &Program,
    edit: &ProgramEdit,
    effects: &ProgramEffects,
) -> ChangeSeed {
    let mut seed = ChangeSeed::identity(effects.len());
    walk_block(&q.body, 0, &p.body, &edit.diff, effects, &mut seed);
    seed
}

/// Convenience entry: effect inference + seed derivation + impact
/// fixpoint for the edit `p → q`.
pub fn impact_of_edit(q: &Program, p: &Program, edit: &ProgramEdit) -> (ProgramEffects, ImpactSet) {
    let effects = infer_effects(q);
    let seed = change_seed(q, p, edit, &effects);
    let set = impact(&effects, &seed);
    (effects, set)
}

/// Marks the whole pre-order subtree rooted at `i` as [`ChangeKind::Changed`].
fn mark_subtree_changed(effects: &ProgramEffects, i: usize, seed: &mut ChangeSeed) {
    for kind in &mut seed.kinds[i..effects.stmts[i].end] {
        *kind = ChangeKind::Changed;
    }
}

/// Adds the (transitive) writes of an old-program statement to the stale
/// set: the runtime reconciles its recorded final values as dirty when
/// the statement is removed or replaced.
fn stale_from(p_stmt: &Stmt, seed: &mut ChangeSeed) {
    seed.stale_writes.extend(stmt_effects(p_stmt).writes);
}

fn walk_block(
    q_block: &Block,
    start: usize,
    p_block: &Block,
    diff: &BlockDiff,
    effects: &ProgramEffects,
    seed: &mut ChangeSeed,
) {
    let indices = effects.block_child_indices(start, q_block.stmts().len());
    for op in &diff.ops {
        match op {
            DiffOp::RemovedP(p_index) => {
                if let Some(p_stmt) = p_block.stmts().get(*p_index) {
                    stale_from(p_stmt, seed);
                }
            }
            DiffOp::Stmt {
                q_index,
                p_index,
                diff,
            } => {
                let i = indices[*q_index];
                let q_stmt = &q_block.stmts()[*q_index];
                let p_stmt = p_index.and_then(|pi| p_block.stmts().get(pi));
                walk_stmt(q_stmt, i, p_stmt, diff, effects, seed);
            }
        }
    }
}

fn walk_stmt(
    q_stmt: &Stmt,
    i: usize,
    p_stmt: Option<&Stmt>,
    diff: &StmtDiff,
    effects: &ProgramEffects,
    seed: &mut ChangeSeed,
) {
    if diff.is_unchanged() && p_stmt.is_some() {
        return;
    }
    match (q_stmt, p_stmt, diff) {
        (
            Stmt::If(_, then_b, else_b),
            Some(Stmt::If(_, p_then, p_else)),
            StmtDiff::IfDiff {
                cond_changed,
                then_diff,
                else_diff,
            },
        ) => {
            if *cond_changed {
                // A changed condition can flip the branch: either branch
                // could run fresh, and the old branch's writes go stale.
                mark_subtree_changed(effects, i, seed);
                if let Some(p_stmt) = p_stmt {
                    stale_from(p_stmt, seed);
                }
            } else {
                seed.kinds[i] = ChangeKind::Inner;
                let then_start = i + 1;
                let else_start = block_end(effects, then_start, then_b.stmts().len());
                walk_block(then_b, then_start, p_then, then_diff, effects, seed);
                walk_block(else_b, else_start, p_else, else_diff, effects, seed);
            }
        }
        (
            Stmt::For(_, _, _, body),
            Some(Stmt::For(_, _, _, p_body)),
            StmtDiff::ForDiff {
                bounds_changed,
                body_diff,
            },
        ) => {
            if *bounds_changed {
                mark_subtree_changed(effects, i, seed);
                if let Some(p_stmt) = p_stmt {
                    stale_from(p_stmt, seed);
                }
            } else {
                seed.kinds[i] = ChangeKind::Inner;
                walk_block(body, i + 1, p_body, body_diff, effects, seed);
            }
        }
        (
            Stmt::While(_, body),
            Some(Stmt::While(_, p_body)),
            StmtDiff::WhileDiff {
                cond_changed,
                body_diff,
            },
        ) => {
            if *cond_changed {
                mark_subtree_changed(effects, i, seed);
                if let Some(p_stmt) = p_stmt {
                    stale_from(p_stmt, seed);
                }
            } else {
                // The impact fixpoint already treats a `while` with any
                // inner edit as wholly re-executable; the `Inner` mark
                // just records where the edit sits.
                seed.kinds[i] = ChangeKind::Inner;
                walk_block(body, i + 1, p_body, body_diff, effects, seed);
            }
        }
        _ => {
            // Edited leaf, fresh statement (no old counterpart), or a
            // shape disagreement between diff and AST (conservative).
            mark_subtree_changed(effects, i, seed);
            if let Some(p_stmt) = p_stmt {
                stale_from(p_stmt, seed);
            }
        }
    }
}

/// One past the last pre-order index of a run of `count` sibling
/// statements starting at `start`.
fn block_end(effects: &ProgramEffects, start: usize, count: usize) -> usize {
    let mut i = start;
    for _ in 0..count {
        i = effects.stmts[i].end;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::diff_programs;
    use ppl::parse;

    fn seed_for(p_src: &str, q_src: &str) -> (ProgramEffects, ChangeSeed) {
        let p = parse(p_src).unwrap();
        let q = parse(q_src).unwrap();
        let edit = diff_programs(&p, &q);
        let effects = infer_effects(&q);
        let seed = change_seed(&q, &p, &edit, &effects);
        (effects, seed)
    }

    #[test]
    fn identity_edit_is_all_unchanged() {
        let src = "a = 1; if a > 0 { b = 2; } else { c = 3; } return a;";
        let (effects, seed) = seed_for(src, src);
        assert!(seed.kinds.iter().all(|k| *k == ChangeKind::Unchanged));
        assert!(seed.stale_writes.is_empty());
        let set = impact(&effects, &seed);
        assert!(set.impacted.is_empty());
    }

    #[test]
    fn edited_leaf_is_changed_and_stales_its_old_write() {
        let (_, seed) = seed_for("a = 1; b = 2; return b;", "a = 1; b = 3; return b;");
        assert_eq!(seed.kinds[0], ChangeKind::Unchanged);
        assert_eq!(seed.kinds[1], ChangeKind::Changed);
        assert!(seed.stale_writes.contains("b"));
    }

    #[test]
    fn removed_statement_stales_its_writes() {
        let (effects, seed) = seed_for(
            "a = 1; tmp = 9; b = a + 1; return b;",
            "a = 1; b = a + 1; return b;",
        );
        assert!(seed.stale_writes.contains("tmp"));
        assert!(seed.kinds.iter().all(|k| *k == ChangeKind::Unchanged));
        // No q statement reads tmp, so nothing is impacted.
        let set = impact(&effects, &seed);
        assert!(set.impacted.is_empty());
    }

    #[test]
    fn renamed_assignment_stales_the_old_name() {
        let (effects, seed) =
            seed_for("x = 1; y = x + 1; return y;", "z = 1; y = z + 1; return y;");
        // `x = 1` was replaced by `z = 1`: x's old value is stale.
        assert!(seed.stale_writes.contains("x"));
        let set = impact(&effects, &seed);
        assert!(set.contains(0) && set.contains(1));
    }

    #[test]
    fn inner_if_edit_marks_the_path_only() {
        let (effects, seed) = seed_for(
            "p = 1; if p > 0 { x = 1; y = 2; } else { skip; } return p;",
            "p = 1; if p > 0 { x = 7; y = 2; } else { skip; } return p;",
        );
        assert_eq!(seed.kinds[0], ChangeKind::Unchanged);
        assert_eq!(seed.kinds[1], ChangeKind::Inner);
        assert_eq!(seed.kinds[2], ChangeKind::Changed); // x = 7
        assert_eq!(seed.kinds[3], ChangeKind::Unchanged); // y = 2
        let set = impact(&effects, &seed);
        assert!(set.skippable(3), "sibling inside the branch stays clean");
        assert!(set.skippable(0));
    }

    #[test]
    fn changed_condition_spreads_and_stales_old_branch_writes() {
        let (effects, seed) = seed_for(
            "p = 1; if p > 0 { x = 1; } else { y = 2; } z = x + 0; return z;",
            "p = 1; if p > 1 { x = 1; } else { y = 2; } z = x + 0; return z;",
        );
        assert_eq!(seed.kinds[1], ChangeKind::Changed);
        assert_eq!(seed.kinds[2], ChangeKind::Changed);
        assert_eq!(seed.kinds[3], ChangeKind::Changed);
        assert!(seed.stale_writes.contains("x") && seed.stale_writes.contains("y"));
        let set = impact(&effects, &seed);
        assert!(set.contains(4), "z reads possibly-dirty x");
    }

    #[test]
    fn loop_bounds_edit_marks_the_loop_changed() {
        let (effects, seed) = seed_for(
            "xs = array(5, 0); for i in [0..3) { xs[i] = 1; } return xs;",
            "xs = array(5, 0); for i in [0..5) { xs[i] = 1; } return xs;",
        );
        assert_eq!(seed.kinds[1], ChangeKind::Changed);
        assert_eq!(seed.kinds[2], ChangeKind::Changed);
        let set = impact(&effects, &seed);
        assert!(set.contains(1) && set.contains(2));
        assert!(set.skippable(0));
    }

    #[test]
    fn impact_of_edit_is_the_composed_pipeline() {
        let p = parse("a = flip(0.5) @ a; b = a + 1; c = 7; return b;").unwrap();
        let q = parse("a = flip(0.9) @ a; b = a + 1; c = 7; return b;").unwrap();
        let edit = diff_programs(&p, &q);
        let (effects, set) = impact_of_edit(&q, &p, &edit);
        assert_eq!(effects.len(), 3);
        assert!(set.contains(0) && set.contains(1));
        assert!(set.skippable(2));
        assert!(set.sites.contains("a"));
    }
}
