//! # depgraph — the dependency-tracking runtime of Section 6
//!
//! When `Q` results from a small edit to `P`, trace translation can avoid
//! a full execution of `Q`: this crate represents the trace as an
//! execution graph ([`ExecGraph`]), diffs the two programs
//! ([`diff_programs`]) to derive the syntactic→semantic correspondence
//! automatically, and propagates changes through the graph, re-executing
//! only the affected slice ([`IncrementalTranslator`]).
//!
//! For the Gaussian-mixture hyperparameter edit of Figure 10, translation
//! work is `O(K)` in the number of clusters, independent of the `N` data
//! points — while the baseline Section 5 translator
//! (`incremental::CorrespondenceTranslator`) visits all `O(N + K)` trace
//! elements.
//!
//! Loops are fully supported: `for` iterations are keyed by the loop
//! variable and `while` iterations by their iteration counter, matching
//! the interpreter's Section 5.4 addressing, so unchanged iterations are
//! skipped and reused by reference.

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

mod build;
pub mod diff;
mod eval;
pub mod impact;
pub mod plan;
pub mod propagate;
pub mod record;
pub mod sequence;
pub mod translator;

pub use diff::{diff_programs, BlockDiff, DiffOp, ProgramEdit, StmtDiff};
pub use impact::{change_seed, impact_of_edit};
pub use plan::StagePlan;
pub use propagate::{set_verify_slices, verify_slices_enabled, IncrementalResult, VisitStats};
pub use record::{program_fingerprint, ExecGraph};
pub use sequence::{
    edit_chain, edit_chain_shared, lift_collection, resume_collection, run_edit_sequence,
    run_edit_sequence_flat_supervised, run_edit_sequence_graph, run_edit_sequence_parallel,
    run_edit_sequence_parallel_with_policy, run_edit_sequence_supervised,
};
pub use translator::IncrementalTranslator;
