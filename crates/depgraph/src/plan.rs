//! Stage-shared translation plans.
//!
//! A [`StagePlan`] hoists everything about one edit `p → q` that is
//! invariant across particles out of the per-particle propagation loop:
//!
//! - every `StmtDiff::is_unchanged()` / `BlockDiff::is_unchanged()`
//!   decision, which the propagator would otherwise recompute (a full
//!   subtree walk) once per statement per particle per skip check;
//! - the fresh-execution sub-plans that [`crate::propagate`] used to
//!   allocate per particle per fresh subtree (`fresh_block_diff`);
//! - the interned base addresses of every random site in `q`, with the
//!   [`Correspondence`](incremental::Correspondence) memo cache pre-warmed
//!   so the per-particle `lookup_id` calls take the shared read path.
//!
//! The plan is built once per stage by
//! [`IncrementalTranslator::from_shared`](crate::IncrementalTranslator::from_shared)
//! and shared immutably (`Arc`) by every particle task. Walking a plan is
//! semantically identical to walking the diff — the propagator's output
//! (graph, weight, and RNG consumption) is bit-for-bit the same.

use std::sync::Arc;

use ppl::ast::{Block, Expr, Program, RandKind, Stmt};
use ppl::compile::{compiled_for_pair, CompiledProgram};
use ppl::Address;

use crate::diff::{BlockDiff, DiffOp, ProgramEdit, StmtDiff};

/// Per-stage immutable translation plan; see the module docs.
#[derive(Debug)]
pub struct StagePlan {
    root: PlanBlock,
    /// Interned depth-0 addresses of `q`'s random sites (loop-indexed
    /// instances extend these and are memoized on first use).
    sites: Vec<Address>,
    /// The compiled form of `q` whose slot universe also covers `p`'s
    /// variables (old records replay `p`-named effects into the frame).
    /// Compiled once per stage — through the global compile cache — and
    /// shared by every particle task.
    compiled: Arc<CompiledProgram>,
}

/// Plan for one block: mirrors [`BlockDiff`] with the per-op decisions
/// precomputed.
#[derive(Debug)]
pub(crate) struct PlanBlock {
    pub(crate) ops: Vec<PlanOp>,
}

/// Plan for one diff op.
#[derive(Debug)]
pub(crate) enum PlanOp {
    /// An old statement removed by the edit (its observations enter the
    /// weight denominator).
    RemovedP(usize),
    /// A statement of `q`.
    Stmt {
        /// Index into the block's statements.
        q_index: usize,
        /// Matching old statement index, if any.
        p_index: Option<usize>,
        /// Precomputed `StmtDiff::is_unchanged()` — the skip-eligibility
        /// half of the propagator's per-statement check.
        unchanged: bool,
        /// Control-structure sub-plans.
        detail: PlanStmt,
    },
}

/// Statement-shape-specific sub-plans.
#[derive(Debug)]
pub(crate) enum PlanStmt {
    /// `skip` / assignment / observe: no sub-blocks.
    Opaque,
    /// `if`: matched branch plans when the diff aligned the statement
    /// with an old `if` (`IfDiff`), plus the fresh plans used when the
    /// taken branch flips or there is no old record.
    If {
        /// `(then, else)` plans from the `IfDiff`, when present.
        matched: Option<(PlanBlock, PlanBlock)>,
        fresh_then: PlanBlock,
        fresh_else: PlanBlock,
    },
    /// `for`: body plan plus the hoisted per-iteration skip eligibility.
    For {
        body: PlanBlock,
        /// Precomputed `body_diff.is_unchanged()`; `false` on the fresh
        /// path (fresh diffs are never unchanged).
        body_unchanged: bool,
    },
    /// `while`: body plan plus the hoisted per-iteration skip
    /// eligibility.
    While {
        body: PlanBlock,
        /// Precomputed `!cond_changed && body_diff.is_unchanged()`;
        /// `false` on the fresh path.
        iter_skippable: bool,
    },
}

impl StagePlan {
    /// Builds the plan for the edit underlying `edit` from source program
    /// `p` to target program `q`: precomputes the skip decisions, compiles
    /// `q` (with `p`'s variables in the slot universe), and pre-warms the
    /// correspondence memo cache with the interned base address of every
    /// random site in `q`.
    pub fn new(q: &Program, p: &Program, edit: &ProgramEdit) -> StagePlan {
        let compiled = compiled_for_pair(q, p);
        let root = plan_block(&q.body, &edit.diff);
        let mut names: Vec<Arc<str>> = Vec::new();
        collect_block_sites(&q.body, &mut names);
        if let Some(ret) = &q.ret {
            collect_expr_sites(ret, &mut names);
        }
        names.sort_unstable();
        names.dedup();
        let sites: Vec<Address> = names
            .into_iter()
            .map(|name| Address::from_components([name.into()]))
            .collect();
        for addr in &sites {
            // Interns the address and memoizes the (possibly negative)
            // correspondence lookup; per-particle lookups then take the
            // shared read path.
            let _ = edit.correspondence.lookup_id(addr.id());
        }
        StagePlan {
            root,
            sites,
            compiled,
        }
    }

    /// The root block plan (what the propagator walks).
    pub(crate) fn root(&self) -> &PlanBlock {
        &self.root
    }

    /// Number of distinct random sites in `q` (interned at plan build).
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// The stage's compiled program (slot universe covers `p` and `q`).
    pub fn compiled(&self) -> &Arc<CompiledProgram> {
        &self.compiled
    }
}

/// Mirrors the propagator's `(stmt, diff)` dispatch: matched sub-plans
/// are derived only where the old runtime would have used the matched
/// diff, and fresh sub-plans replace `fresh_block_diff` allocations.
fn plan_block(block: &Block, diff: &BlockDiff) -> PlanBlock {
    let ops = diff
        .ops
        .iter()
        .map(|op| match op {
            DiffOp::RemovedP(p_index) => PlanOp::RemovedP(*p_index),
            DiffOp::Stmt {
                q_index,
                p_index,
                diff,
            } => PlanOp::Stmt {
                q_index: *q_index,
                p_index: *p_index,
                unchanged: diff.is_unchanged(),
                detail: plan_stmt(&block.stmts()[*q_index], diff),
            },
        })
        .collect();
    PlanBlock { ops }
}

fn plan_stmt(stmt: &Stmt, diff: &StmtDiff) -> PlanStmt {
    match stmt {
        Stmt::If(_, then_b, else_b) => {
            let matched = match diff {
                StmtDiff::IfDiff {
                    then_diff,
                    else_diff,
                    ..
                } => Some((plan_block(then_b, then_diff), plan_block(else_b, else_diff))),
                _ => None,
            };
            PlanStmt::If {
                matched,
                fresh_then: fresh_block(then_b),
                fresh_else: fresh_block(else_b),
            }
        }
        Stmt::For(_, _, _, body) => match diff {
            StmtDiff::ForDiff { body_diff, .. } => PlanStmt::For {
                body: plan_block(body, body_diff),
                body_unchanged: body_diff.is_unchanged(),
            },
            _ => PlanStmt::For {
                body: fresh_block(body),
                body_unchanged: false,
            },
        },
        Stmt::While(_, body) => match diff {
            StmtDiff::WhileDiff {
                cond_changed,
                body_diff,
            } => PlanStmt::While {
                body: plan_block(body, body_diff),
                iter_skippable: !cond_changed && body_diff.is_unchanged(),
            },
            _ => PlanStmt::While {
                body: fresh_block(body),
                iter_skippable: false,
            },
        },
        _ => PlanStmt::Opaque,
    }
}

/// Plan for executing `block` fresh (no old records, nothing skippable) —
/// the plan-level analogue of the propagator's old `fresh_block_diff`.
fn fresh_block(block: &Block) -> PlanBlock {
    let ops = block
        .stmts()
        .iter()
        .enumerate()
        .map(|(j, stmt)| PlanOp::Stmt {
            q_index: j,
            p_index: None,
            unchanged: false,
            detail: fresh_stmt(stmt),
        })
        .collect();
    PlanBlock { ops }
}

fn fresh_stmt(stmt: &Stmt) -> PlanStmt {
    match stmt {
        Stmt::If(_, t, e) => PlanStmt::If {
            matched: None,
            fresh_then: fresh_block(t),
            fresh_else: fresh_block(e),
        },
        Stmt::For(_, _, _, b) => PlanStmt::For {
            body: fresh_block(b),
            body_unchanged: false,
        },
        Stmt::While(_, b) => PlanStmt::While {
            body: fresh_block(b),
            iter_skippable: false,
        },
        _ => PlanStmt::Opaque,
    }
}

fn collect_block_sites(block: &Block, out: &mut Vec<Arc<str>>) {
    for stmt in block.stmts() {
        match stmt {
            Stmt::Skip => {}
            Stmt::Assign(_, e) => collect_expr_sites(e, out),
            Stmt::AssignIndex(_, i, e) => {
                collect_expr_sites(i, out);
                collect_expr_sites(e, out);
            }
            Stmt::Observe(rand, e) => {
                out.push(Arc::clone(&rand.site.0));
                collect_rand_sites(&rand.kind, out);
                collect_expr_sites(e, out);
            }
            Stmt::If(c, t, e) => {
                collect_expr_sites(c, out);
                collect_block_sites(t, out);
                collect_block_sites(e, out);
            }
            Stmt::For(_, lo, hi, b) => {
                collect_expr_sites(lo, out);
                collect_expr_sites(hi, out);
                collect_block_sites(b, out);
            }
            Stmt::While(c, b) => {
                collect_expr_sites(c, out);
                collect_block_sites(b, out);
            }
        }
    }
}

fn collect_expr_sites(expr: &Expr, out: &mut Vec<Arc<str>>) {
    match expr {
        Expr::Const(_) | Expr::Var(_) => {}
        Expr::Unary(_, e) => collect_expr_sites(e, out),
        Expr::Binary(_, a, b) | Expr::Index(a, b) | Expr::ArrayInit(a, b) => {
            collect_expr_sites(a, out);
            collect_expr_sites(b, out);
        }
        Expr::Call(_, args) => {
            for a in args {
                collect_expr_sites(a, out);
            }
        }
        Expr::Ternary(c, t, e) => {
            collect_expr_sites(c, out);
            collect_expr_sites(t, out);
            collect_expr_sites(e, out);
        }
        Expr::Random(rand) => {
            out.push(Arc::clone(&rand.site.0));
            collect_rand_sites(&rand.kind, out);
        }
    }
}

fn collect_rand_sites(kind: &RandKind, out: &mut Vec<Arc<str>>) {
    match kind {
        RandKind::Flip(a)
        | RandKind::Poisson(a)
        | RandKind::GeometricDist(a)
        | RandKind::Exponential(a) => collect_expr_sites(a, out),
        RandKind::UniformInt(a, b)
        | RandKind::UniformReal(a, b)
        | RandKind::Gauss(a, b)
        | RandKind::Beta(a, b) => {
            collect_expr_sites(a, out);
            collect_expr_sites(b, out);
        }
        RandKind::Categorical(ws) => {
            for w in ws {
                collect_expr_sites(w, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::diff_programs;
    use ppl::parse;

    #[test]
    fn plan_mirrors_diff_shape() {
        let p = parse("x = flip(0.5); if x { y = gauss(0.0, 1.0); } else { y = 0.0; } return y;")
            .unwrap();
        let q = parse("x = flip(0.6); if x { y = gauss(0.0, 1.0); } else { y = 0.0; } return y;")
            .unwrap();
        let edit = diff_programs(&p, &q);
        let plan = StagePlan::new(&q, &p, &edit);
        assert_eq!(plan.root().ops.len(), edit.diff.ops.len());
        // Both random sites of q are interned and pre-warmed.
        assert_eq!(plan.site_count(), 2);
        for (op, diff_op) in plan.root().ops.iter().zip(&edit.diff.ops) {
            if let (PlanOp::Stmt { unchanged, .. }, DiffOp::Stmt { diff, .. }) = (op, diff_op) {
                assert_eq!(*unchanged, diff.is_unchanged());
            }
        }
    }

    #[test]
    fn fresh_plans_are_never_skippable() {
        let q = parse(
            "n = 3; s = 0.0; for i in [0..n) { s = s + gauss(0.0, 1.0); } \
             while s > 10.0 { s = s - 1.0; } return s;",
        )
        .unwrap();
        let fresh = fresh_block(&q.body);
        for op in &fresh.ops {
            match op {
                PlanOp::Stmt {
                    p_index, unchanged, ..
                } => {
                    assert!(p_index.is_none());
                    assert!(!unchanged);
                }
                PlanOp::RemovedP(_) => panic!("fresh plan cannot remove"),
            }
        }
    }
}
