//! Stage-shared translation plans.
//!
//! A [`StagePlan`] hoists everything about one edit `p → q` that is
//! invariant across particles out of the per-particle propagation loop:
//!
//! - every `StmtDiff::is_unchanged()` / `BlockDiff::is_unchanged()`
//!   decision, which the propagator would otherwise recompute (a full
//!   subtree walk) once per statement per particle per skip check;
//! - the fresh-execution sub-plans that [`crate::propagate`] used to
//!   allocate per particle per fresh subtree (`fresh_block_diff`);
//! - the interned base addresses of every random site in `q`, with the
//!   [`Correspondence`](incremental::Correspondence) memo cache pre-warmed
//!   so the per-particle `lookup_id` calls take the shared read path.
//!
//! The plan is built once per stage by
//! [`IncrementalTranslator::from_shared`](crate::IncrementalTranslator::from_shared)
//! and shared immutably (`Arc`) by every particle task. Walking a plan is
//! semantically identical to walking the diff — the propagator's output
//! (graph, weight, and RNG consumption) is bit-for-bit the same.

use std::sync::Arc;

use ppl::analysis::{ImpactSet, ProgramEffects};
use ppl::ast::{Block, Expr, Program, RandKind, Stmt};
use ppl::compile::{compiled_for_pair, CompiledProgram};
use ppl::Address;

use crate::diff::{BlockDiff, DiffOp, ProgramEdit, StmtDiff};
use crate::impact::impact_of_edit;

/// Per-stage immutable translation plan; see the module docs.
#[derive(Debug)]
pub struct StagePlan {
    root: PlanBlock,
    /// Interned depth-0 addresses of `q`'s random sites (loop-indexed
    /// instances extend these and are memoized on first use).
    sites: Vec<Address>,
    /// The compiled form of `q` whose slot universe also covers `p`'s
    /// variables (old records replay `p`-named effects into the frame).
    /// Compiled once per stage — through the global compile cache — and
    /// shared by every particle task.
    compiled: Arc<CompiledProgram>,
    /// Static effect facts for `q`, in pre-order (the indexing used by
    /// [`PlanOp::Stmt::pre_index`]).
    effects: ProgramEffects,
    /// The static impact slice of the edit: statements outside it are
    /// proven skippable and pre-pruned via [`PlanOp::Stmt::static_skip`];
    /// the `--verify-slices` oracle checks dynamic visits against it.
    impact: ImpactSet,
}

/// Plan for one block: mirrors [`BlockDiff`] with the per-op decisions
/// precomputed.
#[derive(Debug)]
pub(crate) struct PlanBlock {
    pub(crate) ops: Vec<PlanOp>,
}

/// Plan for one diff op.
#[derive(Debug)]
pub(crate) enum PlanOp {
    /// An old statement removed by the edit (its observations enter the
    /// weight denominator).
    RemovedP(usize),
    /// A statement of `q`.
    Stmt {
        /// Index into the block's statements.
        q_index: usize,
        /// Matching old statement index, if any.
        p_index: Option<usize>,
        /// Precomputed `StmtDiff::is_unchanged()` — the skip-eligibility
        /// half of the propagator's per-statement check.
        unchanged: bool,
        /// Pre-order index of the statement in `q` (the indexing of
        /// [`ppl::analysis::ProgramEffects`]); fresh sub-plans of the
        /// same AST block carry the same indices as matched ones.
        pre_index: usize,
        /// Statically proven skippable: unchanged *and* outside the
        /// edit's [`ImpactSet`], so the propagator may skip without
        /// consulting runtime dirty bits.
        static_skip: bool,
        /// Control-structure sub-plans.
        detail: PlanStmt,
    },
}

/// Statement-shape-specific sub-plans.
#[derive(Debug)]
pub(crate) enum PlanStmt {
    /// `skip` / assignment / observe: no sub-blocks.
    Opaque,
    /// `if`: matched branch plans when the diff aligned the statement
    /// with an old `if` (`IfDiff`), plus the fresh plans used when the
    /// taken branch flips or there is no old record.
    If {
        /// `(then, else)` plans from the `IfDiff`, when present.
        matched: Option<(PlanBlock, PlanBlock)>,
        fresh_then: PlanBlock,
        fresh_else: PlanBlock,
    },
    /// `for`: body plan plus the hoisted per-iteration skip eligibility.
    For {
        body: PlanBlock,
        /// Precomputed `body_diff.is_unchanged()`; `false` on the fresh
        /// path (fresh diffs are never unchanged).
        body_unchanged: bool,
    },
    /// `while`: body plan plus the hoisted per-iteration skip
    /// eligibility.
    While {
        body: PlanBlock,
        /// Precomputed `!cond_changed && body_diff.is_unchanged()`;
        /// `false` on the fresh path.
        iter_skippable: bool,
    },
}

impl StagePlan {
    /// Builds the plan for the edit underlying `edit` from source program
    /// `p` to target program `q`: precomputes the skip decisions, compiles
    /// `q` (with `p`'s variables in the slot universe), and pre-warms the
    /// correspondence memo cache with the interned base address of every
    /// random site in `q`.
    pub fn new(q: &Program, p: &Program, edit: &ProgramEdit) -> StagePlan {
        let compiled = compiled_for_pair(q, p);
        let (effects, impact) = impact_of_edit(q, p, edit);
        let ctx = PlanCtx {
            effects: &effects,
            impact: &impact,
        };
        let root = plan_block(&q.body, &edit.diff, 0, &ctx);
        let mut names: Vec<Arc<str>> = Vec::new();
        collect_block_sites(&q.body, &mut names);
        if let Some(ret) = &q.ret {
            collect_expr_sites(ret, &mut names);
        }
        names.sort_unstable();
        names.dedup();
        let sites: Vec<Address> = names
            .into_iter()
            .map(|name| Address::from_components([name.into()]))
            .collect();
        for addr in &sites {
            // Interns the address and memoizes the (possibly negative)
            // correspondence lookup; per-particle lookups then take the
            // shared read path.
            let _ = edit.correspondence.lookup_id(addr.id());
        }
        StagePlan {
            root,
            sites,
            compiled,
            effects,
            impact,
        }
    }

    /// The root block plan (what the propagator walks).
    pub(crate) fn root(&self) -> &PlanBlock {
        &self.root
    }

    /// Static effect facts for `q` (pre-order indexing).
    pub fn effects(&self) -> &ProgramEffects {
        &self.effects
    }

    /// The static impact slice of the edit.
    pub fn impact(&self) -> &ImpactSet {
        &self.impact
    }

    /// Number of distinct random sites in `q` (interned at plan build).
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// The stage's compiled program (slot universe covers `p` and `q`).
    pub fn compiled(&self) -> &Arc<CompiledProgram> {
        &self.compiled
    }
}

/// Static context threaded through plan construction: the pre-order
/// effect facts of `q` and the edit's impact slice.
struct PlanCtx<'a> {
    effects: &'a ProgramEffects,
    impact: &'a ImpactSet,
}

impl PlanCtx<'_> {
    /// Pre-order indices of a block's statements, given the pre-order
    /// index of its first statement.
    fn child_indices(&self, start: usize, count: usize) -> Vec<usize> {
        self.effects.block_child_indices(start, count)
    }

    /// One past the last pre-order index of `count` siblings at `start`.
    fn block_end(&self, start: usize, count: usize) -> usize {
        let mut i = start;
        for _ in 0..count {
            i = self.effects.stmts[i].end;
        }
        i
    }
}

/// Mirrors the propagator's `(stmt, diff)` dispatch: matched sub-plans
/// are derived only where the old runtime would have used the matched
/// diff, and fresh sub-plans replace `fresh_block_diff` allocations.
/// `start` is the pre-order index of the block's first statement.
fn plan_block(block: &Block, diff: &BlockDiff, start: usize, ctx: &PlanCtx<'_>) -> PlanBlock {
    let indices = ctx.child_indices(start, block.stmts().len());
    let ops = diff
        .ops
        .iter()
        .map(|op| match op {
            DiffOp::RemovedP(p_index) => PlanOp::RemovedP(*p_index),
            DiffOp::Stmt {
                q_index,
                p_index,
                diff,
            } => {
                let pre_index = indices[*q_index];
                let unchanged = diff.is_unchanged();
                PlanOp::Stmt {
                    q_index: *q_index,
                    p_index: *p_index,
                    unchanged,
                    pre_index,
                    // Sound pre-pruning: unchanged statements outside the
                    // impact slice are skippable without dirty checks.
                    static_skip: unchanged && ctx.impact.skippable(pre_index),
                    detail: plan_stmt(&block.stmts()[*q_index], diff, pre_index, ctx),
                }
            }
        })
        .collect();
    PlanBlock { ops }
}

fn plan_stmt(stmt: &Stmt, diff: &StmtDiff, pre_index: usize, ctx: &PlanCtx<'_>) -> PlanStmt {
    match stmt {
        Stmt::If(_, then_b, else_b) => {
            let then_start = pre_index + 1;
            let else_start = ctx.block_end(then_start, then_b.stmts().len());
            let matched = match diff {
                StmtDiff::IfDiff {
                    then_diff,
                    else_diff,
                    ..
                } => Some((
                    plan_block(then_b, then_diff, then_start, ctx),
                    plan_block(else_b, else_diff, else_start, ctx),
                )),
                _ => None,
            };
            PlanStmt::If {
                matched,
                fresh_then: fresh_block(then_b, then_start, ctx),
                fresh_else: fresh_block(else_b, else_start, ctx),
            }
        }
        Stmt::For(_, _, _, body) => match diff {
            StmtDiff::ForDiff { body_diff, .. } => PlanStmt::For {
                body: plan_block(body, body_diff, pre_index + 1, ctx),
                body_unchanged: body_diff.is_unchanged(),
            },
            _ => PlanStmt::For {
                body: fresh_block(body, pre_index + 1, ctx),
                body_unchanged: false,
            },
        },
        Stmt::While(_, body) => match diff {
            StmtDiff::WhileDiff {
                cond_changed,
                body_diff,
            } => PlanStmt::While {
                body: plan_block(body, body_diff, pre_index + 1, ctx),
                iter_skippable: !cond_changed && body_diff.is_unchanged(),
            },
            _ => PlanStmt::While {
                body: fresh_block(body, pre_index + 1, ctx),
                iter_skippable: false,
            },
        },
        _ => PlanStmt::Opaque,
    }
}

/// Plan for executing `block` fresh (no old records, nothing skippable) —
/// the plan-level analogue of the propagator's old `fresh_block_diff`.
/// Fresh plans carry the same pre-order indices as the matched plans of
/// the same AST block, so oracle visit attribution is path-independent.
fn fresh_block(block: &Block, start: usize, ctx: &PlanCtx<'_>) -> PlanBlock {
    let indices = ctx.child_indices(start, block.stmts().len());
    let ops = block
        .stmts()
        .iter()
        .enumerate()
        .map(|(j, stmt)| PlanOp::Stmt {
            q_index: j,
            p_index: None,
            unchanged: false,
            pre_index: indices[j],
            static_skip: false,
            detail: fresh_stmt(stmt, indices[j], ctx),
        })
        .collect();
    PlanBlock { ops }
}

fn fresh_stmt(stmt: &Stmt, pre_index: usize, ctx: &PlanCtx<'_>) -> PlanStmt {
    match stmt {
        Stmt::If(_, t, e) => {
            let then_start = pre_index + 1;
            let else_start = ctx.block_end(then_start, t.stmts().len());
            PlanStmt::If {
                matched: None,
                fresh_then: fresh_block(t, then_start, ctx),
                fresh_else: fresh_block(e, else_start, ctx),
            }
        }
        Stmt::For(_, _, _, b) => PlanStmt::For {
            body: fresh_block(b, pre_index + 1, ctx),
            body_unchanged: false,
        },
        Stmt::While(_, b) => PlanStmt::While {
            body: fresh_block(b, pre_index + 1, ctx),
            iter_skippable: false,
        },
        _ => PlanStmt::Opaque,
    }
}

fn collect_block_sites(block: &Block, out: &mut Vec<Arc<str>>) {
    for stmt in block.stmts() {
        match stmt {
            Stmt::Skip => {}
            Stmt::Assign(_, e) => collect_expr_sites(e, out),
            Stmt::AssignIndex(_, i, e) => {
                collect_expr_sites(i, out);
                collect_expr_sites(e, out);
            }
            Stmt::Observe(rand, e) => {
                out.push(Arc::clone(&rand.site.0));
                collect_rand_sites(&rand.kind, out);
                collect_expr_sites(e, out);
            }
            Stmt::If(c, t, e) => {
                collect_expr_sites(c, out);
                collect_block_sites(t, out);
                collect_block_sites(e, out);
            }
            Stmt::For(_, lo, hi, b) => {
                collect_expr_sites(lo, out);
                collect_expr_sites(hi, out);
                collect_block_sites(b, out);
            }
            Stmt::While(c, b) => {
                collect_expr_sites(c, out);
                collect_block_sites(b, out);
            }
        }
    }
}

fn collect_expr_sites(expr: &Expr, out: &mut Vec<Arc<str>>) {
    match expr {
        Expr::Const(_) | Expr::Var(_) => {}
        Expr::Unary(_, e) => collect_expr_sites(e, out),
        Expr::Binary(_, a, b) | Expr::Index(a, b) | Expr::ArrayInit(a, b) => {
            collect_expr_sites(a, out);
            collect_expr_sites(b, out);
        }
        Expr::Call(_, args) => {
            for a in args {
                collect_expr_sites(a, out);
            }
        }
        Expr::Ternary(c, t, e) => {
            collect_expr_sites(c, out);
            collect_expr_sites(t, out);
            collect_expr_sites(e, out);
        }
        Expr::Random(rand) => {
            out.push(Arc::clone(&rand.site.0));
            collect_rand_sites(&rand.kind, out);
        }
    }
}

fn collect_rand_sites(kind: &RandKind, out: &mut Vec<Arc<str>>) {
    match kind {
        RandKind::Flip(a)
        | RandKind::Poisson(a)
        | RandKind::GeometricDist(a)
        | RandKind::Exponential(a) => collect_expr_sites(a, out),
        RandKind::UniformInt(a, b)
        | RandKind::UniformReal(a, b)
        | RandKind::Gauss(a, b)
        | RandKind::Beta(a, b) => {
            collect_expr_sites(a, out);
            collect_expr_sites(b, out);
        }
        RandKind::Categorical(ws) => {
            for w in ws {
                collect_expr_sites(w, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::diff_programs;
    use ppl::parse;

    #[test]
    fn plan_mirrors_diff_shape() {
        let p = parse("x = flip(0.5); if x { y = gauss(0.0, 1.0); } else { y = 0.0; } return y;")
            .unwrap();
        let q = parse("x = flip(0.6); if x { y = gauss(0.0, 1.0); } else { y = 0.0; } return y;")
            .unwrap();
        let edit = diff_programs(&p, &q);
        let plan = StagePlan::new(&q, &p, &edit);
        assert_eq!(plan.root().ops.len(), edit.diff.ops.len());
        // Both random sites of q are interned and pre-warmed.
        assert_eq!(plan.site_count(), 2);
        for (op, diff_op) in plan.root().ops.iter().zip(&edit.diff.ops) {
            if let (PlanOp::Stmt { unchanged, .. }, DiffOp::Stmt { diff, .. }) = (op, diff_op) {
                assert_eq!(*unchanged, diff.is_unchanged());
            }
        }
    }

    #[test]
    fn fresh_plans_are_never_skippable() {
        let q = parse(
            "n = 3; s = 0.0; for i in [0..n) { s = s + gauss(0.0, 1.0); } \
             while s > 10.0 { s = s - 1.0; } return s;",
        )
        .unwrap();
        let effects = ppl::analysis::infer_effects(&q);
        let impact = ppl::analysis::impact(
            &effects,
            &ppl::analysis::ChangeSeed::identity(effects.len()),
        );
        let ctx = PlanCtx {
            effects: &effects,
            impact: &impact,
        };
        let fresh = fresh_block(&q.body, 0, &ctx);
        for op in &fresh.ops {
            match op {
                PlanOp::Stmt {
                    p_index,
                    unchanged,
                    static_skip,
                    ..
                } => {
                    assert!(p_index.is_none());
                    assert!(!unchanged);
                    assert!(!static_skip);
                }
                PlanOp::RemovedP(_) => panic!("fresh plan cannot remove"),
            }
        }
    }

    #[test]
    fn static_skip_marks_unaffected_statements() {
        let p = parse("a = 1; b = a + 1; c = 7; observe(flip(0.5) @ o == c); return b;").unwrap();
        let q = parse("a = 2; b = a + 1; c = 7; observe(flip(0.5) @ o == c); return b;").unwrap();
        let edit = diff_programs(&p, &q);
        let plan = StagePlan::new(&q, &p, &edit);
        let flags: Vec<(usize, bool)> = plan
            .root()
            .ops
            .iter()
            .filter_map(|op| match op {
                PlanOp::Stmt {
                    pre_index,
                    static_skip,
                    ..
                } => Some((*pre_index, *static_skip)),
                PlanOp::RemovedP(_) => None,
            })
            .collect();
        // a (edited) and b (reads a) are impacted; c and the observe are
        // statically skippable.
        assert_eq!(flags, vec![(0, false), (1, false), (2, true), (3, true)]);
        assert_eq!(plan.impact().skippable_count(), 2);
        assert_eq!(plan.effects().len(), 4);
    }

    #[test]
    fn nested_pre_indices_align_between_matched_and_fresh_plans() {
        let src = "p = 1; if p > 0 { x = 1; y = 2; } else { z = 3; } return p;";
        let p = parse(src).unwrap();
        let q = parse(src).unwrap();
        let edit = diff_programs(&p, &q);
        let plan = StagePlan::new(&q, &p, &edit);
        let PlanOp::Stmt { detail, .. } = &plan.root().ops[1] else {
            panic!("expected a statement op");
        };
        let PlanStmt::If {
            matched,
            fresh_then,
            fresh_else,
        } = detail
        else {
            panic!("expected an if plan");
        };
        let indices = |b: &PlanBlock| -> Vec<usize> {
            b.ops
                .iter()
                .filter_map(|op| match op {
                    PlanOp::Stmt { pre_index, .. } => Some(*pre_index),
                    PlanOp::RemovedP(_) => None,
                })
                .collect()
        };
        let (mt, me) = matched.as_ref().expect("matched plans");
        assert_eq!(indices(mt), vec![2, 3]);
        assert_eq!(indices(me), vec![4]);
        assert_eq!(indices(fresh_then), indices(mt));
        assert_eq!(indices(fresh_else), indices(me));
    }
}
