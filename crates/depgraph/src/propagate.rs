//! Change propagation: the optimized trace translation of Section 6.
//!
//! Given the execution graph `G_t` of `P`, the edited program `Q`, and
//! the diff-derived correspondence, this constructs the translated graph
//! `G_u` and the weight estimate `ŵ_{P→Q}(u; t)` by re-executing only the
//! statements affected by the edit — "propagating changes from these
//! nodes throughout the dependency graph in topological order". The new
//! graph's arena *extends* the old one's ([`StoreBuilder::extending`]),
//! so an unchanged subtree is shared between `G_t` and `G_u` by copying
//! its 4-byte node id.
//!
//! Re-execution drives the stage's compiled program
//! ([`StagePlan::compiled`]): expressions come from the flat arena,
//! variables resolve to frame slots (the slot universe covers both `P`
//! and `Q`, so old-record effects replay into the same frame), and the
//! frame itself is pooled per worker — a particle task borrows warmed
//! storage and returns it on drop.
//!
//! Weight accounting follows the paper's efficient scheme exactly:
//!
//! - every *visited* corresponding random choice contributes
//!   `Pr[u_i ∼ Q | …]` to the numerator and `Pr[t_{f(i)} ∼ P | …]` to the
//!   denominator;
//! - every *visited* observation contributes its new likelihood to the
//!   numerator and (when matched) its old likelihood to the denominator;
//! - observations *removed* by the edit contribute their old likelihood
//!   to the denominator;
//! - everything else cancels and is never touched.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use rand::RngCore;

use incremental::Correspondence;
use ppl::ast::Program;
use ppl::compile::{
    acquire_frame, note_compiled_exec, CBlockId, CRand, CRandKind, CStmt, CStmtId, CompiledProgram,
    EvalFrame, ExprId,
};
use ppl::dist::Dist;
use ppl::{Address, LogWeight, PplError, Value};

use crate::diff::ProgramEdit;
use crate::eval::{any_dirty, apply_effects, ChoiceSource, ExprEval};
use crate::plan::{PlanBlock, PlanOp, PlanStmt, StagePlan};
use crate::record::{
    BlockId, BlockRecord, Effect, ExecGraph, ObsData, StmtId, StmtRecord, StoreBuilder, Summary,
};

/// How much work a translation did — the quantity Figure 10 plots.
///
/// `visited`/`skipped` keep their original meaning (the Figure 10
/// series); the remaining fields break the same work down for the
/// observability layer (`incremental::metrics`). Whole-loop skips are the
/// counter form of the O(1) fixed-size-edit claim: a `for`/`while` whose
/// diff is unchanged and whose inputs are clean skips as *one* record,
/// regardless of how many iterations it recorded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VisitStats {
    /// Statement instances re-executed.
    pub visited: usize,
    /// Statement instances (or whole loop iterations / loops) skipped by
    /// reusing their records.
    pub skipped: usize,
    /// Whole `for`/`while` records skipped without entering the body
    /// (subset of `skipped`).
    pub loop_skips: usize,
    /// Individual iterations skipped inside loops that *were* entered
    /// (subset of `skipped`).
    pub iter_skips: usize,
    /// Random choices reused from the old graph through the
    /// correspondence (with their Eq. (8) factors accumulated).
    pub choices_reused: usize,
    /// Random choices sampled fresh during visited statements.
    pub choices_fresh: usize,
    /// Observation statements re-scored during visited statements.
    pub observes_rescored: usize,
    /// Statement records skipped purely from static facts — the plan
    /// proved them outside the edit's impact slice, so no runtime dirty
    /// check ran (subset of `skipped`).
    pub static_skips: usize,
    /// Slice-soundness oracle membership checks performed (non-zero only
    /// under `--verify-slices` / `PPL_VERIFY_SLICES`).
    pub oracle_checks: usize,
}

/// Whether the slice-soundness oracle is enabled: every dynamically
/// visited statement is checked for membership in the static
/// [`ImpactSet`](ppl::analysis::ImpactSet), and translation fails with a
/// structured report on any violation.
///
/// Initialized from the `PPL_VERIFY_SLICES` environment variable (any
/// value but `0`); overridable with [`set_verify_slices`] (the CLI's
/// `--verify-slices` flag).
pub fn verify_slices_enabled() -> bool {
    match VERIFY_SLICES.load(Ordering::Relaxed) {
        VERIFY_ON => true,
        VERIFY_OFF => false,
        _ => {
            let on = std::env::var_os("PPL_VERIFY_SLICES").is_some_and(|v| v != *"0");
            let encoded = if on { VERIFY_ON } else { VERIFY_OFF };
            // Racing initializers agree: both read the same environment.
            VERIFY_SLICES.store(encoded, Ordering::Relaxed);
            on
        }
    }
}

/// Forces the slice-soundness oracle on or off, overriding
/// `PPL_VERIFY_SLICES`.
pub fn set_verify_slices(on: bool) {
    VERIFY_SLICES.store(if on { VERIFY_ON } else { VERIFY_OFF }, Ordering::Relaxed);
}

const VERIFY_UNSET: u8 = 0;
const VERIFY_OFF: u8 = 1;
const VERIFY_ON: u8 = 2;
static VERIFY_SLICES: AtomicU8 = AtomicU8::new(VERIFY_UNSET);

/// The result of one incremental translation.
#[derive(Debug, Clone)]
pub struct IncrementalResult {
    /// The translated execution graph `G_u`.
    pub graph: ExecGraph,
    /// `log ŵ_{P→Q}(u; t)`.
    pub log_weight: LogWeight,
    /// Work counters.
    pub stats: VisitStats,
}

/// Translates the execution graph `old` of `P` into a graph of `q`,
/// guided by `edit` (produced by [`crate::diff::diff_programs`]).
///
/// # Errors
///
/// Propagates evaluation errors from re-executing the affected slice.
pub fn translate_graph(
    q: &Arc<Program>,
    edit: &ProgramEdit,
    old: &ExecGraph,
    rng: &mut dyn RngCore,
) -> Result<IncrementalResult, PplError> {
    let plan = StagePlan::new(q, &old.program, edit);
    translate_graph_with_plan(q, edit, &plan, old, rng)
}

/// [`translate_graph`] against a precomputed [`StagePlan`] — the
/// per-particle entry point used by
/// [`IncrementalTranslator`](crate::IncrementalTranslator), which builds
/// the plan once per stage and shares it across all particle tasks.
/// Output is bit-identical to [`translate_graph`].
///
/// # Errors
///
/// Propagates evaluation errors from re-executing the affected slice, or
/// reports a shape mismatch if `plan` was built for a different edit.
pub fn translate_graph_with_plan(
    q: &Arc<Program>,
    edit: &ProgramEdit,
    plan: &StagePlan,
    old: &ExecGraph,
    rng: &mut dyn RngCore,
) -> Result<IncrementalResult, PplError> {
    let prog = plan.compiled().as_ref();
    note_compiled_exec();
    let mut frame = acquire_frame();
    frame.prepare(prog.slot_count());
    let mut propagator = Propagator {
        old,
        prog,
        builder: StoreBuilder::extending(old.store()),
        rng,
        correspondence: &edit.correspondence,
        frame: &mut frame,
        log_num: LogWeight::ONE,
        log_den: LogWeight::ONE,
        stats: VisitStats::default(),
        oracle: verify_slices_enabled().then(BTreeSet::new),
    };
    let mut stmts = propagator.exec_block(prog.body(), plan.root(), Some(old.root()))?;
    // Return expression: always evaluated (cheap), recorded like build.rs
    // does so flattening yields a complete trace.
    let mut ret_summary = Summary::default();
    let return_value = match prog.ret() {
        Some(e) => {
            let v = propagator.eval(e, &mut ret_summary)?;
            if !ret_summary.choices.is_empty() || !ret_summary.reads.is_empty() {
                stmts.push(propagator.builder.push_stmt(StmtRecord::Leaf {
                    summary: ret_summary,
                }));
            }
            v
        }
        None => Value::Int(0),
    };
    let Propagator {
        mut builder,
        log_num,
        log_den,
        mut stats,
        oracle,
        ..
    } = propagator;
    if let Some(visited) = oracle {
        stats.oracle_checks += visited.len();
        verify_visited_in_slice(&visited, plan)?;
    }
    let root_block = BlockRecord::finalize(&builder, stmts);
    let root = builder.push_block(root_block);
    let graph = ExecGraph::assemble(Arc::clone(q), builder.finish(), root, return_value);
    Ok(IncrementalResult {
        graph,
        log_weight: log_num - log_den,
        stats,
    })
}

struct Propagator<'a> {
    old: &'a ExecGraph,
    /// The stage's compiled program (slot universe covers `P` and `Q`).
    prog: &'a CompiledProgram,
    /// Output arena, extending the old graph's store — so old node ids
    /// remain valid and a skipped subtree is shared by pushing its id.
    builder: StoreBuilder,
    rng: &'a mut dyn RngCore,
    correspondence: &'a Correspondence,
    frame: &'a mut EvalFrame,
    log_num: LogWeight,
    log_den: LogWeight,
    stats: VisitStats,
    /// Pre-order indices of visited statements, collected only when the
    /// slice-soundness oracle is enabled.
    oracle: Option<BTreeSet<usize>>,
}

/// The slice-soundness check: every dynamically visited statement must
/// lie inside the static impact slice. A violation is a bug in the
/// static analysis (or an unsound skip rule) and produces a structured
/// report naming each escaping statement.
fn verify_visited_in_slice(visited: &BTreeSet<usize>, plan: &StagePlan) -> Result<(), PplError> {
    let impact = plan.impact();
    let violations: Vec<usize> = visited
        .iter()
        .copied()
        .filter(|i| !impact.contains(*i))
        .collect();
    if violations.is_empty() {
        return Ok(());
    }
    let effects = plan.effects();
    let mut report = format!(
        "slice-soundness violation: {} dynamically visited statement(s) \
         outside the static impact slice ({} impacted of {} total)",
        violations.len(),
        impact.impacted.len(),
        impact.total,
    );
    for i in violations {
        let detail = effects
            .stmts
            .get(i)
            .map(|f| format!("`{}` (depth {})", f.label, f.depth))
            .unwrap_or_else(|| "<unknown statement>".to_string());
        report.push_str(&format!("\n  - statement #{i}: {detail}"));
    }
    Err(PplError::Other(report))
}

/// Choice source used inside visited statements: reuse through the
/// correspondence when the old graph has a same-support counterpart
/// (accumulating Eq. (8) factors), sample fresh otherwise (the fresh
/// factors cancel against the kernel density).
struct ReuseSource<'a, 'b> {
    old: &'a ExecGraph,
    correspondence: &'a Correspondence,
    rng: &'b mut dyn RngCore,
    log_num: &'b mut LogWeight,
    log_den: &'b mut LogWeight,
    stats: &'b mut VisitStats,
}

impl ChoiceSource for ReuseSource<'_, '_> {
    fn draw(&mut self, addr: &Address, dist: &Dist) -> Result<Value, PplError> {
        if let Some(p_id) = self.correspondence.lookup_id(addr.id()) {
            if let Some(old_choice) = self.old.choice_by_id(p_id) {
                if dist.same_support(&old_choice.dist) {
                    *self.log_num += dist.log_prob(&old_choice.value);
                    *self.log_den += old_choice.log_prob;
                    self.stats.choices_reused += 1;
                    return Ok(old_choice.value.clone());
                }
            }
        }
        self.stats.choices_fresh += 1;
        Ok(dist.sample(self.rng))
    }
}

impl<'a> Propagator<'a> {
    /// Resolves an old-graph statement id. The returned reference borrows
    /// the *input graph* (lifetime `'a`), not the propagator, so it stays
    /// usable across subsequent `&mut self` calls.
    fn old_stmt(&self, id: StmtId) -> &'a StmtRecord {
        self.old.store().stmt(id)
    }

    /// Resolves an old-graph block id (see [`Propagator::old_stmt`]).
    fn old_block(&self, id: BlockId) -> &'a BlockRecord {
        self.old.store().block(id)
    }

    fn eval(&mut self, expr: ExprId, sum: &mut Summary) -> Result<Value, PplError> {
        let mut source = ReuseSource {
            old: self.old,
            correspondence: self.correspondence,
            rng: self.rng,
            log_num: &mut self.log_num,
            log_den: &mut self.log_den,
            stats: &mut self.stats,
        };
        let mut ev = ExprEval {
            prog: self.prog,
            frame: self.frame,
            source: &mut source,
        };
        ev.eval(expr, sum)
    }

    fn build_dist(&mut self, kind: &CRandKind, sum: &mut Summary) -> Result<Dist, PplError> {
        let mut source = ReuseSource {
            old: self.old,
            correspondence: self.correspondence,
            rng: self.rng,
            log_num: &mut self.log_num,
            log_den: &mut self.log_den,
            stats: &mut self.stats,
        };
        let mut ev = ExprEval {
            prog: self.prog,
            frame: self.frame,
            source: &mut source,
        };
        ev.build_dist(kind, sum)
    }

    fn address_for(&self, rand: &CRand) -> Address {
        self.frame.address_for(&rand.site)
    }

    fn any_dirty(&self, reads: &BTreeSet<&'static str>) -> bool {
        any_dirty(self.prog, self.frame, reads.iter().copied())
    }

    /// Applies a skipped record's effects (clean: identical to the old
    /// execution).
    fn skip_record(&mut self, record: &StmtRecord) -> Result<(), PplError> {
        if let Some(summary) = record.summary() {
            apply_effects(self.prog, self.frame, &summary.effects, false)?;
        }
        self.stats.skipped += 1;
        if matches!(record, StmtRecord::For { .. } | StmtRecord::While { .. }) {
            // An entire loop skipped as one record — the O(1) claim.
            self.stats.loop_skips += 1;
        }
        Ok(())
    }

    /// Accounts for a removed old subtree: its observations enter the
    /// denominator, and variables it wrote are re-checked for dirtiness.
    fn remove_record(&mut self, summary: &Summary) {
        self.log_den += summary.obs_score;
        self.reconcile_writes(summary);
    }

    /// After re-executing (or removing) a statement with an old record,
    /// re-derives the dirtiness of every variable the old execution
    /// wrote: clean iff the current value equals the old final value.
    fn reconcile_writes(&mut self, old_summary: &Summary) {
        for effect in &old_summary.effects {
            match effect {
                Effect::Var(name, old_value) => {
                    if let Some(slot) = self.prog.slot_of(name) {
                        if let Some(s) = self.frame.get_mut(slot) {
                            s.dirty = !s.value.num_eq(old_value);
                        }
                    }
                }
                Effect::Elem(name, _, _) => {
                    // Element-level old finals cannot be reconstructed in
                    // isolation; stay with whatever dirtiness execution
                    // set (conservative).
                    let _ = name;
                }
            }
        }
    }

    fn exec_block(
        &mut self,
        block: CBlockId,
        plan: &PlanBlock,
        old: Option<BlockId>,
    ) -> Result<Vec<StmtId>, PplError> {
        let prog = self.prog;
        let old_blk: Option<&'a BlockRecord> = old.map(|b| self.old_block(b));
        let mut records = Vec::with_capacity(prog.block(block).stmts.len());
        for op in &plan.ops {
            match op {
                PlanOp::RemovedP(p_index) => {
                    if let Some(old_block) = old_blk {
                        let removed = self.old_stmt(old_block.stmts[*p_index]);
                        if let Some(summary) = removed.summary() {
                            self.remove_record(summary);
                        }
                    }
                }
                PlanOp::Stmt {
                    q_index,
                    p_index,
                    unchanged,
                    pre_index,
                    static_skip,
                    detail,
                } => {
                    // Compiled blocks are index-aligned with the AST
                    // blocks the plan was built from.
                    let stmt = prog.block(block).stmts[*q_index];
                    let old_sid: Option<StmtId> = match (old_blk, p_index) {
                        (Some(old_block), Some(i)) => Some(old_block.stmts[*i]),
                        _ => None,
                    };
                    let old_rec: Option<&'a StmtRecord> = old_sid.map(|sid| self.old_stmt(sid));
                    // Skip when nothing changed and no dirty inputs (the
                    // diff half of the check is precomputed in the plan).
                    if let Some(rec) = old_rec {
                        // Static pre-pruning: the plan proved this
                        // statement outside the impact slice, so its
                        // inputs cannot be dirty — skip without scanning
                        // the recorded read set. Bit-identical to the
                        // dynamic path (the dirty scan consumes no RNG).
                        if *static_skip {
                            self.skip_record(rec)?;
                            self.stats.static_skips += 1;
                            records.push(old_sid.expect("skip requires an old record"));
                            continue;
                        }
                        let clean = match rec.summary() {
                            Some(s) => !self.any_dirty(&s.reads),
                            None => true,
                        };
                        if *unchanged && clean {
                            self.skip_record(rec)?;
                            // O(1) subtree sharing: the old id is valid in
                            // the extending store.
                            records.push(old_sid.expect("skip requires an old record"));
                            continue;
                        }
                    }
                    self.stats.visited += 1;
                    if let Some(visited) = &mut self.oracle {
                        visited.insert(*pre_index);
                    }
                    let record = self.visit_stmt(stmt, detail, old_rec)?;
                    records.push(self.builder.push_stmt(record));
                }
            }
        }
        Ok(records)
    }

    fn visit_stmt(
        &mut self,
        stmt: CStmtId,
        detail: &PlanStmt,
        old_rec: Option<&'a StmtRecord>,
    ) -> Result<StmtRecord, PplError> {
        let prog = self.prog;
        match prog.stmt(stmt) {
            CStmt::Skip => Ok(StmtRecord::Skip),
            CStmt::Assign { slot, name, expr } => {
                let (slot, name, expr) = (*slot, *name, *expr);
                let mut summary = Summary::default();
                let value = self.eval(expr, &mut summary)?;
                let old_final = old_rec.and_then(final_var_value(name));
                let dirty = old_final.is_none_or(|old| !value.num_eq(old));
                self.frame.bind(slot, value.clone(), dirty);
                summary.effects.push(Effect::Var(name, value));
                Ok(StmtRecord::Leaf { summary })
            }
            CStmt::AssignIndex {
                slot,
                name,
                index,
                expr,
            } => {
                let (slot, name, index, expr) = (*slot, *name, *index, *expr);
                let mut summary = Summary::default();
                let i = self.eval(index, &mut summary)?.as_int()?;
                let value = self.eval(expr, &mut summary)?;
                summary.reads.insert(name);
                let old_elem = old_rec.and_then(|r| {
                    r.summary().and_then(|s| {
                        s.effects.iter().find_map(|e| match e {
                            Effect::Elem(n, j, v) if *n == name && *j == i => Some(v),
                            _ => None,
                        })
                    })
                });
                let changed = old_elem.is_none_or(|old| !value.num_eq(old));
                let s = self
                    .frame
                    .get_mut(slot)
                    .ok_or_else(|| PplError::UnboundVariable(name.to_string()))?;
                let items = s.value.as_array_mut()?;
                if i < 0 || i as usize >= items.len() {
                    return Err(PplError::IndexOutOfBounds {
                        index: i,
                        len: items.len(),
                    });
                }
                items[i as usize] = value.clone();
                s.dirty = s.dirty || changed;
                summary.effects.push(Effect::Elem(name, i, value));
                Ok(StmtRecord::Leaf { summary })
            }
            CStmt::Observe { rand, value } => {
                let value_e = *value;
                self.stats.observes_rescored += 1;
                let mut summary = Summary::default();
                let dist = self.build_dist(&rand.kind, &mut summary)?;
                let value = self.eval(value_e, &mut summary)?;
                let addr = self.address_for(rand);
                let log_prob = dist.log_prob(&value);
                // Numerator: the observation under Q.
                self.log_num += log_prob;
                // Denominator: the matched old observation, if any.
                if let Some(old_summary) = old_rec.and_then(StmtRecord::summary) {
                    self.log_den += old_summary.obs_score;
                }
                summary.obs_score += log_prob;
                summary.observations.push((
                    addr,
                    ObsData {
                        value,
                        dist,
                        log_prob,
                    },
                ));
                Ok(StmtRecord::Leaf { summary })
            }
            CStmt::If {
                cond,
                then_b,
                else_b,
            } => {
                let (cond, then_b, else_b) = (*cond, *then_b, *else_b);
                let PlanStmt::If {
                    matched,
                    fresh_then,
                    fresh_else,
                } = detail
                else {
                    return Err(plan_shape_mismatch("if"));
                };
                let mut summary = Summary::default();
                let took_then = self.eval(cond, &mut summary)?.truthy()?;
                let branch = if took_then { then_b } else { else_b };
                let (branch_plan, old_body) = match (matched, old_rec) {
                    (
                        Some((then_plan, else_plan)),
                        Some(StmtRecord::If {
                            took_then: old_took,
                            body,
                            ..
                        }),
                    ) if *old_took == took_then => {
                        let p = if took_then { then_plan } else { else_plan };
                        (p, Some(*body))
                    }
                    _ => {
                        // Branch flipped, statement replaced, or no old
                        // record: the old executed branch is removed and
                        // the new branch runs fresh.
                        if let Some(StmtRecord::If { body, .. }) = old_rec {
                            let removed = &self.old_block(*body).summary;
                            self.remove_record(removed);
                        }
                        let p = if took_then { fresh_then } else { fresh_else };
                        (p, None)
                    }
                };
                let body_records = self.exec_block(branch, branch_plan, old_body)?;
                let body_block = BlockRecord::finalize(&self.builder, body_records);
                summary
                    .reads
                    .extend(body_block.summary.reads.iter().cloned());
                summary
                    .effects
                    .extend(body_block.summary.effects.iter().cloned());
                summary.obs_score += body_block.summary.obs_score;
                let body = self.builder.push_block(body_block);
                if let Some(old_summary) = old_rec.and_then(StmtRecord::summary) {
                    self.reconcile_writes(old_summary);
                }
                Ok(StmtRecord::If {
                    took_then,
                    body,
                    summary,
                })
            }
            CStmt::For {
                slot,
                name,
                lo,
                hi,
                body,
            } => {
                let (slot, var_name, lo_e, hi_e, body) = (*slot, *name, *lo, *hi, *body);
                let PlanStmt::For {
                    body: body_plan,
                    body_unchanged,
                } = detail
                else {
                    return Err(plan_shape_mismatch("for"));
                };
                let mut summary = Summary::default();
                let lo = self.eval(lo_e, &mut summary)?.as_int()?;
                let hi = self.eval(hi_e, &mut summary)?.as_int()?;
                let old_for: Option<(i64, i64, &'a [BlockId])> = match old_rec {
                    Some(StmtRecord::For { lo, hi, iters, .. }) => Some((*lo, *hi, iters)),
                    _ => None,
                };
                let mut iters = Vec::with_capacity((hi - lo).max(0) as usize);
                let mut written: BTreeSet<&'static str> = BTreeSet::new();
                written.insert(var_name);
                for i in lo..hi {
                    self.frame.bind(slot, Value::Int(i), false);
                    let old_iter: Option<BlockId> =
                        old_for.and_then(|(old_lo, old_hi, old_iters)| {
                            if old_lo <= i && i < old_hi {
                                old_iters.get((i - old_lo) as usize).copied()
                            } else {
                                None
                            }
                        });
                    let skippable = *body_unchanged
                        && match old_iter {
                            Some(oid) => {
                                let reads = &self.old_block(oid).summary.reads;
                                !self.any_dirty(reads)
                            }
                            None => false,
                        };
                    let iter_id = match old_iter {
                        Some(oid) if skippable => {
                            // Skip the whole iteration; share its record
                            // by id.
                            let old_sum = &self.old_block(oid).summary;
                            apply_effects(self.prog, self.frame, &old_sum.effects, false)?;
                            self.stats.skipped += 1;
                            self.stats.iter_skips += 1;
                            oid
                        }
                        _ => {
                            self.stats.visited += 1;
                            self.frame.push_loop(i);
                            let result = self.exec_block(body, body_plan, old_iter);
                            self.frame.pop_loop();
                            let block = BlockRecord::finalize(&self.builder, result?);
                            self.builder.push_block(block)
                        }
                    };
                    // Def-before-use across iterations: a read satisfied
                    // by an earlier iteration's write is loop-internal.
                    let iter_sum = &self.builder.block(iter_id).summary;
                    summary.reads.extend(
                        iter_sum
                            .reads
                            .iter()
                            .filter(|r| !written.contains(*r))
                            .copied(),
                    );
                    summary.obs_score += iter_sum.obs_score;
                    for effect in &iter_sum.effects {
                        written.insert(effect.var_name());
                    }
                    iters.push(iter_id);
                }
                // Old iterations beyond the new bounds were removed.
                if let Some((old_lo, old_hi, old_iters)) = old_for {
                    for i in old_lo..old_hi {
                        if i < lo || i >= hi {
                            let removed = &self.old_block(old_iters[(i - old_lo) as usize]).summary;
                            self.remove_record(removed);
                        }
                    }
                }
                for name in &written {
                    if let Some(slot) = prog.slot_of(name) {
                        if let Some(s) = self.frame.get(slot) {
                            summary.effects.push(Effect::Var(name, s.value.clone()));
                        }
                    }
                }
                summary.reads.remove(var_name);
                if let Some(old_summary) = old_rec.and_then(StmtRecord::summary) {
                    self.reconcile_writes(old_summary);
                }
                Ok(StmtRecord::For {
                    lo,
                    hi,
                    iters,
                    summary,
                })
            }
            CStmt::While { cond, body } => {
                let (cond_e, body) = (*cond, *body);
                let PlanStmt::While {
                    body: body_plan,
                    iter_skippable,
                } = detail
                else {
                    return Err(plan_shape_mismatch("while"));
                };
                let mut summary = Summary::default();
                let old_iters: Option<&'a Vec<crate::record::WhileIter>> = match old_rec {
                    Some(StmtRecord::While { iters, .. }) => Some(iters),
                    _ => None,
                };
                let mut iters: Vec<crate::record::WhileIter> = Vec::new();
                let mut written: BTreeSet<&'static str> = BTreeSet::new();
                let mut i = 0_i64;
                loop {
                    let old_iter = old_iters.and_then(|v| v.get(i as usize));
                    // Skip the iteration wholesale when nothing can have
                    // changed (same code, clean inputs).
                    if let Some(old_iter) = old_iter {
                        let clean = *iter_skippable
                            && !any_dirty(self.prog, self.frame, old_iter.reads(self.old.store()));
                        if clean {
                            if let Some(b) = old_iter.body {
                                let body_sum = &self.old_block(b).summary;
                                apply_effects(self.prog, self.frame, &body_sum.effects, false)?;
                            }
                            self.stats.skipped += 1;
                            self.stats.iter_skips += 1;
                            summary.reads.extend(
                                old_iter
                                    .reads(self.old.store())
                                    .filter(|r| !written.contains(*r)),
                            );
                            summary.obs_score += old_iter.obs_score(self.old.store());
                            for effect in old_iter
                                .body
                                .iter()
                                .flat_map(|b| self.old_block(*b).summary.effects.iter())
                            {
                                written.insert(effect.var_name());
                            }
                            let continued = old_iter.continued;
                            iters.push(old_iter.clone());
                            if !continued {
                                break;
                            }
                            i += 1;
                            continue;
                        }
                    }
                    // Visit: re-evaluate the condition (reusing choices
                    // through the correspondence) and, when it holds, the
                    // body against the matched old records.
                    self.stats.visited += 1;
                    self.frame.push_loop(i);
                    let mut cond_sum = Summary::default();
                    let continued = self.eval(cond_e, &mut cond_sum).and_then(|v| v.truthy());
                    let continued = match continued {
                        Ok(b) => b,
                        Err(e) => {
                            self.frame.pop_loop();
                            return Err(e);
                        }
                    };
                    summary.reads.extend(
                        cond_sum
                            .reads
                            .iter()
                            .filter(|r| !written.contains(*r))
                            .copied(),
                    );
                    summary.obs_score += cond_sum.obs_score;
                    if !continued {
                        self.frame.pop_loop();
                        iters.push(crate::record::WhileIter {
                            cond: cond_sum,
                            continued: false,
                            body: None,
                        });
                        // The old iteration at this index may have had a
                        // body that no longer runs.
                        if let Some(old_iter) = old_iter {
                            if let Some(b) = old_iter.body {
                                let removed = &self.old_block(b).summary;
                                self.remove_record(removed);
                            }
                        }
                        break;
                    }
                    let old_body: Option<BlockId> = old_iter.and_then(|it| it.body);
                    let body_result = self.exec_block(body, body_plan, old_body);
                    self.frame.pop_loop();
                    let body_rec = BlockRecord::finalize(&self.builder, body_result?);
                    summary.reads.extend(
                        body_rec
                            .summary
                            .reads
                            .iter()
                            .filter(|r| !written.contains(*r))
                            .copied(),
                    );
                    summary.obs_score += body_rec.summary.obs_score;
                    for effect in &body_rec.summary.effects {
                        written.insert(effect.var_name());
                    }
                    iters.push(crate::record::WhileIter {
                        cond: cond_sum,
                        continued: true,
                        body: Some(self.builder.push_block(body_rec)),
                    });
                    i += 1;
                    if i > 10_000_000 {
                        return Err(PplError::FuelExhausted { budget: 10_000_000 });
                    }
                }
                // Old iterations beyond the new termination point were
                // removed entirely.
                if let Some(old_iters) = old_iters {
                    for old_iter in old_iters.iter().skip(iters.len()) {
                        self.log_den += old_iter.obs_score(self.old.store());
                        if let Some(b) = old_iter.body {
                            let removed = &self.old_block(b).summary;
                            self.reconcile_writes(removed);
                        }
                    }
                }
                for name in &written {
                    if let Some(slot) = prog.slot_of(name) {
                        if let Some(s) = self.frame.get(slot) {
                            summary.effects.push(Effect::Var(name, s.value.clone()));
                        }
                    }
                }
                if let Some(old_summary) = old_rec.and_then(StmtRecord::summary) {
                    self.reconcile_writes(old_summary);
                }
                Ok(StmtRecord::While { iters, summary })
            }
        }
    }
}

/// Extracts the old final value of `name` from a record's summary.
fn final_var_value(name: &str) -> impl Fn(&StmtRecord) -> Option<&Value> + '_ {
    move |record: &StmtRecord| {
        record.summary().and_then(|s| {
            s.effects.iter().rev().find_map(|e| match e {
                Effect::Var(n, v) if *n == name => Some(v),
                _ => None,
            })
        })
    }
}

/// A [`StagePlan`] node's shape disagreed with the statement it was
/// paired with — only possible if a plan built for a different edit is
/// passed to [`translate_graph_with_plan`].
fn plan_shape_mismatch(at: &str) -> PplError {
    PplError::Other(format!(
        "stage plan does not match the target program (at `{at}` statement)"
    ))
}
