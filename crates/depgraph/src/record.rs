//! Execution graphs: the trace representation of Section 6.
//!
//! "We assume that t is provided to the algorithm in the form of a graph
//! data structure G_t, where every expression, sub-expression, and
//! statement evaluated during the construction of t is a node." Our
//! [`ExecGraph`] stores one *record* per executed statement instance,
//! organized as a tree mirroring the program structure; dependencies are
//! tracked through variable read/write *summaries* on each record rather
//! than explicit edges (the summaries are what change propagation needs).
//!
//! Records are reference-counted (`Arc`, so graphs are `Send + Sync` and
//! particles can carry them across worker threads) so that the
//! incremental translator can share unchanged subtrees between `G_t` and
//! `G_u` in O(1) — the key to the `O(K)` hyperparameter edit of
//! Figure 10.

use std::collections::BTreeSet;
use std::hash::Hasher as _;
use std::sync::{Arc, OnceLock};

use ppl::ast::Program;
use ppl::dist::Dist;
use ppl::{Address, AddressId, AddressInterner, FxHashMap, LogWeight, PplError, Trace, Value};

/// The recorded data of one random choice.
#[derive(Debug, Clone)]
pub struct ChoiceData {
    /// The value.
    pub value: Value,
    /// The distribution with concrete parameters at evaluation time.
    pub dist: Dist,
    /// Its log probability.
    pub log_prob: LogWeight,
}

/// The recorded data of one observation.
#[derive(Debug, Clone)]
pub struct ObsData {
    /// The observed value.
    pub value: Value,
    /// The observation distribution.
    pub dist: Dist,
    /// Its log likelihood.
    pub log_prob: LogWeight,
}

/// One write performed by a statement.
#[derive(Debug, Clone)]
pub enum Effect {
    /// `x = value`
    Var(String, Value),
    /// `x[i] = value`
    Elem(String, i64, Value),
}

impl Effect {
    /// The written variable's name.
    pub fn var_name(&self) -> &str {
        match self {
            Effect::Var(name, _) | Effect::Elem(name, _, _) => name,
        }
    }
}

/// Dependency summary of a record subtree.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Variables read anywhere in the subtree (including loop variables
    /// and array index expressions).
    pub reads: BTreeSet<String>,
    /// Writes, in execution order. Loop records compress element writes
    /// into one final [`Effect::Var`] snapshot per variable (O(1) to
    /// apply thanks to `Arc`-backed arrays).
    pub effects: Vec<Effect>,
    /// Random choices made directly by this record (leaves, conditions,
    /// and bounds — not descendants).
    pub choices: Vec<(Address, ChoiceData)>,
    /// Observations made directly by this record.
    pub observations: Vec<(Address, ObsData)>,
    /// Total observation log likelihood of the subtree *including*
    /// descendants — the "removed observation" factor of Section 6.
    pub obs_score: LogWeight,
}

/// A recorded statement instance.
#[derive(Debug, Clone)]
pub enum StmtRecord {
    /// `skip`
    Skip,
    /// A leaf statement: assignment, element assignment, or observation.
    Leaf {
        /// Dependency summary.
        summary: Summary,
    },
    /// An executed `if`.
    If {
        /// Whether the then-branch was taken.
        took_then: bool,
        /// The executed branch's records.
        body: Arc<BlockRecord>,
        /// Summary covering the condition and the executed branch.
        summary: Summary,
    },
    /// An executed `for` loop.
    For {
        /// Evaluated lower bound.
        lo: i64,
        /// Evaluated upper bound (exclusive).
        hi: i64,
        /// Per-iteration records, indexed `0 ↦ lo`, `1 ↦ lo+1`, ….
        iters: Vec<Arc<BlockRecord>>,
        /// Summary with compressed (snapshot) effects.
        summary: Summary,
    },
    /// An executed `while` loop.
    While {
        /// Per-iteration records (the last one has `continued == false`
        /// and no body).
        iters: Vec<WhileIter>,
        /// Summary with compressed (snapshot) effects.
        summary: Summary,
    },
}

/// One iteration of a recorded `while` loop: the condition evaluation
/// plus, when the condition held, the body.
#[derive(Debug, Clone)]
pub struct WhileIter {
    /// Reads and random choices of the condition evaluation at this
    /// iteration (addresses carry the iteration index).
    pub cond: Summary,
    /// Whether the condition evaluated to true (and the body ran).
    pub continued: bool,
    /// The body records (present iff `continued`).
    pub body: Option<Arc<BlockRecord>>,
}

impl WhileIter {
    /// Aggregate observation score of the iteration (condition + body).
    pub fn obs_score(&self) -> LogWeight {
        let body = self
            .body
            .as_ref()
            .map(|b| b.summary.obs_score)
            .unwrap_or(LogWeight::ONE);
        self.cond.obs_score + body
    }

    /// Reads of the iteration (condition + body), for skip checks.
    pub fn reads(&self) -> impl Iterator<Item = &String> {
        self.cond
            .reads
            .iter()
            .chain(self.body.iter().flat_map(|b| b.summary.reads.iter()))
    }
}

impl StmtRecord {
    /// The record's dependency summary (empty for `skip`).
    pub fn summary(&self) -> Option<&Summary> {
        match self {
            StmtRecord::Skip => None,
            StmtRecord::Leaf { summary }
            | StmtRecord::If { summary, .. }
            | StmtRecord::For { summary, .. }
            | StmtRecord::While { summary, .. } => Some(summary),
        }
    }
}

/// The records of one executed block, with an aggregate summary.
#[derive(Debug, Clone, Default)]
pub struct BlockRecord {
    /// One record per executed statement, in order.
    pub stmts: Vec<Arc<StmtRecord>>,
    /// Aggregate summary of the whole block.
    pub summary: Summary,
}

impl BlockRecord {
    /// Builds the aggregate summary from the statement records.
    ///
    /// Reads are filtered def-before-use: a variable read by a statement
    /// does not become a *block* read if an earlier statement of the
    /// block already wrote it — only genuinely external dependencies
    /// surface. (An element write counts as a definition because the
    /// writing statement records its own read of the array, so the
    /// array's external dependency — if any — is already surfaced.)
    /// This is what lets change propagation skip an entire unchanged
    /// loop whose body wires its iterations together through variables
    /// defined inside the loop.
    pub fn finalize(stmts: Vec<Arc<StmtRecord>>) -> BlockRecord {
        let mut summary = Summary::default();
        let mut written: BTreeSet<String> = BTreeSet::new();
        for stmt in &stmts {
            if let Some(s) = stmt.summary() {
                summary
                    .reads
                    .extend(s.reads.iter().filter(|r| !written.contains(*r)).cloned());
                summary.effects.extend(s.effects.iter().cloned());
                summary.obs_score += s.obs_score;
                written.extend(s.effects.iter().map(|e| e.var_name().to_string()));
            }
        }
        BlockRecord { stmts, summary }
    }
}

/// The execution graph `G_t` of a program `P` on a trace `t`.
///
/// The by-address indices are built lazily on first lookup, so that
/// *producing* a translated graph stays proportional to the number of
/// visited nodes (the Figure 10 `O(K)` property), while repeated reuse
/// lookups against an input graph are O(1).
#[derive(Debug, Clone, Default)]
struct Indexes {
    choices: FxHashMap<AddressId, ChoiceData>,
    observations: FxHashMap<AddressId, ObsData>,
}

/// The execution graph of one program run.
#[derive(Debug, Clone)]
pub struct ExecGraph {
    /// The program this graph was built from (shared, so graphs produced
    /// by a chain of translations alias one allocation per program and
    /// validation can compare `Arc` identity).
    pub program: Arc<Program>,
    /// The root block record.
    pub root: Arc<BlockRecord>,
    /// The return value of the execution.
    pub return_value: Value,
    indexes: OnceLock<Indexes>,
    fingerprint: OnceLock<u64>,
}

/// A cheap structural fingerprint of a program (FxHash of its debug
/// form). Used to validate graph/translator pairing without deep
/// `Program` equality on every translation.
pub fn program_fingerprint(program: &Program) -> u64 {
    let mut hasher = ppl::FxHasher::default();
    hasher.write(format!("{program:?}").as_bytes());
    hasher.finish()
}

impl ExecGraph {
    /// Assembles a graph. The address indices are built lazily; duplicate
    /// addresses (which only well-formed programs avoid) surface as
    /// [`PplError::AddressCollision`] from [`ExecGraph::to_trace`].
    pub fn assemble(
        program: Arc<Program>,
        root: Arc<BlockRecord>,
        return_value: Value,
    ) -> ExecGraph {
        ExecGraph {
            program,
            root,
            return_value,
            indexes: OnceLock::new(),
            fingerprint: OnceLock::new(),
        }
    }

    /// The fingerprint of this graph's program, computed once per graph.
    pub fn fingerprint(&self) -> u64 {
        *self
            .fingerprint
            .get_or_init(|| program_fingerprint(&self.program))
    }

    fn indexes(&self) -> &Indexes {
        self.indexes.get_or_init(|| {
            let mut idx = Indexes::default();
            index_block(&self.root, &mut idx);
            idx
        })
    }

    /// Forces the lazy index build (useful before timing translations).
    pub fn warm_index(&self) {
        let _ = self.indexes();
    }

    /// Looks up the choice at `addr` in `t`.
    pub fn choice(&self, addr: &Address) -> Option<&ChoiceData> {
        AddressInterner::global()
            .get(addr)
            .and_then(|id| self.choice_by_id(id))
    }

    /// Looks up the choice at an interned address id (the hot path:
    /// change propagation resolves every reuse candidate through here).
    pub fn choice_by_id(&self, id: AddressId) -> Option<&ChoiceData> {
        self.indexes().choices.get(&id)
    }

    /// Looks up the observation at `addr`.
    pub fn observation(&self, addr: &Address) -> Option<&ObsData> {
        AddressInterner::global()
            .get(addr)
            .and_then(|id| self.observation_by_id(id))
    }

    /// Looks up the observation at an interned address id.
    pub fn observation_by_id(&self, id: AddressId) -> Option<&ObsData> {
        self.indexes().observations.get(&id)
    }

    /// Number of recorded choices.
    pub fn num_choices(&self) -> usize {
        self.indexes().choices.len()
    }

    /// `log P̃r[t ∼ P]`: total score of the recorded execution.
    pub fn score(&self) -> LogWeight {
        let idx = self.indexes();
        let choice_score: LogWeight = idx.choices.values().map(|c| c.log_prob).sum();
        let obs_score: LogWeight = idx.observations.values().map(|o| o.log_prob).sum();
        choice_score + obs_score
    }

    /// Flattens the graph into a [`Trace`] (O(trace size)).
    ///
    /// # Errors
    ///
    /// Returns [`PplError::AddressCollision`] on duplicate addresses.
    pub fn to_trace(&self) -> Result<Trace, PplError> {
        let mut trace = Trace::new();
        flatten_block(&self.root, &mut trace)?;
        trace.set_return_value(self.return_value.clone());
        Ok(trace)
    }
}

fn index_block(block: &BlockRecord, idx: &mut Indexes) {
    for stmt in &block.stmts {
        if let Some(summary) = stmt.summary() {
            for (addr, data) in &summary.choices {
                idx.choices.entry(addr.id()).or_insert_with(|| data.clone());
            }
            for (addr, data) in &summary.observations {
                idx.observations
                    .entry(addr.id())
                    .or_insert_with(|| data.clone());
            }
        }
        match &**stmt {
            StmtRecord::If { body, .. } => index_block(body, idx),
            StmtRecord::For { iters, .. } => {
                for iter in iters {
                    index_block(iter, idx);
                }
            }
            StmtRecord::While { iters, .. } => {
                for iter in iters {
                    for (addr, data) in &iter.cond.choices {
                        idx.choices.entry(addr.id()).or_insert_with(|| data.clone());
                    }
                    for (addr, data) in &iter.cond.observations {
                        idx.observations
                            .entry(addr.id())
                            .or_insert_with(|| data.clone());
                    }
                    if let Some(body) = &iter.body {
                        index_block(body, idx);
                    }
                }
            }
            _ => {}
        }
    }
}

fn flatten_block(block: &BlockRecord, trace: &mut Trace) -> Result<(), PplError> {
    for stmt in &block.stmts {
        if let Some(summary) = stmt.summary() {
            for (addr, data) in &summary.choices {
                trace.record_choice(
                    addr.clone(),
                    data.value.clone(),
                    data.dist.clone(),
                    data.log_prob,
                )?;
            }
            for (addr, data) in &summary.observations {
                trace.record_observation(
                    addr.clone(),
                    data.value.clone(),
                    data.dist.clone(),
                    data.log_prob,
                )?;
            }
        }
        match &**stmt {
            StmtRecord::If { body, .. } => flatten_block(body, trace)?,
            StmtRecord::For { iters, .. } => {
                for iter in iters {
                    flatten_block(iter, trace)?;
                }
            }
            StmtRecord::While { iters, .. } => {
                for iter in iters {
                    for (addr, data) in &iter.cond.choices {
                        trace.record_choice(
                            addr.clone(),
                            data.value.clone(),
                            data.dist.clone(),
                            data.log_prob,
                        )?;
                    }
                    for (addr, data) in &iter.cond.observations {
                        trace.record_observation(
                            addr.clone(),
                            data.value.clone(),
                            data.dist.clone(),
                            data.log_prob,
                        )?;
                    }
                    if let Some(body) = &iter.body {
                        flatten_block(body, trace)?;
                    }
                }
            }
            _ => {}
        }
    }
    Ok(())
}
