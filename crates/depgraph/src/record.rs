//! Execution graphs: the trace representation of Section 6.
//!
//! "We assume that t is provided to the algorithm in the form of a graph
//! data structure G_t, where every expression, sub-expression, and
//! statement evaluated during the construction of t is a node." Our
//! [`ExecGraph`] stores one *record* per executed statement instance,
//! organized as a tree mirroring the program structure; dependencies are
//! tracked through variable read/write *summaries* on each record rather
//! than explicit edges (the summaries are what change propagation needs).
//!
//! Records live in an arena ([`NodeStore`]): append-only segments of
//! contiguous `StmtRecord`/`BlockRecord` buffers, addressed by `u32` node
//! ids ([`StmtId`], [`BlockId`]). A translated graph's store *extends*
//! its input's store — the old segments are shared by `Arc` and only one
//! new tail segment is appended per translation — so old node ids stay
//! valid in the new graph and the incremental translator shares an
//! unchanged subtree between `G_t` and `G_u` by copying a 4-byte id
//! (O(1), the key to the `O(K)` hyperparameter edit of Figure 10).
//! Duplicating a graph under resampling clones `Arc` handles to the
//! segment buffers, never the nodes. Segment buffers whose last graph
//! drops return their capacity to a pool for reuse by later stages.

use std::collections::BTreeSet;
use std::hash::Hasher as _;
use std::sync::{Arc, Mutex, OnceLock};

use ppl::ast::Program;
use ppl::dist::Dist;
use ppl::{Address, AddressId, AddressInterner, FxHashMap, LogWeight, PplError, Trace, Value};

/// The global variable-name interner, shared with the compiled-program
/// slot tables in [`ppl::compile`].
///
/// Dependency summaries hold reads as `&'static str`, so aggregating a
/// child summary into its parent (done once per visited block, at every
/// nesting level, for every particle) copies pointer-sized values
/// instead of allocating a `String` per name. Sharing one interner with
/// `ppl` means a compiled slot name and a summary read of the same
/// variable are the *same* pointer.
pub use ppl::intern_name;

/// The recorded data of one random choice.
#[derive(Debug, Clone)]
pub struct ChoiceData {
    /// The value.
    pub value: Value,
    /// The distribution with concrete parameters at evaluation time.
    pub dist: Dist,
    /// Its log probability.
    pub log_prob: LogWeight,
}

/// The recorded data of one observation.
#[derive(Debug, Clone)]
pub struct ObsData {
    /// The observed value.
    pub value: Value,
    /// The observation distribution.
    pub dist: Dist,
    /// Its log likelihood.
    pub log_prob: LogWeight,
}

/// One write performed by a statement.
#[derive(Debug, Clone)]
pub enum Effect {
    /// `x = value`
    Var(&'static str, Value),
    /// `x[i] = value`
    Elem(&'static str, i64, Value),
}

impl Effect {
    /// The written variable's name ([`intern_name`]-interned, so effect
    /// aggregation copies pointers, not strings).
    pub fn var_name(&self) -> &'static str {
        match self {
            Effect::Var(name, _) | Effect::Elem(name, _, _) => name,
        }
    }
}

/// Arena id of a [`StmtRecord`] in a [`NodeStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StmtId(u32);

/// Arena id of a [`BlockRecord`] in a [`NodeStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockId(u32);

/// Record types whose segment buffers are capacity-pooled on drop.
trait PooledRecord: Sized + 'static {
    fn capacity_pool() -> &'static Mutex<Vec<Vec<Self>>>;
}

static STMT_POOL: Mutex<Vec<Vec<StmtRecord>>> = Mutex::new(Vec::new());
static BLOCK_POOL: Mutex<Vec<Vec<BlockRecord>>> = Mutex::new(Vec::new());

/// Retained pooled buffers per record type (beyond this, capacity is
/// simply freed).
const POOL_MAX: usize = 64;

impl PooledRecord for StmtRecord {
    fn capacity_pool() -> &'static Mutex<Vec<Vec<StmtRecord>>> {
        &STMT_POOL
    }
}

impl PooledRecord for BlockRecord {
    fn capacity_pool() -> &'static Mutex<Vec<Vec<BlockRecord>>> {
        &BLOCK_POOL
    }
}

fn pooled_vec<T: PooledRecord>() -> Vec<T> {
    match T::capacity_pool().lock().ok().and_then(|mut p| p.pop()) {
        Some(v) => {
            incremental::metrics::note_arena_recycle();
            v
        }
        None => Vec::new(),
    }
}

/// One contiguous arena segment. Dropping the last `Arc` to a segment
/// drops its nodes and returns the buffer's capacity to the pool.
#[derive(Debug)]
struct Seg<T: PooledRecord> {
    items: Vec<T>,
}

impl<T: PooledRecord> Drop for Seg<T> {
    fn drop(&mut self) {
        incremental::metrics::note_arena_free(self.items.len() as u64);
        let mut buf = std::mem::take(&mut self.items);
        buf.clear();
        if buf.capacity() > 0 {
            if let Ok(mut pool) = T::capacity_pool().lock() {
                if pool.len() < POOL_MAX {
                    pool.push(buf);
                }
            }
        }
    }
}

/// Arena-backed node storage of an [`ExecGraph`].
///
/// Node ids are global offsets; segments partition the id space in
/// order, so a lookup binary-searches the (short) segment base list and
/// indexes one contiguous buffer. A store built by
/// [`StoreBuilder::extending`] shares every existing segment and appends
/// one tail, which keeps all prior ids valid (the prefix property the
/// incremental translator's O(1) subtree sharing relies on).
#[derive(Debug, Clone, Default)]
pub struct NodeStore {
    stmt_segs: Vec<Arc<Seg<StmtRecord>>>,
    stmt_bases: Vec<u32>,
    stmt_len: u32,
    block_segs: Vec<Arc<Seg<BlockRecord>>>,
    block_bases: Vec<u32>,
    block_len: u32,
}

fn seg_index(bases: &[u32], id: u32) -> usize {
    bases.partition_point(|&b| b <= id) - 1
}

impl NodeStore {
    /// Resolves a statement record.
    pub fn stmt(&self, id: StmtId) -> &StmtRecord {
        let i = seg_index(&self.stmt_bases, id.0);
        &self.stmt_segs[i].items[(id.0 - self.stmt_bases[i]) as usize]
    }

    /// Resolves a block record.
    pub fn block(&self, id: BlockId) -> &BlockRecord {
        let i = seg_index(&self.block_bases, id.0);
        &self.block_segs[i].items[(id.0 - self.block_bases[i]) as usize]
    }

    /// Total nodes (statement + block records) addressable in this
    /// store, including segments shared with ancestor graphs.
    pub fn len(&self) -> usize {
        self.stmt_len as usize + self.block_len as usize
    }

    /// Whether the store holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of arena segments (grows by at most one per translation).
    pub fn segments(&self) -> usize {
        self.stmt_segs.len() + self.block_segs.len()
    }
}

/// Append-side handle for building a [`NodeStore`]: either from scratch
/// ([`StoreBuilder::new`]) or extending an existing graph's store with
/// one tail segment ([`StoreBuilder::extending`]). Children must be
/// pushed before the parents that reference them.
#[derive(Debug)]
pub struct StoreBuilder {
    base: NodeStore,
    stmt_tail: Vec<StmtRecord>,
    block_tail: Vec<BlockRecord>,
}

impl Default for StoreBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl StoreBuilder {
    /// Starts an empty store (building a graph from scratch).
    pub fn new() -> StoreBuilder {
        Self::extending(&NodeStore::default())
    }

    /// Starts a store that shares every segment of `base` — all of
    /// `base`'s node ids remain valid in the finished store.
    pub fn extending(base: &NodeStore) -> StoreBuilder {
        StoreBuilder {
            base: base.clone(),
            stmt_tail: pooled_vec(),
            block_tail: pooled_vec(),
        }
    }

    /// Appends a statement record, returning its id.
    pub fn push_stmt(&mut self, record: StmtRecord) -> StmtId {
        let id = StmtId(self.base.stmt_len + self.stmt_tail.len() as u32);
        self.stmt_tail.push(record);
        id
    }

    /// Appends a block record, returning its id.
    pub fn push_block(&mut self, record: BlockRecord) -> BlockId {
        let id = BlockId(self.base.block_len + self.block_tail.len() as u32);
        self.block_tail.push(record);
        id
    }

    /// Resolves a statement record (base prefix or pending tail).
    pub fn stmt(&self, id: StmtId) -> &StmtRecord {
        if id.0 >= self.base.stmt_len {
            &self.stmt_tail[(id.0 - self.base.stmt_len) as usize]
        } else {
            self.base.stmt(id)
        }
    }

    /// Resolves a block record (base prefix or pending tail).
    pub fn block(&self, id: BlockId) -> &BlockRecord {
        if id.0 >= self.base.block_len {
            &self.block_tail[(id.0 - self.base.block_len) as usize]
        } else {
            self.base.block(id)
        }
    }

    /// Seals the tail into a segment and returns the finished store.
    pub fn finish(self) -> NodeStore {
        let mut store = self.base;
        let appended = (self.stmt_tail.len() + self.block_tail.len()) as u64;
        if !self.stmt_tail.is_empty() {
            store.stmt_bases.push(store.stmt_len);
            store.stmt_len += self.stmt_tail.len() as u32;
            store.stmt_segs.push(Arc::new(Seg {
                items: self.stmt_tail,
            }));
        }
        if !self.block_tail.is_empty() {
            store.block_bases.push(store.block_len);
            store.block_len += self.block_tail.len() as u32;
            store.block_segs.push(Arc::new(Seg {
                items: self.block_tail,
            }));
        }
        incremental::metrics::note_arena_alloc(appended);
        store
    }
}

/// Dependency summary of a record subtree.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Variables read anywhere in the subtree (including loop variables
    /// and array index expressions), as [`intern_name`]-interned names so
    /// summary aggregation copies pointers, not strings.
    pub reads: BTreeSet<&'static str>,
    /// Writes, in execution order. Loop records compress element writes
    /// into one final [`Effect::Var`] snapshot per variable (O(1) to
    /// apply thanks to `Arc`-backed arrays).
    pub effects: Vec<Effect>,
    /// Random choices made directly by this record (leaves, conditions,
    /// and bounds — not descendants).
    pub choices: Vec<(Address, ChoiceData)>,
    /// Observations made directly by this record.
    pub observations: Vec<(Address, ObsData)>,
    /// Total observation log likelihood of the subtree *including*
    /// descendants — the "removed observation" factor of Section 6.
    pub obs_score: LogWeight,
}

/// A recorded statement instance.
#[derive(Debug, Clone)]
pub enum StmtRecord {
    /// `skip`
    Skip,
    /// A leaf statement: assignment, element assignment, or observation.
    Leaf {
        /// Dependency summary.
        summary: Summary,
    },
    /// An executed `if`.
    If {
        /// Whether the then-branch was taken.
        took_then: bool,
        /// The executed branch's records.
        body: BlockId,
        /// Summary covering the condition and the executed branch.
        summary: Summary,
    },
    /// An executed `for` loop.
    For {
        /// Evaluated lower bound.
        lo: i64,
        /// Evaluated upper bound (exclusive).
        hi: i64,
        /// Per-iteration records, indexed `0 ↦ lo`, `1 ↦ lo+1`, ….
        iters: Vec<BlockId>,
        /// Summary with compressed (snapshot) effects.
        summary: Summary,
    },
    /// An executed `while` loop.
    While {
        /// Per-iteration records (the last one has `continued == false`
        /// and no body).
        iters: Vec<WhileIter>,
        /// Summary with compressed (snapshot) effects.
        summary: Summary,
    },
}

/// One iteration of a recorded `while` loop: the condition evaluation
/// plus, when the condition held, the body.
#[derive(Debug, Clone)]
pub struct WhileIter {
    /// Reads and random choices of the condition evaluation at this
    /// iteration (addresses carry the iteration index).
    pub cond: Summary,
    /// Whether the condition evaluated to true (and the body ran).
    pub continued: bool,
    /// The body records (present iff `continued`).
    pub body: Option<BlockId>,
}

impl WhileIter {
    /// Aggregate observation score of the iteration (condition + body).
    pub fn obs_score(&self, store: &NodeStore) -> LogWeight {
        let body = self
            .body
            .map(|b| store.block(b).summary.obs_score)
            .unwrap_or(LogWeight::ONE);
        self.cond.obs_score + body
    }

    /// Reads of the iteration (condition + body), for skip checks.
    pub fn reads<'s>(&'s self, store: &'s NodeStore) -> impl Iterator<Item = &'static str> + 's {
        self.cond.reads.iter().copied().chain(
            self.body
                .iter()
                .flat_map(move |b| store.block(*b).summary.reads.iter().copied()),
        )
    }
}

impl StmtRecord {
    /// The record's dependency summary (empty for `skip`).
    pub fn summary(&self) -> Option<&Summary> {
        match self {
            StmtRecord::Skip => None,
            StmtRecord::Leaf { summary }
            | StmtRecord::If { summary, .. }
            | StmtRecord::For { summary, .. }
            | StmtRecord::While { summary, .. } => Some(summary),
        }
    }
}

/// The records of one executed block, with an aggregate summary.
#[derive(Debug, Clone, Default)]
pub struct BlockRecord {
    /// One record per executed statement, in order.
    pub stmts: Vec<StmtId>,
    /// Aggregate summary of the whole block.
    pub summary: Summary,
}

impl BlockRecord {
    /// Builds the aggregate summary from the statement records (resolved
    /// through `builder`, which holds both the shared prefix and the
    /// records pushed during the current build/translation).
    ///
    /// Reads are filtered def-before-use: a variable read by a statement
    /// does not become a *block* read if an earlier statement of the
    /// block already wrote it — only genuinely external dependencies
    /// surface. (An element write counts as a definition because the
    /// writing statement records its own read of the array, so the
    /// array's external dependency — if any — is already surfaced.)
    /// This is what lets change propagation skip an entire unchanged
    /// loop whose body wires its iterations together through variables
    /// defined inside the loop.
    pub fn finalize(builder: &StoreBuilder, stmts: Vec<StmtId>) -> BlockRecord {
        let mut summary = Summary::default();
        let mut written: BTreeSet<&str> = BTreeSet::new();
        for &sid in &stmts {
            if let Some(s) = builder.stmt(sid).summary() {
                summary
                    .reads
                    .extend(s.reads.iter().filter(|r| !written.contains(*r)).copied());
                summary.effects.extend(s.effects.iter().cloned());
                summary.obs_score += s.obs_score;
                written.extend(s.effects.iter().map(|e| e.var_name()));
            }
        }
        BlockRecord { stmts, summary }
    }
}

/// The execution graph `G_t` of a program `P` on a trace `t`.
///
/// The by-address indices are built lazily on first lookup, so that
/// *producing* a translated graph stays proportional to the number of
/// visited nodes (the Figure 10 `O(K)` property), while repeated reuse
/// lookups against an input graph are O(1).
#[derive(Debug, Clone, Default)]
struct Indexes {
    choices: FxHashMap<AddressId, ChoiceData>,
    observations: FxHashMap<AddressId, ObsData>,
}

/// The execution graph of one program run.
#[derive(Debug, Clone)]
pub struct ExecGraph {
    /// The program this graph was built from (shared, so graphs produced
    /// by a chain of translations alias one allocation per program and
    /// validation can compare `Arc` identity).
    pub program: Arc<Program>,
    /// Arena holding every record of this graph (plus the shared
    /// segments of ancestor graphs along a translation chain).
    store: NodeStore,
    /// The root block record.
    root: BlockId,
    /// The return value of the execution.
    pub return_value: Value,
    indexes: OnceLock<Indexes>,
    fingerprint: OnceLock<u64>,
}

/// A cheap structural fingerprint of a program (FxHash of its debug
/// form). Used to validate graph/translator pairing without deep
/// `Program` equality on every translation.
pub fn program_fingerprint(program: &Program) -> u64 {
    let mut hasher = ppl::FxHasher::default();
    hasher.write(format!("{program:?}").as_bytes());
    hasher.finish()
}

impl ExecGraph {
    /// Assembles a graph. The address indices are built lazily; duplicate
    /// addresses (which only well-formed programs avoid) surface as
    /// [`PplError::AddressCollision`] from [`ExecGraph::to_trace`].
    pub fn assemble(
        program: Arc<Program>,
        store: NodeStore,
        root: BlockId,
        return_value: Value,
    ) -> ExecGraph {
        ExecGraph {
            program,
            store,
            root,
            return_value,
            indexes: OnceLock::new(),
            fingerprint: OnceLock::new(),
        }
    }

    /// The arena the graph's records live in.
    pub fn store(&self) -> &NodeStore {
        &self.store
    }

    /// The root block's arena id.
    pub fn root(&self) -> BlockId {
        self.root
    }

    /// The fingerprint of this graph's program, computed once per graph.
    pub fn fingerprint(&self) -> u64 {
        *self
            .fingerprint
            .get_or_init(|| program_fingerprint(&self.program))
    }

    fn indexes(&self) -> &Indexes {
        self.indexes.get_or_init(|| {
            let mut idx = Indexes::default();
            index_block(&self.store, self.store.block(self.root), &mut idx);
            idx
        })
    }

    /// Forces the lazy index build (useful before timing translations).
    pub fn warm_index(&self) {
        let _ = self.indexes();
    }

    /// Looks up the choice at `addr` in `t`.
    pub fn choice(&self, addr: &Address) -> Option<&ChoiceData> {
        AddressInterner::global()
            .get(addr)
            .and_then(|id| self.choice_by_id(id))
    }

    /// Looks up the choice at an interned address id (the hot path:
    /// change propagation resolves every reuse candidate through here).
    pub fn choice_by_id(&self, id: AddressId) -> Option<&ChoiceData> {
        self.indexes().choices.get(&id)
    }

    /// Looks up the observation at `addr`.
    pub fn observation(&self, addr: &Address) -> Option<&ObsData> {
        AddressInterner::global()
            .get(addr)
            .and_then(|id| self.observation_by_id(id))
    }

    /// Looks up the observation at an interned address id.
    pub fn observation_by_id(&self, id: AddressId) -> Option<&ObsData> {
        self.indexes().observations.get(&id)
    }

    /// Number of recorded choices.
    pub fn num_choices(&self) -> usize {
        self.indexes().choices.len()
    }

    /// `log P̃r[t ∼ P]`: total score of the recorded execution.
    pub fn score(&self) -> LogWeight {
        let idx = self.indexes();
        let choice_score: LogWeight = idx.choices.values().map(|c| c.log_prob).sum();
        let obs_score: LogWeight = idx.observations.values().map(|o| o.log_prob).sum();
        choice_score + obs_score
    }

    /// Flattens the graph into a [`Trace`] (O(trace size)).
    ///
    /// # Errors
    ///
    /// Returns [`PplError::AddressCollision`] on duplicate addresses.
    pub fn to_trace(&self) -> Result<Trace, PplError> {
        let mut trace = Trace::new();
        flatten_block(&self.store, self.store.block(self.root), &mut trace)?;
        trace.set_return_value(self.return_value.clone());
        Ok(trace)
    }
}

fn index_block(store: &NodeStore, block: &BlockRecord, idx: &mut Indexes) {
    for &sid in &block.stmts {
        let stmt = store.stmt(sid);
        if let Some(summary) = stmt.summary() {
            for (addr, data) in &summary.choices {
                idx.choices.entry(addr.id()).or_insert_with(|| data.clone());
            }
            for (addr, data) in &summary.observations {
                idx.observations
                    .entry(addr.id())
                    .or_insert_with(|| data.clone());
            }
        }
        match stmt {
            StmtRecord::If { body, .. } => index_block(store, store.block(*body), idx),
            StmtRecord::For { iters, .. } => {
                for iter in iters {
                    index_block(store, store.block(*iter), idx);
                }
            }
            StmtRecord::While { iters, .. } => {
                for iter in iters {
                    for (addr, data) in &iter.cond.choices {
                        idx.choices.entry(addr.id()).or_insert_with(|| data.clone());
                    }
                    for (addr, data) in &iter.cond.observations {
                        idx.observations
                            .entry(addr.id())
                            .or_insert_with(|| data.clone());
                    }
                    if let Some(body) = iter.body {
                        index_block(store, store.block(body), idx);
                    }
                }
            }
            _ => {}
        }
    }
}

fn flatten_block(
    store: &NodeStore,
    block: &BlockRecord,
    trace: &mut Trace,
) -> Result<(), PplError> {
    for &sid in &block.stmts {
        let stmt = store.stmt(sid);
        if let Some(summary) = stmt.summary() {
            for (addr, data) in &summary.choices {
                trace.record_choice(
                    addr.clone(),
                    data.value.clone(),
                    data.dist.clone(),
                    data.log_prob,
                )?;
            }
            for (addr, data) in &summary.observations {
                trace.record_observation(
                    addr.clone(),
                    data.value.clone(),
                    data.dist.clone(),
                    data.log_prob,
                )?;
            }
        }
        match stmt {
            StmtRecord::If { body, .. } => flatten_block(store, store.block(*body), trace)?,
            StmtRecord::For { iters, .. } => {
                for iter in iters {
                    flatten_block(store, store.block(*iter), trace)?;
                }
            }
            StmtRecord::While { iters, .. } => {
                for iter in iters {
                    for (addr, data) in &iter.cond.choices {
                        trace.record_choice(
                            addr.clone(),
                            data.value.clone(),
                            data.dist.clone(),
                            data.log_prob,
                        )?;
                    }
                    for (addr, data) in &iter.cond.observations {
                        trace.record_observation(
                            addr.clone(),
                            data.value.clone(),
                            data.dist.clone(),
                            data.log_prob,
                        )?;
                    }
                    if let Some(body) = iter.body {
                        flatten_block(store, store.block(body), trace)?;
                    }
                }
            }
            _ => {}
        }
    }
    Ok(())
}
