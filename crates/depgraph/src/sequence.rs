//! Policy-aware iterated SMC over a sequence of program edits.
//!
//! The "Multiple Steps" regime of Section 4.2 driven by the Section 6
//! runtime: consecutive programs are diffed into
//! [`IncrementalTranslator`]s automatically, and the particle collection
//! is threaded through them by `incremental`'s fault-tolerant SMC step —
//! so callers get per-stage [`incremental::StepReport`]s (ESS, quarantined
//! particles, retries, collapse recoveries) for the whole edit history.

use rand::RngCore;

use incremental::{
    run_sequence_with_policy, FailurePolicy, ParticleCollection, SequenceRun, SmcConfig, SmcError,
    Stage,
};
use ppl::ast::Program;

use crate::translator::IncrementalTranslator;

/// Builds the translator chain for an edit history: one
/// [`IncrementalTranslator`] per consecutive program pair.
///
/// Returns an empty chain for fewer than two programs.
pub fn edit_chain(programs: &[Program]) -> Vec<IncrementalTranslator> {
    programs
        .windows(2)
        .map(|pair| IncrementalTranslator::from_edit(pair[0].clone(), pair[1].clone()))
        .collect()
}

/// Runs Algorithm 2 across the whole edit history `programs[0] → ... →
/// programs[n]` under a [`FailurePolicy`], starting from `initial`
/// (posterior traces of `programs[0]`). Stage `s` translates across the
/// edit `programs[s] → programs[s+1]` and is addressed as SMC step `s`
/// in failure records and retry seeds.
///
/// # Errors
///
/// Propagates typed errors from the SMC runtime
/// ([`incremental::infer_with_policy`]).
pub fn run_edit_sequence(
    programs: &[Program],
    initial: &ParticleCollection,
    config: &SmcConfig,
    policy: &FailurePolicy,
    rng: &mut dyn RngCore,
) -> Result<SequenceRun, SmcError> {
    let chain = edit_chain(programs);
    let stages: Vec<Stage<'_>> = chain
        .iter()
        .map(|translator| Stage {
            translator,
            mcmc: None,
        })
        .collect();
    run_sequence_with_policy(&stages, initial, config, policy, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use incremental::{FaultKind, FaultPlan, FaultSpec, FaultyTranslator};
    use ppl::handlers::simulate;
    use ppl::parse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn programs() -> Vec<Program> {
        // An evidence-strengthening edit history over one latent.
        [("0.5", "0.5"), ("0.7", "0.3"), ("0.9", "0.1")]
            .iter()
            .map(|(hi, lo)| {
                parse(&format!(
                    "x = flip(0.5) @ x; observe(flip(x ? {hi} : {lo}) @ o == 1); return x;"
                ))
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn edit_chain_links_consecutive_programs() {
        let ps = programs();
        let chain = edit_chain(&ps);
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[0].source_program(), &ps[0]);
        assert_eq!(chain[0].target_program(), &ps[1]);
        assert_eq!(chain[1].source_program(), &ps[1]);
        assert_eq!(chain[1].target_program(), &ps[2]);
        assert!(edit_chain(&ps[..1]).is_empty());
        assert!(edit_chain(&[]).is_empty());
    }

    #[test]
    fn clean_edit_sequence_reports_are_clean() {
        let ps = programs();
        let mut rng = StdRng::seed_from_u64(21);
        // The first program's observation is uninformative (flip(0.5)),
        // so prior simulations are posterior samples of it.
        let traces: Vec<_> = (0..4_000)
            .map(|_| simulate(&ps[0], &mut rng).unwrap())
            .collect();
        let initial = ParticleCollection::from_traces(traces);
        let run = run_edit_sequence(
            &ps,
            &initial,
            &SmcConfig::translate_only(),
            &FailurePolicy::FailFast,
            &mut rng,
        )
        .unwrap();
        assert_eq!(run.reports.len(), 2);
        assert!(run.is_clean());
        let estimate = run
            .last()
            .probability(|t| t.value(&ppl::addr!["x"]).unwrap().truthy().unwrap())
            .unwrap();
        // Exact posterior of the final program: 0.9 / (0.9 + 0.1) = 0.9.
        assert!((estimate - 0.9).abs() < 0.03, "estimate {estimate}");
    }

    #[test]
    fn faults_in_one_stage_are_quarantined_and_reported() {
        let ps = programs();
        let chain = edit_chain(&ps);
        // Inject failures into stage 1 only, through the same
        // TranslateCtx plumbing the runtime uses.
        let plan = FaultPlan::new()
            .with(FaultSpec::always(1, 5, FaultKind::Error))
            .with(FaultSpec::always(1, 9, FaultKind::NanWeight));
        let faulty: Vec<_> = chain
            .into_iter()
            .map(|t| FaultyTranslator::new(t, plan.clone()))
            .collect();
        let stages: Vec<Stage<'_>> = faulty
            .iter()
            .map(|translator| Stage {
                translator,
                mcmc: None,
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(22);
        let traces: Vec<_> = (0..200)
            .map(|_| simulate(&ps[0], &mut rng).unwrap())
            .collect();
        let initial = ParticleCollection::from_traces(traces);
        let run = incremental::run_sequence_with_policy(
            &stages,
            &initial,
            &SmcConfig::translate_only(),
            &FailurePolicy::DropAndRenormalize { max_loss: 0.1 },
            &mut rng,
        )
        .unwrap();
        assert!(run.reports[0].is_clean());
        assert_eq!(run.reports[1].dropped, 2);
        assert_eq!(run.collections[0].len(), 200);
        assert_eq!(run.collections[1].len(), 198);
        let failed: Vec<_> = run.reports[1].failures.iter().map(|f| f.particle).collect();
        assert_eq!(failed, vec![5, 9]);
    }
}
