//! Policy-aware iterated SMC over a sequence of program edits.
//!
//! The "Multiple Steps" regime of Section 4.2 driven by the Section 6
//! runtime: consecutive programs are diffed into
//! [`IncrementalTranslator`]s automatically, and the particle collection
//! is threaded through them by `incremental`'s fault-tolerant SMC step —
//! so callers get per-stage [`incremental::StepReport`]s (ESS, quarantined
//! particles, retries, collapse recoveries) for the whole edit history.

use std::sync::Arc;

use rand::RngCore;

use incremental::{
    run_sequence_with_policy, run_state_sequence_parallel_with_policy,
    run_state_sequence_supervised, run_state_sequence_with_policy, Checkpoint, CheckpointError,
    FailurePolicy, ParticleCollection, SequenceRun, SmcConfig, SmcError, Stage, StageObserver,
    StagePolicy, StateTranslator, StepReport, TraceStateAdapter,
};
use ppl::ast::Program;
use ppl::{LogWeight, PplError};

use crate::record::{program_fingerprint, ExecGraph};
use crate::translator::IncrementalTranslator;

/// Builds the translator chain for an edit history: one
/// [`IncrementalTranslator`] per consecutive program pair. Each program
/// is wrapped in an `Arc` once and shared by both translators that
/// reference it (no per-window deep clones), so consecutive links
/// validate chained graphs by pointer identity.
///
/// Returns an empty chain for fewer than two programs.
pub fn edit_chain(programs: &[Program]) -> Vec<IncrementalTranslator> {
    let shared: Vec<Arc<Program>> = programs.iter().cloned().map(Arc::new).collect();
    edit_chain_shared(&shared)
}

/// [`edit_chain`] over pre-shared program handles.
pub fn edit_chain_shared(programs: &[Arc<Program>]) -> Vec<IncrementalTranslator> {
    programs
        .windows(2)
        .map(|pair| IncrementalTranslator::from_shared(Arc::clone(&pair[0]), Arc::clone(&pair[1])))
        .collect()
}

/// Runs Algorithm 2 across the whole edit history `programs[0] → ... →
/// programs[n]` under a [`FailurePolicy`], starting from `initial`
/// (posterior traces of `programs[0]`). Stage `s` translates across the
/// edit `programs[s] → programs[s+1]` and is addressed as SMC step `s`
/// in failure records and retry seeds.
///
/// # Errors
///
/// Propagates typed errors from the SMC runtime
/// ([`incremental::infer_with_policy`]).
pub fn run_edit_sequence(
    programs: &[Program],
    initial: &ParticleCollection,
    config: &SmcConfig,
    policy: &FailurePolicy,
    rng: &mut dyn RngCore,
) -> Result<SequenceRun, SmcError> {
    let chain = edit_chain(programs);
    let stages: Vec<Stage<'_>> = chain
        .iter()
        .map(|translator| Stage {
            translator,
            mcmc: None,
        })
        .collect();
    run_sequence_with_policy(&stages, initial, config, policy, rng)
}

/// Lifts a flat collection of `program` traces into graph-native
/// particles: each trace is replayed once into an [`ExecGraph`] sharing
/// the given program handle (so the first edit-chain translator validates
/// it by pointer identity), preserving weights.
///
/// This is the one O(M·|t|) conversion a graph-native run pays — at the
/// entry boundary, not once per particle per stage.
///
/// # Errors
///
/// Propagates replay failures (a trace inconsistent with `program`).
pub fn lift_collection(
    program: &Arc<Program>,
    initial: &ParticleCollection,
) -> Result<ParticleCollection<Arc<ExecGraph>>, PplError> {
    let mut lifted = ParticleCollection::new();
    for particle in initial.iter() {
        let graph = ExecGraph::from_trace_shared(program, &particle.trace)?;
        lifted.push(Arc::new(graph), particle.log_weight);
    }
    Ok(lifted)
}

/// Graph-native [`run_edit_sequence`]: lifts `initial` into execution
/// graphs once, then threads the *graphs* through every stage — each
/// stage's [`IncrementalTranslator`] propagates the edit directly on the
/// previous stage's graph, never flattening to a trace between stages.
/// Flatten the returned run lazily with
/// [`SequenceRun::flatten`](incremental::SequenceRun::flatten) at the API
/// boundary.
///
/// For workloads whose edits reuse all random choices, the resulting
/// weights are bit-identical to [`run_edit_sequence`] — the differential
/// tests pin this down — while per-stage cost drops from O(M·|t|) to
/// O(M·K) for an edit touching K records.
///
/// # Errors
///
/// Lift failures surface as [`SmcError::Eval`]; stage errors as in
/// [`run_edit_sequence`].
pub fn run_edit_sequence_graph(
    programs: &[Program],
    initial: &ParticleCollection,
    config: &SmcConfig,
    policy: &FailurePolicy,
    rng: &mut dyn RngCore,
) -> Result<SequenceRun<Arc<ExecGraph>>, SmcError> {
    let shared: Vec<Arc<Program>> = programs.iter().cloned().map(Arc::new).collect();
    let chain = edit_chain_shared(&shared);
    let lifted = match shared.first() {
        Some(first) => lift_collection(first, initial).map_err(SmcError::Eval)?,
        None => ParticleCollection::new(),
    };
    let stages: Vec<&dyn StateTranslator<Arc<ExecGraph>>> = chain
        .iter()
        .map(|t| t as &dyn StateTranslator<Arc<ExecGraph>>)
        .collect();
    run_state_sequence_with_policy(&stages, &lifted, config, policy, rng)
}

/// [`run_edit_sequence_graph`] with pooled parallel translation: every
/// stage's translate/reweight loop runs on the persistent
/// [`incremental::WorkerPool`], with per-particle randomness derived from
/// `base_seed` so results are bit-identical for any `threads` value.
/// `rng` drives only resampling, as in the serial runner.
///
/// # Errors
///
/// As [`run_edit_sequence_graph`].
pub fn run_edit_sequence_parallel_with_policy(
    programs: &[Program],
    initial: &ParticleCollection,
    config: &SmcConfig,
    policy: &FailurePolicy,
    base_seed: u64,
    threads: usize,
    rng: &mut dyn RngCore,
) -> Result<SequenceRun<Arc<ExecGraph>>, SmcError> {
    let shared: Vec<Arc<Program>> = programs.iter().cloned().map(Arc::new).collect();
    let chain = edit_chain_shared(&shared);
    let lifted = match shared.first() {
        Some(first) => lift_collection(first, initial).map_err(SmcError::Eval)?,
        None => ParticleCollection::new(),
    };
    let stages: Vec<&(dyn StateTranslator<Arc<ExecGraph>> + Sync)> = chain
        .iter()
        .map(|t| t as &(dyn StateTranslator<Arc<ExecGraph>> + Sync))
        .collect();
    run_state_sequence_parallel_with_policy(
        &stages, &lifted, config, policy, base_seed, threads, rng,
    )
}

/// [`run_edit_sequence_parallel_with_policy`] under
/// [`FailurePolicy::FailFast`], with errors flattened to [`PplError`].
///
/// # Errors
///
/// Propagates errors from [`run_edit_sequence_parallel_with_policy`].
pub fn run_edit_sequence_parallel(
    programs: &[Program],
    initial: &ParticleCollection,
    config: &SmcConfig,
    base_seed: u64,
    threads: usize,
    rng: &mut dyn RngCore,
) -> Result<SequenceRun<Arc<ExecGraph>>, PplError> {
    run_edit_sequence_parallel_with_policy(
        programs,
        initial,
        config,
        &FailurePolicy::FailFast,
        base_seed,
        threads,
        rng,
    )
    .map_err(PplError::from)
}

/// Rebuilds the particle collection of a checkpoint against the program
/// sequence it will resume into: validates the checkpoint's step index
/// and program fingerprint, then re-scores every checkpointed choice map
/// under `programs[ck.step]` (the program the particles target).
///
/// Scoring recomputes each trace's densities from the exactly
/// round-tripped choice values with the same pure evaluator the original
/// run used, so the rebuilt collection is bit-identical to the one that
/// was checkpointed — the foundation of the kill-and-resume determinism
/// contract.
///
/// # Errors
///
/// [`CheckpointError::StepOutOfRange`] when the checkpoint indexes past
/// the sequence, [`CheckpointError::FingerprintMismatch`] when the
/// target program was edited since the checkpoint was written, and
/// [`CheckpointError::Corrupt`] when a choice map does not score under
/// the target program.
pub fn resume_collection(
    programs: &[Program],
    ck: &Checkpoint,
) -> Result<ParticleCollection, CheckpointError> {
    if ck.step >= programs.len() {
        return Err(CheckpointError::StepOutOfRange {
            step: ck.step,
            programs: programs.len(),
        });
    }
    let target = &programs[ck.step];
    ck.validate_fingerprint(program_fingerprint(target))?;
    let mut collection = ParticleCollection::new();
    for (j, (choices, log_weight)) in ck.particles.iter().enumerate() {
        let trace =
            ppl::handlers::score(target, choices).map_err(|e| CheckpointError::Corrupt {
                reason: format!("particle {j} does not score under the checkpointed program: {e}"),
            })?;
        collection.push(trace, LogWeight::from_log(*log_weight));
    }
    Ok(collection)
}

/// Graph-native crash-safe sequence runner: the supervised analogue of
/// [`run_edit_sequence_parallel_with_policy`], with resume support.
///
/// `initial` must hold posterior traces of `programs[start_step]` (for a
/// fresh run `start_step == 0`; for a resume, the collection rebuilt by
/// [`resume_collection`]). Stage `i` of the remaining chain runs as
/// absolute SMC step `start_step + i`, with all per-stage randomness
/// derived from `base_seed` and the absolute index
/// ([`incremental::stage_seed`] / [`incremental::resample_seed`]) — so a
/// resumed run continues bit-identically to an uninterrupted one.
///
/// `observer` fires at [`StagePolicy::checkpoint_every`] boundaries with
/// the graph-native collection; checkpoint writers flatten it via
/// [`Checkpoint::from_snapshot`].
///
/// # Errors
///
/// As [`run_edit_sequence_parallel_with_policy`], plus any error the
/// observer returns.
#[allow(clippy::too_many_arguments)]
pub fn run_edit_sequence_supervised(
    programs: &[Program],
    initial: &ParticleCollection,
    start_step: usize,
    prior_ess: &[f64],
    prior_reports: &[StepReport],
    config: &SmcConfig,
    policy: &FailurePolicy,
    stage_policy: &StagePolicy,
    base_seed: u64,
    threads: usize,
    observer: Option<&mut StageObserver<'_, Arc<ExecGraph>>>,
) -> Result<SequenceRun<Arc<ExecGraph>>, SmcError> {
    let shared: Vec<Arc<Program>> = programs.iter().cloned().map(Arc::new).collect();
    let chain = edit_chain_shared(&shared);
    let remaining = chain.into_iter().skip(start_step);
    let stages: Vec<Arc<dyn StateTranslator<Arc<ExecGraph>> + Send + Sync>> = remaining
        .map(|t| Arc::new(t) as Arc<dyn StateTranslator<Arc<ExecGraph>> + Send + Sync>)
        .collect();
    let lifted = match shared.get(start_step) {
        Some(target) => lift_collection(target, initial).map_err(SmcError::Eval)?,
        None => ParticleCollection::new(),
    };
    run_state_sequence_supervised(
        &stages,
        &lifted,
        start_step,
        prior_ess,
        prior_reports,
        config,
        policy,
        stage_policy,
        base_seed,
        threads,
        observer,
    )
}

/// Flat-trace crash-safe sequence runner: [`run_edit_sequence_supervised`]
/// with the particles carried as plain traces (each stage's
/// [`IncrementalTranslator`] adapted via
/// [`TraceStateAdapter`]). Same seeds, same absolute
/// step indexing, same observer contract — the differential tests prove
/// its resumed trajectories bitwise-equal to the graph-native runner's.
///
/// # Errors
///
/// As [`run_edit_sequence_supervised`].
#[allow(clippy::too_many_arguments)]
pub fn run_edit_sequence_flat_supervised(
    programs: &[Program],
    initial: &ParticleCollection,
    start_step: usize,
    prior_ess: &[f64],
    prior_reports: &[StepReport],
    config: &SmcConfig,
    policy: &FailurePolicy,
    stage_policy: &StagePolicy,
    base_seed: u64,
    threads: usize,
    observer: Option<&mut StageObserver<'_, ppl::Trace>>,
) -> Result<SequenceRun, SmcError> {
    let chain = edit_chain(programs);
    let stages: Vec<Arc<dyn StateTranslator<ppl::Trace> + Send + Sync>> = chain
        .into_iter()
        .skip(start_step)
        .map(|t| {
            Arc::new(TraceStateAdapter(t)) as Arc<dyn StateTranslator<ppl::Trace> + Send + Sync>
        })
        .collect();
    run_state_sequence_supervised(
        &stages,
        initial,
        start_step,
        prior_ess,
        prior_reports,
        config,
        policy,
        stage_policy,
        base_seed,
        threads,
        observer,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use incremental::{FaultKind, FaultPlan, FaultSpec, FaultyTranslator};
    use ppl::handlers::simulate;
    use ppl::parse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn programs() -> Vec<Program> {
        // An evidence-strengthening edit history over one latent.
        [("0.5", "0.5"), ("0.7", "0.3"), ("0.9", "0.1")]
            .iter()
            .map(|(hi, lo)| {
                parse(&format!(
                    "x = flip(0.5) @ x; observe(flip(x ? {hi} : {lo}) @ o == 1); return x;"
                ))
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn edit_chain_links_consecutive_programs() {
        let ps = programs();
        let chain = edit_chain(&ps);
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[0].source_program(), &ps[0]);
        assert_eq!(chain[0].target_program(), &ps[1]);
        assert_eq!(chain[1].source_program(), &ps[1]);
        assert_eq!(chain[1].target_program(), &ps[2]);
        assert!(edit_chain(&ps[..1]).is_empty());
        assert!(edit_chain(&[]).is_empty());
    }

    #[test]
    fn clean_edit_sequence_reports_are_clean() {
        let ps = programs();
        let mut rng = StdRng::seed_from_u64(21);
        // The first program's observation is uninformative (flip(0.5)),
        // so prior simulations are posterior samples of it.
        let traces: Vec<_> = (0..4_000)
            .map(|_| simulate(&ps[0], &mut rng).unwrap())
            .collect();
        let initial = ParticleCollection::from_traces(traces);
        let run = run_edit_sequence(
            &ps,
            &initial,
            &SmcConfig::translate_only(),
            &FailurePolicy::FailFast,
            &mut rng,
        )
        .unwrap();
        assert_eq!(run.reports.len(), 2);
        assert!(run.is_clean());
        let estimate = run
            .last()
            .probability(|t| t.value(&ppl::addr!["x"]).unwrap().truthy().unwrap())
            .unwrap();
        // Exact posterior of the final program: 0.9 / (0.9 + 0.1) = 0.9.
        assert!((estimate - 0.9).abs() < 0.03, "estimate {estimate}");
    }

    #[test]
    fn graph_native_sequence_matches_flat_sequence_bitwise() {
        let ps = programs();
        let mut rng = StdRng::seed_from_u64(23);
        let traces: Vec<_> = (0..500)
            .map(|_| simulate(&ps[0], &mut rng).unwrap())
            .collect();
        let initial = ParticleCollection::from_traces(traces);
        let config = SmcConfig::translate_only();
        let mut rng_flat = StdRng::seed_from_u64(31);
        let flat = run_edit_sequence(
            &ps,
            &initial,
            &config,
            &FailurePolicy::FailFast,
            &mut rng_flat,
        )
        .unwrap();
        let mut rng_graph = StdRng::seed_from_u64(31);
        let graph = run_edit_sequence_graph(
            &ps,
            &initial,
            &config,
            &FailurePolicy::FailFast,
            &mut rng_graph,
        )
        .unwrap();
        assert_eq!(graph.collections.len(), flat.collections.len());
        let flattened = graph.flatten().unwrap();
        for (a, b) in flat.collections.iter().zip(flattened.collections.iter()) {
            assert_eq!(a.len(), b.len());
            for (pa, pb) in a.iter().zip(b.iter()) {
                assert_eq!(pa.log_weight.log().to_bits(), pb.log_weight.log().to_bits());
                assert_eq!(pa.trace.to_choice_map(), pb.trace.to_choice_map());
            }
        }
        // Parallel graph-native runs are thread-count invariant.
        let run_with = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(57);
            run_edit_sequence_parallel(&ps, &initial, &config, 777, threads, &mut rng).unwrap()
        };
        let one = run_with(1);
        for threads in [3, 8] {
            let other = run_with(threads);
            for (a, b) in one.collections.iter().zip(other.collections.iter()) {
                for (pa, pb) in a.iter().zip(b.iter()) {
                    assert_eq!(
                        pa.log_weight.log().to_bits(),
                        pb.log_weight.log().to_bits(),
                        "threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn faults_in_one_stage_are_quarantined_and_reported() {
        let ps = programs();
        let chain = edit_chain(&ps);
        // Inject failures into stage 1 only, through the same
        // TranslateCtx plumbing the runtime uses.
        let plan = FaultPlan::new()
            .with(FaultSpec::always(1, 5, FaultKind::Error))
            .with(FaultSpec::always(1, 9, FaultKind::NanWeight));
        let faulty: Vec<_> = chain
            .into_iter()
            .map(|t| FaultyTranslator::new(t, plan.clone()))
            .collect();
        let stages: Vec<Stage<'_>> = faulty
            .iter()
            .map(|translator| Stage {
                translator,
                mcmc: None,
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(22);
        let traces: Vec<_> = (0..200)
            .map(|_| simulate(&ps[0], &mut rng).unwrap())
            .collect();
        let initial = ParticleCollection::from_traces(traces);
        let run = incremental::run_sequence_with_policy(
            &stages,
            &initial,
            &SmcConfig::translate_only(),
            &FailurePolicy::DropAndRenormalize { max_loss: 0.1 },
            &mut rng,
        )
        .unwrap();
        assert!(run.reports[0].is_clean());
        assert_eq!(run.reports[1].dropped, 2);
        assert_eq!(run.collections[0].len(), 200);
        assert_eq!(run.collections[1].len(), 198);
        let failed: Vec<_> = run.reports[1].failures.iter().map(|f| f.particle).collect();
        assert_eq!(failed, vec![5, 9]);
    }
}
