//! The optimized incremental trace translator (Section 6).

use std::sync::Arc;

use rand::RngCore;

use incremental::{ParticleState, StateTranslator, TraceTranslator, TranslateCtx, Translated};
use ppl::ast::Program;
use ppl::{LogWeight, PplError, Trace};

use crate::diff::{diff_programs, ProgramEdit};
use crate::plan::StagePlan;
use crate::propagate::{translate_graph_with_plan, IncrementalResult};
use crate::record::{program_fingerprint, ExecGraph};

/// A trace translator between two programs related by an edit, running on
/// the dependency-tracking runtime: only the program slice affected by
/// the edit is re-executed.
///
/// Construct with [`IncrementalTranslator::from_edit`], which derives the
/// semantic correspondence from the syntactic diff automatically
/// (Section 6: "random expressions that correspond syntactically in the
/// two programs also correspond semantically").
///
/// # Examples
///
/// ```
/// use depgraph::{ExecGraph, IncrementalTranslator};
/// use ppl::parse;
/// use rand::SeedableRng;
///
/// let p = parse("a = 1; b = flip(a / 3); return b;")?;
/// let q = parse("a = 2; b = flip(a / 3); return b;")?;
/// let translator = IncrementalTranslator::from_edit(p.clone(), q);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let g_t = ExecGraph::simulate(&p, &mut rng)?;
/// let result = translator.translate_graph(&g_t, &mut rng)?;
/// assert!(result.log_weight.log().is_finite());
/// # Ok::<(), ppl::PplError>(())
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalTranslator {
    p: Arc<Program>,
    q: Arc<Program>,
    /// Fingerprint of `p`, precomputed so per-particle graph validation
    /// never re-hashes (let alone deep-compares) the program.
    p_fingerprint: u64,
    edit: ProgramEdit,
    /// Stage-invariant translation plan, built once per edit and shared
    /// (immutably) by every particle task in a stage.
    plan: Arc<StagePlan>,
}

impl IncrementalTranslator {
    /// Creates a translator for the edit `p → q`, deriving the diff and
    /// correspondence.
    pub fn from_edit(p: Program, q: Program) -> IncrementalTranslator {
        Self::from_shared(Arc::new(p), Arc::new(q))
    }

    /// [`IncrementalTranslator::from_edit`] over shared program handles:
    /// graphs built with the same `Arc` (e.g. by the previous link of an
    /// edit chain) validate by pointer identity, and the chain shares one
    /// allocation per program instead of deep-cloning each window.
    pub fn from_shared(p: Arc<Program>, q: Arc<Program>) -> IncrementalTranslator {
        let edit = diff_programs(&p, &q);
        let p_fingerprint = program_fingerprint(&p);
        let plan = Arc::new(StagePlan::new(&q, &p, &edit));
        IncrementalTranslator {
            p,
            q,
            p_fingerprint,
            edit,
            plan,
        }
    }

    /// The derived edit (diff + correspondence).
    pub fn edit(&self) -> &ProgramEdit {
        &self.edit
    }

    /// The stage-shared translation plan.
    pub fn plan(&self) -> &Arc<StagePlan> {
        &self.plan
    }

    /// The source program `P`.
    pub fn source_program(&self) -> &Program {
        &self.p
    }

    /// The target program `Q`.
    pub fn target_program(&self) -> &Program {
        &self.q
    }

    /// The shared handle to the source program `P`.
    pub fn source_program_shared(&self) -> &Arc<Program> {
        &self.p
    }

    /// The shared handle to the target program `Q`.
    pub fn target_program_shared(&self) -> &Arc<Program> {
        &self.q
    }

    /// Checks that `graph` was built from this translator's `P`: `Arc`
    /// identity first (free along a shared edit chain), cached
    /// fingerprints otherwise — never a deep `Program` comparison.
    fn validate_source(&self, graph: &ExecGraph) -> Result<(), PplError> {
        if Arc::ptr_eq(&graph.program, &self.p) || graph.fingerprint() == self.p_fingerprint {
            Ok(())
        } else {
            Err(PplError::Other(
                "execution graph was built from a different program than this translator's P"
                    .to_string(),
            ))
        }
    }

    /// Translates an execution graph of `P` into a graph of `Q` with the
    /// weight estimate, re-executing only the affected slice. The output
    /// graph shares this translator's `Q` handle, so the next chained
    /// translator validates it by pointer identity.
    ///
    /// # Errors
    ///
    /// Returns an error if `graph` was built from a different program, or
    /// on evaluation failure.
    pub fn translate_graph(
        &self,
        graph: &ExecGraph,
        rng: &mut dyn RngCore,
    ) -> Result<IncrementalResult, PplError> {
        self.validate_source(graph)?;
        let result = translate_graph_with_plan(&self.q, &self.edit, &self.plan, graph, rng)?;
        record_propagation(&result.stats);
        Ok(result)
    }
}

/// Feeds a propagation pass's [`VisitStats`] into the metrics layer.
/// Single atomic-flag check when metrics are disabled.
fn record_propagation(stats: &crate::VisitStats) {
    incremental::metrics::record_propagation(&incremental::PropagationCounters {
        nodes_visited: stats.visited as u64,
        nodes_skipped: stats.skipped as u64,
        loop_skips: stats.loop_skips as u64,
        iter_skips: stats.iter_skips as u64,
        choices_reused: stats.choices_reused as u64,
        choices_fresh: stats.choices_fresh as u64,
        observes_rescored: stats.observes_rescored as u64,
        static_skips: stats.static_skips as u64,
        oracle_checks: stats.oracle_checks as u64,
    });
}

impl TraceTranslator for IncrementalTranslator {
    /// Interop path: builds the graph from the flat trace, translates
    /// incrementally, and flattens back. The graph construction costs
    /// O(|t|); callers holding graphs should use
    /// [`IncrementalTranslator::translate_graph`] directly (or run the
    /// SMC machinery over `Arc<ExecGraph>` particle states) to get the
    /// Section 6 asymptotics.
    fn translate(&self, t: &Trace, rng: &mut dyn RngCore) -> Result<Translated, PplError> {
        let graph = ExecGraph::from_trace_shared(&self.p, t)?;
        let result = self.translate_graph(&graph, rng)?;
        let trace = result.graph.to_trace()?;
        let output = result.graph.return_value.clone();
        Ok(Translated {
            trace,
            log_weight: result.log_weight,
            output,
        })
    }
}

/// The graph-native runtime interface: SMC particles *are* execution
/// graphs, carried across the whole edit sequence. Each stage calls
/// [`IncrementalTranslator::translate_graph`] directly on the previous
/// stage's graph — no per-particle `ExecGraph::from_trace` rebuild and no
/// flattening between stages, so a fixed-size edit costs O(K) per
/// particle regardless of trace size. The output graph shares this
/// translator's `Q` handle, so the next chained translator validates it
/// by pointer identity.
impl StateTranslator<Arc<ExecGraph>> for IncrementalTranslator {
    fn translate_state(
        &self,
        state: &Arc<ExecGraph>,
        _ctx: TranslateCtx,
        rng: &mut dyn RngCore,
    ) -> Result<(Arc<ExecGraph>, LogWeight), PplError> {
        let result = self.translate_graph(state, rng)?;
        Ok((Arc::new(result.graph), result.log_weight))
    }
}

/// Flattening an execution graph walks its records once —
/// [`ExecGraph::to_trace`] — which the SMC runtime only does lazily at
/// API boundaries (estimation, reporting). `Arc<ExecGraph>` particles
/// flatten through `incremental`'s blanket `Arc` forwarding impl.
impl ParticleState for ExecGraph {
    fn to_trace(&self) -> Result<Trace, PplError> {
        ExecGraph::to_trace(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incremental::{exact_weight_estimate, CorrespondenceTranslator};
    use ppl::handlers::simulate;
    use ppl::{addr, parse, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The GMM hyperparameter edit: all choices reused, so the translated
    /// trace is deterministic and must agree exactly with the baseline
    /// Section 5 translator — in values AND in weight.
    #[test]
    fn gmm_edit_agrees_with_baseline_translator() {
        let p = models::gmm::gmm_program(10.0, 30, 5);
        let q = models::gmm::gmm_program(20.0, 30, 5);
        let incr = IncrementalTranslator::from_edit(p.clone(), q.clone());
        let baseline =
            CorrespondenceTranslator::new(p.clone(), q.clone(), models::gmm::gmm_correspondence());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5 {
            let t = simulate(&p, &mut rng).unwrap();
            let a = incr.translate(&t, &mut rng).unwrap();
            let b = baseline.translate(&t, &mut rng).unwrap();
            assert_eq!(a.trace.to_choice_map(), b.trace.to_choice_map());
            assert!(
                (a.log_weight.log() - b.log_weight.log()).abs() < 1e-9,
                "incremental {} vs baseline {}",
                a.log_weight.log(),
                b.log_weight.log()
            );
        }
    }

    /// The visit count for the hyperparameter edit depends on K only —
    /// the O(K) vs O(N + K) claim behind Figure 10.
    #[test]
    fn gmm_edit_visits_are_independent_of_n() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut visit_counts = Vec::new();
        for n in [10usize, 100, 400] {
            let p = models::gmm::gmm_program(10.0, n, 10);
            let q = models::gmm::gmm_program(20.0, n, 10);
            let translator = IncrementalTranslator::from_edit(p.clone(), q);
            let graph = ExecGraph::simulate(&p, &mut rng).unwrap();
            graph.warm_index();
            let result = translator.translate_graph(&graph, &mut rng).unwrap();
            visit_counts.push(result.stats.visited);
        }
        assert_eq!(
            visit_counts[0], visit_counts[1],
            "visited counts must not grow with N: {visit_counts:?}"
        );
        assert_eq!(visit_counts[1], visit_counts[2], "{visit_counts:?}");
    }

    /// Figure 7: the constant edit `a = 1 → a = 2` flips the branch. The
    /// reused flip `b` changes its probability (1/3 → 2/3); `c` is
    /// resampled in the other branch; `d = flip(b/2)` does not propagate.
    #[test]
    fn fig7_edit_propagates_partially() {
        let p = models::worked_examples::fig7_original();
        let q = models::worked_examples::fig7_edited();
        let translator = IncrementalTranslator::from_edit(p.clone(), q.clone());
        let mut rng = StdRng::seed_from_u64(3);
        let graph = ExecGraph::simulate(&p, &mut rng).unwrap();
        let t = graph.to_trace().unwrap();
        let result = translator.translate_graph(&graph, &mut rng).unwrap();
        let u = result.graph.to_trace().unwrap();
        // b reused, c from the else-branch now, d unchanged.
        assert_eq!(u.value(&addr!["b"]), t.value(&addr!["b"]));
        let c = u.value(&addr!["celse"]).unwrap().as_int().unwrap();
        assert!((6..=10).contains(&c));
        assert!(!u.has_choice(&addr!["cthen"]));
        assert_eq!(u.value(&addr!["d"]), t.value(&addr!["d"]));
        // Weight: only the b factor ratio (c cancels, d untouched).
        let b = t.value(&addr!["b"]).unwrap().truthy().unwrap();
        let expected: f64 = if b {
            (2.0f64 / 3.0 / (1.0 / 3.0)).ln()
        } else {
            (1.0f64 / 3.0 / (2.0 / 3.0)).ln()
        };
        assert!(
            (result.log_weight.log() - expected).abs() < 1e-9,
            "weight {} vs {}",
            result.log_weight.log(),
            expected
        );
        // The d statement must have been skipped ("the change does not
        // propagate through node b").
        let corr = &translator.edit().correspondence;
        let exact = exact_weight_estimate(&p, &q, corr, &t, &u).unwrap();
        assert!((result.log_weight.log() - exact.log()).abs() < 1e-9);
    }

    /// The burglary refinement (Fig. 1) through the edit-derived
    /// correspondence: the incremental weight must equal the exact weight
    /// estimate recomputed from scratch for the same (t, u) pair.
    #[test]
    fn burglary_edit_weight_matches_exact_oracle() {
        let p = models::burglary::original_program();
        let q = models::burglary::refined_program();
        let translator = IncrementalTranslator::from_edit(p.clone(), q.clone());
        let corr = translator.edit().correspondence.clone();
        // Sanity: the diff derives the Fig. 1 correspondence.
        assert_eq!(corr.lookup(&addr!["alpha"]), Some(addr!["alpha"]));
        assert_eq!(corr.lookup(&addr!["beta"]), Some(addr!["beta"]));
        assert!(!corr.maps(&addr!["gamma"]));
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let t = simulate(&p, &mut rng).unwrap();
            let out = translator.translate(&t, &mut rng).unwrap();
            let exact = exact_weight_estimate(&p, &q, &corr, &t, &out.trace).unwrap();
            assert!(
                (out.log_weight.log() - exact.log()).abs() < 1e-9,
                "incremental {} vs exact {}",
                out.log_weight.log(),
                exact.log()
            );
        }
    }

    /// Observation edits: changing an observation's parameter factors the
    /// old likelihood out and the new one in.
    #[test]
    fn observation_edit_reweights() {
        let p = parse("x = flip(0.5) @ x; observe(flip(0.8) @ o == 1); return x;").unwrap();
        let q = parse("x = flip(0.5) @ x; observe(flip(0.4) @ o == 1); return x;").unwrap();
        let translator = IncrementalTranslator::from_edit(p.clone(), q);
        let mut rng = StdRng::seed_from_u64(5);
        let t = simulate(&p, &mut rng).unwrap();
        let out = translator.translate(&t, &mut rng).unwrap();
        assert!(
            (out.log_weight.prob() - 0.4 / 0.8).abs() < 1e-9,
            "weight {}",
            out.log_weight.prob()
        );
        assert_eq!(out.trace.value(&addr!["x"]), t.value(&addr!["x"]));
    }

    /// Removed observations factor into the denominator.
    #[test]
    fn removed_observation_enters_denominator() {
        let p = parse("x = flip(0.5) @ x; observe(flip(0.25) @ o == 1); return x;").unwrap();
        let q = parse("x = flip(0.5) @ x; return x;").unwrap();
        let translator = IncrementalTranslator::from_edit(p.clone(), q);
        let mut rng = StdRng::seed_from_u64(6);
        let t = simulate(&p, &mut rng).unwrap();
        let out = translator.translate(&t, &mut rng).unwrap();
        assert!(
            (out.log_weight.prob() - 1.0 / 0.25).abs() < 1e-9,
            "weight {}",
            out.log_weight.prob()
        );
    }

    /// Added observations factor into the numerator.
    #[test]
    fn added_observation_enters_numerator() {
        let p = parse("x = flip(0.5) @ x; return x;").unwrap();
        let q = parse("x = flip(0.5) @ x; observe(flip(0.9) @ o == 1); return x;").unwrap();
        let translator = IncrementalTranslator::from_edit(p.clone(), q);
        let mut rng = StdRng::seed_from_u64(7);
        let t = simulate(&p, &mut rng).unwrap();
        let out = translator.translate(&t, &mut rng).unwrap();
        assert!((out.log_weight.prob() - 0.9).abs() < 1e-9);
    }

    /// Identity edit: weight exactly 1, everything skipped.
    #[test]
    fn identity_edit_is_free() {
        let src = "a = flip(0.3) @ a; b = flip(a ? 0.9 : 0.1) @ b;
                   observe(flip(b ? 0.7 : 0.2) @ o == 1); return b;";
        let p = parse(src).unwrap();
        let q = parse(src).unwrap();
        let translator = IncrementalTranslator::from_edit(p.clone(), q);
        let mut rng = StdRng::seed_from_u64(8);
        let graph = ExecGraph::simulate(&p, &mut rng).unwrap();
        let result = translator.translate_graph(&graph, &mut rng).unwrap();
        assert_eq!(result.stats.visited, 0);
        assert!(result.log_weight.log().abs() < 1e-12);
        assert_eq!(
            result.graph.to_trace().unwrap().to_choice_map(),
            graph.to_trace().unwrap().to_choice_map()
        );
    }

    /// Loop-bound edits: growing the loop samples new iterations fresh;
    /// shrinking removes old ones.
    #[test]
    fn loop_bound_edit() {
        let p = parse("xs = array(5, 0); for i in [0..3) { xs[i] = flip(0.5) @ x; } return xs;")
            .unwrap();
        let q = parse("xs = array(5, 0); for i in [0..5) { xs[i] = flip(0.5) @ x; } return xs;")
            .unwrap();
        let translator = IncrementalTranslator::from_edit(p.clone(), q.clone());
        let mut rng = StdRng::seed_from_u64(9);
        let t = simulate(&p, &mut rng).unwrap();
        let out = translator.translate(&t, &mut rng).unwrap();
        assert_eq!(out.trace.len(), 5);
        for i in 0..3_i64 {
            assert_eq!(out.trace.value(&addr!["x", i]), t.value(&addr!["x", i]));
        }
        // The weight for identical-parameter reuse + fresh sampling is 1.
        assert!(out.log_weight.log().abs() < 1e-9);
        let corr = &translator.edit().correspondence;
        let exact = exact_weight_estimate(&p, &q, corr, &t, &out.trace).unwrap();
        assert!((out.log_weight.log() - exact.log()).abs() < 1e-9);
    }

    /// An edit that replaces a statement with a different *kind* of
    /// statement (a loop instead of an assignment): the old record is
    /// removed and the new statement runs fresh, with exact weights.
    #[test]
    fn statement_kind_change_edit() {
        let p = parse(
            "s = 0; s = s + flip(0.5) @ a;
             observe(flip(s > 0 ? 0.9 : 0.1) @ o == 1); return s;",
        )
        .unwrap();
        let q = parse(
            "s = 0; for i in [0..2) { s = s + flip(0.5) @ a; }
             observe(flip(s > 0 ? 0.9 : 0.1) @ o == 1); return s;",
        )
        .unwrap();
        let translator = IncrementalTranslator::from_edit(p.clone(), q.clone());
        let corr = translator.edit().correspondence.clone();
        let mut rng = StdRng::seed_from_u64(30);
        for _ in 0..20 {
            let t = simulate(&p, &mut rng).unwrap();
            let out = translator.translate(&t, &mut rng).unwrap();
            assert_eq!(out.trace.len(), 2); // a/0 and a/1 now
            let exact = exact_weight_estimate(&p, &q, &corr, &t, &out.trace).unwrap();
            assert!(
                (out.log_weight.log() - exact.log()).abs() < 1e-9,
                "incremental {} vs exact {}",
                out.log_weight.log(),
                exact.log()
            );
        }
    }

    #[test]
    fn wrong_program_graph_is_rejected() {
        let p = parse("x = flip(0.5); return x;").unwrap();
        let q = parse("x = flip(0.25); return x;").unwrap();
        let other = parse("y = flip(0.5); return y;").unwrap();
        let translator = IncrementalTranslator::from_edit(p, q);
        let mut rng = StdRng::seed_from_u64(10);
        let graph = ExecGraph::simulate(&other, &mut rng).unwrap();
        assert!(translator.translate_graph(&graph, &mut rng).is_err());
    }

    /// A randomized differential test across many seeds: the incremental
    /// weight always matches the exact Eq. (2) oracle for the produced
    /// pair (t, u).
    #[test]
    fn randomized_differential_weights() {
        let pairs = [
            (
                "a = flip(0.5) @ a; b = flip(a ? 0.2 : 0.7) @ b;
                 observe(flip(b ? 0.9 : 0.3) @ o == 1); return b;",
                "a = flip(0.6) @ a; b = flip(a ? 0.4 : 0.7) @ b;
                 observe(flip(b ? 0.5 : 0.3) @ o == 1); return b;",
            ),
            (
                "n = 4; xs = array(n, 0);
                 for i in [0..n) { xs[i] = flip(0.5) @ x; }
                 observe(flip(xs[0] ? 0.9 : 0.1) @ o == 1); return xs;",
                "n = 4; xs = array(n, 0);
                 for i in [0..n) { xs[i] = flip(0.3) @ x; }
                 observe(flip(xs[0] ? 0.8 : 0.1) @ o == 1); return xs;",
            ),
            (
                "c = flip(0.5) @ c; if c { y = uniform(0, 3) @ u; } else { y = uniform(0, 3) @ v; }
                 return y;",
                "c = flip(0.9) @ c; if c { y = uniform(0, 3) @ u; } else { y = uniform(1, 4) @ v; }
                 return y;",
            ),
        ];
        for (src_p, src_q) in pairs {
            let p = parse(src_p).unwrap();
            let q = parse(src_q).unwrap();
            let translator = IncrementalTranslator::from_edit(p.clone(), q.clone());
            let corr = translator.edit().correspondence.clone();
            for seed in 0..30 {
                let mut rng = StdRng::seed_from_u64(seed);
                let t = simulate(&p, &mut rng).unwrap();
                let out = translator.translate(&t, &mut rng).unwrap();
                let exact = exact_weight_estimate(&p, &q, &corr, &t, &out.trace).unwrap();
                assert!(
                    (out.log_weight.log() - exact.log()).abs() < 1e-9,
                    "seed {seed} on `{src_q}`: incremental {} vs exact {}",
                    out.log_weight.log(),
                    exact.log()
                );
            }
        }
    }

    /// While loops on the dependency-graph runtime: the Figure 6
    /// geometric edit `p = 1/2 → 1/3` reuses every trial (Section 5.4)
    /// and its weight matches the exact oracle.
    #[test]
    fn while_loop_geometric_edit() {
        let p = parse("p = 0.5; n = 1; while flip(p) @ t { n = n + 1; } return n;").unwrap();
        let q = parse("p = 1.0 / 3.0; n = 1; while flip(p) @ t { n = n + 1; } return n;").unwrap();
        let translator = IncrementalTranslator::from_edit(p.clone(), q.clone());
        let corr = translator.edit().correspondence.clone();
        assert_eq!(corr.lookup(&addr!["t", 3]), Some(addr!["t", 3]));
        let mut rng = StdRng::seed_from_u64(20);
        for _ in 0..30 {
            let graph = ExecGraph::simulate(&p, &mut rng).unwrap();
            let t = graph.to_trace().unwrap();
            let result = translator.translate_graph(&graph, &mut rng).unwrap();
            let u = result.graph.to_trace().unwrap();
            // Whole trial sequence reused: same n.
            assert_eq!(u.return_value(), t.return_value());
            assert_eq!(u.to_choice_map(), t.to_choice_map());
            let exact = exact_weight_estimate(&p, &q, &corr, &t, &u).unwrap();
            assert!(
                (result.log_weight.log() - exact.log()).abs() < 1e-9,
                "incremental {} vs exact {}",
                result.log_weight.log(),
                exact.log()
            );
            // Hand-computed: ((1/3)/(1/2))^(n-1) * ((2/3)/(1/2)).
            let n = t.return_value().unwrap().as_int().unwrap();
            let expected = ((2.0f64 / 3.0).powi((n - 1) as i32) * (2.0 / 3.0) / 0.5).ln();
            assert!((result.log_weight.log() - expected).abs() < 1e-9);
        }
    }

    /// A while loop whose *termination condition* changes: the loop runs
    /// a different number of iterations; removed/added iterations are
    /// accounted exactly.
    #[test]
    fn while_loop_bound_change() {
        let p = parse(
            "n = 0; s = 0;
             while n < 3 { s = s + flip(0.5) @ f; n = n + 1; }
             observe(flip(s > 1 ? 0.9 : 0.2) @ o == 1);
             return s;",
        )
        .unwrap();
        let q = parse(
            "n = 0; s = 0;
             while n < 5 { s = s + flip(0.5) @ f; n = n + 1; }
             observe(flip(s > 2 ? 0.9 : 0.2) @ o == 1);
             return s;",
        )
        .unwrap();
        let translator = IncrementalTranslator::from_edit(p.clone(), q.clone());
        let corr = translator.edit().correspondence.clone();
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..30 {
            let t = simulate(&p, &mut rng).unwrap();
            let out = translator.translate(&t, &mut rng).unwrap();
            assert_eq!(out.trace.len(), 5);
            // The first three flips are reused.
            for i in 0..3_i64 {
                assert_eq!(out.trace.value(&addr!["f", i]), t.value(&addr!["f", i]));
            }
            let exact = exact_weight_estimate(&p, &q, &corr, &t, &out.trace).unwrap();
            assert!(
                (out.log_weight.log() - exact.log()).abs() < 1e-9,
                "incremental {} vs exact {}",
                out.log_weight.log(),
                exact.log()
            );
        }
        // And shrinking: Q runs fewer iterations than P.
        let translator = IncrementalTranslator::from_edit(q.clone(), p.clone());
        let corr = translator.edit().correspondence.clone();
        for _ in 0..30 {
            let t = simulate(&q, &mut rng).unwrap();
            let out = translator.translate(&t, &mut rng).unwrap();
            assert_eq!(out.trace.len(), 3);
            let exact = exact_weight_estimate(&q, &p, &corr, &t, &out.trace).unwrap();
            assert!(
                (out.log_weight.log() - exact.log()).abs() < 1e-9,
                "shrink: incremental {} vs exact {}",
                out.log_weight.log(),
                exact.log()
            );
        }
    }

    /// An identity edit on a while program skips every iteration.
    #[test]
    fn while_identity_edit_skips_everything() {
        let src = "n = 0; while n < 4 { n = n + flip(0.9) @ f; } return n;";
        let p = parse(src).unwrap();
        let q = parse(src).unwrap();
        let translator = IncrementalTranslator::from_edit(p.clone(), q);
        let mut rng = StdRng::seed_from_u64(22);
        let graph = ExecGraph::simulate(&p, &mut rng).unwrap();
        let result = translator.translate_graph(&graph, &mut rng).unwrap();
        assert_eq!(result.stats.visited, 0);
        assert!(result.log_weight.log().abs() < 1e-12);
        assert_eq!(
            result.graph.to_trace().unwrap().to_choice_map(),
            graph.to_trace().unwrap().to_choice_map()
        );
    }

    /// Translated graphs compose: translate P → Q, then reuse the output
    /// graph to translate Q → R.
    #[test]
    fn chained_edits_compose() {
        let p = parse("s = 1.0; x = gauss(0.0, s) @ x; return x;").unwrap();
        let q = parse("s = 2.0; x = gauss(0.0, s) @ x; return x;").unwrap();
        let r = parse("s = 4.0; x = gauss(0.0, s) @ x; return x;").unwrap();
        let t1 = IncrementalTranslator::from_edit(p.clone(), q.clone());
        let t2 = IncrementalTranslator::from_edit(q.clone(), r.clone());
        let mut rng = StdRng::seed_from_u64(11);
        let g_p = ExecGraph::simulate(&p, &mut rng).unwrap();
        let step1 = t1.translate_graph(&g_p, &mut rng).unwrap();
        let step2 = t2.translate_graph(&step1.graph, &mut rng).unwrap();
        let x = g_p.to_trace().unwrap().value(&addr!["x"]).unwrap().clone();
        assert_eq!(step2.graph.to_trace().unwrap().value(&addr!["x"]), Some(&x));
        // Total weight = N(x; 0,4)/N(x; 0,1) through the chain.
        let x = x.as_real().unwrap();
        let n1 = ppl::dist::Normal::new(0.0, 1.0).unwrap();
        let n4 = ppl::dist::Normal::new(0.0, 4.0).unwrap();
        let expected = n4.log_prob(&Value::Real(x)).log() - n1.log_prob(&Value::Real(x)).log();
        let total = step1.log_weight.log() + step2.log_weight.log();
        assert!((total - expected).abs() < 1e-9, "{total} vs {expected}");
    }
}
