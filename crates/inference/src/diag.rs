//! MCMC convergence diagnostics: autocorrelation, integrated
//! autocorrelation time / effective sample size, and split-R̂.
//!
//! These back the "gold standard" runs of the experiment harness: before
//! trusting a long chain as ground truth, check that R̂ ≈ 1 and the
//! effective sample size is large.

use crate::stats::mean;

/// Lag-`k` sample autocorrelation of a series (`NaN` if the series is too
/// short or constant).
pub fn autocorrelation(xs: &[f64], lag: usize) -> f64 {
    if xs.len() <= lag + 1 {
        return f64::NAN;
    }
    let m = mean(xs);
    let var: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    if var == 0.0 {
        return f64::NAN;
    }
    let cov: f64 = xs[..xs.len() - lag]
        .iter()
        .zip(&xs[lag..])
        .map(|(a, b)| (a - m) * (b - m))
        .sum();
    cov / var
}

/// Integrated autocorrelation time `τ = 1 + 2 Σ ρ_k`, truncated by
/// Geyer's initial positive sequence criterion.
pub fn integrated_autocorrelation_time(xs: &[f64]) -> f64 {
    if xs.len() < 4 {
        return f64::NAN;
    }
    let mut tau = 1.0;
    let mut k = 1;
    while k + 1 < xs.len() / 2 {
        let pair = autocorrelation(xs, k) + autocorrelation(xs, k + 1);
        if !pair.is_finite() || pair <= 0.0 {
            break;
        }
        tau += 2.0 * pair;
        k += 2;
    }
    tau
}

/// Effective sample size `n / τ` of a single chain.
pub fn chain_ess(xs: &[f64]) -> f64 {
    let tau = integrated_autocorrelation_time(xs);
    if !tau.is_finite() || tau <= 0.0 {
        return f64::NAN;
    }
    xs.len() as f64 / tau
}

/// Split-R̂ (Gelman–Rubin with split chains): values near 1 indicate the
/// chains agree; values ≳ 1.05 indicate non-convergence.
///
/// Each input chain is split in half, so even a single chain yields a
/// meaningful statistic. Returns `NaN` if there is not enough data.
pub fn split_r_hat(chains: &[Vec<f64>]) -> f64 {
    let mut splits: Vec<&[f64]> = Vec::new();
    for chain in chains {
        if chain.len() < 4 {
            return f64::NAN;
        }
        let mid = chain.len() / 2;
        splits.push(&chain[..mid]);
        splits.push(&chain[mid..mid * 2]);
    }
    let m = splits.len() as f64;
    let n = splits.iter().map(|s| s.len()).min().unwrap_or(0) as f64;
    if n < 2.0 {
        return f64::NAN;
    }
    let chain_means: Vec<f64> = splits.iter().map(|s| mean(s)).collect();
    let grand = mean(&chain_means);
    // Between-chain variance.
    let b = n / (m - 1.0)
        * chain_means
            .iter()
            .map(|cm| (cm - grand) * (cm - grand))
            .sum::<f64>();
    // Within-chain variance.
    let w = splits
        .iter()
        .map(|s| {
            let cm = mean(s);
            s.iter().map(|x| (x - cm) * (x - cm)).sum::<f64>() / (n - 1.0)
        })
        .sum::<f64>()
        / m;
    if w == 0.0 {
        return f64::NAN;
    }
    let var_plus = (n - 1.0) / n * w + b / n;
    (var_plus / w).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl::dist::util::standard_normal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn iid_chain(n: usize, seed: u64, shift: f64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| shift + standard_normal(&mut rng)).collect()
    }

    /// AR(1) chain with coefficient rho.
    fn ar1_chain(n: usize, rho: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(n);
        let mut x = 0.0;
        for _ in 0..n {
            x = rho * x + (1.0 - rho * rho).sqrt() * standard_normal(&mut rng);
            xs.push(x);
        }
        xs
    }

    #[test]
    fn autocorrelation_of_iid_is_near_zero() {
        let xs = iid_chain(50_000, 1, 0.0);
        assert!(autocorrelation(&xs, 1).abs() < 0.02);
        assert!(autocorrelation(&xs, 10).abs() < 0.02);
    }

    #[test]
    fn ar1_autocorrelation_matches_rho() {
        let xs = ar1_chain(100_000, 0.8, 2);
        assert!((autocorrelation(&xs, 1) - 0.8).abs() < 0.02);
        assert!((autocorrelation(&xs, 2) - 0.64).abs() < 0.03);
    }

    #[test]
    fn iat_and_ess_scale_with_mixing() {
        let fast = ar1_chain(50_000, 0.1, 3);
        let slow = ar1_chain(50_000, 0.9, 4);
        let tau_fast = integrated_autocorrelation_time(&fast);
        let tau_slow = integrated_autocorrelation_time(&slow);
        // Theory: τ = (1+ρ)/(1−ρ): ≈1.22 vs ≈19.
        assert!((tau_fast - 1.22).abs() < 0.15, "τ_fast {tau_fast}");
        assert!((tau_slow - 19.0).abs() < 3.0, "τ_slow {tau_slow}");
        assert!(chain_ess(&fast) > 5.0 * chain_ess(&slow));
    }

    #[test]
    fn r_hat_near_one_for_agreeing_chains() {
        let chains: Vec<Vec<f64>> = (0..4).map(|i| iid_chain(5_000, 10 + i, 0.0)).collect();
        let r = split_r_hat(&chains);
        assert!((r - 1.0).abs() < 0.01, "R̂ = {r}");
    }

    #[test]
    fn r_hat_detects_disagreeing_chains() {
        let chains = vec![iid_chain(5_000, 20, 0.0), iid_chain(5_000, 21, 3.0)];
        let r = split_r_hat(&chains);
        assert!(r > 1.5, "R̂ = {r} should flag disagreement");
    }

    #[test]
    fn degenerate_inputs_are_nan() {
        assert!(autocorrelation(&[1.0, 1.0, 1.0, 1.0], 1).is_nan());
        assert!(autocorrelation(&[1.0], 1).is_nan());
        assert!(split_r_hat(&[vec![1.0, 2.0]]).is_nan());
        assert!(chain_ess(&[1.0]).is_nan());
    }
}
