//! Random-walk ("Gaussian drift") Metropolis–Hastings for continuous
//! sites.
//!
//! Prior-proposal Metropolis (the paper's baseline) mixes poorly when the
//! posterior is much narrower than the prior. This kernel proposes
//! `v' = v + scale · N(0, 1)` at each real-valued site in a cycle —
//! a symmetric proposal, so the acceptance ratio is just the score ratio.
//! It serves as the "hand-optimized MCMC gold standard" for the
//! regression experiment.

use rand::RngCore;

use incremental::McmcKernel;
use ppl::dist::util::{standard_normal, uniform_unit};
use ppl::{Model, PplError, Trace, Value};

use crate::mh::regenerate;

/// A systematic-scan random-walk Metropolis kernel over the real-valued
/// sites of a trace (discrete sites are left untouched; combine with
/// [`crate::SingleSiteMh`] for mixed models).
#[derive(Debug, Clone)]
pub struct GaussianDriftKernel<M> {
    model: M,
    scale: f64,
}

impl<M: Model> GaussianDriftKernel<M> {
    /// Creates the kernel with the given proposal scale.
    ///
    /// # Panics
    ///
    /// Panics unless `scale` is positive and finite.
    pub fn new(model: M, scale: f64) -> GaussianDriftKernel<M> {
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        GaussianDriftKernel { model, scale }
    }

    /// The proposal scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl<M: Model> McmcKernel for GaussianDriftKernel<M> {
    fn step(&self, trace: &Trace, rng: &mut dyn RngCore) -> Result<Trace, PplError> {
        let mut current = trace.clone();
        let sites: Vec<_> = current
            .choices()
            .filter(|(_, c)| matches!(c.value, Value::Real(_)))
            .map(|(a, _)| a.clone())
            .collect();
        for site in sites {
            let Some(record) = current.choice(&site) else {
                continue; // structure changed mid-sweep
            };
            let old_value = record.value.as_real()?;
            let proposed = Value::Real(old_value + self.scale * standard_normal(rng));
            let candidate = match regenerate(&self.model, &current, &site, &proposed, rng) {
                Ok((candidate, _, _)) => candidate,
                // The proposal landed in a region where the program cannot
                // even execute (e.g. a negative rate fed to a downstream
                // distribution): a zero-probability region, so reject.
                Err(PplError::InvalidDistribution(_)) => continue,
                Err(e) => return Err(e),
            };
            // Symmetric proposal: accept with min(1, score'/score).
            let log_alpha = candidate.score() - current.score();
            if log_alpha.log() >= 0.0 || uniform_unit(rng) < log_alpha.prob() {
                current = candidate;
            }
        }
        Ok(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl::dist::Dist;
    use ppl::handlers::simulate;
    use ppl::{addr, Handler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// x ~ N(0, 1), observe y = 2 under N(x, 0.5): posterior
    /// N(2/1.25 * 1, ...) — conjugate closed form.
    fn model(h: &mut dyn Handler) -> Result<Value, PplError> {
        let x = h.sample(addr!["x"], Dist::normal(0.0, 1.0))?;
        h.observe(
            addr!["y"],
            Dist::normal(x.as_real()?, 0.5),
            Value::Real(2.0),
        )?;
        Ok(x)
    }

    #[test]
    fn drift_kernel_targets_conjugate_posterior() {
        // Posterior: mean = 2 * (1 / (1 + 0.25)) = 1.6, var = 0.2.
        let kernel = GaussianDriftKernel::new(model, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let mut trace = simulate(&model, &mut rng).unwrap();
        let mut xs = Vec::new();
        for i in 0..30_000 {
            trace = kernel.step(&trace, &mut rng).unwrap();
            if i >= 1000 {
                xs.push(trace.value(&addr!["x"]).unwrap().as_real().unwrap());
            }
        }
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 1.6).abs() < 0.03, "mean {mean}");
        assert!((var - 0.2).abs() < 0.03, "var {var}");
    }

    #[test]
    fn discrete_sites_are_untouched() {
        let mixed = |h: &mut dyn Handler| {
            let b = h.sample(addr!["b"], Dist::flip(0.5))?;
            let _x = h.sample(addr!["x"], Dist::normal(0.0, 1.0))?;
            Ok(b)
        };
        let kernel = GaussianDriftKernel::new(mixed, 0.5);
        let mut rng = StdRng::seed_from_u64(2);
        let t = simulate(&mixed, &mut rng).unwrap();
        let b_before = t.value(&addr!["b"]).unwrap().clone();
        let mut current = t;
        for _ in 0..20 {
            current = kernel.step(&current, &mut rng).unwrap();
        }
        assert_eq!(current.value(&addr!["b"]), Some(&b_before));
    }

    #[test]
    #[should_panic]
    fn zero_scale_panics() {
        let _ = GaussianDriftKernel::new(model, 0.0);
    }
}
