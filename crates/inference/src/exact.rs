//! Exact posterior sampling for finite discrete models via enumeration.
//!
//! The incremental inference experiments take "exact posterior samples
//! for P as input" — for small discrete programs we obtain them by
//! enumerating all traces and drawing from the normalized table.

use rand::RngCore;

use ppl::dist::util::uniform_unit;
use ppl::{Enumeration, Model, PplError, Trace};

/// A sampler over the exact posterior of a finite discrete model.
#[derive(Debug, Clone)]
pub struct ExactPosterior {
    traces: Vec<Trace>,
    cumulative: Vec<f64>,
}

impl ExactPosterior {
    /// Enumerates `model` and builds the posterior table.
    ///
    /// # Errors
    ///
    /// Propagates enumeration errors, and errors if the posterior has no
    /// mass (all observations impossible).
    pub fn new(model: &dyn Model) -> Result<ExactPosterior, PplError> {
        let enumeration = Enumeration::run(model)?;
        let mut traces = Vec::new();
        let mut cumulative = Vec::new();
        let mut acc = 0.0;
        for (t, p) in enumeration.posterior() {
            acc += p;
            traces.push(t.clone());
            cumulative.push(acc);
        }
        if traces.is_empty() {
            return Err(PplError::Other(
                "posterior has zero mass; nothing to sample".to_string(),
            ));
        }
        Ok(ExactPosterior { traces, cumulative })
    }

    /// Draws one exact posterior trace.
    pub fn sample(&self, rng: &mut dyn RngCore) -> Trace {
        let u = uniform_unit(rng) * self.cumulative.last().copied().unwrap_or(1.0);
        let idx = match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).unwrap())
        {
            Ok(i) => (i + 1).min(self.traces.len() - 1),
            Err(i) => i.min(self.traces.len() - 1),
        };
        self.traces[idx].clone()
    }

    /// Draws `m` exact posterior traces.
    pub fn samples(&self, m: usize, rng: &mut dyn RngCore) -> Vec<Trace> {
        (0..m).map(|_| self.sample(rng)).collect()
    }

    /// Number of distinct support traces.
    pub fn support_size(&self) -> usize {
        self.traces.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl::dist::Dist;
    use ppl::{addr, Handler, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(h: &mut dyn Handler) -> Result<Value, PplError> {
        let x = h.sample(addr!["x"], Dist::flip(0.5))?;
        let po = if x.truthy()? { 0.8 } else { 0.2 };
        h.observe(addr!["o"], Dist::flip(po), Value::Bool(true))?;
        Ok(x)
    }

    #[test]
    fn samples_follow_exact_posterior() {
        let sampler = ExactPosterior::new(&model).unwrap();
        assert_eq!(sampler.support_size(), 2);
        let mut rng = StdRng::seed_from_u64(51);
        let n = 100_000;
        let hits = sampler
            .samples(n, &mut rng)
            .iter()
            .filter(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap())
            .count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.8).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn impossible_posterior_is_an_error() {
        let hopeless = |h: &mut dyn Handler| {
            let x = h.sample(addr!["x"], Dist::flip(0.5))?;
            h.observe(addr!["o"], Dist::flip(0.0), Value::Bool(true))?;
            Ok(x)
        };
        assert!(ExactPosterior::new(&hopeless).is_err());
    }
}
