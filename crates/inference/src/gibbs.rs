//! Gibbs sampling for fixed-structure models with discrete choices.
//!
//! One sweep visits each finite-support random choice and redraws it from
//! its exact full conditional, obtained by scoring the program at every
//! support value with all other choices held fixed. This is the baseline
//! of the paper's Section 7.3 ("10 back-and-forth Gibbs sweeps").

use rand::RngCore;

use incremental::McmcKernel;
use ppl::dist::util::uniform_unit;
use ppl::handlers::score;
use ppl::logweight::log_sum_exp;
use ppl::{Address, Model, PplError, Trace};

/// Sweep order over the sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepOrder {
    /// Visit sites in evaluation order.
    #[default]
    Forward,
    /// Visit sites forward, then backward — one "back-and-forth" sweep
    /// (Section 7.3).
    BackAndForth,
}

/// A systematic-scan Gibbs kernel.
///
/// # Requirements
///
/// The model must have *fixed structure*: the set of addresses must not
/// depend on the values of the choices being updated (true for the HMM
/// programs of Listings 3–4). A structure change surfaces as a
/// [`PplError::MissingChoice`] error. Continuous choices are skipped.
#[derive(Debug, Clone)]
pub struct GibbsKernel<M> {
    model: M,
    order: SweepOrder,
}

impl<M: Model> GibbsKernel<M> {
    /// Creates a forward-sweep Gibbs kernel.
    pub fn new(model: M) -> GibbsKernel<M> {
        GibbsKernel {
            model,
            order: SweepOrder::Forward,
        }
    }

    /// Creates a Gibbs kernel with the given sweep order.
    pub fn with_order(model: M, order: SweepOrder) -> GibbsKernel<M> {
        GibbsKernel { model, order }
    }

    /// Resamples the choice at `site` from its exact full conditional.
    fn update_site(
        &self,
        current: &Trace,
        site: &Address,
        rng: &mut dyn RngCore,
    ) -> Result<Trace, PplError> {
        let record = current
            .choice(site)
            .ok_or_else(|| PplError::MissingChoice(site.clone()))?;
        let Some(support) = record.dist.enumerate_support() else {
            return Ok(current.clone()); // continuous: skip
        };
        let mut scores = Vec::with_capacity(support.len());
        let mut traces = Vec::with_capacity(support.len());
        for v in &support {
            let mut constraints = current.to_choice_map();
            constraints.insert(site.clone(), v.clone());
            let trace = score(&self.model, &constraints)?;
            scores.push(trace.score().log());
            traces.push(trace);
        }
        let lse = log_sum_exp(&scores);
        if lse == f64::NEG_INFINITY {
            return Err(PplError::Other(format!(
                "gibbs conditional at `{site}` has zero mass"
            )));
        }
        let u = uniform_unit(rng);
        let mut acc = 0.0;
        for (i, s) in scores.iter().enumerate() {
            acc += (s - lse).exp();
            if u < acc {
                return Ok(traces.swap_remove(i));
            }
        }
        let last = scores
            .iter()
            .rposition(|s| *s > f64::NEG_INFINITY)
            .expect("positive mass exists");
        Ok(traces.swap_remove(last))
    }
}

impl<M: Model> McmcKernel for GibbsKernel<M> {
    fn step(&self, trace: &Trace, rng: &mut dyn RngCore) -> Result<Trace, PplError> {
        let sites: Vec<Address> = trace.choices().map(|(a, _)| a.clone()).collect();
        let mut current = trace.clone();
        for site in &sites {
            current = self.update_site(&current, site, rng)?;
        }
        if self.order == SweepOrder::BackAndForth {
            for site in sites.iter().rev() {
                current = self.update_site(&current, site, rng)?;
            }
        }
        Ok(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl::dist::Dist;
    use ppl::handlers::simulate;
    use ppl::{addr, Enumeration, Handler, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A 3-state chain with observations: fixed structure, discrete.
    fn chain_model(h: &mut dyn Handler) -> Result<Value, PplError> {
        let mut prev = 0_i64;
        for i in 0..3 {
            let probs = match prev {
                0 => [0.6, 0.3, 0.1],
                1 => [0.2, 0.5, 0.3],
                _ => [0.1, 0.3, 0.6],
            };
            let x = h.sample(addr!["x", i], Dist::categorical(&probs))?;
            prev = x.as_int()?;
            let obs_probs = match prev {
                0 => [0.7, 0.2, 0.1],
                1 => [0.2, 0.6, 0.2],
                _ => [0.1, 0.2, 0.7],
            };
            h.observe(addr!["y", i], Dist::categorical(&obs_probs), Value::Int(1))?;
        }
        Ok(Value::Int(prev))
    }

    #[test]
    fn gibbs_targets_exact_posterior() {
        let kernel = GibbsKernel::new(chain_model);
        let exact = Enumeration::run(&chain_model)
            .unwrap()
            .probability(|t| t.value(&addr!["x", 1]).unwrap().num_eq(&Value::Int(1)));
        let mut rng = StdRng::seed_from_u64(21);
        let mut trace = simulate(&chain_model, &mut rng).unwrap();
        let (mut hits, total) = (0usize, 20_000usize);
        for i in 0..total + 500 {
            trace = kernel.step(&trace, &mut rng).unwrap();
            if i >= 500 && trace.value(&addr!["x", 1]).unwrap().num_eq(&Value::Int(1)) {
                hits += 1;
            }
        }
        let freq = hits as f64 / total as f64;
        assert!((freq - exact).abs() < 0.02, "freq {freq} vs exact {exact}");
    }

    #[test]
    fn back_and_forth_also_targets_posterior() {
        let kernel = GibbsKernel::with_order(chain_model, SweepOrder::BackAndForth);
        let exact = Enumeration::run(&chain_model)
            .unwrap()
            .probability(|t| t.value(&addr!["x", 0]).unwrap().num_eq(&Value::Int(0)));
        let mut rng = StdRng::seed_from_u64(22);
        let mut trace = simulate(&chain_model, &mut rng).unwrap();
        let (mut hits, total) = (0usize, 10_000usize);
        for i in 0..total + 200 {
            trace = kernel.step(&trace, &mut rng).unwrap();
            if i >= 200 && trace.value(&addr!["x", 0]).unwrap().num_eq(&Value::Int(0)) {
                hits += 1;
            }
        }
        let freq = hits as f64 / total as f64;
        assert!((freq - exact).abs() < 0.02, "freq {freq} vs exact {exact}");
    }

    #[test]
    fn continuous_choices_are_skipped() {
        let model = |h: &mut dyn Handler| {
            let x = h.sample(addr!["x"], Dist::normal(0.0, 1.0))?;
            let _b = h.sample(addr!["b"], Dist::flip(0.5))?;
            Ok(x)
        };
        let kernel = GibbsKernel::new(model);
        let mut rng = StdRng::seed_from_u64(23);
        let t = simulate(&model, &mut rng).unwrap();
        let next = kernel.step(&t, &mut rng).unwrap();
        // The continuous x is untouched.
        assert_eq!(next.value(&addr!["x"]), t.value(&addr!["x"]));
    }

    #[test]
    fn structure_change_is_an_error() {
        let model = |h: &mut dyn Handler| {
            let a = h.sample(addr!["a"], Dist::flip(0.5))?;
            if a.truthy()? {
                h.sample(addr!["b"], Dist::flip(0.5))?;
            }
            Ok(a)
        };
        let kernel = GibbsKernel::new(model);
        let mut rng = StdRng::seed_from_u64(24);
        // Find a trace with a = true (so flipping a during the sweep
        // removes b and triggers the structure error).
        let mut result = Ok(Trace::new());
        let mut tried = false;
        for _ in 0..100 {
            let t = simulate(&model, &mut rng).unwrap();
            if t.value(&addr!["a"]).unwrap().truthy().unwrap() {
                tried = true;
                result = kernel.step(&t, &mut rng);
                if result.is_err() {
                    break;
                }
            }
        }
        assert!(tried);
        assert!(result.is_err(), "expected a structure-change error");
    }
}
