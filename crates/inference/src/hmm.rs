//! Exact inference for first-order hidden Markov models: forward filtering,
//! backward smoothing, FFBS posterior sampling, and Viterbi decoding.
//!
//! Section 7.3 uses the fact that "exact samples from the first-order
//! model are efficiently obtained using dynamic programming": these
//! routines produce the exact posterior samples that seed incremental
//! inference into the second-order model.

use rand::RngCore;

use ppl::dist::util::uniform_unit;
use ppl::logweight::log_sum_exp;
use ppl::PplError;

/// A first-order HMM with `k` hidden states and `v` observation symbols,
/// parameterized in log space.
#[derive(Debug, Clone)]
pub struct Hmm {
    /// `log π_i`: initial state log probabilities (`k`).
    pub log_initial: Vec<f64>,
    /// `log A[i][j] = log Pr[x_{t+1} = j | x_t = i]` (`k × k`).
    pub log_transition: Vec<Vec<f64>>,
    /// `log B[i][o] = log Pr[y_t = o | x_t = i]` (`k × v`).
    pub log_observation: Vec<Vec<f64>>,
}

impl Hmm {
    /// Number of hidden states.
    pub fn num_states(&self) -> usize {
        self.log_initial.len()
    }

    /// Number of observation symbols.
    pub fn num_symbols(&self) -> usize {
        self.log_observation.first().map_or(0, Vec::len)
    }

    /// Validates dimensions and (approximate) normalization.
    ///
    /// # Errors
    ///
    /// Returns [`PplError::InvalidDistribution`] on shape mismatches or
    /// rows that do not sum to one.
    pub fn validate(&self) -> Result<(), PplError> {
        let k = self.num_states();
        if k == 0 {
            return Err(PplError::InvalidDistribution("HMM needs k > 0".into()));
        }
        let rows_ok = self.log_transition.len() == k
            && self.log_transition.iter().all(|r| r.len() == k)
            && self.log_observation.len() == k;
        if !rows_ok {
            return Err(PplError::InvalidDistribution(
                "HMM matrix dimensions are inconsistent".into(),
            ));
        }
        let check_row = |row: &[f64]| (log_sum_exp(row)).abs() < 1e-6;
        if !check_row(&self.log_initial)
            || !self.log_transition.iter().all(|r| check_row(r))
            || !self.log_observation.iter().all(|r| check_row(r))
        {
            return Err(PplError::InvalidDistribution(
                "HMM rows must be normalized".into(),
            ));
        }
        Ok(())
    }

    /// Forward algorithm: returns the filtering lattice
    /// `α[t][i] = log Pr[y_{1:t}, x_t = i]` and the log evidence
    /// `log Pr[y_{1:T}]`.
    ///
    /// # Panics
    ///
    /// Panics if `observations` is empty or contains an out-of-range
    /// symbol.
    pub fn forward(&self, observations: &[usize]) -> (Vec<Vec<f64>>, f64) {
        assert!(!observations.is_empty(), "need at least one observation");
        let k = self.num_states();
        let mut alpha = Vec::with_capacity(observations.len());
        let mut first = vec![0.0; k];
        for (i, slot) in first.iter_mut().enumerate() {
            *slot = self.log_initial[i] + self.log_observation[i][observations[0]];
        }
        alpha.push(first);
        for &obs in &observations[1..] {
            let prev = alpha.last().expect("non-empty");
            let mut next = vec![0.0; k];
            for (j, slot) in next.iter_mut().enumerate() {
                let terms: Vec<f64> = (0..k)
                    .map(|i| prev[i] + self.log_transition[i][j])
                    .collect();
                *slot = log_sum_exp(&terms) + self.log_observation[j][obs];
            }
            alpha.push(next);
        }
        let evidence = log_sum_exp(alpha.last().expect("non-empty"));
        (alpha, evidence)
    }

    /// Posterior marginals `γ[t][i] = Pr[x_t = i | y_{1:T}]` via
    /// forward–backward.
    pub fn smoothed_marginals(&self, observations: &[usize]) -> Vec<Vec<f64>> {
        let k = self.num_states();
        let (alpha, evidence) = self.forward(observations);
        let t_max = observations.len();
        let mut beta = vec![vec![0.0_f64; k]; t_max];
        for t in (0..t_max.saturating_sub(1)).rev() {
            for i in 0..k {
                let terms: Vec<f64> = (0..k)
                    .map(|j| {
                        self.log_transition[i][j]
                            + self.log_observation[j][observations[t + 1]]
                            + beta[t + 1][j]
                    })
                    .collect();
                beta[t][i] = log_sum_exp(&terms);
            }
        }
        (0..t_max)
            .map(|t| {
                (0..k)
                    .map(|i| (alpha[t][i] + beta[t][i] - evidence).exp())
                    .collect()
            })
            .collect()
    }

    /// One exact posterior sample of the hidden sequence via
    /// forward-filtering backward-sampling (FFBS).
    pub fn posterior_sample(&self, observations: &[usize], rng: &mut dyn RngCore) -> Vec<usize> {
        let k = self.num_states();
        let (alpha, _) = self.forward(observations);
        let t_max = observations.len();
        let mut states = vec![0usize; t_max];
        states[t_max - 1] = sample_log_weights(&alpha[t_max - 1], rng);
        for t in (0..t_max - 1).rev() {
            let next = states[t + 1];
            let weights: Vec<f64> = (0..k)
                .map(|i| alpha[t][i] + self.log_transition[i][next])
                .collect();
            states[t] = sample_log_weights(&weights, rng);
        }
        states
    }

    /// Exact posterior log probability of a full hidden sequence
    /// `log Pr[x_{1:T} | y_{1:T}]`.
    pub fn sequence_log_posterior(&self, observations: &[usize], states: &[usize]) -> f64 {
        let (_, evidence) = self.forward(observations);
        let mut joint =
            self.log_initial[states[0]] + self.log_observation[states[0]][observations[0]];
        for t in 1..observations.len() {
            joint += self.log_transition[states[t - 1]][states[t]]
                + self.log_observation[states[t]][observations[t]];
        }
        joint - evidence
    }

    /// Viterbi decoding: the most likely hidden sequence.
    pub fn viterbi(&self, observations: &[usize]) -> Vec<usize> {
        let k = self.num_states();
        let t_max = observations.len();
        let mut delta = vec![vec![f64::NEG_INFINITY; k]; t_max];
        let mut back = vec![vec![0usize; k]; t_max];
        for (i, slot) in delta[0].iter_mut().enumerate() {
            *slot = self.log_initial[i] + self.log_observation[i][observations[0]];
        }
        for t in 1..t_max {
            for j in 0..k {
                let (best_i, best) = (0..k)
                    .map(|i| (i, delta[t - 1][i] + self.log_transition[i][j]))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .expect("k > 0");
                delta[t][j] = best + self.log_observation[j][observations[t]];
                back[t][j] = best_i;
            }
        }
        let mut states = vec![0usize; t_max];
        states[t_max - 1] = (0..k)
            .max_by(|&a, &b| {
                delta[t_max - 1][a]
                    .partial_cmp(&delta[t_max - 1][b])
                    .unwrap()
            })
            .expect("k > 0");
        for t in (0..t_max - 1).rev() {
            states[t] = back[t + 1][states[t + 1]];
        }
        states
    }
}

fn sample_log_weights(log_weights: &[f64], rng: &mut dyn RngCore) -> usize {
    let lse = log_sum_exp(log_weights);
    let u = uniform_unit(rng);
    let mut acc = 0.0;
    for (i, w) in log_weights.iter().enumerate() {
        acc += (w - lse).exp();
        if u < acc {
            return i;
        }
    }
    log_weights
        .iter()
        .rposition(|w| *w > f64::NEG_INFINITY)
        .expect("positive mass")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_hmm() -> Hmm {
        let ln = |x: f64| x.ln();
        Hmm {
            log_initial: vec![ln(0.6), ln(0.4)],
            log_transition: vec![vec![ln(0.7), ln(0.3)], vec![ln(0.2), ln(0.8)]],
            log_observation: vec![vec![ln(0.9), ln(0.1)], vec![ln(0.3), ln(0.7)]],
        }
    }

    /// Brute-force enumeration of all hidden sequences for validation.
    fn brute_force_posterior(hmm: &Hmm, obs: &[usize]) -> Vec<(Vec<usize>, f64)> {
        let k = hmm.num_states();
        let t = obs.len();
        let mut seqs: Vec<Vec<usize>> = vec![vec![]];
        for _ in 0..t {
            seqs = seqs
                .into_iter()
                .flat_map(|s| {
                    (0..k).map(move |i| {
                        let mut s2 = s.clone();
                        s2.push(i);
                        s2
                    })
                })
                .collect();
        }
        let joints: Vec<f64> = seqs
            .iter()
            .map(|s| {
                let mut j = hmm.log_initial[s[0]] + hmm.log_observation[s[0]][obs[0]];
                for t in 1..obs.len() {
                    j += hmm.log_transition[s[t - 1]][s[t]] + hmm.log_observation[s[t]][obs[t]];
                }
                j
            })
            .collect();
        let z = log_sum_exp(&joints);
        seqs.into_iter()
            .zip(joints)
            .map(|(s, j)| (s, (j - z).exp()))
            .collect()
    }

    #[test]
    fn validates_shapes_and_normalization() {
        assert!(toy_hmm().validate().is_ok());
        let mut bad = toy_hmm();
        bad.log_initial = vec![0.0, 0.0]; // sums to 2
        assert!(bad.validate().is_err());
        let mut bad = toy_hmm();
        bad.log_transition.pop();
        assert!(bad.validate().is_err());
    }

    #[test]
    fn forward_evidence_matches_brute_force() {
        let hmm = toy_hmm();
        let obs = [0, 1, 1, 0];
        let (_, evidence) = hmm.forward(&obs);
        // Brute force: sum of joints.
        let total: f64 = brute_force_posterior(&hmm, &obs)
            .iter()
            .map(|(s, _)| {
                let mut j = hmm.log_initial[s[0]] + hmm.log_observation[s[0]][obs[0]];
                for t in 1..obs.len() {
                    j += hmm.log_transition[s[t - 1]][s[t]] + hmm.log_observation[s[t]][obs[t]];
                }
                j.exp()
            })
            .sum();
        assert!((evidence.exp() - total).abs() < 1e-12);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index used across three parallel tables
    fn smoothed_marginals_match_brute_force() {
        let hmm = toy_hmm();
        let obs = [0, 1, 0];
        let gamma = hmm.smoothed_marginals(&obs);
        let posterior = brute_force_posterior(&hmm, &obs);
        for t in 0..obs.len() {
            for i in 0..2 {
                let exact: f64 = posterior
                    .iter()
                    .filter(|(s, _)| s[t] == i)
                    .map(|(_, p)| p)
                    .sum();
                assert!(
                    (gamma[t][i] - exact).abs() < 1e-10,
                    "t={t} i={i}: {} vs {exact}",
                    gamma[t][i]
                );
            }
        }
    }

    #[test]
    fn ffbs_samples_the_exact_posterior() {
        let hmm = toy_hmm();
        let obs = [0, 1];
        let posterior = brute_force_posterior(&hmm, &obs);
        let mut rng = StdRng::seed_from_u64(31);
        let n = 100_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            let s = hmm.posterior_sample(&obs, &mut rng);
            *counts.entry(s).or_insert(0usize) += 1;
        }
        for (s, p) in posterior {
            let freq = *counts.get(&s).unwrap_or(&0) as f64 / n as f64;
            assert!((freq - p).abs() < 0.01, "seq {s:?}: freq {freq} vs {p}");
        }
    }

    #[test]
    fn sequence_log_posterior_normalizes() {
        let hmm = toy_hmm();
        let obs = [1, 0, 1];
        let total: f64 = brute_force_posterior(&hmm, &obs)
            .iter()
            .map(|(s, _)| hmm.sequence_log_posterior(&obs, s).exp())
            .sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn viterbi_finds_the_mode() {
        let hmm = toy_hmm();
        let obs = [0, 0, 1, 1, 1];
        let map_seq = hmm.viterbi(&obs);
        let posterior = brute_force_posterior(&hmm, &obs);
        let (best, _) = posterior
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(&map_seq, best);
    }
}
