//! Likelihood weighting (prior-proposal importance sampling) and
//! rejection sampling.
//!
//! These are the simplest non-incremental baselines: both sample the
//! program from scratch. Figure 1's caption notes that "simple rejection
//! sampling using the prior as a proposal will be inefficient" when the
//! posterior differs strongly from the prior — these implementations let
//! the test suite and benches quantify that.

use rand::RngCore;

use incremental::ParticleCollection;
use ppl::dist::util::uniform_unit;
use ppl::handlers::generate;
use ppl::{ChoiceMap, Model, PplError, Trace};

/// Likelihood weighting: `m` prior runs, each weighted by its observation
/// likelihood. Returns a weighted [`ParticleCollection`] targeting the
/// posterior.
///
/// # Errors
///
/// Propagates model evaluation errors.
pub fn likelihood_weighting(
    model: &dyn Model,
    m: usize,
    rng: &mut dyn RngCore,
) -> Result<ParticleCollection, PplError> {
    let empty = ChoiceMap::new();
    let mut out = ParticleCollection::new();
    for _ in 0..m {
        let (trace, log_weight) = generate(model, &empty, rng)?;
        out.push(trace, log_weight);
    }
    Ok(out)
}

/// Rejection sampling with the prior as proposal: accept a prior run with
/// probability equal to its observation likelihood. Produces exact
/// (unweighted) posterior samples.
///
/// # Errors
///
/// Returns an error if any observation likelihood exceeds 1 (continuous
/// observation densities cannot be used as acceptance probabilities), if
/// the model fails, or if `max_attempts` proposals are rejected in a row.
pub fn rejection_sample(
    model: &dyn Model,
    rng: &mut dyn RngCore,
    max_attempts: usize,
) -> Result<Trace, PplError> {
    for _ in 0..max_attempts {
        let (trace, log_weight) = generate(model, &ChoiceMap::new(), rng)?;
        let accept_prob = log_weight.prob();
        if accept_prob > 1.0 + 1e-12 {
            return Err(PplError::Other(format!(
                "rejection sampling requires likelihoods <= 1, got {accept_prob}"
            )));
        }
        if uniform_unit(rng) < accept_prob {
            return Ok(trace);
        }
    }
    Err(PplError::Other(format!(
        "rejection sampling failed to accept within {max_attempts} attempts"
    )))
}

/// Draws `m` exact posterior samples by rejection.
///
/// # Errors
///
/// See [`rejection_sample`].
pub fn rejection_samples(
    model: &dyn Model,
    m: usize,
    rng: &mut dyn RngCore,
    max_attempts: usize,
) -> Result<Vec<Trace>, PplError> {
    (0..m)
        .map(|_| rejection_sample(model, rng, max_attempts))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl::dist::Dist;
    use ppl::{addr, Enumeration, Handler, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(h: &mut dyn Handler) -> Result<Value, PplError> {
        let x = h.sample(addr!["x"], Dist::flip(0.3))?;
        let po = if x.truthy()? { 0.9 } else { 0.2 };
        h.observe(addr!["o"], Dist::flip(po), Value::Bool(true))?;
        Ok(x)
    }

    fn exact_posterior() -> f64 {
        Enumeration::run(&model)
            .unwrap()
            .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap())
    }

    #[test]
    fn likelihood_weighting_converges() {
        let mut rng = StdRng::seed_from_u64(1);
        let particles = likelihood_weighting(&model, 50_000, &mut rng).unwrap();
        let est = particles
            .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap())
            .unwrap();
        assert!((est - exact_posterior()).abs() < 0.02, "est {est}");
    }

    #[test]
    fn likelihood_weighting_z_estimate() {
        let mut rng = StdRng::seed_from_u64(2);
        let particles = likelihood_weighting(&model, 50_000, &mut rng).unwrap();
        let z = particles.log_mean_weight().exp();
        let exact_z = Enumeration::run(&model).unwrap().z();
        assert!((z - exact_z).abs() < 0.01, "z {z} vs {exact_z}");
    }

    #[test]
    fn rejection_sampling_is_exact() {
        let mut rng = StdRng::seed_from_u64(3);
        let samples = rejection_samples(&model, 20_000, &mut rng, 10_000).unwrap();
        let freq = samples
            .iter()
            .filter(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap())
            .count() as f64
            / samples.len() as f64;
        assert!((freq - exact_posterior()).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn rejection_rejects_densities_above_one() {
        let dense = |h: &mut dyn Handler| {
            h.observe(addr!["o"], Dist::normal(0.0, 0.01), Value::Real(0.0))?;
            Ok(Value::Int(0))
        };
        let mut rng = StdRng::seed_from_u64(4);
        assert!(rejection_sample(&dense, &mut rng, 10).is_err());
    }

    #[test]
    fn rejection_gives_up_eventually() {
        let hopeless = |h: &mut dyn Handler| {
            h.observe(addr!["o"], Dist::flip(0.0), Value::Bool(true))?;
            Ok(Value::Int(0))
        };
        let mut rng = StdRng::seed_from_u64(5);
        assert!(rejection_sample(&hopeless, &mut rng, 100).is_err());
    }
}
