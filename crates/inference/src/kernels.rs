//! Kernel combinators: cycles, mixtures, and move-rate tracking.
//!
//! The paper's Algorithm 2 accepts any MCMC kernel with the posterior
//! invariant; these combinators build composite kernels out of the
//! primitive ones (a cycle and a mixture of invariant kernels are
//! invariant).

use std::cell::Cell;

use rand::RngCore;

use incremental::McmcKernel;
use ppl::dist::util::uniform_unit;
use ppl::{PplError, Trace};

/// Applies each component kernel once, in order (a *cycle* of kernels —
/// invariant if every component is).
pub struct CycleKernel {
    kernels: Vec<Box<dyn McmcKernel>>,
}

impl std::fmt::Debug for CycleKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CycleKernel")
            .field("len", &self.kernels.len())
            .finish()
    }
}

impl CycleKernel {
    /// Creates a cycle from component kernels.
    ///
    /// # Panics
    ///
    /// Panics on an empty component list.
    pub fn new(kernels: Vec<Box<dyn McmcKernel>>) -> CycleKernel {
        assert!(!kernels.is_empty(), "cycle needs at least one kernel");
        CycleKernel { kernels }
    }
}

impl McmcKernel for CycleKernel {
    fn step(&self, trace: &Trace, rng: &mut dyn RngCore) -> Result<Trace, PplError> {
        let mut current = trace.clone();
        for kernel in &self.kernels {
            current = kernel.step(&current, rng)?;
        }
        Ok(current)
    }
}

/// Picks one component kernel at random per step, with the given
/// weights (a *mixture* of kernels — invariant if every component is).
pub struct MixtureKernel {
    weighted: Vec<(f64, Box<dyn McmcKernel>)>,
    total: f64,
}

impl std::fmt::Debug for MixtureKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MixtureKernel")
            .field("len", &self.weighted.len())
            .finish()
    }
}

impl MixtureKernel {
    /// Creates a mixture kernel.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty or any weight is non-positive.
    pub fn new(weighted: Vec<(f64, Box<dyn McmcKernel>)>) -> MixtureKernel {
        assert!(!weighted.is_empty(), "mixture needs at least one kernel");
        assert!(
            weighted.iter().all(|(w, _)| *w > 0.0 && w.is_finite()),
            "mixture weights must be positive"
        );
        let total = weighted.iter().map(|(w, _)| w).sum();
        MixtureKernel { weighted, total }
    }
}

impl McmcKernel for MixtureKernel {
    fn step(&self, trace: &Trace, rng: &mut dyn RngCore) -> Result<Trace, PplError> {
        let u = uniform_unit(rng) * self.total;
        let mut acc = 0.0;
        for (w, kernel) in &self.weighted {
            acc += w;
            if u < acc {
                return kernel.step(trace, rng);
            }
        }
        self.weighted
            .last()
            .expect("non-empty by construction")
            .1
            .step(trace, rng)
    }
}

/// Wraps a kernel and records how often a step actually changed the
/// trace — a cheap mixing diagnostic (not exactly the acceptance rate: a
/// proposal that re-proposes the current value counts as "no move").
pub struct TrackedKernel<K> {
    inner: K,
    steps: Cell<u64>,
    moves: Cell<u64>,
}

impl<K: std::fmt::Debug> std::fmt::Debug for TrackedKernel<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrackedKernel")
            .field("inner", &self.inner)
            .field("steps", &self.steps.get())
            .field("moves", &self.moves.get())
            .finish()
    }
}

impl<K: McmcKernel> TrackedKernel<K> {
    /// Wraps `inner`.
    pub fn new(inner: K) -> TrackedKernel<K> {
        TrackedKernel {
            inner,
            steps: Cell::new(0),
            moves: Cell::new(0),
        }
    }

    /// Steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.steps.get()
    }

    /// Fraction of steps that changed the trace (`NaN` before the first
    /// step).
    pub fn move_rate(&self) -> f64 {
        if self.steps.get() == 0 {
            f64::NAN
        } else {
            self.moves.get() as f64 / self.steps.get() as f64
        }
    }

    /// Resets the counters.
    pub fn reset(&self) {
        self.steps.set(0);
        self.moves.set(0);
    }
}

impl<K: McmcKernel> McmcKernel for TrackedKernel<K> {
    fn step(&self, trace: &Trace, rng: &mut dyn RngCore) -> Result<Trace, PplError> {
        let next = self.inner.step(trace, rng)?;
        self.steps.set(self.steps.get() + 1);
        if next.to_choice_map() != trace.to_choice_map() {
            self.moves.set(self.moves.get() + 1);
        }
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GibbsKernel, SingleSiteMh};
    use incremental::IdentityKernel;
    use ppl::dist::Dist;
    use ppl::handlers::simulate;
    use ppl::{addr, Enumeration, Handler, PplError, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(h: &mut dyn Handler) -> Result<Value, PplError> {
        let x = h.sample(addr!["x"], Dist::flip(0.5))?;
        let y = h.sample(addr!["y"], Dist::flip(0.5))?;
        let po = if x.truthy()? != y.truthy()? { 0.9 } else { 0.1 };
        h.observe(addr!["o"], Dist::flip(po), Value::Bool(true))?;
        Ok(x)
    }

    fn chain_estimate(kernel: &dyn McmcKernel, steps: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trace = simulate(&model, &mut rng).unwrap();
        let mut hits = 0usize;
        let burn = steps / 10;
        for i in 0..steps {
            trace = kernel.step(&trace, &mut rng).unwrap();
            if i >= burn && trace.value(&addr!["x"]).unwrap().truthy().unwrap() {
                hits += 1;
            }
        }
        hits as f64 / (steps - burn) as f64
    }

    #[test]
    fn cycle_of_invariant_kernels_is_invariant() {
        let kernel = CycleKernel::new(vec![
            Box::new(SingleSiteMh::new(
                model as fn(&mut dyn Handler) -> Result<Value, PplError>,
            )),
            Box::new(GibbsKernel::new(
                model as fn(&mut dyn Handler) -> Result<Value, PplError>,
            )),
        ]);
        let exact = Enumeration::run(&model)
            .unwrap()
            .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap());
        let freq = chain_estimate(&kernel, 30_000, 1);
        assert!((freq - exact).abs() < 0.02, "freq {freq} vs {exact}");
    }

    #[test]
    fn mixture_of_invariant_kernels_is_invariant() {
        let kernel = MixtureKernel::new(vec![
            (
                0.3,
                Box::new(SingleSiteMh::new(
                    model as fn(&mut dyn Handler) -> Result<Value, PplError>,
                )) as Box<dyn McmcKernel>,
            ),
            (
                0.7,
                Box::new(GibbsKernel::new(
                    model as fn(&mut dyn Handler) -> Result<Value, PplError>,
                )),
            ),
        ]);
        let exact = Enumeration::run(&model)
            .unwrap()
            .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap());
        let freq = chain_estimate(&kernel, 40_000, 2);
        assert!((freq - exact).abs() < 0.02, "freq {freq} vs {exact}");
    }

    #[test]
    fn tracked_kernel_counts_moves() {
        let tracked = TrackedKernel::new(GibbsKernel::new(
            model as fn(&mut dyn Handler) -> Result<Value, PplError>,
        ));
        let mut rng = StdRng::seed_from_u64(3);
        let mut trace = simulate(&model, &mut rng).unwrap();
        assert!(tracked.move_rate().is_nan());
        for _ in 0..500 {
            trace = tracked.step(&trace, &mut rng).unwrap();
        }
        assert_eq!(tracked.steps_taken(), 500);
        let rate = tracked.move_rate();
        assert!(rate > 0.1 && rate <= 1.0, "move rate {rate}");
        tracked.reset();
        assert_eq!(tracked.steps_taken(), 0);
    }

    #[test]
    fn identity_kernel_never_moves() {
        let tracked = TrackedKernel::new(IdentityKernel);
        let mut rng = StdRng::seed_from_u64(4);
        let trace = simulate(&model, &mut rng).unwrap();
        for _ in 0..10 {
            tracked.step(&trace, &mut rng).unwrap();
        }
        assert_eq!(tracked.move_rate(), 0.0);
    }

    #[test]
    #[should_panic]
    fn empty_cycle_panics() {
        let _ = CycleKernel::new(vec![]);
    }

    #[test]
    #[should_panic]
    fn non_positive_mixture_weight_panics() {
        let _ = MixtureKernel::new(vec![(0.0, Box::new(IdentityKernel) as Box<dyn McmcKernel>)]);
    }
}
