//! # inference — baseline and exact inference algorithms
//!
//! Everything the paper's evaluation compares against or builds on:
//!
//! - [`SingleSiteMh`] — lightweight single-site Metropolis–Hastings
//!   (Wingate et al. 2011 style).
//! - [`IndependentMetropolisCycle`] — the Section 7.2 MCMC baseline: "a
//!   cycle of independent Metropolis updates to each latent variable".
//! - [`GibbsKernel`] — systematic-scan Gibbs for fixed-structure discrete
//!   models (the Section 7.3 baseline, including back-and-forth sweeps).
//! - [`likelihood_weighting`] / [`rejection_sample`] — from-scratch
//!   importance and rejection baselines.
//! - [`Hmm`] — exact first-order HMM inference (forward–backward, FFBS,
//!   Viterbi) used to produce the exact `P` samples of Section 7.3.
//! - [`linreg`] — conjugate Bayesian linear regression (the exact `P`
//!   posterior of Section 7.2).
//! - [`ExactPosterior`] — exact posterior sampling of finite discrete
//!   models by enumeration.
//!
//! All MCMC kernels implement [`incremental::McmcKernel`] and can be used
//! as the rejuvenation step of Algorithm 2.

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

pub mod diag;
pub mod drift;
pub mod exact;
pub mod gibbs;
pub mod hmm;
pub mod importance;
pub mod kernels;
pub mod linreg;
pub mod mh;
pub mod stats;

pub use drift::GaussianDriftKernel;
pub use exact::ExactPosterior;
pub use gibbs::{GibbsKernel, SweepOrder};
pub use hmm::Hmm;
pub use importance::{likelihood_weighting, rejection_sample, rejection_samples};
pub use kernels::{CycleKernel, MixtureKernel, TrackedKernel};
pub use mh::{IndependentMetropolisCycle, SingleSiteMh};
