//! Conjugate Bayesian linear regression: exact posterior over
//! `(intercept, slope)`.
//!
//! The Section 7.2 experiment notes that "exact posterior sampling is
//! tractable in P": with Gaussian priors `N(0, σ_p²)` on both coefficients
//! and Gaussian noise `N(0, σ²)`, the posterior is a bivariate normal with
//! closed form. These exact samples seed the incremental inference into
//! the robust (non-conjugate) model Q.

use rand::RngCore;

use ppl::dist::util::standard_normal;
use ppl::PplError;

/// A bivariate normal posterior over `(intercept, slope)`.
#[derive(Debug, Clone)]
pub struct BivariateNormal {
    /// Mean `[intercept, slope]`.
    pub mean: [f64; 2],
    /// Covariance matrix (row major).
    pub cov: [[f64; 2]; 2],
    chol: [[f64; 2]; 2],
}

impl BivariateNormal {
    /// Creates the distribution, pre-computing the Cholesky factor.
    ///
    /// # Errors
    ///
    /// Returns an error if `cov` is not (numerically) positive definite.
    pub fn new(mean: [f64; 2], cov: [[f64; 2]; 2]) -> Result<BivariateNormal, PplError> {
        let a = cov[0][0];
        if a <= 0.0 {
            return Err(PplError::InvalidDistribution(
                "covariance not positive definite".into(),
            ));
        }
        let l11 = a.sqrt();
        let l21 = cov[1][0] / l11;
        let rest = cov[1][1] - l21 * l21;
        if rest <= 0.0 {
            return Err(PplError::InvalidDistribution(
                "covariance not positive definite".into(),
            ));
        }
        Ok(BivariateNormal {
            mean,
            cov,
            chol: [[l11, 0.0], [l21, rest.sqrt()]],
        })
    }

    /// Samples `(intercept, slope)`.
    pub fn sample(&self, rng: &mut dyn RngCore) -> (f64, f64) {
        let z1 = standard_normal(rng);
        let z2 = standard_normal(rng);
        (
            self.mean[0] + self.chol[0][0] * z1,
            self.mean[1] + self.chol[1][0] * z1 + self.chol[1][1] * z2,
        )
    }
}

/// Exact posterior for Bayesian linear regression
/// `y_i ~ N(intercept + slope·x_i, σ²)` with independent `N(0, σ_p²)`
/// priors on both coefficients (the model of Listing 1).
///
/// # Errors
///
/// Returns an error for empty data, mismatched lengths, or non-positive
/// standard deviations.
pub fn posterior(
    xs: &[f64],
    ys: &[f64],
    noise_std: f64,
    prior_std: f64,
) -> Result<BivariateNormal, PplError> {
    if xs.is_empty() || xs.len() != ys.len() {
        return Err(PplError::InvalidDistribution(
            "regression data must be non-empty and aligned".into(),
        ));
    }
    if noise_std <= 0.0 || prior_std <= 0.0 {
        return Err(PplError::InvalidDistribution(
            "standard deviations must be positive".into(),
        ));
    }
    let n = xs.len() as f64;
    let s2 = noise_std * noise_std;
    let p2 = prior_std * prior_std;
    let sum_x: f64 = xs.iter().sum();
    let sum_xx: f64 = xs.iter().map(|x| x * x).sum();
    let sum_y: f64 = ys.iter().sum();
    let sum_xy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    // Precision = X'X/σ² + I/σ_p².
    let a = n / s2 + 1.0 / p2;
    let b = sum_x / s2;
    let d = sum_xx / s2 + 1.0 / p2;
    let det = a * d - b * b;
    if det <= 0.0 {
        return Err(PplError::InvalidDistribution(
            "posterior precision is singular".into(),
        ));
    }
    let cov = [[d / det, -b / det], [-b / det, a / det]];
    let rhs = [sum_y / s2, sum_xy / s2];
    let mean = [
        cov[0][0] * rhs[0] + cov[0][1] * rhs[1],
        cov[1][0] * rhs[0] + cov[1][1] * rhs[1],
    ];
    BivariateNormal::new(mean, cov)
}

/// The exact posterior log density of `(intercept, slope)` under the same
/// model, up to the evidence constant — useful for validating samplers.
pub fn log_joint(
    xs: &[f64],
    ys: &[f64],
    noise_std: f64,
    prior_std: f64,
    intercept: f64,
    slope: f64,
) -> f64 {
    let mut lp = 0.0;
    let prior_var = prior_std * prior_std;
    lp += -0.5 * intercept * intercept / prior_var - prior_std.ln();
    lp += -0.5 * slope * slope / prior_var - prior_std.ln();
    let noise_var = noise_std * noise_std;
    for (x, y) in xs.iter().zip(ys) {
        let r = y - (intercept + slope * x);
        lp += -0.5 * r * r / noise_var - noise_std.ln();
    }
    lp
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_data() -> (Vec<f64>, Vec<f64>) {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 / 10.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 + 2.0 * x).collect();
        (xs, ys)
    }

    #[test]
    fn posterior_concentrates_on_truth_with_clean_data() {
        let (xs, ys) = toy_data();
        let post = posterior(&xs, &ys, 0.1, 10.0).unwrap();
        assert!(
            (post.mean[0] - 1.0).abs() < 0.05,
            "intercept {}",
            post.mean[0]
        );
        assert!((post.mean[1] - 2.0).abs() < 0.02, "slope {}", post.mean[1]);
    }

    #[test]
    fn samples_match_posterior_moments() {
        let (xs, ys) = toy_data();
        let post = posterior(&xs, &ys, 1.0, 5.0).unwrap();
        let mut rng = StdRng::seed_from_u64(41);
        let n = 100_000;
        let (mut s_sum, mut s_sq) = (0.0, 0.0);
        for _ in 0..n {
            let (_, slope) = post.sample(&mut rng);
            s_sum += slope;
            s_sq += slope * slope;
        }
        let mean = s_sum / n as f64;
        let var = s_sq / n as f64 - mean * mean;
        assert!((mean - post.mean[1]).abs() < 0.01);
        assert!((var - post.cov[1][1]).abs() < 0.01 * post.cov[1][1].max(0.01));
    }

    #[test]
    fn posterior_is_mode_of_log_joint() {
        // Gradient of the log joint at the posterior mean is ~0.
        let (xs, ys) = toy_data();
        let post = posterior(&xs, &ys, 0.5, 3.0).unwrap();
        let f = |i: f64, s: f64| log_joint(&xs, &ys, 0.5, 3.0, i, s);
        let eps = 1e-5;
        let [i0, s0] = post.mean;
        let di = (f(i0 + eps, s0) - f(i0 - eps, s0)) / (2.0 * eps);
        let ds = (f(i0, s0 + eps) - f(i0, s0 - eps)) / (2.0 * eps);
        assert!(di.abs() < 1e-4, "d/d intercept = {di}");
        assert!(ds.abs() < 1e-4, "d/d slope = {ds}");
    }

    #[test]
    fn validates_inputs() {
        assert!(posterior(&[], &[], 1.0, 1.0).is_err());
        assert!(posterior(&[1.0], &[1.0, 2.0], 1.0, 1.0).is_err());
        assert!(posterior(&[1.0], &[1.0], 0.0, 1.0).is_err());
        assert!(posterior(&[1.0], &[1.0], 1.0, -1.0).is_err());
        assert!(BivariateNormal::new([0.0, 0.0], [[1.0, 2.0], [2.0, 1.0]]).is_err());
    }

    #[test]
    fn prior_dominates_with_no_informative_data() {
        // One data point at x = 0 only constrains the intercept.
        let post = posterior(&[0.0], &[0.0], 1.0, 2.0).unwrap();
        // Slope posterior ≈ prior N(0, 4).
        assert!((post.cov[1][1] - 4.0).abs() < 1e-9);
        assert!(post.mean[1].abs() < 1e-9);
    }
}
