//! Metropolis–Hastings kernels in the lightweight single-site style of
//! [Wingate et al. 2011], which the paper's embedded language builds on.
//!
//! [`SingleSiteMh`] picks one random choice uniformly, proposes a fresh
//! value from its prior distribution, re-executes the program reusing
//! every other choice where possible, and accepts with the standard
//! lightweight-MH ratio. [`IndependentMetropolisCycle`] applies the same
//! update systematically to every site in turn — the "cycle of
//! independent Metropolis updates to each latent variable" used as the
//! MCMC baseline in Section 7.2.

use rand::RngCore;

use incremental::McmcKernel;
use ppl::dist::util::{uniform_below, uniform_unit};
use ppl::dist::Dist;
use ppl::{Address, AddressId, FxHashSet, Handler, LogWeight, Model, PplError, Trace, Value};

/// Re-executes `model`, forcing `forced_addr ↦ forced_value`, reusing all
/// other choices of `old` whose address and support match, and sampling
/// the rest fresh.
///
/// Returns the new trace, the log probability of the freshly sampled
/// choices (under the new trace's distributions), and the set of
/// deterministically reused addresses (as interned ids).
pub(crate) fn regenerate(
    model: &dyn Model,
    old: &Trace,
    forced_addr: &Address,
    forced_value: &Value,
    rng: &mut dyn RngCore,
) -> Result<(Trace, LogWeight, FxHashSet<AddressId>), PplError> {
    let mut handler = RegenHandler {
        old,
        forced_id: forced_addr.id(),
        forced_value,
        rng,
        trace: Trace::new(),
        log_fresh: LogWeight::ONE,
        reused: FxHashSet::default(),
    };
    let value = model.exec(&mut handler)?;
    let RegenHandler {
        mut trace,
        log_fresh,
        reused,
        ..
    } = handler;
    trace.set_return_value(value);
    Ok((trace, log_fresh, reused))
}

struct RegenHandler<'a> {
    old: &'a Trace,
    forced_id: AddressId,
    forced_value: &'a Value,
    rng: &'a mut dyn RngCore,
    trace: Trace,
    log_fresh: LogWeight,
    reused: FxHashSet<AddressId>,
}

impl Handler for RegenHandler<'_> {
    fn sample(&mut self, addr: Address, dist: Dist) -> Result<Value, PplError> {
        let id = addr.id();
        let value = if id == self.forced_id {
            self.forced_value.clone()
        } else {
            match self.old.choice_by_id(id) {
                Some(record) if dist.same_support(&record.dist) => {
                    self.reused.insert(id);
                    record.value.clone()
                }
                _ => {
                    let v = dist.sample(self.rng);
                    self.log_fresh += dist.log_prob(&v);
                    v
                }
            }
        };
        let log_prob = dist.log_prob(&value);
        self.trace
            .record_choice_interned(id, value.clone(), dist, log_prob)?;
        Ok(value)
    }

    fn observe(&mut self, addr: Address, dist: Dist, value: Value) -> Result<(), PplError> {
        let log_prob = dist.log_prob(&value);
        self.trace.record_observation(addr, value, dist, log_prob)
    }
}

/// One single-site MH update at the choice `site` of `current`.
///
/// Returns the next state of the chain (either the accepted proposal or
/// the unchanged input) and whether the proposal was accepted.
pub(crate) fn single_site_update(
    model: &dyn Model,
    current: &Trace,
    site: &Address,
    rng: &mut dyn RngCore,
) -> Result<(Trace, bool), PplError> {
    let record = current
        .choice(site)
        .ok_or_else(|| PplError::MissingChoice(site.clone()))?;
    // Propose from the site's prior distribution as recorded in the
    // current trace.
    let proposed_value = record.dist.sample(rng);
    let log_fwd_site = record.dist.log_prob(&proposed_value);
    let (new_trace, log_fresh, reused) =
        match regenerate(model, current, site, &proposed_value, rng) {
            Ok(parts) => parts,
            // The proposal made a downstream distribution unconstructible:
            // a zero-probability region, so reject the move.
            Err(PplError::InvalidDistribution(_)) => return Ok((current.clone(), false)),
            Err(e) => return Err(e),
        };
    if !new_trace.has_choice(site) {
        // The proposed value steered execution away from the site itself;
        // reject outright (the reverse move would be impossible).
        return Ok((current.clone(), false));
    }
    // Reverse proposal density of the old value, under the new trace's
    // distribution at the site (identical parameters when upstream choices
    // are unchanged, which single-site regeneration guarantees).
    let new_site_dist = &new_trace.choice(site).expect("checked above").dist;
    let log_rev_site = new_site_dist.log_prob(&record.value);
    // Stale choices: in the old trace but not deterministically reused
    // (and not the updated site) — the reverse regeneration would sample
    // them fresh.
    let site_id = site.id();
    let log_stale: LogWeight = current
        .choices_interned()
        .filter(|(id, _)| *id != site_id && !reused.contains(id))
        .map(|(_, c)| c.log_prob)
        .sum();
    let log_num = new_trace.score()
        + LogWeight::from_log(-(new_trace.len() as f64).ln())
        + log_rev_site
        + log_stale;
    let log_den = current.score()
        + LogWeight::from_log(-(current.len() as f64).ln())
        + log_fwd_site
        + log_fresh;
    let log_alpha = log_num - log_den;
    let accept = log_alpha.log() >= 0.0 || uniform_unit(rng) < log_alpha.prob();
    if accept {
        Ok((new_trace, true))
    } else {
        Ok((current.clone(), false))
    }
}

/// Single-site Metropolis–Hastings: each step updates one uniformly
/// chosen random choice.
///
/// # Examples
///
/// ```
/// use incremental::McmcKernel;
/// use inference::SingleSiteMh;
/// use ppl::{addr, Handler, PplError};
/// use ppl::dist::Dist;
/// use ppl::handlers::simulate;
/// use rand::SeedableRng;
///
/// let model = |h: &mut dyn Handler| h.sample(addr!["x"], Dist::flip(0.5));
/// let kernel = SingleSiteMh::new(model);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let t0 = simulate(&model, &mut rng)?;
/// let t1 = kernel.step(&t0, &mut rng)?;
/// assert_eq!(t1.len(), 1);
/// # Ok::<(), PplError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SingleSiteMh<M> {
    model: M,
}

impl<M: Model> SingleSiteMh<M> {
    /// Creates the kernel for `model`.
    pub fn new(model: M) -> SingleSiteMh<M> {
        SingleSiteMh { model }
    }
}

impl<M: Model> McmcKernel for SingleSiteMh<M> {
    fn step(&self, trace: &Trace, rng: &mut dyn RngCore) -> Result<Trace, PplError> {
        if trace.is_empty() {
            return Ok(trace.clone());
        }
        let index = uniform_below(rng, trace.len() as u64) as usize;
        let site = trace
            .choices()
            .nth(index)
            .map(|(a, _)| a)
            .expect("index in range");
        let (next, _) = single_site_update(&self.model, trace, site, rng)?;
        Ok(next)
    }
}

/// A systematic sweep of independent Metropolis updates: one step visits
/// every random choice of the trace in evaluation order and applies a
/// single-site update at each.
#[derive(Debug, Clone)]
pub struct IndependentMetropolisCycle<M> {
    model: M,
}

impl<M: Model> IndependentMetropolisCycle<M> {
    /// Creates the kernel for `model`.
    pub fn new(model: M) -> IndependentMetropolisCycle<M> {
        IndependentMetropolisCycle { model }
    }
}

impl<M: Model> McmcKernel for IndependentMetropolisCycle<M> {
    fn step(&self, trace: &Trace, rng: &mut dyn RngCore) -> Result<Trace, PplError> {
        let mut current = trace.clone();
        // Sites are re-read from the evolving trace: an update may change
        // which sites exist downstream.
        let mut visited: FxHashSet<AddressId> = FxHashSet::default();
        loop {
            let next_site = current
                .choices_interned()
                .map(|(id, _)| id)
                .find(|id| !visited.contains(id));
            let Some(site_id) = next_site else { break };
            visited.insert(site_id);
            let (next, _) = single_site_update(&self.model, &current, site_id.resolve(), rng)?;
            current = next;
        }
        Ok(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl::handlers::simulate;
    use ppl::{addr, Enumeration};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn posterior_model(h: &mut dyn Handler) -> Result<Value, PplError> {
        let x = h.sample(addr!["x"], Dist::flip(0.5))?;
        let po = if x.truthy()? { 0.9 } else { 0.1 };
        h.observe(addr!["o"], Dist::flip(po), Value::Bool(true))?;
        Ok(x)
    }

    /// A model whose structure depends on a choice: tests regeneration.
    fn branching_model(h: &mut dyn Handler) -> Result<Value, PplError> {
        let a = h.sample(addr!["a"], Dist::flip(0.4))?;
        let b = if a.truthy()? {
            h.sample(addr!["b1"], Dist::flip(0.7))?
        } else {
            h.sample(addr!["b0"], Dist::uniform_int(0, 3))?
        };
        let obs_p = if b.truthy()? { 0.8 } else { 0.3 };
        h.observe(addr!["o"], Dist::flip(obs_p), Value::Bool(true))?;
        Ok(a)
    }

    fn chain_frequency(
        kernel: &dyn McmcKernel,
        model: &dyn Model,
        steps: usize,
        burn_in: usize,
        seed: u64,
        event: impl Fn(&Trace) -> bool,
    ) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trace = simulate(model, &mut rng).unwrap();
        let mut hits = 0usize;
        for i in 0..steps {
            trace = kernel.step(&trace, &mut rng).unwrap();
            if i >= burn_in && event(&trace) {
                hits += 1;
            }
        }
        hits as f64 / (steps - burn_in) as f64
    }

    #[test]
    fn single_site_mh_targets_posterior() {
        let kernel = SingleSiteMh::new(posterior_model);
        let exact = Enumeration::run(&posterior_model)
            .unwrap()
            .probability(|t| t.value(&addr!["x"]).unwrap().truthy().unwrap());
        let freq = chain_frequency(&kernel, &posterior_model, 60_000, 1000, 11, |t| {
            t.value(&addr!["x"]).unwrap().truthy().unwrap()
        });
        assert!((freq - exact).abs() < 0.02, "freq {freq} vs exact {exact}");
    }

    #[test]
    fn single_site_mh_handles_structure_change() {
        let kernel = SingleSiteMh::new(branching_model);
        let exact = Enumeration::run(&branching_model)
            .unwrap()
            .probability(|t| t.value(&addr!["a"]).unwrap().truthy().unwrap());
        let freq = chain_frequency(&kernel, &branching_model, 120_000, 2000, 12, |t| {
            t.value(&addr!["a"]).unwrap().truthy().unwrap()
        });
        assert!((freq - exact).abs() < 0.02, "freq {freq} vs exact {exact}");
    }

    #[test]
    fn metropolis_cycle_targets_posterior() {
        let kernel = IndependentMetropolisCycle::new(branching_model);
        let exact = Enumeration::run(&branching_model)
            .unwrap()
            .probability(|t| t.value(&addr!["a"]).unwrap().truthy().unwrap());
        let freq = chain_frequency(&kernel, &branching_model, 30_000, 500, 13, |t| {
            t.value(&addr!["a"]).unwrap().truthy().unwrap()
        });
        assert!((freq - exact).abs() < 0.02, "freq {freq} vs exact {exact}");
    }

    #[test]
    fn empty_trace_is_fixed_point() {
        let model = |h: &mut dyn Handler| {
            h.observe(addr!["o"], Dist::flip(0.5), Value::Bool(true))?;
            Ok(Value::Int(0))
        };
        let kernel = SingleSiteMh::new(model);
        let mut rng = StdRng::seed_from_u64(14);
        let t = simulate(&model, &mut rng).unwrap();
        let next = kernel.step(&t, &mut rng).unwrap();
        assert_eq!(next.to_choice_map(), t.to_choice_map());
    }

    #[test]
    fn regenerate_reuses_matching_choices() {
        let mut rng = StdRng::seed_from_u64(15);
        let t = simulate(&branching_model, &mut rng).unwrap();
        let a_old = t.value(&addr!["a"]).unwrap().clone();
        let (new_t, _, reused) =
            regenerate(&branching_model, &t, &addr!["a"], &a_old, &mut rng).unwrap();
        // Same forced value: everything else reused, trace identical.
        assert_eq!(new_t.to_choice_map(), t.to_choice_map());
        assert_eq!(reused.len(), t.len() - 1);
    }
}
