//! Small numeric utilities shared by the inference algorithms and the
//! experiment harness.

/// Mean of a slice; `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance; `NaN` for fewer than two elements.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Standard deviation (square root of [`variance`]).
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median (by sorting a copy); `NaN` for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        0.5 * (sorted[mid - 1] + sorted[mid])
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) by linear interpolation.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (pos - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert!((variance(&xs) - 5.0 / 3.0).abs() < 1e-12);
        assert!(mean(&[]).is_nan());
        assert!(variance(&[1.0]).is_nan());
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn quantiles() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 0.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.0);
        assert!((quantile(&xs, 0.25) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn std_dev_matches_variance() {
        let xs = [1.0, 3.0];
        assert!((std_dev(&xs) - 2.0_f64.sqrt()).abs() < 1e-12);
    }
}
