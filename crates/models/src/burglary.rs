//! The burglary/alarm models of Figure 1, in both program representations.
//!
//! The original program models burglary → alarm → Mary waking; the
//! refined program adds an earthquake cause. The paper's Figure 1 reports
//! prior 98%/2%, original posterior 79.5%/20.5%, refined posterior
//! 80.6%/19.4% for `burglary`, and a worked translation weight ≈ 1.19.

use incremental::Correspondence;
use ppl::ast::Program;
use ppl::dist::Dist;
use ppl::{addr, parse, Handler, PplError, Value};

/// The original model (Fig. 1 left) as an embedded model. Random choices:
/// `alpha` (burglary), `beta` (alarm); observation `o`.
pub fn original(h: &mut dyn Handler) -> Result<Value, PplError> {
    let burglary = h.sample(addr!["alpha"], Dist::flip(0.02))?;
    let p_alarm = if burglary.truthy()? { 0.9 } else { 0.01 };
    let alarm = h.sample(addr!["beta"], Dist::flip(p_alarm))?;
    let p_mary_wakes = if alarm.truthy()? { 0.8 } else { 0.05 };
    h.observe(addr!["o"], Dist::flip(p_mary_wakes), Value::Bool(true))?;
    Ok(burglary)
}

/// The refined model (Fig. 1 right): adds `gamma_` (earthquake). Random
/// choices `alpha_`, `gamma_`, `beta_`; observation `o_`.
pub fn refined(h: &mut dyn Handler) -> Result<Value, PplError> {
    let burglary = h.sample(addr!["alpha_"], Dist::flip(0.02))?;
    let earthquake = h.sample(addr!["gamma_"], Dist::flip(0.005))?;
    let p_alarm = if earthquake.truthy()? {
        0.95
    } else if burglary.truthy()? {
        0.9
    } else {
        0.01
    };
    let alarm = h.sample(addr!["beta_"], Dist::flip(p_alarm))?;
    let p_mary_wakes = if alarm.truthy()? {
        if earthquake.truthy()? {
            0.9
        } else {
            0.8
        }
    } else {
        0.05
    };
    h.observe(addr!["o_"], Dist::flip(p_mary_wakes), Value::Bool(true))?;
    Ok(burglary)
}

/// The Figure 1 correspondence `f = {α ↦ α', β ↦ β'}` (stored in our
/// Q-to-P direction: `α' ↦ α`, `β' ↦ β`).
///
/// # Panics
///
/// Never panics: the pairs are fixed and bijective.
pub fn correspondence() -> Correspondence {
    Correspondence::from_pairs([
        (addr!["alpha_"], addr!["alpha"]),
        (addr!["beta_"], addr!["beta"]),
    ])
    .expect("fixed bijection")
}

/// The original program in the surface language (for the dependency-graph
/// runtime).
///
/// # Panics
///
/// Never panics: the source is a fixed valid program.
pub fn original_program() -> Program {
    parse(
        r#"
        burglary = flip(0.02) @ alpha;
        pAlarm = burglary ? 0.9 : 0.01;
        alarm = flip(pAlarm) @ beta;
        if alarm { pMaryWakes = 0.8; } else { pMaryWakes = 0.05; }
        observe(flip(pMaryWakes) == 1) @ o;
        return burglary;
        "#,
    )
    .expect("fixed program parses")
}

/// The refined program in the surface language.
///
/// # Panics
///
/// Never panics: the source is a fixed valid program.
pub fn refined_program() -> Program {
    parse(
        r#"
        burglary = flip(0.02) @ alpha;
        earthquake = flip(0.005) @ gamma;
        if earthquake { pAlarm = 0.95; } else { pAlarm = burglary ? 0.9 : 0.01; }
        alarm = flip(pAlarm) @ beta;
        if alarm { pMaryWakes = earthquake ? 0.9 : 0.8; } else { pMaryWakes = 0.05; }
        observe(flip(pMaryWakes) == 1) @ o;
        return burglary;
        "#,
    )
    .expect("fixed program parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl::Enumeration;

    fn burglary_true(t: &ppl::Trace) -> bool {
        t.return_value().unwrap().truthy().unwrap()
    }

    #[test]
    fn fig1_original_prior_and_posterior() {
        let e = Enumeration::run(&original).unwrap();
        let prior = e.prior_probability(burglary_true);
        let posterior = e.probability(burglary_true);
        assert!((prior - 0.02).abs() < 1e-12, "prior {prior}");
        // Figure 1 reports 20.5% (rounded).
        assert!(
            (posterior - 0.205).abs() < 5e-4,
            "posterior {posterior} should round to 20.5%"
        );
    }

    #[test]
    fn fig1_refined_prior_and_posterior() {
        let e = Enumeration::run(&refined).unwrap();
        let prior = e.prior_probability(burglary_true);
        let posterior = e.probability(burglary_true);
        assert!((prior - 0.02).abs() < 1e-12, "prior {prior}");
        // Figure 1 reports 19.4% (rounded).
        assert!(
            (posterior - 0.194).abs() < 5e-4,
            "posterior {posterior} should round to 19.4%"
        );
    }

    #[test]
    fn ast_programs_agree_with_embedded_models() {
        for (model, program) in [
            (
                original as fn(&mut dyn Handler) -> Result<Value, PplError>,
                original_program(),
            ),
            (refined, refined_program()),
        ] {
            let via_model = Enumeration::run(&model).unwrap();
            let via_program = Enumeration::run(&program).unwrap();
            assert!((via_model.z() - via_program.z()).abs() < 1e-12);
            let pm = via_model.probability(burglary_true);
            let pp = via_program.probability(burglary_true);
            assert!((pm - pp).abs() < 1e-12);
        }
    }

    #[test]
    fn correspondence_maps_both_pairs() {
        let f = correspondence();
        assert_eq!(f.lookup(&addr!["alpha_"]), Some(addr!["alpha"]));
        assert_eq!(f.lookup(&addr!["beta_"]), Some(addr!["beta"]));
        assert_eq!(f.lookup(&addr!["gamma_"]), None);
    }
}
