//! Synthetic stand-in for the Dartmouth Atlas hospital data set.
//!
//! The paper regresses hospital operating costs on quality measures for
//! 305 municipalities (reference \[43\] of the paper). That data set is not redistributable, so we
//! generate a fixed synthetic equivalent: a linear relationship with
//! Gaussian inlier noise and a fraction of gross outliers (mis-recorded
//! costs). The experiment only needs a real-valued regression data set
//! with outliers and a known ground-truth slope — which a synthetic set
//! provides *better* than the original, since the estimation error in
//! Figure 8 can then be measured against the truth.

use ppl::dist::util::{standard_normal, uniform_unit};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Number of municipalities in the paper's data set.
pub const PAPER_N: usize = 305;

/// A synthetic hospital-cost data set.
#[derive(Debug, Clone)]
pub struct HospitalData {
    /// Quality measure (covariate), standardized to roughly `[0, 10]`.
    pub xs: Vec<f64>,
    /// Operating cost (response).
    pub ys: Vec<f64>,
    /// Ground-truth slope used by the generator.
    pub true_slope: f64,
    /// Ground-truth intercept used by the generator.
    pub true_intercept: f64,
    /// Indices of the injected outliers.
    pub outlier_indices: Vec<usize>,
}

impl HospitalData {
    /// Generates `n` points with the given outlier fraction,
    /// deterministically from `seed`.
    pub fn generate(n: usize, outlier_fraction: f64, seed: u64) -> HospitalData {
        let mut rng = StdRng::seed_from_u64(seed);
        let true_slope = -0.9; // higher quality → lower cost
        let true_intercept = 8.0;
        let inlier_std = 1.0;
        let outlier_std = 12.0;
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        let mut outlier_indices = Vec::new();
        for i in 0..n {
            let x = 10.0 * uniform_unit(&mut rng);
            let mean = true_intercept + true_slope * x;
            let is_outlier = uniform_unit(&mut rng) < outlier_fraction;
            let y = if is_outlier {
                outlier_indices.push(i);
                mean + outlier_std * standard_normal(&mut rng) + 5.0
            } else {
                mean + inlier_std * standard_normal(&mut rng)
            };
            xs.push(x);
            ys.push(y);
        }
        HospitalData {
            xs,
            ys,
            true_slope,
            true_intercept,
            outlier_indices,
        }
    }

    /// The canonical data set used across the Figure 8 experiment: 305
    /// points, 8% outliers, fixed seed (chosen so the contamination
    /// visibly biases naive least squares under the workspace RNG).
    pub fn paper_scale() -> HospitalData {
        HospitalData::generate(PAPER_N, 0.08, 2015)
    }

    /// Number of data points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the data set is empty.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_has_305_points() {
        let d = HospitalData::paper_scale();
        assert_eq!(d.len(), PAPER_N);
        assert!(!d.is_empty());
        // Roughly 8% outliers.
        let frac = d.outlier_indices.len() as f64 / d.len() as f64;
        assert!(frac > 0.03 && frac < 0.15, "outlier fraction {frac}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = HospitalData::generate(50, 0.1, 7);
        let b = HospitalData::generate(50, 0.1, 7);
        assert_eq!(a.xs, b.xs);
        assert_eq!(a.ys, b.ys);
        assert_eq!(a.outlier_indices, b.outlier_indices);
    }

    #[test]
    fn inliers_sit_near_the_line() {
        let d = HospitalData::generate(200, 0.1, 11);
        let outliers: std::collections::HashSet<_> = d.outlier_indices.iter().collect();
        let mut residuals = Vec::new();
        for i in 0..d.len() {
            if !outliers.contains(&i) {
                residuals.push((d.ys[i] - (d.true_intercept + d.true_slope * d.xs[i])).abs());
            }
        }
        let mean_res: f64 = residuals.iter().sum::<f64>() / residuals.len() as f64;
        assert!(mean_res < 1.5, "mean inlier residual {mean_res}");
    }

    #[test]
    fn outliers_bias_least_squares() {
        // Sanity: the contamination is strong enough that naive least
        // squares is visibly wrong — the premise of the Fig. 8 experiment.
        let d = HospitalData::paper_scale();
        let naive = inference::linreg::posterior(&d.xs, &d.ys, 1.0, 10.0).unwrap();
        assert!(
            (naive.mean[1] - d.true_slope).abs() > 0.05,
            "least squares slope {} too close to truth {}",
            naive.mean[1],
            d.true_slope
        );
    }
}
