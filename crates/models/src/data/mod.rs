//! Synthetic data sets standing in for the paper's external assets (see
//! DESIGN.md §5 for the substitution rationale).

pub mod hospital;
pub mod typo;
