//! Synthetic typo corpus and HMM training for the Section 7.3
//! typo-correction task.
//!
//! The paper trains on 29,056 words with typos and ground truth. We build
//! an equivalent corpus synthetically: intended words drawn from a
//! built-in English word list, corrupted by a QWERTY-adjacency noise
//! channel (typos are overwhelmingly neighboring-key presses). English
//! letter sequences carry strong *trigram* structure that a first-order
//! model cannot capture — exactly the property that makes the
//! second-order model `Q` fit better than `P` in Figure 9.

use ppl::dist::util::{uniform_below, uniform_unit};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::hmm_model::{FirstOrderParams, SecondOrderParams};

/// Number of hidden states / observation symbols: the letters `a..=z`.
pub const NUM_LETTERS: usize = 26;

/// A built-in list of common English words (lowercase a–z only).
pub const WORDS: &[&str] = &[
    "the",
    "and",
    "that",
    "have",
    "for",
    "not",
    "with",
    "you",
    "this",
    "but",
    "his",
    "from",
    "they",
    "say",
    "her",
    "she",
    "will",
    "one",
    "all",
    "would",
    "there",
    "their",
    "what",
    "out",
    "about",
    "who",
    "get",
    "which",
    "when",
    "make",
    "can",
    "like",
    "time",
    "just",
    "him",
    "know",
    "take",
    "people",
    "into",
    "year",
    "your",
    "good",
    "some",
    "could",
    "them",
    "see",
    "other",
    "than",
    "then",
    "now",
    "look",
    "only",
    "come",
    "its",
    "over",
    "think",
    "also",
    "back",
    "after",
    "use",
    "two",
    "how",
    "our",
    "work",
    "first",
    "well",
    "way",
    "even",
    "new",
    "want",
    "because",
    "any",
    "these",
    "give",
    "day",
    "most",
    "us",
    "great",
    "between",
    "another",
    "should",
    "still",
    "such",
    "through",
    "before",
    "must",
    "house",
    "world",
    "where",
    "much",
    "those",
    "while",
    "place",
    "down",
    "never",
    "same",
    "too",
    "under",
    "might",
    "each",
    "part",
    "against",
    "right",
    "three",
    "state",
    "long",
    "little",
    "own",
    "here",
    "again",
    "found",
    "every",
    "country",
    "school",
    "during",
    "water",
    "though",
    "less",
    "enough",
    "almost",
    "thing",
    "need",
    "without",
    "being",
    "order",
    "night",
    "both",
    "life",
    "began",
    "head",
    "point",
    "away",
    "something",
    "fact",
    "hand",
    "high",
    "year",
    "moment",
    "word",
    "example",
    "family",
    "turn",
    "group",
    "until",
    "always",
    "number",
    "course",
    "company",
    "system",
    "question",
    "government",
    "different",
    "around",
    "however",
    "small",
    "large",
    "program",
    "problem",
    "against",
    "important",
    "children",
    "together",
    "often",
    "later",
    "nothing",
    "within",
    "along",
    "change",
    "young",
    "national",
    "story",
    "since",
    "power",
    "himself",
    "public",
    "present",
    "several",
    "social",
    "possible",
    "business",
    "service",
    "money",
    "study",
    "morning",
    "already",
    "themselves",
    "information",
    "nature",
    "certain",
    "kind",
    "across",
    "second",
    "street",
    "light",
    "rather",
    "early",
    "toward",
    "better",
    "person",
    "become",
    "among",
    "north",
    "white",
    "south",
    "action",
    "level",
    "president",
    "history",
    "party",
    "result",
    "others",
    "whole",
    "heard",
    "field",
    "water",
    "member",
    "pay",
    "law",
    "car",
    "door",
    "end",
    "why",
    "front",
    "area",
    "mind",
    "week",
    "case",
    "eye",
    "face",
    "room",
    "war",
    "force",
    "office",
    "city",
    "body",
    "side",
    "home",
    "land",
    "experience",
];

/// QWERTY keyboard neighbors of each letter.
pub fn qwerty_neighbors(letter: usize) -> &'static [usize] {
    const A: usize = 0;
    const B: usize = 1;
    const C: usize = 2;
    const D: usize = 3;
    const E: usize = 4;
    const F: usize = 5;
    const G: usize = 6;
    const H: usize = 7;
    const I: usize = 8;
    const J: usize = 9;
    const K: usize = 10;
    const L: usize = 11;
    const M: usize = 12;
    const N: usize = 13;
    const O: usize = 14;
    const P: usize = 15;
    const Q: usize = 16;
    const R: usize = 17;
    const S: usize = 18;
    const T: usize = 19;
    const U: usize = 20;
    const V: usize = 21;
    const W: usize = 22;
    const X: usize = 23;
    const Y: usize = 24;
    const Z: usize = 25;
    const TABLE: [&[usize]; 26] = [
        &[Q, W, S, Z],       // a
        &[V, G, H, N],       // b
        &[X, D, F, V],       // c
        &[S, E, R, F, C, X], // d
        &[W, S, D, R],       // e
        &[D, R, T, G, V, C], // f
        &[F, T, Y, H, B, V], // g
        &[G, Y, U, J, N, B], // h
        &[U, J, K, O],       // i
        &[H, U, I, K, M, N], // j
        &[J, I, O, L, M],    // k
        &[K, O, P],          // l
        &[N, J, K],          // m
        &[B, H, J, M],       // n
        &[I, K, L, P],       // o
        &[O, L],             // p
        &[W, A],             // q
        &[E, D, F, T],       // r
        &[A, W, E, D, X, Z], // s
        &[R, F, G, Y],       // t
        &[Y, H, J, I],       // u
        &[C, F, G, B],       // v
        &[Q, A, S, E],       // w
        &[Z, S, D, C],       // x
        &[T, G, H, U],       // y
        &[A, S, X],          // z
    ];
    TABLE[letter]
}

/// One training pair: the intended word and the typed (noisy) word, as
/// letter indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WordPair {
    /// Ground-truth letters.
    pub intended: Vec<usize>,
    /// Typed letters after the noise channel.
    pub typed: Vec<usize>,
}

/// A corpus of (intended, typed) pairs.
#[derive(Debug, Clone)]
pub struct TypoCorpus {
    /// The pairs.
    pub pairs: Vec<WordPair>,
}

/// Converts a lowercase word to letter indices.
///
/// # Panics
///
/// Panics on characters outside `a..=z`.
pub fn word_to_indices(word: &str) -> Vec<usize> {
    word.bytes()
        .map(|b| {
            assert!(b.is_ascii_lowercase(), "word must be lowercase ascii");
            (b - b'a') as usize
        })
        .collect()
}

/// Converts letter indices back to a string.
pub fn indices_to_word(indices: &[usize]) -> String {
    indices.iter().map(|&i| (b'a' + i as u8) as char).collect()
}

impl TypoCorpus {
    /// Generates `num_words` pairs with the given per-letter typo rate,
    /// deterministically from `seed`.
    pub fn generate(num_words: usize, typo_rate: f64, seed: u64) -> TypoCorpus {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pairs = Vec::with_capacity(num_words);
        for _ in 0..num_words {
            let word = WORDS[uniform_below(&mut rng, WORDS.len() as u64) as usize];
            let intended = word_to_indices(word);
            let typed = intended
                .iter()
                .map(|&c| {
                    if uniform_unit(&mut rng) < typo_rate {
                        let neighbors = qwerty_neighbors(c);
                        neighbors[uniform_below(&mut rng, neighbors.len() as u64) as usize]
                    } else {
                        c
                    }
                })
                .collect();
            pairs.push(WordPair { intended, typed });
        }
        TypoCorpus { pairs }
    }

    /// The paper-scale training corpus: 29,056 words.
    pub fn paper_scale() -> TypoCorpus {
        TypoCorpus::generate(29_056, 0.15, 1729)
    }
}

/// Trains both HMMs by counting, with interpolation smoothing: the
/// trigram model backs off to the bigram model, the bigram to uniform.
pub fn train_models(corpus: &TypoCorpus) -> (FirstOrderParams, SecondOrderParams) {
    let k = NUM_LETTERS;
    let alpha = 1.0; // bigram → uniform smoothing mass
    let beta = 1.0; // trigram → bigram smoothing mass

    let mut bigram = vec![vec![0.0_f64; k]; k];
    let mut trigram = vec![vec![vec![0.0_f64; k]; k]; k];
    let mut emission = vec![vec![0.0_f64; k]; k];
    for pair in &corpus.pairs {
        let w = &pair.intended;
        for t in 1..w.len() {
            bigram[w[t - 1]][w[t]] += 1.0;
        }
        for t in 2..w.len() {
            trigram[w[t - 2]][w[t - 1]][w[t]] += 1.0;
        }
        for (i, &c) in w.iter().enumerate() {
            emission[c][pair.typed[i]] += 1.0;
        }
    }

    let log_bigram: Vec<Vec<f64>> = bigram
        .iter()
        .map(|row| {
            let total: f64 = row.iter().sum::<f64>() + alpha;
            row.iter()
                .map(|c| ((c + alpha / k as f64) / total).ln())
                .collect()
        })
        .collect();
    let bigram_probs: Vec<Vec<f64>> = log_bigram
        .iter()
        .map(|row| row.iter().map(|lp| lp.exp()).collect())
        .collect();
    let log_trigram: Vec<Vec<Vec<f64>>> = trigram
        .iter()
        .map(|mid| {
            mid.iter()
                .enumerate()
                .map(|(p1, row)| {
                    let total: f64 = row.iter().sum::<f64>() + beta;
                    row.iter()
                        .enumerate()
                        .map(|(next, c)| ((c + beta * bigram_probs[p1][next]) / total).ln())
                        .collect()
                })
                .collect()
        })
        .collect();
    let log_emission: Vec<Vec<f64>> = emission
        .iter()
        .map(|row| {
            let total: f64 = row.iter().sum::<f64>() + alpha;
            row.iter()
                .map(|c| ((c + alpha / k as f64) / total).ln())
                .collect()
        })
        .collect();

    (
        FirstOrderParams {
            num_states: k,
            log_transition: log_bigram.clone(),
            log_observation: log_emission.clone(),
        },
        SecondOrderParams {
            num_states: k,
            log_first_order_transition: log_bigram,
            log_transition: log_trigram,
            log_observation: log_emission,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppl::logweight::log_sum_exp;

    #[test]
    fn word_round_trip() {
        assert_eq!(indices_to_word(&word_to_indices("hello")), "hello");
        assert_eq!(word_to_indices("abz"), vec![0, 1, 25]);
    }

    #[test]
    fn neighbors_are_symmetric() {
        for a in 0..NUM_LETTERS {
            for &b in qwerty_neighbors(a) {
                assert!(
                    qwerty_neighbors(b).contains(&a),
                    "{} -> {} not symmetric",
                    indices_to_word(&[a]),
                    indices_to_word(&[b])
                );
            }
        }
    }

    #[test]
    fn corpus_is_deterministic_and_typos_are_neighbors() {
        let c1 = TypoCorpus::generate(200, 0.2, 3);
        let c2 = TypoCorpus::generate(200, 0.2, 3);
        assert_eq!(c1.pairs, c2.pairs);
        for pair in &c1.pairs {
            assert_eq!(pair.intended.len(), pair.typed.len());
            for (i, t) in pair.intended.iter().zip(&pair.typed) {
                assert!(i == t || qwerty_neighbors(*i).contains(t));
            }
        }
    }

    #[test]
    fn trained_rows_are_normalized() {
        let corpus = TypoCorpus::generate(1000, 0.15, 4);
        let (first, second) = train_models(&corpus);
        for row in &first.log_transition {
            assert!(log_sum_exp(row).abs() < 1e-9);
        }
        for row in &first.log_observation {
            assert!(log_sum_exp(row).abs() < 1e-9);
        }
        for mid in &second.log_transition {
            for row in mid {
                assert!(log_sum_exp(row).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn emission_peaks_on_identity() {
        let corpus = TypoCorpus::generate(3000, 0.15, 5);
        let (first, _) = train_models(&corpus);
        // Pick letters that actually occur in the word list.
        for c in [4usize, 19, 0, 13] {
            let row = &first.log_observation[c];
            let argmax = (0..NUM_LETTERS)
                .max_by(|&a, &b| row[a].partial_cmp(&row[b]).unwrap())
                .unwrap();
            assert_eq!(
                argmax, c,
                "letter {} should be typed correctly most often",
                c
            );
        }
    }

    #[test]
    fn second_order_fits_english_better() {
        // Average log-likelihood of held-out intended words: trigram beats
        // bigram. This is the property Figure 9 relies on.
        let train = TypoCorpus::generate(20_000, 0.15, 6);
        let test = TypoCorpus::generate(500, 0.15, 7);
        let (first, second) = train_models(&train);
        let mut ll1 = 0.0;
        let mut ll2 = 0.0;
        let mut count = 0usize;
        for pair in &test.pairs {
            let w = &pair.intended;
            for t in 2..w.len() {
                ll1 += first.log_transition[w[t - 1]][w[t]];
                ll2 += second.log_transition[w[t - 2]][w[t - 1]][w[t]];
                count += 1;
            }
        }
        assert!(count > 0);
        assert!(
            ll2 > ll1,
            "trigram ll {} should beat bigram ll {}",
            ll2 / count as f64,
            ll1 / count as f64
        );
    }
}
