//! The finite Gaussian mixture model of Listing 5 (PSI), for the
//! Figure 10 experiment.
//!
//! The program draws `K` cluster centers from `N(0, σ)` and `N` data
//! points from unit-variance Gaussians around uniformly chosen centers.
//! The Figure 10 edit changes the hyperparameter `σ` — "the variance of
//! the prior on cluster centers" — which affects only the `K` center
//! choices, so the optimized Section 6 translator runs in `O(K)` while
//! the baseline Section 5 translator visits all `O(N + K)` trace
//! elements.

use incremental::Correspondence;
use ppl::ast::Program;
use ppl::parse;

/// Number of clusters used in the paper's experiment.
pub const PAPER_K: usize = 10;

/// Builds the Listing 5 program with prior std `sigma`, `n` data points,
/// and `k` clusters. Sites: `center/i`, `pick/i`, `point/i`.
///
/// # Panics
///
/// Panics if `sigma` is not positive-finite or `k == 0` (the generated
/// program would be invalid).
pub fn gmm_program(sigma: f64, n: usize, k: usize) -> Program {
    assert!(sigma.is_finite() && sigma > 0.0, "sigma must be positive");
    assert!(k > 0, "need at least one cluster");
    let source = format!(
        r#"
        k = {k};
        n = {n};
        centers = array(k, 0);
        for i in [0..k) {{ centers[i] = gauss(0.0, {sigma:?}) @ center; }}
        data = array(n, 0);
        for i in [0..n) {{ data[i] = gauss(centers[uniform(0, k - 1) @ pick], 1.0) @ point; }}
        return data;
        "#
    );
    parse(&source).expect("generated GMM program parses")
}

/// The correspondence for the hyperparameter edit: every site maps to
/// itself (all supports match: centers and points are real-valued, picks
/// share the range `0..k`).
pub fn gmm_correspondence() -> Correspondence {
    Correspondence::identity_on(["center", "pick", "point"])
}

#[cfg(test)]
mod tests {
    use super::*;
    use incremental::{CorrespondenceTranslator, TraceTranslator};
    use ppl::handlers::simulate;
    use ppl::{addr, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn trace_has_n_plus_k_choices() {
        let program = gmm_program(10.0, 25, PAPER_K);
        let mut rng = StdRng::seed_from_u64(1);
        let t = simulate(&program, &mut rng).unwrap();
        // K centers + N picks + N points.
        assert_eq!(t.len(), PAPER_K + 2 * 25);
        assert!(t.has_choice(&addr!["center", 0]));
        assert!(t.has_choice(&addr!["pick", 24]));
        assert!(t.has_choice(&addr!["point", 24]));
        let data = t.return_value().unwrap().as_array().unwrap();
        assert_eq!(data.len(), 25);
        assert!(matches!(data[0], Value::Real(_)));
    }

    #[test]
    fn hyperparameter_edit_weight_involves_only_centers() {
        // Translating σ = 10 → σ = 20 reuses every choice; the weight is
        // Π_i N(c_i; 0, 20) / N(c_i; 0, 10).
        let p = gmm_program(10.0, 8, 4);
        let q = gmm_program(20.0, 8, 4);
        let translator = CorrespondenceTranslator::new(p.clone(), q, gmm_correspondence());
        let mut rng = StdRng::seed_from_u64(2);
        let t = simulate(&p, &mut rng).unwrap();
        let out = translator.translate(&t, &mut rng).unwrap();
        let mut expected = 0.0;
        for i in 0..4_i64 {
            let c = t.value(&addr!["center", i]).unwrap().as_real().unwrap();
            let n10 = ppl::dist::Normal::new(0.0, 10.0).unwrap();
            let n20 = ppl::dist::Normal::new(0.0, 20.0).unwrap();
            expected += n20.log_prob(&Value::Real(c)).log() - n10.log_prob(&Value::Real(c)).log();
        }
        assert!(
            (out.log_weight.log() - expected).abs() < 1e-9,
            "weight {} vs expected {}",
            out.log_weight.log(),
            expected
        );
        // All choices reused: u's choice map equals t's.
        assert_eq!(out.trace.to_choice_map(), t.to_choice_map());
    }

    #[test]
    #[should_panic]
    fn invalid_sigma_panics() {
        let _ = gmm_program(-1.0, 5, 2);
    }
}
