//! First- and second-order hidden Markov models (Listings 3–4) for the
//! typo-correction experiment of Section 7.3.
//!
//! Hidden states are addressed `hidden/i` in both programs, so "each
//! hidden state is in correspondence for the transition from P to Q".
//! The second-order model conditions each state on the two previous
//! states, which "impedes exact inference", while exact samples from the
//! first-order model come from FFBS ([`exact_first_order_traces`]).

use std::sync::Arc;

use incremental::{Correspondence, ParticleCollection};
use inference::hmm::Hmm;
use ppl::dist::Dist;
use ppl::handlers::score;
use ppl::{addr, Address, ChoiceMap, Handler, Model, PplError, Value};
use rand::RngCore;

/// Address of hidden state `i`.
pub fn addr_hidden(i: usize) -> Address {
    addr!["hidden", i]
}

/// Address of observation `i`.
pub fn addr_obs(i: usize) -> Address {
    addr!["y", i]
}

/// Parameters of the first-order HMM (Listing 3). The first state is
/// uniform, as in the paper's `uniform_discrete(1, num_states)`.
#[derive(Debug, Clone)]
pub struct FirstOrderParams {
    /// Number of hidden states.
    pub num_states: usize,
    /// `log_transition[prev][next]`.
    pub log_transition: Vec<Vec<f64>>,
    /// `log_observation[state][symbol]`.
    pub log_observation: Vec<Vec<f64>>,
}

/// Parameters of the second-order HMM (Listing 4).
#[derive(Debug, Clone)]
pub struct SecondOrderParams {
    /// Number of hidden states.
    pub num_states: usize,
    /// `log_first_order_transition[prev][next]` (used for the second
    /// state).
    pub log_first_order_transition: Vec<Vec<f64>>,
    /// `log_transition[prev2][prev1][next]`.
    pub log_transition: Vec<Vec<Vec<f64>>>,
    /// `log_observation[state][symbol]`.
    pub log_observation: Vec<Vec<f64>>,
}

/// The Listing 3 model applied to one observation sequence.
#[derive(Debug, Clone)]
pub struct FirstOrderHmmModel {
    /// Shared trained parameters.
    pub params: Arc<FirstOrderParams>,
    /// Observed symbols (e.g. typed characters).
    pub observations: Vec<usize>,
}

impl Model for FirstOrderHmmModel {
    fn exec(&self, h: &mut dyn Handler) -> Result<Value, PplError> {
        let k = self.params.num_states as i64;
        let n = self.observations.len();
        let mut states = Vec::with_capacity(n);
        for i in 0..n {
            let x = if i == 0 {
                h.sample(addr_hidden(0), Dist::uniform_int(0, k - 1))?
            } else {
                let prev = states[i - 1] as usize;
                h.sample(
                    addr_hidden(i),
                    Dist::categorical_log(&self.params.log_transition[prev]),
                )?
            };
            states.push(x.as_int()?);
        }
        for (i, obs) in self.observations.iter().enumerate() {
            let state = states[i] as usize;
            h.observe(
                addr_obs(i),
                Dist::categorical_log(&self.params.log_observation[state]),
                Value::Int(*obs as i64),
            )?;
        }
        Ok(Value::array(states.into_iter().map(Value::Int).collect()))
    }
}

/// The Listing 4 model applied to one observation sequence.
#[derive(Debug, Clone)]
pub struct SecondOrderHmmModel {
    /// Shared trained parameters.
    pub params: Arc<SecondOrderParams>,
    /// Observed symbols.
    pub observations: Vec<usize>,
}

impl Model for SecondOrderHmmModel {
    fn exec(&self, h: &mut dyn Handler) -> Result<Value, PplError> {
        let k = self.params.num_states as i64;
        let n = self.observations.len();
        let mut states = Vec::with_capacity(n);
        for i in 0..n {
            let x = if i == 0 {
                h.sample(addr_hidden(0), Dist::uniform_int(0, k - 1))?
            } else if i == 1 {
                let prev = states[0] as usize;
                h.sample(
                    addr_hidden(1),
                    Dist::categorical_log(&self.params.log_first_order_transition[prev]),
                )?
            } else {
                let prev2 = states[i - 2] as usize;
                let prev1 = states[i - 1] as usize;
                h.sample(
                    addr_hidden(i),
                    Dist::categorical_log(&self.params.log_transition[prev2][prev1]),
                )?
            };
            states.push(x.as_int()?);
        }
        for (i, obs) in self.observations.iter().enumerate() {
            let state = states[i] as usize;
            h.observe(
                addr_obs(i),
                Dist::categorical_log(&self.params.log_observation[state]),
                Value::Int(*obs as i64),
            )?;
        }
        Ok(Value::array(states.into_iter().map(Value::Int).collect()))
    }
}

/// The Section 7.3 correspondence: hidden state `i` of the second-order
/// model corresponds to hidden state `i` of the first-order model.
///
/// Note the supports: `hidden/0` is `uniform(0, k-1)` in both programs and
/// every later state is a `k`-way categorical, so every pair passes the
/// support check.
pub fn hmm_correspondence() -> Correspondence {
    Correspondence::identity_on(["hidden"])
}

/// Converts first-order parameters into the dynamic-programming
/// representation of [`inference::hmm::Hmm`] (uniform initial state).
pub fn to_dp_hmm(params: &FirstOrderParams) -> Hmm {
    let k = params.num_states;
    Hmm {
        log_initial: vec![-(k as f64).ln(); k],
        log_transition: params.log_transition.clone(),
        log_observation: params.log_observation.clone(),
    }
}

/// Exact posterior traces of the first-order model via FFBS — the input
/// collection for incremental inference ("we use exact posterior samples
/// for P").
///
/// # Errors
///
/// Propagates scoring errors.
pub fn exact_first_order_traces(
    model: &FirstOrderHmmModel,
    m: usize,
    rng: &mut dyn RngCore,
) -> Result<ParticleCollection, PplError> {
    let dp = to_dp_hmm(&model.params);
    let mut traces = Vec::with_capacity(m);
    for _ in 0..m {
        let states = dp.posterior_sample(&model.observations, rng);
        let mut constraints = ChoiceMap::new();
        for (i, s) in states.iter().enumerate() {
            constraints.insert(addr_hidden(i), Value::Int(*s as i64));
        }
        traces.push(score(model, &constraints)?);
    }
    Ok(ParticleCollection::from_traces(traces))
}

/// Per-position posterior marginal probabilities of a ground-truth hidden
/// sequence under a weighted particle approximation.
///
/// # Errors
///
/// Errors if the collection is degenerate.
pub fn ground_truth_marginals(
    particles: &ParticleCollection,
    truth: &[usize],
) -> Result<Vec<f64>, PplError> {
    (0..truth.len())
        .map(|i| {
            particles.probability(|t| {
                t.value(&addr_hidden(i))
                    .map(|v| v.num_eq(&Value::Int(truth[i] as i64)))
                    .unwrap_or(false)
            })
        })
        .collect()
}

/// The Figure 9 accuracy metric: estimated log probability of the ground
/// truth hidden sequence, `Σ_i log Pr[x_i = truth_i | y]`, with marginals
/// floored at `floor` to keep the metric finite.
///
/// # Errors
///
/// Errors if the collection is degenerate.
pub fn ground_truth_log_prob(
    particles: &ParticleCollection,
    truth: &[usize],
    floor: f64,
) -> Result<f64, PplError> {
    let marginals = ground_truth_marginals(particles, truth)?;
    Ok(marginals.iter().map(|p| p.max(floor).ln()).sum())
}

/// Average per-character ground-truth posterior probability (the summary
/// statistic quoted in Section 7.3, e.g. "0.41 on a test set").
///
/// # Errors
///
/// Errors if the collection is degenerate.
pub fn per_char_posterior_prob(
    particles: &ParticleCollection,
    truth: &[usize],
) -> Result<f64, PplError> {
    let marginals = ground_truth_marginals(particles, truth)?;
    if marginals.is_empty() {
        return Ok(0.0);
    }
    Ok(marginals.iter().sum::<f64>() / marginals.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::typo::{train_models, TypoCorpus};
    use ppl::handlers::simulate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_params() -> Arc<FirstOrderParams> {
        let ln = |x: f64| x.ln();
        Arc::new(FirstOrderParams {
            num_states: 2,
            log_transition: vec![vec![ln(0.7), ln(0.3)], vec![ln(0.4), ln(0.6)]],
            log_observation: vec![vec![ln(0.9), ln(0.1)], vec![ln(0.2), ln(0.8)]],
        })
    }

    #[test]
    fn first_order_model_traces_have_expected_shape() {
        let model = FirstOrderHmmModel {
            params: tiny_params(),
            observations: vec![0, 1, 0, 0],
        };
        let mut rng = StdRng::seed_from_u64(1);
        let t = simulate(&model, &mut rng).unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t.num_observations(), 4);
        for i in 0..4 {
            assert!(t.has_choice(&addr_hidden(i)));
        }
    }

    #[test]
    fn model_score_matches_dp_joint() {
        // The traced model's score equals the DP lattice joint for the
        // same hidden sequence.
        let model = FirstOrderHmmModel {
            params: tiny_params(),
            observations: vec![1, 0],
        };
        let dp = to_dp_hmm(&model.params);
        let mut constraints = ChoiceMap::new();
        constraints.insert(addr_hidden(0), Value::Int(1));
        constraints.insert(addr_hidden(1), Value::Int(0));
        let t = score(&model, &constraints).unwrap();
        let joint = dp.log_initial[1]
            + dp.log_observation[1][1]
            + dp.log_transition[1][0]
            + dp.log_observation[0][0];
        assert!((t.score().log() - joint).abs() < 1e-12);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index addresses both particles and gamma
    fn ffbs_traces_match_smoothed_marginals() {
        let model = FirstOrderHmmModel {
            params: tiny_params(),
            observations: vec![0, 1, 1],
        };
        let mut rng = StdRng::seed_from_u64(2);
        let particles = exact_first_order_traces(&model, 30_000, &mut rng).unwrap();
        let dp = to_dp_hmm(&model.params);
        let gamma = dp.smoothed_marginals(&model.observations);
        for i in 0..3 {
            let freq = particles
                .probability(|t| t.value(&addr_hidden(i)).unwrap().num_eq(&Value::Int(0)))
                .unwrap();
            assert!(
                (freq - gamma[i][0]).abs() < 0.01,
                "pos {i}: {freq} vs {}",
                gamma[i][0]
            );
        }
    }

    #[test]
    fn second_order_model_runs_on_trained_params() {
        let corpus = TypoCorpus::generate(300, 0.15, 5);
        let (first, second) = train_models(&corpus);
        let obs = corpus.pairs[0].typed.clone();
        let model = SecondOrderHmmModel {
            params: Arc::new(second),
            observations: obs.clone(),
        };
        let mut rng = StdRng::seed_from_u64(3);
        let t = simulate(&model, &mut rng).unwrap();
        assert_eq!(t.len(), obs.len());
        // First-order model on the same word works too.
        let model1 = FirstOrderHmmModel {
            params: Arc::new(first),
            observations: obs,
        };
        let t1 = simulate(&model1, &mut rng).unwrap();
        assert_eq!(t1.len(), t.len());
    }

    #[test]
    fn metrics_behave() {
        let model = FirstOrderHmmModel {
            params: tiny_params(),
            observations: vec![0, 0],
        };
        let mut rng = StdRng::seed_from_u64(4);
        let particles = exact_first_order_traces(&model, 5000, &mut rng).unwrap();
        let truth = vec![0, 0];
        let marginals = ground_truth_marginals(&particles, &truth).unwrap();
        assert_eq!(marginals.len(), 2);
        for m in &marginals {
            assert!(*m > 0.5, "state 0 should dominate under obs 0: {m}");
        }
        let lp = ground_truth_log_prob(&particles, &truth, 1e-6).unwrap();
        assert!((lp - marginals.iter().map(|p| p.ln()).sum::<f64>()).abs() < 1e-12);
        let pc = per_char_posterior_prob(&particles, &truth).unwrap();
        assert!(pc > 0.5 && pc <= 1.0);
    }
}
