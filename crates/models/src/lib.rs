//! # models — the evaluation model zoo
//!
//! Every program the paper's evaluation uses, in both the embedded
//! representation (Rust closures/structs over `ppl::Handler`) and — where
//! the dependency-graph runtime needs it — the surface-language AST:
//!
//! - [`burglary`] — the Figure 1 pair (original and earthquake-refined).
//! - [`worked_examples`] — Figure 3 / Example 1, the Figure 5 pair of
//!   Example 3, the Figure 7 edit pair, and the geometric program of
//!   Figure 6.
//! - [`regression`] — Bayesian linear regression (Listing 1) and robust
//!   regression (Listing 2) for the Figure 8 experiment.
//! - [`hmm_model`] — first- and second-order HMMs (Listings 3–4) for the
//!   Figure 9 typo-correction experiment.
//! - [`gmm`] — the Gaussian mixture program (Listing 5) for Figure 10.
//! - [`data`] — synthetic stand-ins for the paper's external data sets.

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

pub mod burglary;
pub mod data;
pub mod gmm;
pub mod hmm_model;
pub mod regression;
pub mod worked_examples;
pub mod zoo;
