//! Bayesian linear regression (Listing 1) and its robust refinement
//! (Listing 2), for the Section 7.2 experiment.
//!
//! `P` assumes Gaussian noise everywhere; `Q` allows each point to be an
//! outlier drawn from a wide component whose log-variance is itself a
//! random choice (`ADDR_OUTLIER_LOG_VAR`) — a latent not present in `P`.

use incremental::{Correspondence, ParticleCollection};
use inference::linreg;
use ppl::dist::Dist;
use ppl::handlers::score;
use ppl::{addr, Address, ChoiceMap, Handler, Model, PplError, Trace, Value};
use rand::RngCore;

/// Address of the slope coefficient.
pub fn addr_slope() -> Address {
    addr!["slope"]
}

/// Address of the intercept coefficient.
pub fn addr_intercept() -> Address {
    addr!["intercept"]
}

/// Address of the outlier log-variance choice (robust model only).
pub fn addr_outlier_log_var() -> Address {
    addr!["outlier_log_var"]
}

/// Address of observation `i`.
pub fn addr_y(i: usize) -> Address {
    addr!["y", i]
}

/// Parameters of the non-robust model (Listing 1).
#[derive(Debug, Clone, PartialEq)]
pub struct NoOutlierParams {
    /// Prior std of slope and intercept.
    pub prior_std: f64,
    /// Observation noise std.
    pub std: f64,
}

impl Default for NoOutlierParams {
    fn default() -> Self {
        NoOutlierParams {
            prior_std: 10.0,
            std: 2.0,
        }
    }
}

/// Parameters of the robust model (Listing 2).
#[derive(Debug, Clone, PartialEq)]
pub struct OutlierParams {
    /// Prior std of slope and intercept.
    pub prior_std: f64,
    /// Probability that a point is an outlier.
    pub prob_outlier: f64,
    /// Inlier observation noise std.
    pub inlier_std: f64,
    /// Prior mean of the outlier log-variance.
    pub outlier_log_var_mu: f64,
    /// Prior std of the outlier log-variance.
    pub outlier_log_var_std: f64,
}

impl Default for OutlierParams {
    fn default() -> Self {
        OutlierParams {
            prior_std: 10.0,
            prob_outlier: 0.1,
            inlier_std: 1.0,
            outlier_log_var_mu: 4.0,
            outlier_log_var_std: 1.0,
        }
    }
}

/// The Listing 1 model: plain Bayesian linear regression.
#[derive(Debug, Clone)]
pub struct LinRegModel {
    /// Model parameters.
    pub params: NoOutlierParams,
    /// Covariates.
    pub xs: Vec<f64>,
    /// Observed responses.
    pub ys: Vec<f64>,
}

impl Model for LinRegModel {
    fn exec(&self, h: &mut dyn Handler) -> Result<Value, PplError> {
        let slope = h
            .sample(addr_slope(), Dist::normal(0.0, self.params.prior_std))?
            .as_real()?;
        let intercept = h
            .sample(addr_intercept(), Dist::normal(0.0, self.params.prior_std))?
            .as_real()?;
        for (i, (x, y)) in self.xs.iter().zip(&self.ys).enumerate() {
            let y_mean = intercept + slope * x;
            h.observe(
                addr_y(i),
                Dist::normal(y_mean, self.params.std),
                Value::Real(*y),
            )?;
        }
        Ok(Value::Real(slope))
    }
}

/// The Listing 2 model: robust regression with `two_normals` observations
/// and a latent outlier log-variance.
#[derive(Debug, Clone)]
pub struct RobustRegModel {
    /// Model parameters.
    pub params: OutlierParams,
    /// Covariates.
    pub xs: Vec<f64>,
    /// Observed responses.
    pub ys: Vec<f64>,
}

impl Model for RobustRegModel {
    fn exec(&self, h: &mut dyn Handler) -> Result<Value, PplError> {
        let p = &self.params;
        let outlier_log_var = h
            .sample(
                addr_outlier_log_var(),
                Dist::normal(p.outlier_log_var_mu, p.outlier_log_var_std),
            )?
            .as_real()?;
        let outlier_std = outlier_log_var.exp().sqrt();
        let slope = h
            .sample(addr_slope(), Dist::normal(0.0, p.prior_std))?
            .as_real()?;
        let intercept = h
            .sample(addr_intercept(), Dist::normal(0.0, p.prior_std))?
            .as_real()?;
        for (i, (x, y)) in self.xs.iter().zip(&self.ys).enumerate() {
            let y_mean = intercept + slope * x;
            h.observe(
                addr_y(i),
                Dist::two_normals(y_mean, p.prob_outlier, p.inlier_std, outlier_std),
                Value::Real(*y),
            )?;
        }
        Ok(Value::Real(slope))
    }
}

/// The Section 7.2 correspondence: "we placed the coefficients of the
/// regression (the intercept and slope) in correspondence".
pub fn regression_correspondence() -> Correspondence {
    Correspondence::identity_on(["slope", "intercept"])
}

/// Exact posterior samples of the Listing 1 model, as full traces (the
/// input collection for incremental inference).
///
/// # Errors
///
/// Propagates errors from the conjugate posterior computation and the
/// scoring replay.
pub fn exact_posterior_traces(
    model: &LinRegModel,
    m: usize,
    rng: &mut dyn RngCore,
) -> Result<ParticleCollection, PplError> {
    let post = linreg::posterior(
        &model.xs,
        &model.ys,
        model.params.std,
        model.params.prior_std,
    )?;
    let mut traces: Vec<Trace> = Vec::with_capacity(m);
    for _ in 0..m {
        let (intercept, slope) = post.sample(rng);
        let mut constraints = ChoiceMap::new();
        constraints.insert(addr_slope(), Value::Real(slope));
        constraints.insert(addr_intercept(), Value::Real(intercept));
        traces.push(score(model, &constraints)?);
    }
    Ok(ParticleCollection::from_traces(traces))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::hospital::HospitalData;
    use inference::stats::mean;
    use ppl::handlers::simulate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn clean_data() -> (Vec<f64>, Vec<f64>) {
        let xs: Vec<f64> = (0..40).map(|i| i as f64 * 0.25).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.5 + 1.5 * x).collect();
        (xs, ys)
    }

    #[test]
    fn linreg_model_simulates_and_scores() {
        let (xs, ys) = clean_data();
        let model = LinRegModel {
            params: NoOutlierParams::default(),
            xs,
            ys,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let t = simulate(&model, &mut rng).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.num_observations(), 40);
        assert!(t.score().log().is_finite());
    }

    #[test]
    fn exact_posterior_traces_recover_slope() {
        let (xs, ys) = clean_data();
        let model = LinRegModel {
            params: NoOutlierParams::default(),
            xs,
            ys,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let particles = exact_posterior_traces(&model, 2000, &mut rng).unwrap();
        let slopes: Vec<f64> = particles
            .iter()
            .map(|p| p.trace.value(&addr_slope()).unwrap().as_real().unwrap())
            .collect();
        assert!((mean(&slopes) - 1.5).abs() < 0.05, "mean {}", mean(&slopes));
    }

    #[test]
    fn robust_model_has_the_extra_latent() {
        let (xs, ys) = clean_data();
        let model = RobustRegModel {
            params: OutlierParams::default(),
            xs,
            ys,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let t = simulate(&model, &mut rng).unwrap();
        assert_eq!(t.len(), 3);
        assert!(t.has_choice(&addr_outlier_log_var()));
    }

    #[test]
    fn robust_model_downweights_outliers() {
        // With contaminated data, the robust posterior mean slope is much
        // closer to the truth than the non-robust conjugate posterior.
        let data = HospitalData::generate(120, 0.15, 9);
        let robust = RobustRegModel {
            params: OutlierParams::default(),
            xs: data.xs.clone(),
            ys: data.ys.clone(),
        };
        // Score two candidate slope values: the truth and the
        // contaminated least-squares value; the robust model must prefer
        // the truth.
        let score_at = |slope: f64, intercept: f64| {
            let mut c = ChoiceMap::new();
            c.insert(addr_slope(), Value::Real(slope));
            c.insert(addr_intercept(), Value::Real(intercept));
            c.insert(addr_outlier_log_var(), Value::Real(4.0));
            score(&robust, &c).unwrap().score().log()
        };
        let truth = score_at(data.true_slope, data.true_intercept);
        let naive = linreg::posterior(&data.xs, &data.ys, 1.0, 10.0).unwrap();
        let contaminated = score_at(naive.mean[1], naive.mean[0]);
        assert!(
            truth > contaminated,
            "robust score at truth {truth} vs at contaminated LS {contaminated}"
        );
    }
}
