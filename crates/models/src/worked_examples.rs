//! The paper's small worked examples: the Figure 3 / Example 1 program
//! (also the Figure 7 edit pair) and the Figure 5 pair of Example 3.

use incremental::Correspondence;
use ppl::ast::Program;
use ppl::dist::Dist;
use ppl::{addr, parse, Handler, PplError, Value};

/// The Figure 3 program (Example 1): `Z_P = 0.7`.
///
/// # Panics
///
/// Never panics: the source is a fixed valid program.
pub fn fig3_program() -> Program {
    parse(
        r#"
        a = 1;
        b = flip(a / 3) @ b;
        if a < 2 { c = uniform(1, 6) @ c; } else { c = uniform(6, 10) @ c; }
        d = flip(b / 2) @ d;
        observe(flip(1 / 5) @ obs == d);
        return c;
        "#,
    )
    .expect("fixed program parses")
}

/// The Figure 7 original program (`a = 1`); same structure as Figure 3
/// but with `c = uniform(0, 5)` in the then-branch and no observation.
///
/// # Panics
///
/// Never panics: the source is a fixed valid program.
pub fn fig7_original() -> Program {
    parse(
        r#"
        a = 1;
        b = flip(a / 3) @ b;
        if a < 2 { c = uniform(0, 5) @ cthen; } else { c = uniform(6, 10) @ celse; }
        d = flip(b / 2) @ d;
        return c;
        "#,
    )
    .expect("fixed program parses")
}

/// The Figure 7 edited program: the constant edit `a = 1 → a = 2`.
///
/// # Panics
///
/// Never panics: the source is a fixed valid program.
pub fn fig7_edited() -> Program {
    parse(
        r#"
        a = 2;
        b = flip(a / 3) @ b;
        if a < 2 { c = uniform(0, 5) @ cthen; } else { c = uniform(6, 10) @ celse; }
        d = flip(b / 2) @ d;
        return c;
        "#,
    )
    .expect("fixed program parses")
}

/// Figure 5 left program `P` (random choices α, β, γ, δ).
pub fn fig5_p(h: &mut dyn Handler) -> Result<Value, PplError> {
    let a = h.sample(addr!["alpha"], Dist::flip(0.5))?;
    if !a.truthy()? {
        h.sample(addr!["beta"], Dist::uniform_int(0, 5))?;
    } else {
        h.sample(addr!["gamma"], Dist::flip(0.5))?;
    }
    h.sample(addr!["delta"], Dist::flip(0.5))?;
    Ok(a)
}

/// Figure 5 right program `Q` (random choices ε, ζ, η, θ, ι).
pub fn fig5_q(h: &mut dyn Handler) -> Result<Value, PplError> {
    let a = h.sample(addr!["eps"], Dist::flip(1.0 / 3.0))?;
    if !a.truthy()? {
        h.sample(addr!["zeta"], Dist::uniform_int(0, 5))?;
    } else {
        h.sample(addr!["eta"], Dist::flip(0.5))?;
    }
    h.sample(addr!["theta"], Dist::uniform_int(1, 6))?;
    h.sample(addr!["iota"], Dist::uniform_int(-5, -2))?;
    Ok(a)
}

/// The Example 3 correspondence: ε ↔ α, ζ ↔ β, η ↔ γ.
///
/// # Panics
///
/// Never panics: the pairs are fixed and bijective.
pub fn fig5_correspondence() -> Correspondence {
    Correspondence::from_pairs([
        (addr!["eps"], addr!["alpha"]),
        (addr!["zeta"], addr!["beta"]),
        (addr!["eta"], addr!["gamma"]),
    ])
    .expect("fixed bijection")
}

/// The geometric program of Figure 6 with success probability `p`,
/// trials addressed `trial/0`, `trial/1`, ….
pub fn geometric(p: f64) -> impl Fn(&mut dyn Handler) -> Result<Value, PplError> + Clone {
    move |h: &mut dyn Handler| {
        let mut n = 1_i64;
        let mut i = 0_i64;
        while h.sample(addr!["trial", i], Dist::flip(p))?.truthy()? {
            n += 1;
            i += 1;
        }
        Ok(Value::Int(n))
    }
}

/// The Section 5.4 correspondence for the geometric edit `p = 1/2 → 1/3`:
/// trial `i` maps to trial `i`.
pub fn geometric_correspondence() -> Correspondence {
    Correspondence::identity_on(["trial"])
}

#[cfg(test)]
mod tests {
    use super::*;
    use incremental::{CorrespondenceTranslator, TraceTranslator};
    use ppl::handlers::simulate;
    use ppl::Enumeration;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn example1_z_is_0_7() {
        let e = Enumeration::run(&fig3_program()).unwrap();
        assert!((e.z() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn fig7_programs_differ_only_in_constant() {
        let p = fig7_original();
        let q = fig7_edited();
        // Original takes the then-branch, edited the else-branch.
        let ep = Enumeration::run(&p).unwrap();
        let eq = Enumeration::run(&q).unwrap();
        assert!(ep.traces().iter().all(|t| t.has_choice(&addr!["cthen"])));
        assert!(eq.traces().iter().all(|t| t.has_choice(&addr!["celse"])));
        // b = flip(1/3) vs flip(2/3).
        let pb = ep.probability(|t| t.value(&addr!["b"]).unwrap().truthy().unwrap());
        let qb = eq.probability(|t| t.value(&addr!["b"]).unwrap().truthy().unwrap());
        assert!((pb - 1.0 / 3.0).abs() < 1e-12);
        assert!((qb - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_translation_reindexes_trials() {
        let p = geometric(0.5);
        let q = geometric(1.0 / 3.0);
        let translator = CorrespondenceTranslator::new(p.clone(), q, geometric_correspondence());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let t = simulate(&p, &mut rng).unwrap();
            let out = translator.translate(&t, &mut rng).unwrap();
            // The whole trial sequence is reused, so the return values
            // match and the weight is (1/3 / 1/2)^(n-1) * (2/3 / 1/2).
            assert_eq!(out.trace.return_value(), t.return_value());
            let n = t.return_value().unwrap().as_int().unwrap();
            let expected = (2.0f64 / 3.0).powi((n - 1) as i32) * ((2.0 / 3.0) / 0.5);
            assert!(
                (out.log_weight.prob() - expected).abs() < 1e-9,
                "n={n}: {} vs {expected}",
                out.log_weight.prob()
            );
        }
    }
}
