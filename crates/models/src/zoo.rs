//! A zoo of classic discrete models (the "classic program" family the
//! paper's Section 2 draws from [7, 17, 22, 36]), useful for exercising
//! exact enumeration, translators, and the error decomposition on
//! well-understood posteriors.

use incremental::Correspondence;
use ppl::dist::Dist;
use ppl::{addr, Handler, PplError, Value};

/// The sprinkler/wet-grass network: rain and a sprinkler both wet the
/// grass; conditioning on wet grass "explains away".
///
/// Choices: `rain`, `sprinkler`; observation `grass`. The small leak in
/// the (no rain, no sprinkler) case matters for incremental inference:
/// without it that configuration has zero posterior mass under this
/// model, and a translator into any refinement that *can* explain wet
/// grass another way (e.g. [`sprinkler_with_hose`]) cannot reach part of
/// the refined posterior — ε(R) is infinite (see the
/// `leak_free_prior_makes_translator_error_infinite` test).
pub fn sprinkler(h: &mut dyn Handler) -> Result<Value, PplError> {
    let rain = h.sample(addr!["rain"], Dist::flip(0.2))?;
    let p_sprinkler = if rain.truthy()? { 0.01 } else { 0.4 };
    let sprinkler = h.sample(addr!["sprinkler"], Dist::flip(p_sprinkler))?;
    let p_wet = match (rain.truthy()?, sprinkler.truthy()?) {
        (true, true) => 0.99,
        (true, false) => 0.8,
        (false, true) => 0.9,
        (false, false) => 0.02,
    };
    h.observe(addr!["grass"], Dist::flip(p_wet), Value::Bool(true))?;
    Ok(rain)
}

/// [`sprinkler`] without the leak: wet grass is impossible without a
/// cause. Used to demonstrate the unreachable-posterior diagnostic.
pub fn sprinkler_leak_free(h: &mut dyn Handler) -> Result<Value, PplError> {
    let rain = h.sample(addr!["rain"], Dist::flip(0.2))?;
    let p_sprinkler = if rain.truthy()? { 0.01 } else { 0.4 };
    let sprinkler = h.sample(addr!["sprinkler"], Dist::flip(p_sprinkler))?;
    let p_wet = match (rain.truthy()?, sprinkler.truthy()?) {
        (true, true) => 0.99,
        (true, false) => 0.8,
        (false, true) => 0.9,
        (false, false) => 0.0,
    };
    h.observe(addr!["grass"], Dist::flip(p_wet), Value::Bool(true))?;
    Ok(rain)
}

/// A refinement of [`sprinkler`] that adds a third cause (a garden hose
/// left running) — the same model-refinement shape as Figure 1.
pub fn sprinkler_with_hose(h: &mut dyn Handler) -> Result<Value, PplError> {
    let rain = h.sample(addr!["rain"], Dist::flip(0.2))?;
    let p_sprinkler = if rain.truthy()? { 0.01 } else { 0.4 };
    let sprinkler = h.sample(addr!["sprinkler"], Dist::flip(p_sprinkler))?;
    let hose = h.sample(addr!["hose"], Dist::flip(0.05))?;
    let causes =
        u8::from(rain.truthy()?) + u8::from(sprinkler.truthy()?) + u8::from(hose.truthy()?);
    let p_wet = match causes {
        0 => 0.0,
        1 => 0.85,
        2 => 0.97,
        _ => 0.995,
    };
    h.observe(addr!["grass"], Dist::flip(p_wet), Value::Bool(true))?;
    Ok(rain)
}

/// The correspondence for the sprinkler refinement: rain and sprinkler
/// carry over, the hose is new.
pub fn sprinkler_correspondence() -> Correspondence {
    Correspondence::identity_on(["rain", "sprinkler"])
}

/// A noisy-OR network with `k` independent causes of one effect: cause
/// `i` fires with probability `priors[i]` and, when active, triggers the
/// effect with probability `strengths[i]`; the effect also has a leak
/// probability. The effect is observed true.
///
/// Choices: `cause/i`; observation `effect`.
#[derive(Debug, Clone)]
pub struct NoisyOr {
    /// Prior activation probability of each cause.
    pub priors: Vec<f64>,
    /// Per-cause trigger strength.
    pub strengths: Vec<f64>,
    /// Leak probability (effect with no active cause).
    pub leak: f64,
}

impl ppl::Model for NoisyOr {
    fn exec(&self, h: &mut dyn Handler) -> Result<Value, PplError> {
        let mut p_not_effect = 1.0 - self.leak;
        let mut active = Vec::with_capacity(self.priors.len());
        for (i, (prior, strength)) in self.priors.iter().zip(&self.strengths).enumerate() {
            let cause = h.sample(addr!["cause", i], Dist::flip(*prior))?;
            if cause.truthy()? {
                p_not_effect *= 1.0 - strength;
            }
            active.push(cause);
        }
        h.observe(
            addr!["effect"],
            Dist::flip(1.0 - p_not_effect),
            Value::Bool(true),
        )?;
        Ok(Value::array(active))
    }
}

/// A two-component mixture with explicit assignment variables — the
/// discrete cousin of the GMM of Listing 5.
///
/// Choices: `weight`-ish `bias/0`, `bias/1` (component biases, discretized
/// by `levels`), and per-point assignments `z/i`; observations `y/i`.
#[derive(Debug, Clone)]
pub struct DiscreteMixture {
    /// Observed binary data.
    pub data: Vec<bool>,
    /// Number of discrete bias levels per component (bias `ℓ` means
    /// success probability `(ℓ+1)/(levels+1)`).
    pub levels: i64,
}

impl ppl::Model for DiscreteMixture {
    fn exec(&self, h: &mut dyn Handler) -> Result<Value, PplError> {
        let mut biases = [0.0; 2];
        for (c, slot) in biases.iter_mut().enumerate() {
            let level = h
                .sample(addr!["bias", c], Dist::uniform_int(0, self.levels - 1))?
                .as_int()?;
            *slot = (level + 1) as f64 / (self.levels + 1) as f64;
        }
        for (i, y) in self.data.iter().enumerate() {
            let z = h.sample(addr!["z", i], Dist::flip(0.5))?;
            let bias = biases[usize::from(z.truthy()?)];
            h.observe(addr!["y", i], Dist::flip(bias), Value::Bool(*y))?;
        }
        Ok(Value::Real(biases[1] - biases[0]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incremental::{translator_error, CorrespondenceTranslator, TraceTranslator};
    use inference::ExactPosterior;
    use ppl::{Enumeration, Trace};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rains(t: &Trace) -> bool {
        t.value(&addr!["rain"]).unwrap().truthy().unwrap()
    }

    #[test]
    fn sprinkler_explaining_away() {
        let e = Enumeration::run(&sprinkler).unwrap();
        let p_rain_given_wet = e.probability(rains);
        // Conditioning further on the sprinkler being ON lowers the rain
        // probability (explaining away).
        let p_rain_and_sprinkler =
            e.probability(|t| rains(t) && t.value(&addr!["sprinkler"]).unwrap().truthy().unwrap());
        let p_sprinkler =
            e.probability(|t| t.value(&addr!["sprinkler"]).unwrap().truthy().unwrap());
        let p_rain_given_wet_and_sprinkler = p_rain_and_sprinkler / p_sprinkler;
        assert!(
            p_rain_given_wet_and_sprinkler < p_rain_given_wet,
            "{p_rain_given_wet_and_sprinkler} !< {p_rain_given_wet}"
        );
        // And both beat the prior.
        assert!(p_rain_given_wet > 0.2);
    }

    #[test]
    fn sprinkler_refinement_translates() {
        let translator = CorrespondenceTranslator::new(
            sprinkler,
            sprinkler_with_hose,
            sprinkler_correspondence(),
        );
        let exact = Enumeration::run(&sprinkler_with_hose)
            .unwrap()
            .probability(rains);
        let sampler = ExactPosterior::new(&sprinkler).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let particles =
            incremental::ParticleCollection::from_traces(sampler.samples(60_000, &mut rng));
        let adapted = incremental::infer(
            &translator,
            None,
            &particles,
            &incremental::SmcConfig::translate_only(),
            &mut rng,
        )
        .unwrap();
        let estimate = adapted.probability(rains).unwrap();
        assert!(
            (estimate - exact).abs() < 0.02,
            "estimate {estimate} vs exact {exact}"
        );
        // The error decomposition holds (and is finite thanks to the
        // leak in the base model).
        let report = translator_error(
            &sprinkler,
            &sprinkler_with_hose,
            &sprinkler_correspondence(),
        )
        .unwrap();
        assert!(report.epsilon.is_finite(), "{report:?}");
        assert!(
            (report.epsilon - report.decomposition_sum()).abs() < 1e-9,
            "{report:?}"
        );
    }

    /// Without the leak, (rain=F, sprinkler=F) is impossible under P's
    /// posterior, so the translator can never produce the refined traces
    /// where only the hose explains the wet grass: ε(R) = ∞, the exact
    /// diagnostic that "an incremental approach may not be feasible".
    #[test]
    fn leak_free_prior_makes_translator_error_infinite() {
        let report = translator_error(
            &sprinkler_leak_free,
            &sprinkler_with_hose,
            &sprinkler_correspondence(),
        )
        .unwrap();
        assert!(report.epsilon.is_infinite(), "{report:?}");
        assert!(report.output_divergence.is_infinite());
    }

    #[test]
    fn noisy_or_posterior_prefers_strong_causes() {
        let model = NoisyOr {
            priors: vec![0.1, 0.1],
            strengths: vec![0.95, 0.3],
            leak: 0.01,
        };
        let e = Enumeration::run(&model).unwrap();
        let p0 = e.probability(|t| t.value(&addr!["cause", 0]).unwrap().truthy().unwrap());
        let p1 = e.probability(|t| t.value(&addr!["cause", 1]).unwrap().truthy().unwrap());
        assert!(p0 > p1, "strong cause {p0} should beat weak cause {p1}");
        assert!(p0 > 0.1, "posterior should exceed the prior");
    }

    #[test]
    fn noisy_or_strength_edit_translates_with_exact_weight() {
        let p = NoisyOr {
            priors: vec![0.1, 0.2, 0.15],
            strengths: vec![0.9, 0.5, 0.7],
            leak: 0.05,
        };
        let q = NoisyOr {
            priors: vec![0.1, 0.2, 0.15],
            strengths: vec![0.9, 0.8, 0.7],
            leak: 0.05,
        };
        let corr = Correspondence::identity_on(["cause"]);
        let translator = CorrespondenceTranslator::new(p.clone(), q.clone(), corr.clone());
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let t = ppl::handlers::simulate(&p, &mut rng).unwrap();
            let out = translator.translate(&t, &mut rng).unwrap();
            let oracle = incremental::exact_weight_estimate(&p, &q, &corr, &t, &out.trace).unwrap();
            assert!((out.log_weight.log() - oracle.log()).abs() < 1e-9);
        }
    }

    #[test]
    fn discrete_mixture_recovers_separation() {
        // Data from a well-separated mixture: mostly-true and
        // mostly-false halves.
        let data = vec![
            true, true, true, true, false, false, false, false, true, false,
        ];
        let model = DiscreteMixture { data, levels: 4 };
        let e = Enumeration::run(&model).unwrap();
        // The posterior mean absolute bias separation is positive.
        let sep = e.expectation(|t| t.return_value().unwrap().as_real().unwrap().abs());
        assert!(sep > 0.2, "separation {sep}");
        assert!(e.z() > 0.0);
    }
}
