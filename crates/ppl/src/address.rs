//! Hierarchical addresses of random choices.
//!
//! Each random choice in a trace is identified by an *address*: a sequence
//! of symbol and integer components. Loop iterations append their index, so
//! the `i`-th Bernoulli trial of the geometric program of Section 5.4 is
//! addressed `["flip", i]`, following the naming scheme of
//! [Wingate et al. 2011] referenced by the paper.

use std::fmt;
use std::sync::Arc;

/// One component of an [`Address`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Component {
    /// A symbolic component, e.g. a site label or variable name.
    Sym(Arc<str>),
    /// An integer component, e.g. a loop index or data-point index.
    Idx(i64),
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Component::Sym(s) => write!(f, "{s}"),
            Component::Idx(i) => write!(f, "{i}"),
        }
    }
}

impl From<&str> for Component {
    fn from(s: &str) -> Self {
        Component::Sym(Arc::from(s))
    }
}

impl From<String> for Component {
    fn from(s: String) -> Self {
        Component::Sym(Arc::from(s.as_str()))
    }
}

impl From<i64> for Component {
    fn from(i: i64) -> Self {
        Component::Idx(i)
    }
}

impl From<i32> for Component {
    fn from(i: i32) -> Self {
        Component::Idx(i64::from(i))
    }
}

impl From<usize> for Component {
    fn from(i: usize) -> Self {
        Component::Idx(i as i64)
    }
}

/// A hierarchical address identifying a random choice or observation.
///
/// # Examples
///
/// ```
/// use ppl::{addr, Address};
/// let a: Address = "slope".into();
/// let b = addr!["y", 3];
/// assert_eq!(b.to_string(), "y/3");
/// assert!(a != b);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(Vec<Component>);

impl Address {
    /// The empty address (used as a root for extension).
    pub fn root() -> Address {
        Address(Vec::new())
    }

    /// Creates an address from components.
    pub fn new(components: Vec<Component>) -> Address {
        Address(components)
    }

    /// Returns a new address with `component` appended.
    pub fn child(&self, component: impl Into<Component>) -> Address {
        let mut components = self.0.clone();
        components.push(component.into());
        Address(components)
    }

    /// Appends a component in place.
    pub fn push(&mut self, component: impl Into<Component>) {
        self.0.push(component.into());
    }

    /// The components of this address.
    pub fn components(&self) -> &[Component] {
        &self.0
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the address has no components.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The first component, if any.
    pub fn head(&self) -> Option<&Component> {
        self.0.first()
    }

    /// Concatenates two addresses: `self`'s components followed by
    /// `other`'s.
    pub fn concat(&self, other: &Address) -> Address {
        let mut components = self.0.clone();
        components.extend(other.0.iter().cloned());
        Address(components)
    }

    /// The address formed by all components after the first, if the first
    /// equals `prefix`.
    pub fn strip_prefix(&self, prefix: &Address) -> Option<Address> {
        if self.0.len() >= prefix.0.len() && self.0[..prefix.0.len()] == prefix.0[..] {
            Some(Address(self.0[prefix.0.len()..].to_vec()))
        } else {
            None
        }
    }

    /// Returns an address with the head symbol replaced by `sym`, keeping
    /// all index components. Useful for mapping between site labels of two
    /// programs while preserving loop indices (Section 5.4).
    pub fn with_head_sym(&self, sym: &str) -> Address {
        let mut components = self.0.clone();
        if let Some(head) = components.first_mut() {
            *head = Component::from(sym);
        } else {
            components.push(Component::from(sym));
        }
        Address(components)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "<root>");
        }
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "/")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl From<&str> for Address {
    fn from(s: &str) -> Self {
        Address(vec![Component::from(s)])
    }
}

impl From<String> for Address {
    fn from(s: String) -> Self {
        Address(vec![Component::from(s)])
    }
}

/// Builds an [`Address`] from a list of components.
///
/// # Examples
///
/// ```
/// use ppl::addr;
/// let a = addr!["hidden", 4];
/// assert_eq!(a.to_string(), "hidden/4");
/// ```
#[macro_export]
macro_rules! addr {
    ($($c:expr),+ $(,)?) => {
        $crate::Address::new(vec![$($crate::address::Component::from($c)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_and_display() {
        let a = addr!["x", 1, "y"];
        assert_eq!(a.to_string(), "x/1/y");
        assert_eq!(a.len(), 3);
        assert_eq!(Address::root().to_string(), "<root>");
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(addr!["a"] < addr!["a", 0]);
        assert!(addr!["a", 1] < addr!["a", 2]);
        assert!(addr!["a", 2] < addr!["b"]);
    }

    #[test]
    fn child_extends() {
        let a = Address::from("loop");
        let b = a.child(7_i64);
        assert_eq!(b.to_string(), "loop/7");
        assert_eq!(a.to_string(), "loop");
    }

    #[test]
    fn strip_prefix_works() {
        let a = addr!["m", 3, "x"];
        let p = Address::from("m");
        assert_eq!(a.strip_prefix(&p).unwrap(), addr![3, "x"]);
        assert!(a.strip_prefix(&Address::from("n")).is_none());
    }

    #[test]
    fn with_head_sym_preserves_indices() {
        let a = addr!["hidden", 4];
        assert_eq!(a.with_head_sym("state"), addr!["state", 4]);
        assert_eq!(Address::root().with_head_sym("x"), addr!["x"]);
    }
}
