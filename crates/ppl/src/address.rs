//! Hierarchical addresses of random choices.
//!
//! Each random choice in a trace is identified by an *address*: a sequence
//! of symbol and integer components. Loop iterations append their index, so
//! the `i`-th Bernoulli trial of the geometric program of Section 5.4 is
//! addressed `["flip", i]`, following the naming scheme of
//! [Wingate et al. 2011] referenced by the paper.
//!
//! # Performance representation
//!
//! Addresses are constructed, hashed, and compared on every trace
//! operation, so the representation is tuned for the common case:
//!
//! - **Inline storage**: addresses of at most two components (the vast
//!   majority — `site` and `site/i`) are stored inline with no heap
//!   allocation; longer addresses spill to a `Vec`.
//! - **Interning**: the process-wide [`AddressInterner`] maps each
//!   distinct address to a copyable [`AddressId`] handle. Hot indices
//!   (trace choice tables, correspondence maps, dependency-graph keys)
//!   are keyed on ids, so inserts don't clone and lookups don't re-hash
//!   the component list. Display, ordering, and serialization always go
//!   through the full [`Address`], so interning is invisible in output.

use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

use crate::fxhash::FxHashMap;

/// One component of an [`Address`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Component {
    /// A symbolic component, e.g. a site label or variable name.
    Sym(Arc<str>),
    /// An integer component, e.g. a loop index or data-point index.
    Idx(i64),
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Component::Sym(s) => write!(f, "{s}"),
            Component::Idx(i) => write!(f, "{i}"),
        }
    }
}

impl From<&str> for Component {
    fn from(s: &str) -> Self {
        Component::Sym(Arc::from(s))
    }
}

impl From<String> for Component {
    fn from(s: String) -> Self {
        Component::Sym(Arc::from(s.as_str()))
    }
}

impl From<Arc<str>> for Component {
    fn from(s: Arc<str>) -> Self {
        Component::Sym(s)
    }
}

impl From<i64> for Component {
    fn from(i: i64) -> Self {
        Component::Idx(i)
    }
}

impl From<i32> for Component {
    fn from(i: i32) -> Self {
        Component::Idx(i64::from(i))
    }
}

impl From<usize> for Component {
    fn from(i: usize) -> Self {
        Component::Idx(i as i64)
    }
}

/// Placeholder stored in unused inline slots (never observed: every read
/// goes through [`Address::components`], which truncates to the length).
const FILLER: Component = Component::Idx(0);

/// How many components fit inline before spilling to the heap.
const INLINE: usize = 2;

#[derive(Clone)]
enum Repr {
    /// Up to [`INLINE`] components stored in place — no heap allocation.
    Inline { len: u8, slots: [Component; INLINE] },
    /// Longer addresses: a plain vector.
    Heap(Vec<Component>),
}

/// A hierarchical address identifying a random choice or observation.
///
/// Equality, ordering, and hashing are all defined on the component
/// sequence (lexicographic), regardless of storage representation.
///
/// # Examples
///
/// ```
/// use ppl::{addr, Address};
/// let a: Address = "slope".into();
/// let b = addr!["y", 3];
/// assert_eq!(b.to_string(), "y/3");
/// assert!(a != b);
/// ```
#[derive(Clone)]
pub struct Address(Repr);

impl Address {
    /// The empty address (used as a root for extension).
    pub fn root() -> Address {
        Address(Repr::Inline {
            len: 0,
            slots: [FILLER, FILLER],
        })
    }

    /// Creates an address from components.
    pub fn new(mut components: Vec<Component>) -> Address {
        if components.len() <= INLINE {
            let mut slots = [FILLER, FILLER];
            let len = components.len() as u8;
            for (slot, c) in slots.iter_mut().zip(components.drain(..)) {
                *slot = c;
            }
            Address(Repr::Inline { len, slots })
        } else {
            Address(Repr::Heap(components))
        }
    }

    /// Creates an address from a fixed-size component array, storing short
    /// addresses inline without any heap allocation. This is what the
    /// [`addr!`](crate::addr) macro expands to.
    pub fn from_components<const N: usize>(components: [Component; N]) -> Address {
        if N <= INLINE {
            let mut slots = [FILLER, FILLER];
            for (slot, c) in slots.iter_mut().zip(components) {
                *slot = c;
            }
            Address(Repr::Inline {
                len: N as u8,
                slots,
            })
        } else {
            Address(Repr::Heap(components.into()))
        }
    }

    /// Creates an address by cloning a component slice.
    fn from_slice(components: &[Component]) -> Address {
        if components.len() <= INLINE {
            let mut slots = [FILLER, FILLER];
            for (slot, c) in slots.iter_mut().zip(components) {
                *slot = c.clone();
            }
            Address(Repr::Inline {
                len: components.len() as u8,
                slots,
            })
        } else {
            Address(Repr::Heap(components.to_vec()))
        }
    }

    /// Returns a new address with `component` appended. Stays inline when
    /// the result fits; otherwise allocates exactly `len + 1` slots.
    #[must_use]
    pub fn child(&self, component: impl Into<Component>) -> Address {
        let comps = self.components();
        if comps.len() < INLINE {
            let mut slots = [FILLER, FILLER];
            for (slot, c) in slots.iter_mut().zip(comps) {
                *slot = c.clone();
            }
            slots[comps.len()] = component.into();
            Address(Repr::Inline {
                len: comps.len() as u8 + 1,
                slots,
            })
        } else {
            let mut components = Vec::with_capacity(comps.len() + 1);
            components.extend_from_slice(comps);
            components.push(component.into());
            Address(Repr::Heap(components))
        }
    }

    /// Appends a component in place.
    pub fn push(&mut self, component: impl Into<Component>) {
        let c = component.into();
        match &mut self.0 {
            Repr::Inline { len, slots } if (*len as usize) < INLINE => {
                slots[*len as usize] = c;
                *len += 1;
            }
            Repr::Inline { slots, .. } => {
                // Spill: move the inline components out and go to the heap.
                let mut components = Vec::with_capacity(INLINE + 2);
                for slot in slots.iter_mut() {
                    components.push(std::mem::replace(slot, FILLER));
                }
                components.push(c);
                self.0 = Repr::Heap(components);
            }
            Repr::Heap(components) => components.push(c),
        }
    }

    /// The components of this address.
    pub fn components(&self) -> &[Component] {
        match &self.0 {
            Repr::Inline { len, slots } => &slots[..*len as usize],
            Repr::Heap(components) => components,
        }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Heap(components) => components.len(),
        }
    }

    /// Whether the address has no components.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The first component, if any.
    pub fn head(&self) -> Option<&Component> {
        self.components().first()
    }

    /// Concatenates two addresses: `self`'s components followed by
    /// `other`'s. Allocates exactly `self.len() + other.len()` slots when
    /// the result doesn't fit inline.
    #[must_use]
    pub fn concat(&self, other: &Address) -> Address {
        let a = self.components();
        let b = other.components();
        if a.len() + b.len() <= INLINE {
            let mut slots = [FILLER, FILLER];
            for (slot, c) in slots.iter_mut().zip(a.iter().chain(b)) {
                *slot = c.clone();
            }
            Address(Repr::Inline {
                len: (a.len() + b.len()) as u8,
                slots,
            })
        } else {
            let mut components = Vec::with_capacity(a.len() + b.len());
            components.extend_from_slice(a);
            components.extend_from_slice(b);
            Address(Repr::Heap(components))
        }
    }

    /// The address formed by all components after the first, if the first
    /// equals `prefix`.
    pub fn strip_prefix(&self, prefix: &Address) -> Option<Address> {
        let comps = self.components();
        let pre = prefix.components();
        if comps.len() >= pre.len() && comps[..pre.len()] == pre[..] {
            Some(Address::from_slice(&comps[pre.len()..]))
        } else {
            None
        }
    }

    /// Returns an address with the head symbol replaced by `sym`, keeping
    /// all index components. Useful for mapping between site labels of two
    /// programs while preserving loop indices (Section 5.4).
    #[must_use]
    pub fn with_head_sym(&self, sym: &str) -> Address {
        let mut out = self.clone();
        match &mut out.0 {
            Repr::Inline { len, slots } => {
                slots[0] = Component::from(sym);
                if *len == 0 {
                    *len = 1;
                }
            }
            // Heap addresses always have more than INLINE components.
            Repr::Heap(components) => components[0] = Component::from(sym),
        }
        out
    }

    /// The interned id of this address in the process-wide
    /// [`AddressInterner`] (interning it if new). See [`AddressId`].
    pub fn id(&self) -> AddressId {
        AddressInterner::global().intern(self)
    }
}

impl PartialEq for Address {
    fn eq(&self, other: &Self) -> bool {
        self.components() == other.components()
    }
}

impl Eq for Address {}

impl PartialOrd for Address {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Address {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.components().cmp(other.components())
    }
}

impl std::hash::Hash for Address {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Matches the legacy `Vec<Component>` derive: length prefix, then
        // each component.
        self.components().hash(state);
    }
}

impl Default for Address {
    fn default() -> Self {
        Address::root()
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Address").field(&self.components()).finish()
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let comps = self.components();
        if comps.is_empty() {
            return write!(f, "<root>");
        }
        for (i, c) in comps.iter().enumerate() {
            if i > 0 {
                write!(f, "/")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl From<&str> for Address {
    fn from(s: &str) -> Self {
        Address::from_components([Component::from(s)])
    }
}

impl From<String> for Address {
    fn from(s: String) -> Self {
        Address::from_components([Component::from(s)])
    }
}

/// A copyable handle to an interned [`Address`].
///
/// Two ids are equal iff the addresses they intern are equal, so ids can
/// key hash maps directly (hashing a `u32` instead of a component list).
/// Ids deliberately do **not** implement `Ord`: interning order is
/// first-come, unrelated to the lexicographic order of addresses — sort
/// by the resolved [`Address`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddressId(u32);

impl AddressId {
    /// The dense index of this id in interning order (usable for
    /// side-table vectors).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The address this id interns.
    pub fn resolve(self) -> &'static Address {
        AddressInterner::global().resolve(self)
    }
}

impl fmt::Display for AddressId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.resolve().fmt(f)
    }
}

struct InternerShard {
    /// Interned address → id. Keys borrow from the leaked storage below.
    map: FxHashMap<&'static Address, u32>,
    /// Id → interned address, in interning order.
    addrs: Vec<&'static Address>,
}

/// A thread-safe address interner.
///
/// Interned addresses are leaked into `'static` storage — the address
/// universe of a program is bounded (site labels × loop indices), so this
/// is a deliberate space-for-time trade. The process-wide instance is
/// [`AddressInterner::global`]; [`Address::id`] and [`AddressId::resolve`]
/// go through it.
pub struct AddressInterner {
    inner: RwLock<InternerShard>,
}

impl AddressInterner {
    fn new() -> AddressInterner {
        AddressInterner {
            inner: RwLock::new(InternerShard {
                map: FxHashMap::default(),
                addrs: Vec::new(),
            }),
        }
    }

    /// The process-wide interner.
    pub fn global() -> &'static AddressInterner {
        static GLOBAL: OnceLock<AddressInterner> = OnceLock::new();
        GLOBAL.get_or_init(AddressInterner::new)
    }

    /// Interns `addr`, returning its id (allocating one if unseen).
    pub fn intern(&self, addr: &Address) -> AddressId {
        if let Some(&id) = self.inner.read().expect("interner poisoned").map.get(addr) {
            return AddressId(id);
        }
        let mut inner = self.inner.write().expect("interner poisoned");
        // Double-check: another thread may have interned it meanwhile.
        if let Some(&id) = inner.map.get(addr) {
            return AddressId(id);
        }
        let id = u32::try_from(inner.addrs.len()).expect("address interner overflow");
        let leaked: &'static Address = Box::leak(Box::new(addr.clone()));
        inner.addrs.push(leaked);
        inner.map.insert(leaked, id);
        AddressId(id)
    }

    /// The id of `addr` if it has been interned, without interning it.
    pub fn get(&self, addr: &Address) -> Option<AddressId> {
        self.inner
            .read()
            .expect("interner poisoned")
            .map
            .get(addr)
            .map(|&id| AddressId(id))
    }

    /// The address interned as `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this interner (impossible for ids
    /// obtained via [`Address::id`], since the global interner never
    /// forgets).
    pub fn resolve(&self, id: AddressId) -> &'static Address {
        self.inner.read().expect("interner poisoned").addrs[id.0 as usize]
    }

    /// Number of distinct addresses interned so far.
    pub fn len(&self) -> usize {
        self.inner.read().expect("interner poisoned").addrs.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Builds an [`Address`] from a list of components.
///
/// Short addresses (one or two components) are built without heap
/// allocation; see the module docs.
///
/// # Examples
///
/// ```
/// use ppl::addr;
/// let a = addr!["hidden", 4];
/// assert_eq!(a.to_string(), "hidden/4");
/// ```
#[macro_export]
macro_rules! addr {
    ($($c:expr),+ $(,)?) => {
        $crate::Address::from_components([$($crate::address::Component::from($c)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_and_display() {
        let a = addr!["x", 1, "y"];
        assert_eq!(a.to_string(), "x/1/y");
        assert_eq!(a.len(), 3);
        assert_eq!(Address::root().to_string(), "<root>");
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(addr!["a"] < addr!["a", 0]);
        assert!(addr!["a", 1] < addr!["a", 2]);
        assert!(addr!["a", 2] < addr!["b"]);
    }

    #[test]
    fn child_extends() {
        let a = Address::from("loop");
        let b = a.child(7_i64);
        assert_eq!(b.to_string(), "loop/7");
        assert_eq!(a.to_string(), "loop");
    }

    #[test]
    fn strip_prefix_works() {
        let a = addr!["m", 3, "x"];
        let p = Address::from("m");
        assert_eq!(a.strip_prefix(&p).unwrap(), addr![3, "x"]);
        assert!(a.strip_prefix(&Address::from("n")).is_none());
    }

    #[test]
    fn with_head_sym_preserves_indices() {
        let a = addr!["hidden", 4];
        assert_eq!(a.with_head_sym("state"), addr!["state", 4]);
        assert_eq!(Address::root().with_head_sym("x"), addr!["x"]);
        // Heap-backed: more than two components.
        let deep = addr!["a", 1, "b", 2];
        assert_eq!(deep.with_head_sym("z"), addr!["z", 1, "b", 2]);
    }

    #[test]
    fn inline_heap_boundary_is_invisible() {
        // Same address built four ways: macro, new, push-spill, child.
        let via_macro = addr!["s", 1, "t"];
        let via_new = Address::new(vec![
            Component::from("s"),
            Component::from(1_i64),
            Component::from("t"),
        ]);
        let mut via_push = addr!["s", 1];
        via_push.push("t");
        let via_child = addr!["s", 1].child("t");
        for a in [&via_new, &via_push, &via_child] {
            assert_eq!(&via_macro, a);
            assert_eq!(via_macro.cmp(a), std::cmp::Ordering::Equal);
            assert_eq!(via_macro.to_string(), a.to_string());
        }
        assert_eq!(via_macro.components().len(), 3);
    }

    #[test]
    fn equality_and_hash_cross_representation() {
        use std::collections::HashSet;
        // An inline and a heap address that are component-equal must
        // collide in a hash set.
        let inline = addr!["x", 2];
        let heap = addr!["x", 2, "y"].strip_prefix(&Address::root()).unwrap();
        let mut set = HashSet::new();
        set.insert(inline.clone());
        assert!(!set.insert(addr!["x", 2]));
        assert_ne!(inline, heap);
    }

    #[test]
    fn interning_round_trips() {
        let a = addr!["intern_test", 7, "deep"];
        let id = a.id();
        assert_eq!(id, a.id());
        assert_eq!(id.resolve(), &a);
        assert_eq!(id.to_string(), a.to_string());
        let b = addr!["intern_test", 8];
        assert_ne!(b.id(), id);
        assert_eq!(AddressInterner::global().get(&a), Some(id));
    }

    #[test]
    fn interner_ids_key_maps() {
        use crate::fxhash::FxHashMap;
        let mut m: FxHashMap<AddressId, i32> = FxHashMap::default();
        m.insert(addr!["k", 1].id(), 1);
        m.insert(addr!["k", 2].id(), 2);
        assert_eq!(m.get(&addr!["k", 1].id()), Some(&1));
        assert_eq!(m.len(), 2);
    }
}
