//! Static dependence analysis over the surface AST.
//!
//! Three layers, mirroring what the dynamic dependency-graph runtime
//! tracks per execution:
//!
//! 1. **Effect inference** ([`infer_effects`]): for every statement, in
//!    pre-order, the may-read, may-write and may-sample (site label)
//!    sets — both for the statement head alone (a leaf expression, a
//!    branch condition, loop bounds) and for its whole subtree. The
//!    subtree summary is the static mirror of the dynamic block
//!    summaries recorded by the propagation runtime: every variable a
//!    dynamic record could report as read is contained in the static
//!    `subtree.reads` of its statement.
//! 2. **Change seeds** ([`ChangeSeed`]): a per-statement classification
//!    of a program edit (unchanged / inner edits only / own computation
//!    changed) plus the set of old-program writes whose values go stale.
//!    Derived from a structural diff by the dependency-graph crate.
//! 3. **Impact slicing** ([`impact`]): a fixpoint over the effect facts
//!    computing an over-approximate [`ImpactSet`] — every statement any
//!    execution of the new program could *revisit* (fail to skip) under
//!    the edit, and every variable whose value may differ from the old
//!    execution. The set is deliberately flow-insensitive and
//!    conservative: statements outside it are *proven* skippable, so a
//!    stage plan may pre-prune them without consulting runtime dirty
//!    bits, and a dynamic run that visits a statement outside the set
//!    indicates a soundness bug (see the `--verify-slices` oracle).

use std::collections::BTreeSet;

use crate::ast::{Block, Expr, Program, RandExpr, RandKind, Stmt};

/// May-read / may-write / may-sample sets of a statement or block.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EffectSummary {
    /// Variables the code may read.
    pub reads: BTreeSet<String>,
    /// Variables the code may write.
    pub writes: BTreeSet<String>,
    /// Site labels the code may sample or observe at.
    pub samples: BTreeSet<String>,
}

impl EffectSummary {
    /// Unions `other` into `self`.
    pub fn absorb(&mut self, other: &EffectSummary) {
        self.reads.extend(other.reads.iter().cloned());
        self.writes.extend(other.writes.iter().cloned());
        self.samples.extend(other.samples.iter().cloned());
    }

    /// Whether any read intersects `vars`.
    pub fn reads_any(&self, vars: &BTreeSet<String>) -> bool {
        self.reads.iter().any(|r| vars.contains(r))
    }
}

/// Control shape of a statement, for the impact fixpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmtShape {
    /// A straight-line statement: assignment, element assignment,
    /// observation, or `skip`.
    Leaf,
    /// An `if` statement.
    If,
    /// A `for` loop.
    For,
    /// A `while` loop.
    While,
}

/// Static facts about one statement, at its pre-order index.
#[derive(Debug, Clone)]
pub struct StmtFacts {
    /// Pre-order index of this statement.
    pub index: usize,
    /// One past the last pre-order index of this statement's subtree.
    pub end: usize,
    /// Nesting depth (0 = top level).
    pub depth: usize,
    /// Control shape.
    pub shape: StmtShape,
    /// Effects of the statement head alone: a leaf's expressions, a
    /// branch condition, loop bounds (plus the loop variable as a
    /// write).
    pub head: EffectSummary,
    /// Aggregate effects of the whole subtree, head included.
    pub subtree: EffectSummary,
    /// The loop variable of a `for` statement.
    pub loop_var: Option<String>,
    /// A short human-readable rendering for reports.
    pub label: String,
}

/// Effect facts for every statement of a program, in pre-order.
#[derive(Debug, Clone)]
pub struct ProgramEffects {
    /// Per-statement facts; `stmts[i].index == i`.
    pub stmts: Vec<StmtFacts>,
    /// Variables read by the `return` expression.
    pub ret_reads: BTreeSet<String>,
}

impl ProgramEffects {
    /// Number of statements.
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// Whether the program has no statements.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    /// The pre-order indices of the `count` statements of a block whose
    /// first statement sits at pre-order index `start`: consecutive
    /// siblings are separated by their subtree sizes.
    pub fn block_child_indices(&self, start: usize, count: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(count);
        let mut i = start;
        for _ in 0..count {
            out.push(i);
            i = self.stmts[i].end;
        }
        out
    }
}

/// Computes per-statement effect facts for `program`.
///
/// # Examples
///
/// ```
/// let p = ppl::parse("x = flip(0.5) @ s; y = x + 1; return y;").unwrap();
/// let fx = ppl::analysis::infer_effects(&p);
/// assert_eq!(fx.len(), 2);
/// assert!(fx.stmts[0].head.samples.contains("s"));
/// assert!(fx.stmts[1].head.reads.contains("x"));
/// ```
pub fn infer_effects(program: &Program) -> ProgramEffects {
    let mut stmts = Vec::new();
    walk_block(&program.body, 0, &mut stmts);
    let mut ret_reads = BTreeSet::new();
    if let Some(ret) = &program.ret {
        let mut sum = EffectSummary::default();
        expr_effects(ret, &mut sum);
        ret_reads = sum.reads;
    }
    ProgramEffects { stmts, ret_reads }
}

/// Transitive effect summary of a single statement (subtree included).
pub fn stmt_effects(stmt: &Stmt) -> EffectSummary {
    let mut scratch = Vec::new();
    walk_stmt(stmt, 0, &mut scratch)
}

fn walk_block(block: &Block, depth: usize, out: &mut Vec<StmtFacts>) -> EffectSummary {
    let mut sum = EffectSummary::default();
    for stmt in block.stmts() {
        sum.absorb(&walk_stmt(stmt, depth, out));
    }
    sum
}

fn walk_stmt(stmt: &Stmt, depth: usize, out: &mut Vec<StmtFacts>) -> EffectSummary {
    let index = out.len();
    // Reserve the slot so children land after their parent in pre-order.
    out.push(StmtFacts {
        index,
        end: index + 1,
        depth,
        shape: StmtShape::Leaf,
        head: EffectSummary::default(),
        subtree: EffectSummary::default(),
        loop_var: None,
        label: stmt_label(stmt),
    });
    let mut head = EffectSummary::default();
    let mut loop_var = None;
    let shape;
    let mut subtree;
    match stmt {
        Stmt::Skip => {
            shape = StmtShape::Leaf;
            subtree = head.clone();
        }
        Stmt::Assign(name, expr) => {
            shape = StmtShape::Leaf;
            expr_effects(expr, &mut head);
            head.writes.insert(name.clone());
            subtree = head.clone();
        }
        Stmt::AssignIndex(name, idx, expr) => {
            shape = StmtShape::Leaf;
            expr_effects(idx, &mut head);
            expr_effects(expr, &mut head);
            // An element write reads the array it updates.
            head.reads.insert(name.clone());
            head.writes.insert(name.clone());
            subtree = head.clone();
        }
        Stmt::Observe(rand, expr) => {
            shape = StmtShape::Leaf;
            rand_effects(rand, &mut head);
            expr_effects(expr, &mut head);
            subtree = head.clone();
        }
        Stmt::If(cond, then_b, else_b) => {
            shape = StmtShape::If;
            expr_effects(cond, &mut head);
            subtree = head.clone();
            subtree.absorb(&walk_block(then_b, depth + 1, out));
            subtree.absorb(&walk_block(else_b, depth + 1, out));
        }
        Stmt::While(cond, body) => {
            shape = StmtShape::While;
            expr_effects(cond, &mut head);
            subtree = head.clone();
            subtree.absorb(&walk_block(body, depth + 1, out));
        }
        Stmt::For(var, lo, hi, body) => {
            shape = StmtShape::For;
            expr_effects(lo, &mut head);
            expr_effects(hi, &mut head);
            head.writes.insert(var.clone());
            loop_var = Some(var.clone());
            subtree = head.clone();
            subtree.absorb(&walk_block(body, depth + 1, out));
        }
    }
    let end = out.len();
    let facts = &mut out[index];
    facts.end = end;
    facts.shape = shape;
    facts.head = head;
    facts.subtree = subtree.clone();
    facts.loop_var = loop_var;
    subtree
}

fn stmt_label(stmt: &Stmt) -> String {
    match stmt {
        Stmt::Skip => "skip".to_string(),
        Stmt::Assign(name, _) => format!("{name} = …"),
        Stmt::AssignIndex(name, _, _) => format!("{name}[…] = …"),
        Stmt::Observe(rand, _) => format!("observe(… @ {})", rand.site),
        Stmt::If(..) => "if …".to_string(),
        Stmt::While(..) => "while …".to_string(),
        Stmt::For(var, ..) => format!("for {var} in …"),
    }
}

fn expr_effects(expr: &Expr, out: &mut EffectSummary) {
    match expr {
        Expr::Const(_) => {}
        Expr::Var(name) => {
            out.reads.insert(name.clone());
        }
        Expr::Unary(_, e) => expr_effects(e, out),
        Expr::Binary(_, a, b) => {
            expr_effects(a, out);
            expr_effects(b, out);
        }
        Expr::Index(arr, idx) => {
            expr_effects(arr, out);
            expr_effects(idx, out);
        }
        Expr::ArrayInit(n, init) => {
            expr_effects(n, out);
            expr_effects(init, out);
        }
        Expr::Call(_, args) => {
            for a in args {
                expr_effects(a, out);
            }
        }
        Expr::Ternary(c, t, e) => {
            expr_effects(c, out);
            expr_effects(t, out);
            expr_effects(e, out);
        }
        Expr::Random(rand) => rand_effects(rand, out),
    }
}

fn rand_effects(rand: &RandExpr, out: &mut EffectSummary) {
    out.samples.insert(rand.site.as_str().to_string());
    match &rand.kind {
        RandKind::Flip(p)
        | RandKind::Poisson(p)
        | RandKind::GeometricDist(p)
        | RandKind::Exponential(p) => expr_effects(p, out),
        RandKind::UniformInt(a, b)
        | RandKind::UniformReal(a, b)
        | RandKind::Gauss(a, b)
        | RandKind::Beta(a, b) => {
            expr_effects(a, out);
            expr_effects(b, out);
        }
        RandKind::Categorical(ws) => {
            for w in ws {
                expr_effects(w, out);
            }
        }
    }
}

/// How an edit touches one statement of the *new* program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChangeKind {
    /// Syntactically identical to its old counterpart (site labels
    /// included).
    Unchanged,
    /// The statement itself is unchanged but something inside its
    /// sub-blocks was edited (control statements only).
    Inner,
    /// The statement's own computation changed: an edited expression, a
    /// changed condition or bounds, or no old counterpart at all.
    Changed,
}

/// A statically derived description of a program edit: the input to
/// [`impact`]. Built from a structural diff by the dependency-graph
/// crate's `impact` module.
#[derive(Debug, Clone)]
pub struct ChangeSeed {
    /// Per-statement change kinds, indexed by pre-order index in the new
    /// program (same indexing as [`ProgramEffects::stmts`]).
    pub kinds: Vec<ChangeKind>,
    /// Variables whose old values go stale under the edit: writes of
    /// removed or edited old-program statements.
    pub stale_writes: BTreeSet<String>,
}

impl ChangeSeed {
    /// The identity seed: nothing changed.
    pub fn identity(len: usize) -> ChangeSeed {
        ChangeSeed {
            kinds: vec![ChangeKind::Unchanged; len],
            stale_writes: BTreeSet::new(),
        }
    }
}

/// The over-approximate impact slice of an edit.
#[derive(Debug, Clone)]
pub struct ImpactSet {
    /// Pre-order indices of new-program statements some execution could
    /// revisit under the edit.
    pub impacted: BTreeSet<usize>,
    /// Variables whose values may differ from the old execution.
    pub may_dirty: BTreeSet<String>,
    /// Site labels whose choices or observations may be revisited.
    pub sites: BTreeSet<String>,
    /// Total number of statements in the new program.
    pub total: usize,
}

impl ImpactSet {
    /// Whether statement `index` may be revisited.
    pub fn contains(&self, index: usize) -> bool {
        self.impacted.contains(&index)
    }

    /// Whether statement `index` is statically proven skippable.
    pub fn skippable(&self, index: usize) -> bool {
        !self.contains(index)
    }

    /// Number of statements statically proven skippable.
    pub fn skippable_count(&self) -> usize {
        self.total - self.impacted.len()
    }
}

/// Computes the impact slice of an edit described by `seed` over the
/// effect facts of the new program.
///
/// The result is sound with respect to the dynamic skip rule of the
/// propagation runtime, which skips a statement iff it is syntactically
/// unchanged *and* none of its recorded reads is dirty:
///
/// - every dynamically dirty variable is in `may_dirty` (dirty values
///   originate from re-executed or removed writes, and every statement
///   that can re-execute contributes its writes here);
/// - every dynamically visited statement is in `impacted` (a statement
///   is visited only when it is changed or reads a dirty variable, and
///   static subtree reads over-approximate recorded reads).
pub fn impact(effects: &ProgramEffects, seed: &ChangeSeed) -> ImpactSet {
    let n = effects.stmts.len();
    debug_assert_eq!(seed.kinds.len(), n, "seed must cover every statement");
    let mut impacted = vec![false; n];
    let mut spread = vec![false; n];
    let mut dirty = seed.stale_writes.clone();

    // A `while` loop whose subtree carries any edit may change its
    // iteration count, which can re-execute anything inside: treat the
    // whole loop as changed.
    let while_touched: Vec<bool> = (0..n)
        .map(|i| {
            effects.stmts[i].shape == StmtShape::While
                && (i..effects.stmts[i].end)
                    .any(|j| seed.kinds.get(j) != Some(&ChangeKind::Unchanged))
        })
        .collect();

    // Seed pass.
    for i in 0..n {
        let facts = &effects.stmts[i];
        match seed.kinds.get(i).copied().unwrap_or(ChangeKind::Changed) {
            ChangeKind::Unchanged => {}
            ChangeKind::Inner => {
                impacted[i] = true;
                // Re-visited loop iterations rebind the loop variable.
                if let Some(var) = &facts.loop_var {
                    dirty.insert(var.clone());
                }
            }
            ChangeKind::Changed => match facts.shape {
                StmtShape::Leaf => {
                    impacted[i] = true;
                    dirty.extend(facts.head.writes.iter().cloned());
                }
                StmtShape::If | StmtShape::For | StmtShape::While => {
                    spread_subtree(effects, i, &mut impacted, &mut spread, &mut dirty);
                }
            },
        }
        if while_touched[i] && !spread[i] {
            spread_subtree(effects, i, &mut impacted, &mut spread, &mut dirty);
        }
    }

    // Fixpoint: dirty reads make statements re-executable, and
    // re-executed statements dirty their writes.
    loop {
        let mut changed = false;
        for i in 0..n {
            let facts = &effects.stmts[i];
            match facts.shape {
                StmtShape::Leaf => {
                    if !impacted[i] && facts.head.reads_any(&dirty) {
                        impacted[i] = true;
                        dirty.extend(facts.head.writes.iter().cloned());
                        changed = true;
                    }
                }
                StmtShape::If => {
                    // A possibly different condition can flip the branch:
                    // either branch could then run fresh.
                    if facts.head.reads_any(&dirty) && !spread[i] {
                        spread_subtree(effects, i, &mut impacted, &mut spread, &mut dirty);
                        changed = true;
                    } else if !impacted[i] && facts.subtree.reads_any(&dirty) {
                        // The aggregate record reads a dirty variable, so
                        // the `if` itself is visited — but the branch
                        // cannot flip, so children are judged one by one.
                        impacted[i] = true;
                        changed = true;
                    }
                }
                StmtShape::For => {
                    // Possibly different bounds change the iteration
                    // count: fresh iterations re-run the whole body.
                    if facts.head.reads_any(&dirty) && !spread[i] {
                        spread_subtree(effects, i, &mut impacted, &mut spread, &mut dirty);
                        changed = true;
                    } else if facts.subtree.reads_any(&dirty) {
                        if !impacted[i] {
                            impacted[i] = true;
                            changed = true;
                        }
                        if let Some(var) = &facts.loop_var {
                            if dirty.insert(var.clone()) {
                                changed = true;
                            }
                        }
                    }
                }
                StmtShape::While => {
                    // Any dirty read inside a `while` can change how many
                    // iterations run: conservatively re-run everything.
                    if facts.subtree.reads_any(&dirty) && !spread[i] {
                        spread_subtree(effects, i, &mut impacted, &mut spread, &mut dirty);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut sites = BTreeSet::new();
    for i in 0..n {
        if !impacted[i] {
            continue;
        }
        let facts = &effects.stmts[i];
        if spread[i] || facts.shape == StmtShape::Leaf {
            sites.extend(facts.subtree.samples.iter().cloned());
        } else {
            // Visited control statement whose children are judged
            // individually: only its own head re-evaluates.
            sites.extend(facts.head.samples.iter().cloned());
        }
    }

    ImpactSet {
        impacted: impacted
            .iter()
            .enumerate()
            .filter_map(|(i, hit)| hit.then_some(i))
            .collect(),
        may_dirty: dirty,
        sites,
        total: n,
    }
}

fn spread_subtree(
    effects: &ProgramEffects,
    i: usize,
    impacted: &mut [bool],
    spread: &mut [bool],
    dirty: &mut BTreeSet<String>,
) {
    spread[i] = true;
    impacted[i..effects.stmts[i].end].fill(true);
    dirty.extend(effects.stmts[i].subtree.writes.iter().cloned());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn fx(src: &str) -> ProgramEffects {
        infer_effects(&parse(src).unwrap())
    }

    #[test]
    fn preorder_indices_and_subtree_ranges() {
        let e = fx("a = 1; if a > 0 { b = 2; c = 3; } else { d = 4; } e = 5; return e;");
        // a=1 | if | b=2 | c=3 | d=4 | e=5
        assert_eq!(e.len(), 6);
        assert_eq!(e.stmts[1].shape, StmtShape::If);
        assert_eq!(e.stmts[1].end, 5);
        assert_eq!(e.stmts[5].label, "e = …");
        assert_eq!(e.block_child_indices(0, 3), vec![0, 1, 5]);
    }

    #[test]
    fn loop_effects_include_loop_variable_and_bounds() {
        let e = fx("n = 3; xs = array(n, 0); for i in [0..n) { xs[i] = i * 2; } return xs;");
        let f = &e.stmts[2];
        assert_eq!(f.shape, StmtShape::For);
        assert_eq!(f.loop_var.as_deref(), Some("i"));
        assert!(f.head.reads.contains("n"));
        assert!(f.head.writes.contains("i"));
        assert!(f.subtree.writes.contains("xs"));
        assert!(f.subtree.reads.contains("i"));
    }

    #[test]
    fn sample_sites_are_collected() {
        let e = fx("x = flip(0.5) @ a; observe(flip(0.9) @ o == x); return x;");
        assert!(e.stmts[0].head.samples.contains("a"));
        assert!(e.stmts[1].head.samples.contains("o"));
        assert!(e.stmts[1].head.reads.contains("x"));
        assert_eq!(e.ret_reads, BTreeSet::from(["x".to_string()]));
    }

    #[test]
    fn identity_seed_impacts_nothing() {
        let e = fx("a = 1; b = a + 1; observe(flip(0.5) == b); return b;");
        let set = impact(&e, &ChangeSeed::identity(e.len()));
        assert!(set.impacted.is_empty());
        assert!(set.may_dirty.is_empty());
        assert_eq!(set.skippable_count(), 3);
    }

    #[test]
    fn leaf_edit_cascades_through_reads() {
        let e = fx("a = 1; b = a + 1; c = 7; observe(flip(0.5) @ o == b); return c;");
        let mut seed = ChangeSeed::identity(e.len());
        seed.kinds[0] = ChangeKind::Changed; // a = …
        let set = impact(&e, &seed);
        // a dirties b, which dirties the observe; c is untouched.
        assert!(set.contains(0) && set.contains(1) && set.contains(3));
        assert!(set.skippable(2));
        assert!(set.may_dirty.contains("a") && set.may_dirty.contains("b"));
        assert!(!set.may_dirty.contains("c"));
        assert!(set.sites.contains("o"));
    }

    #[test]
    fn changed_if_condition_spreads_both_branches() {
        let e = fx("p = flip(0.5); if p { x = 1; } else { y = 2; } z = x + 0; return z;");
        let mut seed = ChangeSeed::identity(e.len());
        seed.kinds[1] = ChangeKind::Changed; // condition edited
        let set = impact(&e, &seed);
        assert!(set.contains(1) && set.contains(2) && set.contains(3));
        assert!(set.may_dirty.contains("x") && set.may_dirty.contains("y"));
        assert!(set.contains(4), "z reads the dirtied x");
        assert!(set.skippable(0));
    }

    #[test]
    fn inner_if_edit_does_not_spread_siblings() {
        let e = fx("p = flip(0.5); if p { x = 1; y = 2; } else { skip; } return p;");
        let mut seed = ChangeSeed::identity(e.len());
        seed.kinds[1] = ChangeKind::Inner;
        seed.kinds[2] = ChangeKind::Changed; // x = … edited
        let set = impact(&e, &seed);
        assert!(set.contains(1) && set.contains(2));
        assert!(set.skippable(3), "y = 2 is untouched");
        assert!(set.skippable(4));
    }

    #[test]
    fn while_with_any_inner_edit_spreads() {
        let e = fx("n = 0; while n < 3 { n = n + 1; m = n; } return n;");
        let mut seed = ChangeSeed::identity(e.len());
        seed.kinds[2] = ChangeKind::Changed; // n = n + 1 edited
        seed.kinds[1] = ChangeKind::Inner;
        let set = impact(&e, &seed);
        assert!(set.contains(1) && set.contains(2) && set.contains(3));
        assert!(set.may_dirty.contains("n") && set.may_dirty.contains("m"));
    }

    #[test]
    fn stale_writes_seed_the_fixpoint() {
        let e = fx("a = 1; b = a + c; return b;");
        let mut seed = ChangeSeed::identity(e.len());
        seed.stale_writes.insert("c".to_string()); // removed old stmt wrote c
        let set = impact(&e, &seed);
        assert!(set.skippable(0));
        assert!(set.contains(1));
    }

    #[test]
    fn dirty_loop_bounds_spread_the_loop_body() {
        let e = fx("n = 3; xs = array(4, 0); for i in [0..n) { xs[i] = 1; } return xs;");
        let mut seed = ChangeSeed::identity(e.len());
        seed.kinds[0] = ChangeKind::Changed; // n = …
        let set = impact(&e, &seed);
        assert!(set.contains(2) && set.contains(3));
        assert!(set.may_dirty.contains("xs") && set.may_dirty.contains("i"));
        assert!(set.skippable(1));
    }

    #[test]
    fn single_statement_effects_helper_is_transitive() {
        let p =
            parse("for i in [0..3) { xs = array(2, i); observe(flip(0.5) @ w == 1); } return 0;")
                .unwrap();
        let sum = stmt_effects(&p.body.stmts()[0]);
        assert!(sum.writes.contains("xs") && sum.writes.contains("i"));
        assert!(sum.samples.contains("w"));
    }
}
