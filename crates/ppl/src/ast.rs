//! Abstract syntax of the probabilistic surface language.
//!
//! The grammar extends Section 3 of the paper:
//!
//! ```text
//! E ::= v | x | ⊖E | E1 ⊕ E2 | E1[E2] | array(E1, E2) | f(E...) | R
//! R ::= flip(E) | uniform(E1, E2) | uniformReal(E1, E2)
//!     | gauss(E1, E2) | categorical(E...)
//! P ::= skip | x = E | x[E1] = E2 | P1; P2 | observe(R == E)
//!     | if E {P1} else {P2} | while E {P} | for x in [E1..E2) {P}
//! ```
//!
//! Extensions (arrays, bounded `for`, `gauss`, builtins) support the
//! evaluation programs of Section 7, in particular the PSI Gaussian mixture
//! model of Listing 5. Random expressions carry a *site* label used to
//! address their choices; loop iterations extend the address with their
//! indices (Section 5.4).

use std::fmt;
use std::sync::Arc;

use crate::value::Value;

/// A variable identifier.
pub type Ident = String;

/// A stable label for a random expression or observation site.
///
/// Sites seed the addresses of random choices: the choice made by the site
/// `s` inside loops at iterations `i, j` has address `s/i/j`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub Arc<str>);

impl SiteId {
    /// Creates a site label.
    pub fn new(label: &str) -> SiteId {
        SiteId(Arc::from(label))
    }

    /// The label text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for SiteId {
    fn from(s: &str) -> Self {
        SiteId::new(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Logical negation `!e`.
    Not,
}

/// Binary operators. `&&`/`||` evaluate both operands (strict), matching
/// the paper's `E1 ⊕ E2` rule which evaluates sub-expressions first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==` (numeric equality across bool/int/real)
    Eq,
    /// `!=`
    Ne,
    /// `&&` (strict)
    And,
    /// `||` (strict)
    Or,
}

/// Builtin pure functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// Square root.
    Sqrt,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Ln,
    /// Absolute value.
    Abs,
    /// Binary minimum.
    Min,
    /// Binary maximum.
    Max,
    /// Floor to integer.
    Floor,
    /// Array or string length.
    Len,
}

impl Builtin {
    /// The surface name of the builtin.
    pub fn name(self) -> &'static str {
        match self {
            Builtin::Sqrt => "sqrt",
            Builtin::Exp => "exp",
            Builtin::Ln => "ln",
            Builtin::Abs => "abs",
            Builtin::Min => "min",
            Builtin::Max => "max",
            Builtin::Floor => "floor",
            Builtin::Len => "len",
        }
    }

    /// Resolves a surface name, if it is a builtin.
    pub fn from_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "sqrt" => Builtin::Sqrt,
            "exp" => Builtin::Exp,
            "ln" => Builtin::Ln,
            "abs" => Builtin::Abs,
            "min" => Builtin::Min,
            "max" => Builtin::Max,
            "floor" => Builtin::Floor,
            "len" => Builtin::Len,
            _ => return None,
        })
    }

    /// Number of arguments the builtin expects.
    pub fn arity(self) -> usize {
        match self {
            Builtin::Min | Builtin::Max => 2,
            _ => 1,
        }
    }
}

/// The kind of a random expression (its distribution family with parameter
/// expressions).
#[derive(Debug, Clone, PartialEq)]
pub enum RandKind {
    /// `flip(p)`
    Flip(Box<Expr>),
    /// `uniform(lo, hi)` over integers (inclusive).
    UniformInt(Box<Expr>, Box<Expr>),
    /// `uniformReal(lo, hi)` over reals.
    UniformReal(Box<Expr>, Box<Expr>),
    /// `gauss(mean, std)`
    Gauss(Box<Expr>, Box<Expr>),
    /// `categorical(w0, w1, ...)` over `0..k`.
    Categorical(Vec<Expr>),
    /// `poisson(lambda)`
    Poisson(Box<Expr>),
    /// `geometric(p)` — successes before the first failure.
    GeometricDist(Box<Expr>),
    /// `beta(alpha, beta)`
    Beta(Box<Expr>, Box<Expr>),
    /// `exponential(rate)`
    Exponential(Box<Expr>),
}

impl RandKind {
    /// The surface keyword of this family.
    pub fn family(&self) -> &'static str {
        match self {
            RandKind::Flip(_) => "flip",
            RandKind::UniformInt(..) => "uniform",
            RandKind::UniformReal(..) => "uniformReal",
            RandKind::Gauss(..) => "gauss",
            RandKind::Categorical(_) => "categorical",
            RandKind::Poisson(_) => "poisson",
            RandKind::GeometricDist(_) => "geometric",
            RandKind::Beta(..) => "beta",
            RandKind::Exponential(_) => "exponential",
        }
    }
}

/// A random expression: a site label plus a distribution family.
#[derive(Debug, Clone, PartialEq)]
pub struct RandExpr {
    /// The site label used for addressing.
    pub site: SiteId,
    /// Distribution family and parameters.
    pub kind: RandKind,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A constant.
    Const(Value),
    /// A variable reference.
    Var(Ident),
    /// A unary operation.
    Unary(UnOp, Box<Expr>),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Array indexing `a[i]`.
    Index(Box<Expr>, Box<Expr>),
    /// Array construction `array(n, init)`.
    ArrayInit(Box<Expr>, Box<Expr>),
    /// A builtin function call.
    Call(Builtin, Vec<Expr>),
    /// Ternary conditional `c ? t : e` — only the taken branch is
    /// evaluated.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// A random expression.
    Random(RandExpr),
}

#[allow(clippy::should_implement_trait)] // `add`/`sub`/`mul`/`div` are AST builders, not arithmetic
impl Expr {
    /// Integer constant.
    pub fn int(i: i64) -> Expr {
        Expr::Const(Value::Int(i))
    }

    /// Real constant.
    pub fn real(r: f64) -> Expr {
        Expr::Const(Value::Real(r))
    }

    /// Boolean constant.
    pub fn bool(b: bool) -> Expr {
        Expr::Const(Value::Bool(b))
    }

    /// Variable reference.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_string())
    }

    /// `flip(p)` with an explicit site label.
    pub fn flip(site: &str, p: Expr) -> Expr {
        Expr::Random(RandExpr {
            site: SiteId::new(site),
            kind: RandKind::Flip(Box::new(p)),
        })
    }

    /// Integer `uniform(lo, hi)` with an explicit site label.
    pub fn uniform(site: &str, lo: Expr, hi: Expr) -> Expr {
        Expr::Random(RandExpr {
            site: SiteId::new(site),
            kind: RandKind::UniformInt(Box::new(lo), Box::new(hi)),
        })
    }

    /// `gauss(mean, std)` with an explicit site label.
    pub fn gauss(site: &str, mean: Expr, std: Expr) -> Expr {
        Expr::Random(RandExpr {
            site: SiteId::new(site),
            kind: RandKind::Gauss(Box::new(mean), Box::new(std)),
        })
    }

    /// Binary operation helper.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// `self + rhs`
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, self, rhs)
    }

    /// `self - rhs`
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Sub, self, rhs)
    }

    /// `self * rhs`
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mul, self, rhs)
    }

    /// `self / rhs`
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Div, self, rhs)
    }

    /// `self < rhs`
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Lt, self, rhs)
    }

    /// `self == rhs`
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Eq, self, rhs)
    }

    /// `self[idx]`
    pub fn index(self, idx: Expr) -> Expr {
        Expr::Index(Box::new(self), Box::new(idx))
    }

    /// `self ? t : e`
    pub fn ternary(self, t: Expr, e: Expr) -> Expr {
        Expr::Ternary(Box::new(self), Box::new(t), Box::new(e))
    }

    /// Collects the sites of all random expressions in this expression, in
    /// evaluation order.
    pub fn collect_sites(&self, out: &mut Vec<SiteId>) {
        match self {
            Expr::Const(_) | Expr::Var(_) => {}
            Expr::Unary(_, e) => e.collect_sites(out),
            Expr::Binary(_, a, b) => {
                a.collect_sites(out);
                b.collect_sites(out);
            }
            Expr::Index(a, b) | Expr::ArrayInit(a, b) => {
                a.collect_sites(out);
                b.collect_sites(out);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_sites(out);
                }
            }
            Expr::Ternary(c, t, e) => {
                c.collect_sites(out);
                t.collect_sites(out);
                e.collect_sites(out);
            }
            Expr::Random(r) => {
                match &r.kind {
                    RandKind::Flip(p)
                    | RandKind::Poisson(p)
                    | RandKind::GeometricDist(p)
                    | RandKind::Exponential(p) => p.collect_sites(out),
                    RandKind::UniformInt(a, b)
                    | RandKind::UniformReal(a, b)
                    | RandKind::Gauss(a, b)
                    | RandKind::Beta(a, b) => {
                        a.collect_sites(out);
                        b.collect_sites(out);
                    }
                    RandKind::Categorical(ws) => {
                        for w in ws {
                            w.collect_sites(out);
                        }
                    }
                }
                out.push(r.site.clone());
            }
        }
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `skip`
    Skip,
    /// `x = e`
    Assign(Ident, Expr),
    /// `x[i] = e`
    AssignIndex(Ident, Expr, Expr),
    /// `if cond { then } else { els }`
    If(Expr, Block, Block),
    /// `while cond { body }`
    While(Expr, Block),
    /// `for x in [lo..hi) { body }` — `hi` exclusive.
    For(Ident, Expr, Expr, Block),
    /// `observe(R == e)`
    Observe(RandExpr, Expr),
}

/// A sequence of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block(pub Vec<Stmt>);

impl Block {
    /// Creates a block from statements.
    pub fn new(stmts: Vec<Stmt>) -> Block {
        Block(stmts)
    }

    /// An empty block.
    pub fn empty() -> Block {
        Block(Vec::new())
    }

    /// The statements.
    pub fn stmts(&self) -> &[Stmt] {
        &self.0
    }
}

/// A complete program: a body and an optional return expression.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// The statement body.
    pub body: Block,
    /// The `return e;` expression, if present.
    pub ret: Option<Expr>,
}

impl Program {
    /// Creates a program.
    pub fn new(body: Block, ret: Option<Expr>) -> Program {
        Program { body, ret }
    }

    /// Collects the sites of all random expressions (including those inside
    /// observations) in syntactic order.
    pub fn sites(&self) -> Vec<SiteId> {
        fn walk_block(block: &Block, out: &mut Vec<SiteId>) {
            for stmt in &block.0 {
                match stmt {
                    Stmt::Skip => {}
                    Stmt::Assign(_, e) => e.collect_sites(out),
                    Stmt::AssignIndex(_, i, e) => {
                        i.collect_sites(out);
                        e.collect_sites(out);
                    }
                    Stmt::If(c, t, e) => {
                        c.collect_sites(out);
                        walk_block(t, out);
                        walk_block(e, out);
                    }
                    Stmt::While(c, b) => {
                        c.collect_sites(out);
                        walk_block(b, out);
                    }
                    Stmt::For(_, lo, hi, b) => {
                        lo.collect_sites(out);
                        hi.collect_sites(out);
                        walk_block(b, out);
                    }
                    Stmt::Observe(r, e) => {
                        out.push(r.site.clone());
                        e.collect_sites(out);
                    }
                }
            }
        }
        let mut out = Vec::new();
        walk_block(&self.body, &mut out);
        if let Some(e) = &self.ret {
            e.collect_sites(&mut out);
        }
        out
    }
}

/// Appends every variable name `expr` mentions (reads only — expressions
/// cannot bind), in evaluation order. Names may repeat; callers dedup.
pub fn collect_expr_var_names<'a>(expr: &'a Expr, out: &mut Vec<&'a str>) {
    match expr {
        Expr::Const(_) => {}
        Expr::Var(name) => out.push(name),
        Expr::Unary(_, e) => collect_expr_var_names(e, out),
        Expr::Binary(_, a, b) | Expr::Index(a, b) | Expr::ArrayInit(a, b) => {
            collect_expr_var_names(a, out);
            collect_expr_var_names(b, out);
        }
        Expr::Call(_, args) => {
            for a in args {
                collect_expr_var_names(a, out);
            }
        }
        Expr::Ternary(c, t, e) => {
            collect_expr_var_names(c, out);
            collect_expr_var_names(t, out);
            collect_expr_var_names(e, out);
        }
        Expr::Random(r) => collect_rand_var_names(&r.kind, out),
    }
}

fn collect_rand_var_names<'a>(kind: &'a RandKind, out: &mut Vec<&'a str>) {
    match kind {
        RandKind::Flip(p)
        | RandKind::Poisson(p)
        | RandKind::GeometricDist(p)
        | RandKind::Exponential(p) => collect_expr_var_names(p, out),
        RandKind::UniformInt(a, b)
        | RandKind::UniformReal(a, b)
        | RandKind::Gauss(a, b)
        | RandKind::Beta(a, b) => {
            collect_expr_var_names(a, out);
            collect_expr_var_names(b, out);
        }
        RandKind::Categorical(ws) => {
            for w in ws {
                collect_expr_var_names(w, out);
            }
        }
    }
}

/// Appends every variable name `program` mentions — assignment targets,
/// loop variables, and reads — in syntactic order. Names may repeat;
/// callers dedup. This is the slot universe the compile pass
/// ([`crate::compile`]) resolves against.
pub fn collect_var_names<'a>(program: &'a Program, out: &mut Vec<&'a str>) {
    fn walk_block<'a>(block: &'a Block, out: &mut Vec<&'a str>) {
        for stmt in &block.0 {
            match stmt {
                Stmt::Skip => {}
                Stmt::Assign(name, e) => {
                    out.push(name);
                    collect_expr_var_names(e, out);
                }
                Stmt::AssignIndex(name, i, e) => {
                    out.push(name);
                    collect_expr_var_names(i, out);
                    collect_expr_var_names(e, out);
                }
                Stmt::If(c, t, e) => {
                    collect_expr_var_names(c, out);
                    walk_block(t, out);
                    walk_block(e, out);
                }
                Stmt::While(c, b) => {
                    collect_expr_var_names(c, out);
                    walk_block(b, out);
                }
                Stmt::For(var, lo, hi, b) => {
                    out.push(var);
                    collect_expr_var_names(lo, out);
                    collect_expr_var_names(hi, out);
                    walk_block(b, out);
                }
                Stmt::Observe(r, e) => {
                    collect_rand_var_names(&r.kind, out);
                    collect_expr_var_names(e, out);
                }
            }
        }
    }
    walk_block(&program.body, out);
    if let Some(e) = &program.ret {
        collect_expr_var_names(e, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let e = Expr::var("x").add(Expr::int(1)).mul(Expr::real(2.0));
        match &e {
            Expr::Binary(BinOp::Mul, lhs, _) => {
                assert!(matches!(**lhs, Expr::Binary(BinOp::Add, _, _)));
            }
            _ => panic!("unexpected shape"),
        }
    }

    #[test]
    fn sites_collected_in_order() {
        let p = Program::new(
            Block::new(vec![
                Stmt::Assign("a".into(), Expr::flip("alpha", Expr::real(0.5))),
                Stmt::If(
                    Expr::var("a"),
                    Block::new(vec![Stmt::Assign(
                        "b".into(),
                        Expr::uniform("beta", Expr::int(0), Expr::int(5)),
                    )]),
                    Block::empty(),
                ),
                Stmt::Observe(
                    RandExpr {
                        site: SiteId::new("o"),
                        kind: RandKind::Flip(Box::new(Expr::real(0.8))),
                    },
                    Expr::int(1),
                ),
            ]),
            Some(Expr::var("a")),
        );
        let sites: Vec<String> = p.sites().iter().map(|s| s.to_string()).collect();
        assert_eq!(sites, ["alpha", "beta", "o"]);
    }

    #[test]
    fn nested_random_sites_inner_first() {
        // gauss(centers[uniformInt(...)], 1): the inner uniform evaluates
        // before the outer gauss.
        let inner = Expr::uniform("pick", Expr::int(0), Expr::int(9));
        let outer = Expr::gauss("point", Expr::var("c").index(inner), Expr::real(1.0));
        let mut sites = Vec::new();
        outer.collect_sites(&mut sites);
        let names: Vec<&str> = sites.iter().map(|s| s.as_str()).collect();
        assert_eq!(names, ["pick", "point"]);
    }

    #[test]
    fn builtin_name_round_trip() {
        for b in [
            Builtin::Sqrt,
            Builtin::Exp,
            Builtin::Ln,
            Builtin::Abs,
            Builtin::Min,
            Builtin::Max,
            Builtin::Floor,
            Builtin::Len,
        ] {
            assert_eq!(Builtin::from_name(b.name()), Some(b));
        }
        assert_eq!(Builtin::from_name("nope"), None);
    }
}
